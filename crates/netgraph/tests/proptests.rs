//! Property-based routing and traffic invariants on random topologies.

use proptest::prelude::*;
use rn_netgraph::{generators, Routing, TrafficMatrix};
use rn_tensor::Prng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn routing_covers_all_pairs_on_connected_graphs(
        seed in any::<u64>(),
        n in 3usize..12,
        p in 0.0f64..0.6,
    ) {
        let mut rng = Prng::new(seed);
        let topo = generators::erdos_renyi_connected(n, p, 1e4, &mut rng).unwrap();
        let routing = Routing::randomized(&topo, &mut rng);
        prop_assert_eq!(routing.num_paths(), n * (n - 1));
        prop_assert!(routing.validate(&topo).is_ok());
    }

    #[test]
    fn shortest_paths_are_no_longer_than_randomized(
        seed in any::<u64>(),
        n in 4usize..10,
    ) {
        let mut rng = Prng::new(seed);
        let topo = generators::erdos_renyi_connected(n, 0.3, 1e4, &mut rng).unwrap();
        let min_hop = Routing::shortest_paths(&topo);
        let weighted = Routing::randomized(&topo, &mut rng);
        for (s, d, p) in weighted.iter_paths() {
            let base = min_hop.path(s, d).unwrap().hop_count();
            prop_assert!(p.hop_count() >= base,
                "weighted path {s}->{d} shorter than min-hop: {} < {base}", p.hop_count());
        }
    }

    #[test]
    fn subpath_optimality_of_min_hop_routing(
        seed in any::<u64>(),
        n in 4usize..10,
    ) {
        // Every prefix of a shortest path is itself within the shortest
        // distance bound (Bellman's principle, hop-count metric).
        let mut rng = Prng::new(seed);
        let topo = generators::erdos_renyi_connected(n, 0.25, 1e4, &mut rng).unwrap();
        let routing = Routing::shortest_paths(&topo);
        for (s, _d, p) in routing.iter_paths() {
            for (i, &mid) in p.nodes.iter().enumerate().skip(1) {
                let via = i; // hops used to reach `mid` along this path
                let direct = routing.path(s, mid).unwrap().hop_count();
                prop_assert!(direct <= via,
                    "prefix to {mid} uses {via} hops but direct path is {direct}");
            }
        }
    }

    #[test]
    fn link_loads_conserve_traffic_volume(
        seed in any::<u64>(),
        n in 3usize..9,
    ) {
        // Sum of link loads == sum over pairs of rate * hop_count.
        let mut rng = Prng::new(seed);
        let topo = generators::erdos_renyi_connected(n, 0.3, 1e4, &mut rng).unwrap();
        let routing = Routing::shortest_paths(&topo);
        let tm = TrafficMatrix::uniform_random(n, &mut rng, 10.0, 100.0);
        let loads: f64 = tm.link_loads(&topo, &routing).iter().sum();
        let expected: f64 = routing
            .iter_paths()
            .map(|(s, d, p)| tm.rate(s, d) * p.hop_count() as f64)
            .sum();
        prop_assert!((loads - expected).abs() < 1e-6 * expected.max(1.0));
    }

    #[test]
    fn preferential_attachment_is_connected(
        seed in any::<u64>(),
        n in 5usize..20,
        m in 1usize..3,
    ) {
        let mut rng = Prng::new(seed);
        let topo = generators::preferential_attachment(n, m, 1e4, &mut rng).unwrap();
        prop_assert!(topo.is_strongly_connected());
        // Every new node contributes m duplex edges; the seed clique has
        // m*(m+1)/2 duplex edges.
        let expected_edges = m * (m + 1) / 2 + (n - m - 1) * m;
        prop_assert_eq!(topo.num_links(), 2 * expected_edges);
    }
}
