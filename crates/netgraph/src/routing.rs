//! Routing schemes: one loop-free path per source–destination pair.
//!
//! RouteNet's input is a routing scheme, and the datasets contain *diverse*
//! schemes. We obtain them the way the KDN datasets did: compute shortest
//! paths under per-link weights, and randomize the weights per sample
//! ([`Routing::randomized`]) so different samples route differently while
//! every individual path stays loop-free and connected.

use crate::graph::{LinkId, NodeId, Topology};
use rn_tensor::Prng;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A source–destination path: the node sequence and the directed links that
/// join consecutive nodes (`links.len() == nodes.len() - 1`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Path {
    /// Traversed devices, source first, destination last.
    pub nodes: Vec<NodeId>,
    /// Traversed links, in travel order.
    pub links: Vec<LinkId>,
}

impl Path {
    /// Number of hops (links traversed).
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }

    /// Source node.
    pub fn src(&self) -> NodeId {
        *self.nodes.first().expect("Path has at least two nodes")
    }

    /// Destination node.
    pub fn dst(&self) -> NodeId {
        *self.nodes.last().expect("Path has at least two nodes")
    }

    /// Check structural validity against a topology: links connect consecutive
    /// nodes and no node repeats (loop-free).
    pub fn validate(&self, topo: &Topology) -> Result<(), String> {
        if self.nodes.len() < 2 {
            return Err("path must visit at least two nodes".into());
        }
        if self.links.len() + 1 != self.nodes.len() {
            return Err(format!(
                "path has {} nodes but {} links",
                self.nodes.len(),
                self.links.len()
            ));
        }
        for (i, &l) in self.links.iter().enumerate() {
            if l >= topo.num_links() {
                return Err(format!("link id {l} out of range"));
            }
            let link = topo.link(l);
            if link.src != self.nodes[i] || link.dst != self.nodes[i + 1] {
                return Err(format!(
                    "link {l} ({} -> {}) does not join path nodes {} -> {}",
                    link.src,
                    link.dst,
                    self.nodes[i],
                    self.nodes[i + 1]
                ));
            }
        }
        let mut seen = vec![false; topo.num_nodes()];
        for &n in &self.nodes {
            if seen[n] {
                return Err(format!("node {n} repeats: path has a loop"));
            }
            seen[n] = true;
        }
        Ok(())
    }
}

/// A complete routing scheme: a path for every ordered pair of distinct nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Routing {
    num_nodes: usize,
    /// Dense `src * n + dst` table; the diagonal holds `None`.
    paths: Vec<Option<Path>>,
}

impl Routing {
    /// Shortest paths under unit link weights (minimum hop count).
    pub fn shortest_paths(topo: &Topology) -> Self {
        let weights = vec![1.0; topo.num_links()];
        Self::weighted_shortest_paths(topo, &weights)
    }

    /// A randomized routing scheme: shortest paths under link weights drawn
    /// uniformly from `[1, 2)`. Different seeds yield genuinely different
    /// schemes while paths remain near-shortest and loop-free.
    pub fn randomized(topo: &Topology, rng: &mut Prng) -> Self {
        let weights: Vec<f64> = (0..topo.num_links())
            .map(|_| 1.0 + rng.uniform() as f64)
            .collect();
        Self::weighted_shortest_paths(topo, &weights)
    }

    /// Shortest paths under explicit per-link weights (must all be positive).
    ///
    /// Ties are broken deterministically (by predecessor link id), so equal
    /// inputs produce identical routings on every platform.
    pub fn weighted_shortest_paths(topo: &Topology, weights: &[f64]) -> Self {
        assert_eq!(
            weights.len(),
            topo.num_links(),
            "one weight per link required"
        );
        assert!(
            weights.iter().all(|&w| w > 0.0),
            "link weights must be positive"
        );
        let n = topo.num_nodes();
        let mut paths: Vec<Option<Path>> = vec![None; n * n];
        for src in 0..n {
            let (dist, prev_link) = dijkstra(topo, weights, src);
            for dst in 0..n {
                if dst == src || dist[dst].is_infinite() {
                    continue;
                }
                // Walk predecessors back from dst.
                let mut rev_links = Vec::new();
                let mut cur = dst;
                while cur != src {
                    let l = prev_link[cur].expect("finite distance implies a predecessor");
                    rev_links.push(l);
                    cur = topo.link(l).src;
                }
                rev_links.reverse();
                let mut nodes = vec![src];
                for &l in &rev_links {
                    nodes.push(topo.link(l).dst);
                }
                paths[src * n + dst] = Some(Path {
                    nodes,
                    links: rev_links,
                });
            }
        }
        Self {
            num_nodes: n,
            paths,
        }
    }

    /// Shortest paths for a **selected subset** of source–destination pairs
    /// under unit link weights — the giant-topology entry point. A full
    /// scheme on an `n`-node graph runs `n` Dijkstras and stores `n(n-1)`
    /// paths; for a 1000-node ISP topology that is a million paths when a
    /// scenario only exercises a few hundred. This constructor runs one
    /// Dijkstra per *distinct source* in `pairs` and routes only the
    /// requested pairs, so [`Routing::num_paths`] (and therefore the label
    /// count a [`crate::TrafficMatrix`]-driven simulation produces) matches
    /// the active-pair count exactly.
    ///
    /// Self-pairs and unreachable pairs are left unrouted; duplicates
    /// collapse. Ordering guarantees are identical to the dense scheme:
    /// [`Routing::iter_paths`] stays row-major over routed pairs.
    pub fn sparse_shortest_paths(topo: &Topology, pairs: &[(NodeId, NodeId)]) -> Self {
        let weights = vec![1.0; topo.num_links()];
        Self::sparse_weighted_shortest_paths(topo, &weights, pairs)
    }

    /// [`Routing::sparse_shortest_paths`] under explicit positive per-link
    /// weights, with the same deterministic tie-break as
    /// [`Routing::weighted_shortest_paths`] — the sparse scheme routes every
    /// requested pair exactly as the dense scheme would.
    pub fn sparse_weighted_shortest_paths(
        topo: &Topology,
        weights: &[f64],
        pairs: &[(NodeId, NodeId)],
    ) -> Self {
        assert_eq!(
            weights.len(),
            topo.num_links(),
            "one weight per link required"
        );
        assert!(
            weights.iter().all(|&w| w > 0.0),
            "link weights must be positive"
        );
        let n = topo.num_nodes();
        let mut by_src: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &(src, dst) in pairs {
            assert!(src < n && dst < n, "pair ({src}, {dst}) out of range");
            if src != dst {
                by_src[src].push(dst);
            }
        }
        let mut paths: Vec<Option<Path>> = vec![None; n * n];
        for (src, dsts) in by_src.iter().enumerate() {
            if dsts.is_empty() {
                continue;
            }
            let (dist, prev_link) = dijkstra(topo, weights, src);
            for &dst in dsts {
                if dist[dst].is_infinite() || paths[src * n + dst].is_some() {
                    continue;
                }
                let mut rev_links = Vec::new();
                let mut cur = dst;
                while cur != src {
                    let l = prev_link[cur].expect("finite distance implies a predecessor");
                    rev_links.push(l);
                    cur = topo.link(l).src;
                }
                rev_links.reverse();
                let mut nodes = vec![src];
                for &l in &rev_links {
                    nodes.push(topo.link(l).dst);
                }
                paths[src * n + dst] = Some(Path {
                    nodes,
                    links: rev_links,
                });
            }
        }
        Self {
            num_nodes: n,
            paths,
        }
    }

    /// The path from `src` to `dst`, if the pair is connected and distinct.
    pub fn path(&self, src: NodeId, dst: NodeId) -> Option<&Path> {
        self.paths
            .get(src * self.num_nodes + dst)
            .and_then(Option::as_ref)
    }

    /// Number of nodes this routing covers.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Iterate `(src, dst, path)` over all routed pairs in deterministic
    /// (row-major) order.
    pub fn iter_paths(&self) -> impl Iterator<Item = (NodeId, NodeId, &Path)> {
        let n = self.num_nodes;
        self.paths
            .iter()
            .enumerate()
            .filter_map(move |(i, p)| p.as_ref().map(|path| (i / n, i % n, path)))
    }

    /// Total number of routed pairs.
    pub fn num_paths(&self) -> usize {
        self.paths.iter().filter(|p| p.is_some()).count()
    }

    /// Validate every path against the topology.
    pub fn validate(&self, topo: &Topology) -> Result<(), String> {
        for (s, d, p) in self.iter_paths() {
            p.validate(topo)
                .map_err(|e| format!("path {s}->{d}: {e}"))?;
            if p.src() != s || p.dst() != d {
                return Err(format!(
                    "path {s}->{d} has endpoints {}->{}",
                    p.src(),
                    p.dst()
                ));
            }
        }
        Ok(())
    }
}

/// Max-heap entry ordered for Dijkstra (min distance first, then node id and
/// predecessor link id for full determinism).
#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
    via_link: Option<LinkId>,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on distance for a min-heap; tie-break on (node, link).
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("distances are finite")
            .then_with(|| other.node.cmp(&self.node))
            .then_with(|| other.via_link.cmp(&self.via_link))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra from `src`: returns per-node distance and predecessor link.
fn dijkstra(topo: &Topology, weights: &[f64], src: NodeId) -> (Vec<f64>, Vec<Option<LinkId>>) {
    let n = topo.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev_link: Vec<Option<LinkId>> = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[src] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: src,
        via_link: None,
    });

    while let Some(HeapEntry {
        dist: d,
        node,
        via_link,
    }) = heap.pop()
    {
        if done[node] {
            continue;
        }
        done[node] = true;
        prev_link[node] = via_link;
        for &l in topo.out_links(node) {
            let link = topo.link(l);
            let nd = d + weights[l];
            // Strict improvement, or equal distance via a smaller link id:
            // the deterministic tie-break that keeps routings reproducible.
            let better = nd < dist[link.dst]
                || (nd == dist[link.dst]
                    && prev_link[link.dst].is_none_or(|existing| l < existing)
                    && !done[link.dst]);
            if better {
                dist[link.dst] = nd;
                heap.push(HeapEntry {
                    dist: nd,
                    node: link.dst,
                    via_link: Some(l),
                });
            }
        }
    }
    (dist, prev_link)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies;

    #[test]
    fn shortest_paths_cover_all_pairs() {
        let topo = topologies::nsfnet_default();
        let routing = Routing::shortest_paths(&topo);
        assert_eq!(routing.num_paths(), 14 * 13);
        routing.validate(&topo).expect("routing must validate");
    }

    #[test]
    fn line_graph_routes_through_middle() {
        let topo = Topology::from_undirected_edges("line", 3, &[(0, 1), (1, 2)], 1e4, 0.0);
        let routing = Routing::shortest_paths(&topo);
        let p = routing.path(0, 2).unwrap();
        assert_eq!(p.nodes, vec![0, 1, 2]);
        assert_eq!(p.hop_count(), 2);
    }

    #[test]
    fn hop_counts_are_minimal_under_unit_weights() {
        let topo = topologies::toy5();
        let routing = Routing::shortest_paths(&topo);
        // toy5 edges: 0-1, 1-2, 2-3, 3-0, 1-3, 3-4
        assert_eq!(routing.path(0, 2).unwrap().hop_count(), 2);
        assert_eq!(routing.path(0, 4).unwrap().hop_count(), 2);
        assert_eq!(routing.path(2, 4).unwrap().hop_count(), 2);
    }

    #[test]
    fn weighted_routing_avoids_heavy_links() {
        // Square 0-1-2-3-0. Make 0->1 expensive: 0->2 must go via 3.
        let topo =
            Topology::from_undirected_edges("sq", 4, &[(0, 1), (1, 2), (2, 3), (3, 0)], 1e4, 0.0);
        let mut weights = vec![1.0; topo.num_links()];
        let heavy = topo.find_link(0, 1).unwrap();
        weights[heavy] = 10.0;
        let routing = Routing::weighted_shortest_paths(&topo, &weights);
        assert_eq!(routing.path(0, 2).unwrap().nodes, vec![0, 3, 2]);
    }

    #[test]
    fn randomized_schemes_differ_but_stay_valid() {
        let topo = topologies::geant2_default();
        let mut rng_a = Prng::new(1);
        let mut rng_b = Prng::new(2);
        let ra = Routing::randomized(&topo, &mut rng_a);
        let rb = Routing::randomized(&topo, &mut rng_b);
        ra.validate(&topo).unwrap();
        rb.validate(&topo).unwrap();
        let differing = topo
            .all_pairs()
            .iter()
            .filter(|&&(s, d)| ra.path(s, d).unwrap().nodes != rb.path(s, d).unwrap().nodes)
            .count();
        assert!(
            differing > 0,
            "different seeds should route at least one pair differently"
        );
    }

    #[test]
    fn determinism_across_runs() {
        let topo = topologies::nsfnet_default();
        let ra = Routing::randomized(&topo, &mut Prng::new(99));
        let rb = Routing::randomized(&topo, &mut Prng::new(99));
        for (s, d, p) in ra.iter_paths() {
            assert_eq!(p, rb.path(s, d).unwrap());
        }
    }

    #[test]
    fn sparse_routing_matches_dense_on_requested_pairs() {
        let topo = topologies::geant2_default();
        let dense = Routing::shortest_paths(&topo);
        let pairs = [(0, 5), (3, 17), (17, 3), (9, 1), (9, 1), (4, 4)];
        let sparse = Routing::sparse_shortest_paths(&topo, &pairs);
        sparse.validate(&topo).unwrap();
        // Duplicates collapse and self-pairs are unrouted: 4 distinct paths.
        assert_eq!(sparse.num_paths(), 4);
        for &(s, d) in &pairs {
            if s == d {
                assert!(sparse.path(s, d).is_none());
            } else {
                assert_eq!(sparse.path(s, d), dense.path(s, d), "pair ({s},{d})");
            }
        }
        // Unrequested pairs stay unrouted.
        assert!(sparse.path(0, 1).is_none());
    }

    #[test]
    fn sparse_weighted_routing_uses_same_tie_break() {
        let topo = topologies::nsfnet_default();
        let weights: Vec<f64> = (0..topo.num_links())
            .map(|l| 1.0 + (l % 3) as f64 * 0.25)
            .collect();
        let dense = Routing::weighted_shortest_paths(&topo, &weights);
        let pairs: Vec<(usize, usize)> = (0..14).map(|d| (2, d)).filter(|&(s, d)| s != d).collect();
        let sparse = Routing::sparse_weighted_shortest_paths(&topo, &weights, &pairs);
        for &(s, d) in &pairs {
            assert_eq!(sparse.path(s, d), dense.path(s, d), "pair ({s},{d})");
        }
    }

    #[test]
    fn path_validate_rejects_corruption() {
        let topo = topologies::toy5();
        let routing = Routing::shortest_paths(&topo);
        let mut p = routing.path(0, 2).unwrap().clone();
        p.nodes.swap(0, 1);
        assert!(p.validate(&topo).is_err());
    }

    #[test]
    fn paths_are_loop_free() {
        let topo = topologies::geant2_default();
        let routing = Routing::randomized(&topo, &mut Prng::new(5));
        for (_, _, p) in routing.iter_paths() {
            let mut sorted = p.nodes.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), p.nodes.len(), "loop in {:?}", p.nodes);
        }
    }
}
