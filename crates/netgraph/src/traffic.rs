//! End-to-end traffic matrices.
//!
//! A traffic matrix assigns an average rate (bits per second) to every ordered
//! source–destination pair. The datasets use uniformly drawn per-pair rates
//! scaled to a global load level, mirroring the KDN dataset generator: the
//! interesting regimes for queue-size modeling are moderate-to-high loads
//! where finite queues actually drop packets.

use crate::graph::{NodeId, Topology};
use crate::routing::Routing;
use rn_tensor::Prng;
use serde::{Deserialize, Serialize};

/// Average offered traffic per ordered pair, in bits per second.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    num_nodes: usize,
    /// Dense row-major `src * n + dst` rates; the diagonal is zero.
    rates_bps: Vec<f64>,
}

impl TrafficMatrix {
    /// All-zero matrix.
    pub fn zeros(num_nodes: usize) -> Self {
        Self {
            num_nodes,
            rates_bps: vec![0.0; num_nodes * num_nodes],
        }
    }

    /// Uniform random rates in `[lo, hi)` bits per second for every ordered
    /// pair of distinct nodes.
    pub fn uniform_random(num_nodes: usize, rng: &mut Prng, lo: f64, hi: f64) -> Self {
        assert!(
            lo >= 0.0 && hi >= lo,
            "uniform_random: invalid range [{lo}, {hi})"
        );
        let mut tm = Self::zeros(num_nodes);
        for s in 0..num_nodes {
            for d in 0..num_nodes {
                if s != d {
                    tm.set(s, d, lo + (hi - lo) * rng.uniform() as f64);
                }
            }
        }
        tm
    }

    /// Draw a matrix whose *busiest link* under `routing` carries
    /// approximately `target_utilization` of its capacity.
    ///
    /// Rates are first drawn uniformly, then rescaled so that
    /// `max_l (carried(l) / capacity(l)) == target_utilization`. This is how
    /// the dataset generator controls the congestion regime of a sample.
    pub fn with_target_utilization(
        topo: &Topology,
        routing: &Routing,
        rng: &mut Prng,
        target_utilization: f64,
    ) -> Self {
        assert!(
            target_utilization > 0.0,
            "target utilization must be positive"
        );
        let mut tm = Self::uniform_random(topo.num_nodes(), rng, 0.1, 1.0);
        let max_util = tm.max_link_utilization(topo, routing);
        if max_util > 0.0 {
            let scale = target_utilization / max_util;
            for r in &mut tm.rates_bps {
                *r *= scale;
            }
        }
        tm
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The rate from `src` to `dst` in bits per second.
    pub fn rate(&self, src: NodeId, dst: NodeId) -> f64 {
        self.rates_bps[src * self.num_nodes + dst]
    }

    /// Set the rate for one pair. Panics on the diagonal or negative rates.
    pub fn set(&mut self, src: NodeId, dst: NodeId, rate_bps: f64) {
        assert_ne!(
            src, dst,
            "TrafficMatrix::set: diagonal entries must stay zero"
        );
        assert!(rate_bps >= 0.0, "TrafficMatrix::set: negative rate");
        self.rates_bps[src * self.num_nodes + dst] = rate_bps;
    }

    /// Total offered load in bits per second.
    pub fn total_bps(&self) -> f64 {
        self.rates_bps.iter().sum()
    }

    /// Offered load per link (bits per second) when routed over `routing`.
    pub fn link_loads(&self, topo: &Topology, routing: &Routing) -> Vec<f64> {
        let mut loads = vec![0.0; topo.num_links()];
        for (s, d, path) in routing.iter_paths() {
            let rate = self.rate(s, d);
            for &l in &path.links {
                loads[l] += rate;
            }
        }
        loads
    }

    /// The maximum link utilization (offered load / capacity) under `routing`.
    pub fn max_link_utilization(&self, topo: &Topology, routing: &Routing) -> f64 {
        self.link_loads(topo, routing)
            .iter()
            .enumerate()
            .map(|(l, &load)| load / topo.link(l).capacity_bps)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies;

    #[test]
    fn zeros_has_no_traffic() {
        let tm = TrafficMatrix::zeros(4);
        assert_eq!(tm.total_bps(), 0.0);
    }

    #[test]
    fn uniform_random_respects_bounds_and_diagonal() {
        let mut rng = Prng::new(1);
        let tm = TrafficMatrix::uniform_random(5, &mut rng, 100.0, 200.0);
        for s in 0..5 {
            for d in 0..5 {
                let r = tm.rate(s, d);
                if s == d {
                    assert_eq!(r, 0.0);
                } else {
                    assert!((100.0..200.0).contains(&r), "rate {r}");
                }
            }
        }
    }

    #[test]
    fn link_loads_accumulate_along_paths() {
        let topo = Topology::from_undirected_edges("line", 3, &[(0, 1), (1, 2)], 1e4, 0.0);
        let routing = Routing::shortest_paths(&topo);
        let mut tm = TrafficMatrix::zeros(3);
        tm.set(0, 2, 500.0);
        tm.set(0, 1, 300.0);
        let loads = tm.link_loads(&topo, &routing);
        let l01 = topo.find_link(0, 1).unwrap();
        let l12 = topo.find_link(1, 2).unwrap();
        assert_eq!(loads[l01], 800.0, "0->1 carries both flows");
        assert_eq!(loads[l12], 500.0, "1->2 carries only the transit flow");
    }

    #[test]
    fn target_utilization_is_hit() {
        let topo = topologies::nsfnet_default();
        let routing = Routing::shortest_paths(&topo);
        let mut rng = Prng::new(7);
        for target in [0.3, 0.6, 0.9] {
            let tm = TrafficMatrix::with_target_utilization(&topo, &routing, &mut rng, target);
            let got = tm.max_link_utilization(&topo, &routing);
            assert!((got - target).abs() < 1e-9, "target {target}, got {got}");
        }
    }

    #[test]
    fn set_and_get_round_trip() {
        let mut tm = TrafficMatrix::zeros(3);
        tm.set(1, 2, 42.0);
        assert_eq!(tm.rate(1, 2), 42.0);
        assert_eq!(tm.rate(2, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn set_rejects_diagonal() {
        TrafficMatrix::zeros(3).set(1, 1, 10.0);
    }
}
