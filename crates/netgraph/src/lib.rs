//! # rn-netgraph
//!
//! Network topology model for the RouteNet reproduction: graphs, canonical
//! topologies, routing schemes and traffic matrices.
//!
//! The paper evaluates on two topologies — the 14-node NSFNET and the 24-node
//! GEANT2 — with "diverse combinations of … routing schemes and end-to-end
//! traffic matrices". This crate supplies all three ingredients:
//!
//! - [`Topology`]: a directed multigraph of forwarding devices and capacity-
//!   annotated links ([`topologies`] has the canonical instances, [`generators`]
//!   random ones for tests and robustness experiments).
//! - [`Routing`]: one path per source–destination pair, computed by Dijkstra
//!   under configurable link weights; randomizing the weights yields the
//!   diverse routing schemes of the datasets.
//! - [`TrafficMatrix`]: average traffic rate per pair, drawn uniformly and
//!   scaled to a target utilization level.

pub mod generators;
pub mod graph;
pub mod routing;
pub mod topologies;
pub mod traffic;

pub use graph::{Link, LinkId, NodeId, Topology};
pub use routing::{Path, Routing};
pub use traffic::TrafficMatrix;
