//! Random topology generators.
//!
//! Used by property tests (routing/simulator invariants must hold on *any*
//! connected graph, not just the canonical ones) and by robustness experiments
//! beyond the paper.

use crate::graph::Topology;
use rn_tensor::Prng;

/// A connected Erdős–Rényi-style random topology.
///
/// Starts from a random spanning tree (guaranteeing connectivity), then adds
/// each remaining undirected edge independently with probability `p`. All
/// links get `capacity_bps` and zero propagation delay.
pub fn erdos_renyi_connected(
    num_nodes: usize,
    p: f64,
    capacity_bps: f64,
    rng: &mut Prng,
) -> Topology {
    assert!(num_nodes >= 2, "need at least two nodes");
    assert!(
        (0.0..=1.0).contains(&p),
        "edge probability must be in [0,1]"
    );
    let mut topo = Topology::new(format!("er{num_nodes}"), num_nodes);
    let mut present = vec![false; num_nodes * num_nodes];

    // Random spanning tree: attach each node to a uniformly random earlier
    // node (a random recursive tree).
    let mut order: Vec<usize> = (0..num_nodes).collect();
    rng.shuffle(&mut order);
    for i in 1..num_nodes {
        let a = order[i];
        let b = order[rng.index(i)];
        topo.add_duplex(a, b, capacity_bps, 0.0);
        present[a * num_nodes + b] = true;
        present[b * num_nodes + a] = true;
    }

    // Extra edges.
    for a in 0..num_nodes {
        for b in (a + 1)..num_nodes {
            if !present[a * num_nodes + b] && rng.bernoulli(p) {
                topo.add_duplex(a, b, capacity_bps, 0.0);
                present[a * num_nodes + b] = true;
                present[b * num_nodes + a] = true;
            }
        }
    }
    topo
}

/// A preferential-attachment (Barabási–Albert-style) topology: each new node
/// attaches to `m` distinct existing nodes chosen proportionally to degree.
/// Produces the hub-dominated profiles typical of real backbones.
pub fn preferential_attachment(
    num_nodes: usize,
    m: usize,
    capacity_bps: f64,
    rng: &mut Prng,
) -> Topology {
    assert!(m >= 1, "m must be at least 1");
    assert!(num_nodes > m, "need more nodes than attachment edges");
    let mut topo = Topology::new(format!("ba{num_nodes}"), num_nodes);
    // Seed: a small clique over the first m+1 nodes.
    for a in 0..=m {
        for b in (a + 1)..=m {
            topo.add_duplex(a, b, capacity_bps, 0.0);
        }
    }
    // Degree-weighted target pool: node id appears once per incident edge.
    let mut pool: Vec<usize> = Vec::new();
    for a in 0..=m {
        for _ in 0..m {
            pool.push(a);
        }
    }
    for new in (m + 1)..num_nodes {
        let mut targets = Vec::new();
        let mut guard = 0;
        while targets.len() < m {
            let candidate = *rng.choose(&pool);
            if !targets.contains(&candidate) {
                targets.push(candidate);
            }
            guard += 1;
            assert!(
                guard < 10_000,
                "preferential attachment failed to find distinct targets"
            );
        }
        for &t in &targets {
            topo.add_duplex(new, t, capacity_bps, 0.0);
            pool.push(t);
            pool.push(new);
        }
    }
    topo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_is_connected_for_any_p() {
        for seed in 0..5 {
            let mut rng = Prng::new(seed);
            let topo = erdos_renyi_connected(12, 0.0, 1e4, &mut rng);
            assert!(topo.is_strongly_connected(), "seed {seed}");
            // p = 0 leaves exactly the spanning tree: n-1 duplex edges.
            assert_eq!(topo.num_links(), 2 * 11);
        }
    }

    #[test]
    fn er_adds_edges_with_positive_p() {
        let rng = Prng::new(3);
        let sparse = erdos_renyi_connected(15, 0.0, 1e4, &mut rng.split(0));
        let dense = erdos_renyi_connected(15, 0.8, 1e4, &mut rng.split(1));
        assert!(dense.num_links() > sparse.num_links());
    }

    #[test]
    fn ba_is_connected_and_hubby() {
        let mut rng = Prng::new(11);
        let topo = preferential_attachment(30, 2, 1e4, &mut rng);
        assert!(topo.is_strongly_connected());
        let max_deg = topo.degrees().into_iter().max().unwrap();
        assert!(max_deg >= 6, "expected hubs, max degree {max_deg}");
    }

    #[test]
    fn generators_are_deterministic() {
        let a = erdos_renyi_connected(10, 0.3, 1e4, &mut Prng::new(42));
        let b = erdos_renyi_connected(10, 0.3, 1e4, &mut Prng::new(42));
        assert_eq!(a.num_links(), b.num_links());
        for (la, lb) in a.links().iter().zip(b.links()) {
            assert_eq!(la, lb);
        }
    }
}
