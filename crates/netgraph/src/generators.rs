//! Random topology generators.
//!
//! Used by property tests (routing/simulator invariants must hold on *any*
//! connected graph, not just the canonical ones), by robustness experiments
//! beyond the paper, and by the giant-topology scaling harness, which needs
//! connected ISP-like graphs hundreds to thousands of nodes wide.
//!
//! All generators are deterministic functions of their [`Prng`] stream and
//! return structured [`GeneratorError`]s instead of panicking on misuse, so
//! a harness sweeping sizes and parameters can skip an infeasible point
//! rather than abort the run.

use crate::graph::Topology;
use rn_tensor::Prng;
use std::collections::HashSet;

/// Why a generator rejected its parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum GeneratorError {
    /// Fewer nodes requested than the generator's structural minimum.
    TooFewNodes {
        /// Requested node count.
        got: usize,
        /// Minimum the generator can build.
        min: usize,
    },
    /// Edge probability outside `[0, 1]`.
    InvalidEdgeProbability {
        /// The offending probability.
        p: f64,
    },
    /// Attachment count incompatible with the node count (`m` must satisfy
    /// `1 <= m < num_nodes`).
    InvalidAttachment {
        /// Requested attachments per new node.
        m: usize,
        /// Requested node count.
        num_nodes: usize,
    },
    /// Capacity is not a positive, finite bandwidth.
    InvalidCapacity {
        /// The offending capacity (bps).
        capacity_bps: f64,
    },
}

impl std::fmt::Display for GeneratorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TooFewNodes { got, min } => {
                write!(f, "generator needs at least {min} nodes, got {got}")
            }
            Self::InvalidEdgeProbability { p } => {
                write!(f, "edge probability must be in [0,1], got {p}")
            }
            Self::InvalidAttachment { m, num_nodes } => write!(
                f,
                "attachment count m={m} must satisfy 1 <= m < num_nodes ({num_nodes})"
            ),
            Self::InvalidCapacity { capacity_bps } => {
                write!(
                    f,
                    "capacity must be positive and finite, got {capacity_bps} bps"
                )
            }
        }
    }
}

impl std::error::Error for GeneratorError {}

fn check_capacity(capacity_bps: f64) -> Result<(), GeneratorError> {
    if capacity_bps > 0.0 && capacity_bps.is_finite() {
        Ok(())
    } else {
        Err(GeneratorError::InvalidCapacity { capacity_bps })
    }
}

/// Undirected edge key, normalized so `(a, b)` and `(b, a)` collide.
#[inline]
fn edge_key(a: usize, b: usize) -> (usize, usize) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// A connected Erdős–Rényi-style random topology.
///
/// Starts from a random spanning tree (guaranteeing connectivity), then adds
/// each remaining undirected edge independently with probability `p`. All
/// links get `capacity_bps` and zero propagation delay.
///
/// The edge index is a hash set and the extra-edge pass uses geometric
/// skip sampling over the `n(n-1)/2` pair space, so the cost is
/// `O(n + edges)` — independent of `n²` for the sparse `p` values giant
/// topologies use — instead of the dense `present` bitmap plus all-pairs
/// Bernoulli sweep this generator started with.
pub fn erdos_renyi_connected(
    num_nodes: usize,
    p: f64,
    capacity_bps: f64,
    rng: &mut Prng,
) -> Result<Topology, GeneratorError> {
    if num_nodes < 2 {
        return Err(GeneratorError::TooFewNodes {
            got: num_nodes,
            min: 2,
        });
    }
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(GeneratorError::InvalidEdgeProbability { p });
    }
    check_capacity(capacity_bps)?;
    let mut topo = Topology::new(format!("er{num_nodes}"), num_nodes);
    let mut present: HashSet<(usize, usize)> = HashSet::with_capacity(num_nodes * 2);

    // Random spanning tree: attach each node to a uniformly random earlier
    // node (a random recursive tree).
    let mut order: Vec<usize> = (0..num_nodes).collect();
    rng.shuffle(&mut order);
    for i in 1..num_nodes {
        let a = order[i];
        let b = order[rng.index(i)];
        topo.add_duplex(a, b, capacity_bps, 0.0);
        present.insert(edge_key(a, b));
    }

    // Extra edges: visit exactly the pairs a geometric skip chain selects
    // (each pair independently with probability p), walking the (a, b)
    // cursor forward in O(1) amortized per selected pair. Pairs already in
    // the spanning tree are simply skipped — same marginal distribution as
    // the dense sweep, without touching the other n²/2 pairs.
    if p >= 1.0 {
        for a in 0..num_nodes {
            for b in (a + 1)..num_nodes {
                if present.insert((a, b)) {
                    topo.add_duplex(a, b, capacity_bps, 0.0);
                }
            }
        }
        return Ok(topo);
    }
    if p > 0.0 {
        let ln_q = (1.0 - p).ln();
        let (mut a, mut b) = (0usize, 0usize); // cursor, b == a means "row start"
        loop {
            // Geometric(p) gap to the next selected pair (0-based gap).
            let gap = (rng.uniform_pos_f64().ln() / ln_q).floor() as usize;
            let mut step = gap + 1;
            // Advance the (a, b) cursor `step` pairs forward, row by row.
            while step > 0 {
                let row_remaining = num_nodes - 1 - b.max(a);
                if step <= row_remaining {
                    b = b.max(a) + step;
                    step = 0;
                } else {
                    step -= row_remaining;
                    a += 1;
                    b = a;
                    if a >= num_nodes - 1 {
                        return Ok(topo);
                    }
                }
            }
            if present.insert((a, b)) {
                topo.add_duplex(a, b, capacity_bps, 0.0);
            }
        }
    }
    Ok(topo)
}

/// Pick `m` distinct indices from `0..weights.len()`, each draw proportional
/// to `weights[i]` among the not-yet-chosen candidates — weighted sampling
/// **without replacement**. Zero-weight candidates are reachable only when
/// every remaining weight is zero (the draw then falls back to uniform), so
/// the pick always succeeds when `m <= weights.len()`; there is no rejection
/// loop to starve.
fn weighted_distinct(weights: &[usize], m: usize, rng: &mut Prng) -> Vec<usize> {
    debug_assert!(m <= weights.len());
    let mut chosen = vec![false; weights.len()];
    let mut picks = Vec::with_capacity(m);
    let mut total: u64 = weights.iter().map(|&w| w as u64).sum();
    for _ in 0..m {
        let pick = if total == 0 {
            // All remaining weight is zero: uniform over the unchosen.
            let remaining = chosen.iter().filter(|&&c| !c).count();
            let mut k = rng.index(remaining);
            let mut idx = 0;
            loop {
                if !chosen[idx] {
                    if k == 0 {
                        break idx;
                    }
                    k -= 1;
                }
                idx += 1;
            }
        } else {
            // Inverse-CDF walk over the unchosen prefix sums.
            let mut t = (rng.uniform_pos_f64() * total as f64) as u64;
            t = t.min(total - 1);
            let mut idx = 0;
            loop {
                if !chosen[idx] {
                    let w = weights[idx] as u64;
                    if t < w {
                        break idx;
                    }
                    t -= w;
                }
                idx += 1;
            }
        };
        chosen[pick] = true;
        total -= weights[pick] as u64;
        picks.push(pick);
    }
    picks
}

/// A preferential-attachment (Barabási–Albert-style) topology: each new node
/// attaches to `m` distinct existing nodes chosen proportionally to degree.
/// Produces the hub-dominated profiles typical of real backbones.
///
/// Targets are drawn by weighted sampling **without replacement**
/// (`weighted_distinct`), so every new node terminates in exactly `m`
/// draws — the rejection loop (and its guard-counter panic for large `m`
/// against a low-diversity pool) is gone.
pub fn preferential_attachment(
    num_nodes: usize,
    m: usize,
    capacity_bps: f64,
    rng: &mut Prng,
) -> Result<Topology, GeneratorError> {
    if m < 1 || num_nodes <= m {
        return Err(GeneratorError::InvalidAttachment { m, num_nodes });
    }
    check_capacity(capacity_bps)?;
    let mut topo = Topology::new(format!("ba{num_nodes}"), num_nodes);
    let mut degree = vec![0usize; num_nodes];
    // Seed: a small clique over the first m+1 nodes.
    for a in 0..=m {
        for b in (a + 1)..=m {
            topo.add_duplex(a, b, capacity_bps, 0.0);
            degree[a] += 1;
            degree[b] += 1;
        }
    }
    for new in (m + 1)..num_nodes {
        let targets = weighted_distinct(&degree[..new], m, rng);
        for &t in &targets {
            topo.add_duplex(new, t, capacity_bps, 0.0);
            degree[t] += 1;
            degree[new] += 1;
        }
    }
    Ok(topo)
}

/// Capacities and tier sizing for [`isp_tiered`]. The defaults mirror the
/// workspace's toy bandwidth scale (the canonical topologies use `1e4` bps
/// links) with a 4:2:1 core:aggregation:edge capacity hierarchy.
#[derive(Debug, Clone)]
pub struct TierConfig {
    /// Fraction of nodes in the core tier (floored at 3 nodes).
    pub core_fraction: f64,
    /// Fraction of nodes in the aggregation tier (floored at 2 nodes).
    pub aggregation_fraction: f64,
    /// Capacity of core↔core links (bps).
    pub core_capacity_bps: f64,
    /// Capacity of aggregation↔core links (bps).
    pub aggregation_capacity_bps: f64,
    /// Capacity of edge↔aggregation links (bps).
    pub edge_capacity_bps: f64,
    /// Probability an edge node dual-homes to a second aggregation node.
    pub dual_home_p: f64,
}

impl Default for TierConfig {
    fn default() -> Self {
        Self {
            core_fraction: 0.05,
            aggregation_fraction: 0.25,
            core_capacity_bps: 4e4,
            aggregation_capacity_bps: 2e4,
            edge_capacity_bps: 1e4,
            dual_home_p: 0.3,
        }
    }
}

/// A deterministic ISP-like tiered topology: a meshed **core** ring with
/// random chords, an **aggregation** tier where each node homes to two
/// distinct core nodes picked preferentially by degree, and an **edge**
/// tier single- or dual-homed (see [`TierConfig::dual_home_p`]) onto the
/// aggregation tier, again degree-preferentially. Preferential homing makes
/// the degree profile heavy-tailed (hub POPs), the tier structure bounds
/// path diameter the way real ISP networks do, and the construction is
/// connected by induction: the ring is connected and every later node
/// attaches to an earlier tier.
///
/// Designed for the 100–2000 node range of the scaling harness; the
/// structural minimum is 8 nodes.
pub fn isp_tiered(
    num_nodes: usize,
    config: &TierConfig,
    rng: &mut Prng,
) -> Result<Topology, GeneratorError> {
    if num_nodes < 8 {
        return Err(GeneratorError::TooFewNodes {
            got: num_nodes,
            min: 8,
        });
    }
    for p in [config.core_fraction, config.aggregation_fraction] {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(GeneratorError::InvalidEdgeProbability { p });
        }
    }
    if !(0.0..=1.0).contains(&config.dual_home_p) || config.dual_home_p.is_nan() {
        return Err(GeneratorError::InvalidEdgeProbability {
            p: config.dual_home_p,
        });
    }
    for c in [
        config.core_capacity_bps,
        config.aggregation_capacity_bps,
        config.edge_capacity_bps,
    ] {
        check_capacity(c)?;
    }
    let n_core =
        ((num_nodes as f64 * config.core_fraction).round() as usize).clamp(3, num_nodes - 5);
    let n_agg = ((num_nodes as f64 * config.aggregation_fraction).round() as usize)
        .clamp(2, num_nodes - n_core - 1);
    let agg_lo = n_core;
    let agg_hi = n_core + n_agg; // edge tier is agg_hi..num_nodes

    let mut topo = Topology::new(format!("isp{num_nodes}"), num_nodes);
    let mut degree = vec![0usize; num_nodes];
    let mut present: HashSet<(usize, usize)> = HashSet::new();
    let mut connect =
        |topo: &mut Topology, degree: &mut Vec<usize>, a: usize, b: usize, cap: f64| -> bool {
            if a == b || !present.insert(edge_key(a, b)) {
                return false;
            }
            topo.add_duplex(a, b, cap, 0.0);
            degree[a] += 1;
            degree[b] += 1;
            true
        };

    // Core ring + chords: the ring guarantees a connected backbone, chords
    // shorten it into a partial mesh.
    for i in 0..n_core {
        connect(
            &mut topo,
            &mut degree,
            i,
            (i + 1) % n_core,
            config.core_capacity_bps,
        );
    }
    for i in 0..n_core {
        if n_core > 3 && rng.bernoulli(0.5) {
            let other = rng.index(n_core);
            connect(&mut topo, &mut degree, i, other, config.core_capacity_bps);
        }
    }

    // Aggregation tier: two distinct core homes, degree-preferential so
    // hub POPs emerge.
    for node in agg_lo..agg_hi {
        for t in weighted_distinct(&degree[..n_core], 2.min(n_core), rng) {
            connect(
                &mut topo,
                &mut degree,
                node,
                t,
                config.aggregation_capacity_bps,
            );
        }
    }

    // Edge tier: one aggregation home (plus an optional second), again
    // degree-preferential among aggregation nodes.
    for node in agg_hi..num_nodes {
        let homes = if rng.bernoulli(config.dual_home_p) {
            2.min(n_agg)
        } else {
            1
        };
        let agg_degrees = &degree[agg_lo..agg_hi];
        for t in weighted_distinct(agg_degrees, homes, rng) {
            connect(
                &mut topo,
                &mut degree,
                node,
                agg_lo + t,
                config.edge_capacity_bps,
            );
        }
    }
    Ok(topo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_is_connected_for_any_p() {
        for seed in 0..5 {
            let mut rng = Prng::new(seed);
            let topo = erdos_renyi_connected(12, 0.0, 1e4, &mut rng).unwrap();
            assert!(topo.is_strongly_connected(), "seed {seed}");
            // p = 0 leaves exactly the spanning tree: n-1 duplex edges.
            assert_eq!(topo.num_links(), 2 * 11);
        }
    }

    #[test]
    fn er_adds_edges_with_positive_p() {
        let rng = Prng::new(3);
        let sparse = erdos_renyi_connected(15, 0.0, 1e4, &mut rng.split(0)).unwrap();
        let dense = erdos_renyi_connected(15, 0.8, 1e4, &mut rng.split(1)).unwrap();
        assert!(dense.num_links() > sparse.num_links());
    }

    #[test]
    fn er_p_one_is_complete() {
        let mut rng = Prng::new(9);
        let topo = erdos_renyi_connected(9, 1.0, 1e4, &mut rng).unwrap();
        assert_eq!(topo.num_links(), 9 * 8, "complete graph, duplex links");
    }

    #[test]
    fn er_edge_count_tracks_p_at_scale() {
        // The skip-sampling pass must land near p · C(n,2) edges without an
        // O(n²) sweep. 600 nodes, p = 0.01 → ~1797 extra undirected edges.
        let mut rng = Prng::new(77);
        let n = 600;
        let p = 0.01;
        let topo = erdos_renyi_connected(n, p, 1e4, &mut rng).unwrap();
        assert!(topo.is_strongly_connected());
        let undirected = topo.num_links() / 2;
        let expected = (n - 1) as f64 + p * (n * (n - 1) / 2) as f64;
        assert!(
            (undirected as f64) > 0.7 * expected && (undirected as f64) < 1.3 * expected,
            "undirected edges {undirected} vs expected ≈{expected}"
        );
    }

    #[test]
    fn er_rejects_bad_parameters() {
        let mut rng = Prng::new(0);
        assert_eq!(
            erdos_renyi_connected(1, 0.5, 1e4, &mut rng).unwrap_err(),
            GeneratorError::TooFewNodes { got: 1, min: 2 }
        );
        assert!(matches!(
            erdos_renyi_connected(5, 1.5, 1e4, &mut rng).unwrap_err(),
            GeneratorError::InvalidEdgeProbability { .. }
        ));
        assert!(matches!(
            erdos_renyi_connected(5, 0.5, 0.0, &mut rng).unwrap_err(),
            GeneratorError::InvalidCapacity { .. }
        ));
    }

    #[test]
    fn ba_is_connected_and_hubby() {
        let mut rng = Prng::new(11);
        let topo = preferential_attachment(30, 2, 1e4, &mut rng).unwrap();
        assert!(topo.is_strongly_connected());
        let max_deg = topo.degrees().into_iter().max().unwrap();
        assert!(max_deg >= 6, "expected hubs, max degree {max_deg}");
    }

    #[test]
    fn ba_handles_large_m_without_panicking() {
        // The old rejection loop could exhaust its guard counter when m was
        // close to the candidate count; weighted sampling without
        // replacement terminates in exactly m draws.
        let mut rng = Prng::new(19);
        let topo = preferential_attachment(12, 10, 1e4, &mut rng).unwrap();
        assert!(topo.is_strongly_connected());
        // Every node past the clique attaches to exactly 10 targets.
        assert_eq!(topo.num_links(), 2 * (10 * 11 / 2 + 10));
    }

    #[test]
    fn ba_rejects_bad_parameters() {
        let mut rng = Prng::new(0);
        assert_eq!(
            preferential_attachment(5, 0, 1e4, &mut rng).unwrap_err(),
            GeneratorError::InvalidAttachment { m: 0, num_nodes: 5 }
        );
        assert_eq!(
            preferential_attachment(3, 3, 1e4, &mut rng).unwrap_err(),
            GeneratorError::InvalidAttachment { m: 3, num_nodes: 3 }
        );
    }

    #[test]
    fn generators_are_deterministic() {
        let a = erdos_renyi_connected(10, 0.3, 1e4, &mut Prng::new(42)).unwrap();
        let b = erdos_renyi_connected(10, 0.3, 1e4, &mut Prng::new(42)).unwrap();
        assert_eq!(a.num_links(), b.num_links());
        for (la, lb) in a.links().iter().zip(b.links()) {
            assert_eq!(la, lb);
        }
    }

    #[test]
    fn isp_tiered_is_connected_at_scale() {
        for (seed, n) in [(1u64, 100usize), (2, 500), (3, 1000)] {
            let mut rng = Prng::new(seed);
            let topo = isp_tiered(n, &TierConfig::default(), &mut rng).unwrap();
            assert_eq!(topo.num_nodes(), n);
            assert!(topo.is_strongly_connected(), "n={n} seed={seed}");
        }
    }

    #[test]
    fn isp_tiered_is_deterministic() {
        let a = isp_tiered(300, &TierConfig::default(), &mut Prng::new(7)).unwrap();
        let b = isp_tiered(300, &TierConfig::default(), &mut Prng::new(7)).unwrap();
        assert_eq!(a.num_links(), b.num_links());
        for (la, lb) in a.links().iter().zip(b.links()) {
            assert_eq!(la, lb);
        }
    }

    #[test]
    fn isp_tiered_has_heavy_tailed_degrees() {
        let mut rng = Prng::new(5);
        let topo = isp_tiered(500, &TierConfig::default(), &mut rng).unwrap();
        let degrees = topo.degrees();
        let max_deg = degrees.iter().copied().max().unwrap();
        let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        assert!(
            max_deg as f64 > 4.0 * mean,
            "expected hub POPs: max degree {max_deg}, mean {mean:.2}"
        );
    }

    #[test]
    fn isp_tiered_rejects_tiny_graphs() {
        let mut rng = Prng::new(0);
        assert_eq!(
            isp_tiered(4, &TierConfig::default(), &mut rng).unwrap_err(),
            GeneratorError::TooFewNodes { got: 4, min: 8 }
        );
    }
}
