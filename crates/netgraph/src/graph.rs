//! Directed network topology.

use serde::{Deserialize, Serialize};

/// Index of a forwarding device.
pub type NodeId = usize;
/// Index of a directed link.
pub type LinkId = usize;

/// A directed, capacity-annotated link between two forwarding devices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Transmitting node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Transmission capacity in bits per second.
    pub capacity_bps: f64,
    /// Propagation delay in seconds.
    pub prop_delay_s: f64,
}

/// A directed multigraph of forwarding devices.
///
/// Physical networks are modeled as symmetric pairs of directed links (one per
/// direction), because each direction has its own output queue — the entity
/// whose size the extended RouteNet models.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    /// Human-readable name (used in dataset manifests and reports).
    pub name: String,
    num_nodes: usize,
    links: Vec<Link>,
    /// Outgoing link ids per node, in insertion order.
    out_links: Vec<Vec<LinkId>>,
}

impl Topology {
    /// An empty topology with `num_nodes` devices and no links.
    pub fn new(name: impl Into<String>, num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "Topology::new: need at least one node");
        Self {
            name: name.into(),
            num_nodes,
            links: Vec::new(),
            out_links: vec![Vec::new(); num_nodes],
        }
    }

    /// Add one directed link; returns its id.
    pub fn add_link(
        &mut self,
        src: NodeId,
        dst: NodeId,
        capacity_bps: f64,
        prop_delay_s: f64,
    ) -> LinkId {
        assert!(src < self.num_nodes, "add_link: src {src} out of range");
        assert!(dst < self.num_nodes, "add_link: dst {dst} out of range");
        assert_ne!(src, dst, "add_link: self-loops are not allowed");
        assert!(capacity_bps > 0.0, "add_link: capacity must be positive");
        assert!(
            prop_delay_s >= 0.0,
            "add_link: propagation delay must be non-negative"
        );
        let id = self.links.len();
        self.links.push(Link {
            src,
            dst,
            capacity_bps,
            prop_delay_s,
        });
        self.out_links[src].push(id);
        id
    }

    /// Add a symmetric pair of directed links; returns `(forward, reverse)` ids.
    pub fn add_duplex(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity_bps: f64,
        prop_delay_s: f64,
    ) -> (LinkId, LinkId) {
        (
            self.add_link(a, b, capacity_bps, prop_delay_s),
            self.add_link(b, a, capacity_bps, prop_delay_s),
        )
    }

    /// Build from an undirected edge list, creating both directions of every
    /// edge with uniform capacity and delay.
    pub fn from_undirected_edges(
        name: impl Into<String>,
        num_nodes: usize,
        edges: &[(NodeId, NodeId)],
        capacity_bps: f64,
        prop_delay_s: f64,
    ) -> Self {
        let mut topo = Self::new(name, num_nodes);
        for &(a, b) in edges {
            topo.add_duplex(a, b, capacity_bps, prop_delay_s);
        }
        topo
    }

    /// Number of forwarding devices.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// The link with the given id. Panics on out-of-range ids.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id]
    }

    /// All links, indexed by [`LinkId`].
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Ids of the links leaving `node`.
    pub fn out_links(&self, node: NodeId) -> &[LinkId] {
        &self.out_links[node]
    }

    /// Replace the capacity of a link (used by dataset generators that draw
    /// heterogeneous capacities per sample). Panics on non-positive values.
    pub fn set_link_capacity(&mut self, id: LinkId, capacity_bps: f64) {
        assert!(
            capacity_bps > 0.0,
            "set_link_capacity: capacity must be positive"
        );
        self.links[id].capacity_bps = capacity_bps;
    }

    /// The directed link from `src` to `dst`, if one exists (first match for
    /// multigraphs).
    pub fn find_link(&self, src: NodeId, dst: NodeId) -> Option<LinkId> {
        self.out_links[src]
            .iter()
            .copied()
            .find(|&id| self.links[id].dst == dst)
    }

    /// Out-degree of each node.
    pub fn degrees(&self) -> Vec<usize> {
        self.out_links.iter().map(Vec::len).collect()
    }

    /// True when every node can reach every other node over directed links.
    pub fn is_strongly_connected(&self) -> bool {
        if self.num_nodes == 0 {
            return true;
        }
        // BFS out from node 0 and over reversed links from node 0.
        let forward = self.reachable_from(0, false);
        let backward = self.reachable_from(0, true);
        forward.iter().all(|&r| r) && backward.iter().all(|&r| r)
    }

    fn reachable_from(&self, start: NodeId, reversed: bool) -> Vec<bool> {
        let mut seen = vec![false; self.num_nodes];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(n) = stack.pop() {
            for link in &self.links {
                let (from, to) = if reversed {
                    (link.dst, link.src)
                } else {
                    (link.src, link.dst)
                };
                if from == n && !seen[to] {
                    seen[to] = true;
                    stack.push(to);
                }
            }
        }
        seen
    }

    /// All ordered source–destination pairs `(s, d)` with `s != d` — the path
    /// set RouteNet models.
    pub fn all_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut pairs = Vec::with_capacity(self.num_nodes * (self.num_nodes - 1));
        for s in 0..self.num_nodes {
            for d in 0..self.num_nodes {
                if s != d {
                    pairs.push((s, d));
                }
            }
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        Topology::from_undirected_edges("tri", 3, &[(0, 1), (1, 2), (2, 0)], 1e4, 0.0)
    }

    #[test]
    fn duplex_creates_both_directions() {
        let t = triangle();
        assert_eq!(t.num_links(), 6);
        assert!(t.find_link(0, 1).is_some());
        assert!(t.find_link(1, 0).is_some());
        assert!(t.find_link(0, 2).is_some());
    }

    #[test]
    fn out_links_track_sources() {
        let t = triangle();
        for n in 0..3 {
            assert_eq!(t.out_links(n).len(), 2, "node {n}");
            for &l in t.out_links(n) {
                assert_eq!(t.link(l).src, n);
            }
        }
    }

    #[test]
    fn strongly_connected_detection() {
        assert!(triangle().is_strongly_connected());
        let mut one_way = Topology::new("oneway", 2);
        one_way.add_link(0, 1, 1e4, 0.0);
        assert!(!one_way.is_strongly_connected());
        let disconnected = Topology::new("disc", 3);
        assert!(!disconnected.is_strongly_connected());
    }

    #[test]
    fn all_pairs_excludes_diagonal() {
        let t = triangle();
        let pairs = t.all_pairs();
        assert_eq!(pairs.len(), 6);
        assert!(pairs.iter().all(|&(s, d)| s != d));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let mut t = Topology::new("bad", 2);
        t.add_link(1, 1, 1e4, 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        let mut t = Topology::new("bad", 2);
        t.add_link(0, 1, 0.0, 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let t = triangle();
        let json = serde_json::to_string(&t).unwrap();
        let back: Topology = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_nodes(), 3);
        assert_eq!(back.num_links(), 6);
        assert_eq!(back.out_links(1).len(), 2);
    }
}
