//! Canonical topologies.
//!
//! - [`nsfnet`]: the standard 14-node / 21-edge NSFNET T1 backbone, the
//!   adjacency used by the RouteNet datasets (and by Hei et al. 2004, the
//!   paper's reference \[3\]).
//! - [`geant2`]: a 24-node / 37-edge topology modeled after the GEANT2
//!   pan-European research network. **Substitution note** (see DESIGN.md): the
//!   exact `.ned` adjacency of the paper's dataset was not available offline;
//!   this reconstruction preserves the properties RouteNet's evaluation relies
//!   on — 24 nodes, 37 duplex links, hub-dominated degree distribution,
//!   diameter ≈ 5 — so generalization experiments retain their meaning.
//! - [`abilene`]: the 11-node Internet2/Abilene backbone, used in extension
//!   experiments beyond the paper.
//! - [`toy5`]: a 5-node example network for documentation, unit tests and the
//!   Figure-1 message-passing trace.
//!
//! All constructors take uniform link capacity/propagation delay; dataset
//! generators may re-draw per-link capacities afterwards via
//! [`crate::Topology::set_link_capacity`].

use crate::Topology;

/// Default link capacity used across the datasets (bits per second). Matches
/// the 10 kbps scale of the public RouteNet/KDN datasets, where average flow
/// rates of a few hundred bit/s drive queues into interesting regimes.
pub const DEFAULT_CAPACITY_BPS: f64 = 10_000.0;

/// Default propagation delay: zero, as in the KDN datasets, where queueing and
/// transmission dominate end-to-end delay.
pub const DEFAULT_PROP_DELAY_S: f64 = 0.0;

/// Undirected edge list of the 14-node NSFNET backbone (21 edges).
pub const NSFNET_EDGES: [(usize, usize); 21] = [
    (0, 1),
    (0, 2),
    (0, 3),
    (1, 2),
    (1, 7),
    (2, 5),
    (3, 4),
    (3, 10),
    (4, 5),
    (4, 6),
    (5, 9),
    (5, 13),
    (6, 7),
    (7, 8),
    (8, 9),
    (8, 11),
    (8, 12),
    (10, 11),
    (10, 12),
    (11, 13),
    (12, 13),
];

/// Undirected edge list of the GEANT2-like topology (24 nodes, 37 edges).
pub const GEANT2_EDGES: [(usize, usize); 37] = [
    (0, 1),
    (0, 2),
    (1, 3),
    (1, 6),
    (1, 9),
    (2, 3),
    (2, 4),
    (3, 5),
    (3, 6),
    (4, 7),
    (4, 11),
    (5, 8),
    (6, 8),
    (6, 9),
    (7, 8),
    (7, 11),
    (8, 11),
    (8, 12),
    (8, 17),
    (8, 18),
    (9, 10),
    (9, 12),
    (9, 13),
    (10, 13),
    (11, 14),
    (11, 20),
    (12, 13),
    (12, 19),
    (12, 21),
    (14, 15),
    (15, 16),
    (16, 17),
    (17, 18),
    (18, 21),
    (19, 23),
    (21, 22),
    (22, 23),
];

/// Undirected edge list of the 11-node Abilene/Internet2 backbone (14 edges).
pub const ABILENE_EDGES: [(usize, usize); 14] = [
    (0, 1),
    (0, 2),
    (1, 2),
    (1, 3),
    (2, 5),
    (3, 4),
    (4, 5),
    (4, 7),
    (5, 6),
    (6, 7),
    (6, 8),
    (7, 9),
    (8, 10),
    (9, 10),
];

/// The 14-node NSFNET topology with uniform link parameters.
pub fn nsfnet(capacity_bps: f64, prop_delay_s: f64) -> Topology {
    Topology::from_undirected_edges("nsfnet", 14, &NSFNET_EDGES, capacity_bps, prop_delay_s)
}

/// NSFNET with the default 10 kbps / zero-delay links.
pub fn nsfnet_default() -> Topology {
    nsfnet(DEFAULT_CAPACITY_BPS, DEFAULT_PROP_DELAY_S)
}

/// The 24-node GEANT2-like topology with uniform link parameters.
pub fn geant2(capacity_bps: f64, prop_delay_s: f64) -> Topology {
    Topology::from_undirected_edges("geant2", 24, &GEANT2_EDGES, capacity_bps, prop_delay_s)
}

/// GEANT2 with the default 10 kbps / zero-delay links.
pub fn geant2_default() -> Topology {
    geant2(DEFAULT_CAPACITY_BPS, DEFAULT_PROP_DELAY_S)
}

/// The 11-node Abilene topology with uniform link parameters.
pub fn abilene(capacity_bps: f64, prop_delay_s: f64) -> Topology {
    Topology::from_undirected_edges("abilene", 11, &ABILENE_EDGES, capacity_bps, prop_delay_s)
}

/// Abilene with the default 10 kbps / zero-delay links.
pub fn abilene_default() -> Topology {
    abilene(DEFAULT_CAPACITY_BPS, DEFAULT_PROP_DELAY_S)
}

/// A 5-node example network (a square with one diagonal) used by docs, unit
/// tests and the Figure-1 trace.
pub fn toy5() -> Topology {
    Topology::from_undirected_edges(
        "toy5",
        5,
        &[(0, 1), (1, 2), (2, 3), (3, 0), (1, 3), (3, 4)],
        DEFAULT_CAPACITY_BPS,
        DEFAULT_PROP_DELAY_S,
    )
}

/// Look a canonical topology up by name (`"nsfnet"`, `"geant2"`, `"abilene"`,
/// `"toy5"`); used by CLI harnesses.
pub fn by_name(name: &str) -> Option<Topology> {
    match name {
        "nsfnet" => Some(nsfnet_default()),
        "geant2" => Some(geant2_default()),
        "abilene" => Some(abilene_default()),
        "toy5" => Some(toy5()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nsfnet_shape_matches_paper() {
        let t = nsfnet_default();
        assert_eq!(t.num_nodes(), 14);
        assert_eq!(t.num_links(), 42, "21 duplex edges = 42 directed links");
        assert!(t.is_strongly_connected());
    }

    #[test]
    fn geant2_shape_matches_paper() {
        let t = geant2_default();
        assert_eq!(t.num_nodes(), 24);
        assert_eq!(t.num_links(), 74, "37 duplex edges = 74 directed links");
        assert!(t.is_strongly_connected());
    }

    #[test]
    fn abilene_shape() {
        let t = abilene_default();
        assert_eq!(t.num_nodes(), 11);
        assert_eq!(t.num_links(), 28);
        assert!(t.is_strongly_connected());
    }

    #[test]
    fn toy5_is_connected() {
        assert!(toy5().is_strongly_connected());
    }

    #[test]
    fn every_node_has_a_link() {
        for topo in [
            nsfnet_default(),
            geant2_default(),
            abilene_default(),
            toy5(),
        ] {
            for n in 0..topo.num_nodes() {
                assert!(
                    !topo.out_links(n).is_empty(),
                    "{}: node {n} is isolated",
                    topo.name
                );
            }
        }
    }

    #[test]
    fn no_duplicate_undirected_edges() {
        for edges in [&NSFNET_EDGES[..], &GEANT2_EDGES[..], &ABILENE_EDGES[..]] {
            let mut seen = std::collections::HashSet::new();
            for &(a, b) in edges {
                let key = (a.min(b), a.max(b));
                assert!(seen.insert(key), "duplicate edge {key:?}");
                assert_ne!(a, b, "self-loop in edge list");
            }
        }
    }

    #[test]
    fn geant2_has_hub_structure() {
        // The reconstruction must preserve a hub-dominated degree profile.
        let t = geant2_default();
        let max_degree = t.degrees().into_iter().max().unwrap();
        assert!(
            max_degree >= 6,
            "expected a hub of degree >= 6, got {max_degree}"
        );
    }

    #[test]
    fn by_name_lookup() {
        assert_eq!(by_name("nsfnet").unwrap().num_nodes(), 14);
        assert_eq!(by_name("geant2").unwrap().num_nodes(), 24);
        assert!(by_name("unknown").is_none());
    }
}
