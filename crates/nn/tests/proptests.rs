//! Property-based validation of the layer stack: every randomly configured
//! layer must pass a finite-difference gradient check, and optimizers must
//! make progress on random convex problems.

use proptest::prelude::*;
use rn_autograd::check::check_gradients;
use rn_nn::{Activation, Adam, GruCell, Layer, Mlp, Optimizer, Sgd};
use rn_tensor::{Matrix, Prng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_linear_layers_pass_gradient_check(
        seed in any::<u64>(),
        in_dim in 1usize..6,
        out_dim in 1usize..6,
        batch in 1usize..5,
    ) {
        let mut rng = Prng::new(seed);
        let x = rng.uniform_matrix(batch, in_dim, -1.0, 1.0);
        let w = rng.uniform_matrix(in_dim, out_dim, -0.7, 0.7);
        let b = rng.uniform_matrix(1, out_dim, -0.2, 0.2);
        let report = check_gradients(
            move |g, vars| {
                let xv = g.constant(x.clone());
                let h = g.matmul(xv, vars[0]);
                let hb = g.add_bias(h, vars[1]);
                let a = g.tanh(hb);
                let sq = g.square(a);
                g.mean(sq)
            },
            &[w, b],
            1e-2,
        );
        prop_assert!(report.passes(3e-2), "{report:?}");
    }

    #[test]
    fn gru_state_is_bounded_for_any_input_scale(
        seed in any::<u64>(),
        input_scale in 0.1f32..10.0,
        steps in 1usize..20,
    ) {
        let mut rng = Prng::new(seed);
        let cell = GruCell::new(&mut rng, 3, 4);
        let mut h = Matrix::zeros(2, 4);
        for _ in 0..steps {
            let x = rng.uniform_matrix(2, 3, -input_scale, input_scale);
            h = cell.step_inference(&h, &x);
        }
        prop_assert!(h.max_abs() <= 1.0 + 1e-5, "GRU state escaped [-1,1]: {}", h.max_abs());
        prop_assert!(!h.has_non_finite());
    }

    #[test]
    fn mlp_inference_matches_tape_for_random_shapes(
        seed in any::<u64>(),
        hidden in 1usize..8,
        batch in 1usize..6,
    ) {
        let mut rng = Prng::new(seed);
        let mlp = Mlp::new(&mut rng, &[3, hidden, 2], Activation::Selu, Activation::Identity);
        let x = rng.uniform_matrix(batch, 3, -2.0, 2.0);
        let mut g = rn_autograd::Graph::new();
        let bound = mlp.bind(&mut g);
        let xv = g.constant(x.clone());
        let y = bound.forward(&mut g, xv);
        prop_assert!(g.value(y).approx_eq(&mlp.forward_inference(&x), 1e-4));
    }

    #[test]
    fn optimizers_descend_random_quadratics(
        seed in any::<u64>(),
        dim in 1usize..6,
        use_adam in any::<bool>(),
    ) {
        let mut rng = Prng::new(seed);
        let target = rng.uniform_matrix(1, dim, -3.0, 3.0);
        let mut p = Matrix::zeros(1, dim);
        let initial_dist = target.frobenius_norm();

        let mut adam = Adam::new(0.05);
        let mut sgd = Sgd::with_momentum(0.05, 0.5);
        for _ in 0..300 {
            let grad = p.sub(&target);
            if use_adam {
                adam.step(&mut [&mut p], &[grad]);
            } else {
                sgd.step(&mut [&mut p], &[grad]);
            }
        }
        let final_dist = p.sub(&target).frobenius_norm();
        prop_assert!(final_dist < initial_dist * 0.2 + 1e-3,
            "optimizer failed to descend: {initial_dist} -> {final_dist}");
    }

    #[test]
    fn gradient_extraction_aligns_with_params(
        seed in any::<u64>(),
        hidden in 2usize..6,
    ) {
        let mut rng = Prng::new(seed);
        let cell = GruCell::new(&mut rng, 2, hidden);
        let mut g = rn_autograd::Graph::new();
        let bound = cell.bind(&mut g);
        let h = g.constant(rng.uniform_matrix(3, hidden, -0.5, 0.5));
        let x = g.constant(rng.uniform_matrix(3, 2, -0.5, 0.5));
        let h2 = bound.step(&mut g, h, x);
        let sq = g.square(h2);
        let loss = g.mean(sq);
        g.backward(loss);
        let grads = cell.grads(&g, &bound);
        let params = cell.params();
        prop_assert_eq!(grads.len(), params.len());
        for (gr, p) in grads.iter().zip(params) {
            prop_assert_eq!(gr.shape(), p.shape());
            prop_assert!(!gr.has_non_finite());
        }
    }
}
