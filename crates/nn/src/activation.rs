//! Activation selector applied through the autograd tape.

use rn_autograd::{Graph, IndexInput, Var};
use serde::{Deserialize, Serialize};

/// Which nonlinearity a layer applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// No nonlinearity.
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Scaled exponential linear unit — RouteNet's readout activation.
    Selu,
    /// Softplus; useful as a final activation when predicting non-negative
    /// quantities such as delays.
    Softplus,
}

impl Activation {
    /// Apply the activation on the tape.
    pub fn apply(self, g: &mut Graph, x: Var) -> Var {
        match self {
            Activation::Identity => x,
            Activation::Relu => g.relu(x),
            Activation::Sigmoid => g.sigmoid(x),
            Activation::Tanh => g.tanh(x),
            Activation::Selu => g.selu(x),
            Activation::Softplus => g.softplus(x),
        }
    }

    /// [`Activation::apply`] with a dense row-block shard layout. SELU — the
    /// readout's hidden activation, the only one on a megabatch hot path —
    /// rides the sharded op so its forward/adjoint traffic fans across the
    /// worker gang; every other variant falls back to the unsharded op
    /// (element-wise results are identical either way).
    pub fn apply_sharded(self, g: &mut Graph, x: Var, bounds: Option<IndexInput<'_>>) -> Var {
        match self {
            Activation::Selu => g.selu_sharded(x, bounds),
            other => other.apply(g, x),
        }
    }

    /// Apply the activation directly to a matrix (no tape), for inference-only
    /// code paths. Sigmoid/tanh/SELU run the vectorized slice kernels
    /// (bitwise identical to the scalar maps).
    pub fn apply_matrix(self, x: &rn_tensor::Matrix) -> rn_tensor::Matrix {
        use rn_autograd::activations as a;
        use rn_tensor::simd::activations as vact;
        let mapped = |kernel: fn(&[f32], &mut [f32])| {
            let mut out = rn_tensor::Matrix::zeros(x.rows(), x.cols());
            kernel(x.as_slice(), out.as_mut_slice());
            out
        };
        match self {
            Activation::Identity => x.clone(),
            Activation::Relu => x.map(a::relu),
            Activation::Sigmoid => mapped(vact::sigmoid_map),
            Activation::Tanh => mapped(vact::tanh_map),
            Activation::Selu => mapped(vact::selu_map),
            Activation::Softplus => x.map(a::softplus),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_tensor::Matrix;

    #[test]
    fn tape_and_matrix_paths_agree() {
        let input = Matrix::row_vector(&[-2.0, -0.5, 0.0, 0.5, 2.0]);
        for act in [
            Activation::Identity,
            Activation::Relu,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Selu,
            Activation::Softplus,
        ] {
            let mut g = Graph::new();
            let x = g.param(input.clone());
            let y = act.apply(&mut g, x);
            let via_tape = g.value(y).clone();
            let via_matrix = act.apply_matrix(&input);
            assert!(
                via_tape.approx_eq(&via_matrix, 1e-6),
                "{act:?} paths disagree"
            );
        }
    }

    #[test]
    fn serde_round_trip() {
        let json = serde_json::to_string(&Activation::Selu).unwrap();
        let back: Activation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Activation::Selu);
    }
}
