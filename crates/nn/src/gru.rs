//! Gated recurrent unit cell.
//!
//! The three recurrent functions of the extended RouteNet — `RNN_P` (paths),
//! `RNN_L` (links) and `RNN_N` (nodes) — are all GRU cells (the paper, citing
//! Li et al. 2015, uses a recurrent unit "to ease convergence during the
//! message passing process"). The cell follows the standard formulation:
//!
//! ```text
//! z = σ([h, x]·W_z + b_z)          update gate
//! r = σ([h, x]·W_r + b_r)          reset gate
//! c = tanh([r⊙h, x]·W_c + b_c)     candidate state
//! h' = (1 − z)⊙h + z⊙c
//! ```
//!
//! With `z → 1` the cell replaces its state with the candidate; with `z → 0`
//! it keeps the old state. The batched forward operates on `n x hidden`
//! state matrices so a whole batch of paths advances one sequence position
//! per call.

use crate::{init, Layer};
use rn_autograd::{Graph, GruVars, IndexInput, Var};
use rn_tensor::{Matrix, Prng};
use serde::{Deserialize, Serialize};

/// GRU cell parameters. Kernels are `(hidden + input) x hidden`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GruCell {
    input_dim: usize,
    hidden_dim: usize,
    w_z: Matrix,
    b_z: Matrix,
    w_r: Matrix,
    b_r: Matrix,
    w_c: Matrix,
    b_c: Matrix,
}

/// Tape handles for a bound [`GruCell`].
#[derive(Debug, Clone, Copy)]
pub struct BoundGruCell {
    w_z: Var,
    b_z: Var,
    w_r: Var,
    b_r: Var,
    w_c: Var,
    b_c: Var,
    /// Merged `[W_z | W_r]` kernel, concatenated once at bind time and
    /// registered as a constant: the fused forward computes both gate
    /// pre-activations in one matmul (bitwise identical to the split pair).
    /// Gradients still flow to `w_z`/`w_r` individually.
    w_zr: Option<Var>,
}

impl GruCell {
    /// Create with Xavier-uniform kernels and zero biases.
    pub fn new(rng: &mut Prng, input_dim: usize, hidden_dim: usize) -> Self {
        let fan_in = hidden_dim + input_dim;
        Self {
            input_dim,
            hidden_dim,
            w_z: init::xavier_uniform(rng, fan_in, hidden_dim),
            b_z: init::zeros_bias(hidden_dim),
            w_r: init::xavier_uniform(rng, fan_in, hidden_dim),
            b_r: init::zeros_bias(hidden_dim),
            w_c: init::xavier_uniform(rng, fan_in, hidden_dim),
            b_c: init::zeros_bias(hidden_dim),
        }
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden state dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Tape-free single step for inference-only paths.
    pub fn step_inference(&self, h: &Matrix, x: &Matrix) -> Matrix {
        use rn_autograd::activations as act;
        let hx = h.concat_cols(x);
        let z = hx
            .matmul(&self.w_z)
            .add_row_broadcast(&self.b_z)
            .map(act::sigmoid);
        let r = hx
            .matmul(&self.w_r)
            .add_row_broadcast(&self.b_r)
            .map(act::sigmoid);
        let rhx = r.mul(h).concat_cols(x);
        let c = rhx
            .matmul(&self.w_c)
            .add_row_broadcast(&self.b_c)
            .map(act::tanh);
        let one_minus_z = z.map(|v| 1.0 - v);
        one_minus_z.mul(h).add(&z.mul(&c))
    }
}

impl BoundGruCell {
    /// The parameter handles in the layout the fused tape op consumes.
    pub fn vars(&self) -> GruVars {
        GruVars {
            w_z: self.w_z,
            b_z: self.b_z,
            w_r: self.w_r,
            b_r: self.b_r,
            w_c: self.w_c,
            b_c: self.b_c,
            w_zr: self.w_zr,
        }
    }

    /// One recurrent step as a single fused tape node (see
    /// [`Graph::gru_step`]). Numerically equivalent to [`BoundGruCell::step`]
    /// but ~17x fewer tape nodes — this is the training hot path.
    pub fn step_fused(&self, g: &mut Graph, h: Var, x: Var) -> Var {
        g.gru_step(&self.vars(), h, x, None)
    }

    /// [`BoundGruCell::step_fused`] with a dense row-block shard layout —
    /// the megabatch link/node entity updates. `bounds` partitions the state
    /// rows; forward blocks and backward adjoints (including the dense GRU
    /// weight-gradient matmuls) fan across the tape's worker pool with
    /// bitwise-identical results at any worker count. `None` is exactly the
    /// legacy fused step.
    pub fn step_fused_sharded(
        &self,
        g: &mut Graph,
        h: Var,
        x: Var,
        bounds: Option<IndexInput<'_>>,
    ) -> Var {
        g.gru_step_dense_sharded(&self.vars(), h, x, bounds)
    }

    /// Fused masked step: rows with `mask == 0` keep their previous state.
    /// Numerically equivalent to [`BoundGruCell::step_masked`].
    pub fn step_masked_fused(&self, g: &mut Graph, h: Var, x: Var, mask: &Matrix) -> Var {
        g.gru_step(&self.vars(), h, x, Some(mask))
    }

    /// One recurrent step on the tape: `h' = GRU(h, x)`.
    ///
    /// `h` is `n x hidden`, `x` is `n x input`; returns `n x hidden`. Safe to
    /// call repeatedly with shared weights (that is the point of a binding).
    /// This is the unfused op-by-op expansion, kept as the numerical
    /// reference; production forward passes use [`BoundGruCell::step_fused`].
    pub fn step(&self, g: &mut Graph, h: Var, x: Var) -> Var {
        let hx = g.concat_cols(h, x);

        let z_lin = g.matmul(hx, self.w_z);
        let z_b = g.add_bias(z_lin, self.b_z);
        let z = g.sigmoid(z_b);

        let r_lin = g.matmul(hx, self.w_r);
        let r_b = g.add_bias(r_lin, self.b_r);
        let r = g.sigmoid(r_b);

        let rh = g.mul(r, h);
        let rhx = g.concat_cols(rh, x);
        let c_lin = g.matmul(rhx, self.w_c);
        let c_b = g.add_bias(c_lin, self.b_c);
        let c = g.tanh(c_b);

        let one_minus_z = g.one_minus(z);
        let keep = g.mul(one_minus_z, h);
        let update = g.mul(z, c);
        g.add(keep, update)
    }

    /// A masked step: rows with `mask == 0` keep their previous state
    /// unchanged; rows with `mask == 1` advance. This implements padded
    /// variable-length sequences batched into one matrix.
    pub fn step_masked(&self, g: &mut Graph, h: Var, x: Var, mask: &Matrix) -> Var {
        let advanced = self.step(g, h, x);
        let keep_mask = mask.map(|v| 1.0 - v);
        let kept = g.mask_rows(h, &keep_mask);
        let moved = g.mask_rows(advanced, mask);
        g.add(kept, moved)
    }
}

impl Layer for GruCell {
    type Bound = BoundGruCell;

    fn bind(&self, g: &mut Graph) -> BoundGruCell {
        BoundGruCell {
            w_z: g.param(self.w_z.clone()),
            b_z: g.param(self.b_z.clone()),
            w_r: g.param(self.w_r.clone()),
            b_r: g.param(self.b_r.clone()),
            w_c: g.param(self.w_c.clone()),
            b_c: g.param(self.b_c.clone()),
            // Bind-time cached gate merge: one concat per bind, amortized
            // over every step of the forward pass (a megabatch runs hundreds
            // of steps per bind). A constant so no gradient is materialized.
            w_zr: Some(g.constant(self.w_z.concat_cols(&self.w_r))),
        }
    }

    fn params(&self) -> Vec<&Matrix> {
        vec![
            &self.w_z, &self.b_z, &self.w_r, &self.b_r, &self.w_c, &self.b_c,
        ]
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        vec![
            &mut self.w_z,
            &mut self.b_z,
            &mut self.w_r,
            &mut self.b_r,
            &mut self.w_c,
            &mut self.b_c,
        ]
    }

    fn bound_vars(bound: &BoundGruCell) -> Vec<Var> {
        vec![
            bound.w_z, bound.b_z, bound.w_r, bound.b_r, bound.w_c, bound.b_c,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_autograd::check::check_gradients;

    #[test]
    fn step_preserves_shape() {
        let mut rng = Prng::new(1);
        let cell = GruCell::new(&mut rng, 3, 5);
        let mut g = Graph::new();
        let bound = cell.bind(&mut g);
        let h = g.constant(Matrix::zeros(4, 5));
        let x = g.constant(rng.uniform_matrix(4, 3, -1.0, 1.0));
        let h2 = bound.step(&mut g, h, x);
        assert_eq!(g.value(h2).shape(), (4, 5));
    }

    #[test]
    fn tape_and_inference_agree() {
        let mut rng = Prng::new(2);
        let cell = GruCell::new(&mut rng, 2, 3);
        let h0 = rng.uniform_matrix(3, 3, -1.0, 1.0);
        let x0 = rng.uniform_matrix(3, 2, -1.0, 1.0);
        let mut g = Graph::new();
        let bound = cell.bind(&mut g);
        let h = g.constant(h0.clone());
        let x = g.constant(x0.clone());
        let h2 = bound.step(&mut g, h, x);
        assert!(g.value(h2).approx_eq(&cell.step_inference(&h0, &x0), 1e-5));
    }

    #[test]
    fn state_stays_bounded() {
        // tanh candidate + convex blend keep |h| <= 1 once |h0| <= 1
        let mut rng = Prng::new(3);
        let cell = GruCell::new(&mut rng, 2, 4);
        let mut h = Matrix::zeros(2, 4);
        for step in 0..50 {
            let x = rng.uniform_matrix(2, 2, -3.0, 3.0);
            h = cell.step_inference(&h, &x);
            assert!(
                h.max_abs() <= 1.0 + 1e-5,
                "state escaped at step {step}: {}",
                h.max_abs()
            );
        }
    }

    #[test]
    fn zero_update_gate_keeps_state() {
        // Forcing b_z to -inf-ish makes z≈0, so h' ≈ h.
        let mut rng = Prng::new(4);
        let mut cell = GruCell::new(&mut rng, 2, 3);
        cell.b_z = Matrix::filled(1, 3, -30.0);
        cell.w_z = Matrix::zeros(5, 3);
        let h0 = rng.uniform_matrix(2, 3, -0.9, 0.9);
        let x = rng.uniform_matrix(2, 2, -1.0, 1.0);
        let h1 = cell.step_inference(&h0, &x);
        assert!(h1.approx_eq(&h0, 1e-4));
    }

    #[test]
    fn masked_step_freezes_masked_rows() {
        let mut rng = Prng::new(5);
        let cell = GruCell::new(&mut rng, 2, 3);
        let h0 = rng.uniform_matrix(3, 3, -0.5, 0.5);
        let x0 = rng.uniform_matrix(3, 2, -1.0, 1.0);
        let mask = Matrix::column_vector(&[1.0, 0.0, 1.0]);

        let mut g = Graph::new();
        let bound = cell.bind(&mut g);
        let h = g.constant(h0.clone());
        let x = g.constant(x0.clone());
        let h1 = bound.step_masked(&mut g, h, x, &mask);
        let out = g.value(h1);

        let full = cell.step_inference(&h0, &x0);
        assert_eq!(out.row(1), h0.row(1), "masked row must not change");
        assert!(Matrix::from_rows(&[out.row(0).to_vec()])
            .approx_eq(&Matrix::from_rows(&[full.row(0).to_vec()]), 1e-5));
        assert!(Matrix::from_rows(&[out.row(2).to_vec()])
            .approx_eq(&Matrix::from_rows(&[full.row(2).to_vec()]), 1e-5));
    }

    #[test]
    fn multi_step_gradients_pass_finite_difference_check() {
        // Unroll the same cell for 3 steps — shared-weight gradients must sum.
        let mut rng = Prng::new(6);
        let cell = GruCell::new(&mut rng, 2, 3);
        let params: Vec<Matrix> = cell.params().into_iter().cloned().collect();
        let xs: Vec<Matrix> = (0..3)
            .map(|_| rng.uniform_matrix(2, 2, -1.0, 1.0))
            .collect();

        let report = check_gradients(
            move |g, vars| {
                let bound = BoundGruCell {
                    w_z: vars[0],
                    b_z: vars[1],
                    w_r: vars[2],
                    b_r: vars[3],
                    w_c: vars[4],
                    b_c: vars[5],
                    w_zr: None,
                };
                let mut h = g.constant(Matrix::zeros(2, 3));
                for x in &xs {
                    let xv = g.constant(x.clone());
                    h = bound.step(g, h, xv);
                }
                let sq = g.square(h);
                g.mean(sq)
            },
            &params,
            1e-2,
        );
        assert!(report.passes(3e-2), "{report:?}");
    }

    #[test]
    fn fused_step_matches_unfused_reference() {
        let mut rng = Prng::new(12);
        let cell = GruCell::new(&mut rng, 3, 4);
        let h0 = rng.uniform_matrix(5, 4, -0.8, 0.8);
        let x0 = rng.uniform_matrix(5, 3, -1.0, 1.0);
        let mask = Matrix::column_vector(&[1.0, 0.0, 1.0, 1.0, 0.0]);

        let mut g = Graph::new();
        let bound = cell.bind(&mut g);
        let h = g.constant(h0.clone());
        let x = g.constant(x0.clone());
        let fused = bound.step_fused(&mut g, h, x);
        let unfused = bound.step(&mut g, h, x);
        assert!(g.value(fused).approx_eq(g.value(unfused), 1e-6));

        let fused_m = bound.step_masked_fused(&mut g, h, x, &mask);
        let unfused_m = bound.step_masked(&mut g, h, x, &mask);
        assert!(g.value(fused_m).approx_eq(g.value(unfused_m), 1e-6));
        assert_eq!(g.value(fused_m).row(1), h0.row(1), "masked row frozen");
    }

    #[test]
    fn serde_round_trip_preserves_dynamics() {
        let mut rng = Prng::new(7);
        let cell = GruCell::new(&mut rng, 3, 4);
        let json = serde_json::to_string(&cell).unwrap();
        let back: GruCell = serde_json::from_str(&json).unwrap();
        let h = rng.uniform_matrix(2, 4, -1.0, 1.0);
        let x = rng.uniform_matrix(2, 3, -1.0, 1.0);
        assert!(cell
            .step_inference(&h, &x)
            .approx_eq(&back.step_inference(&h, &x), 0.0));
    }

    #[test]
    fn param_count_matches_formula() {
        let mut rng = Prng::new(8);
        let cell = GruCell::new(&mut rng, 4, 8);
        // 3 kernels of (8+4)x8 plus 3 biases of 8
        assert_eq!(cell.param_count(), 3 * (12 * 8) + 3 * 8);
    }
}
