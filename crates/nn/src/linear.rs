//! Fully-connected layer.

use crate::{init, Activation, Layer};
use rn_autograd::{Graph, IndexInput, Var};
use rn_tensor::{Matrix, Prng};
use serde::{Deserialize, Serialize};

/// A dense layer `y = act(x · W + b)`.
///
/// `W` is `in_dim x out_dim`; inputs are row-major batches (`n x in_dim`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    weight: Matrix,
    bias: Matrix,
    activation: Activation,
}

/// Tape handles for a [`Linear`] whose parameters are registered on a graph.
#[derive(Debug, Clone, Copy)]
pub struct BoundLinear {
    weight: Var,
    bias: Var,
    activation: Activation,
}

impl Linear {
    /// Create with Xavier-uniform weights and zero bias.
    pub fn new(rng: &mut Prng, in_dim: usize, out_dim: usize, activation: Activation) -> Self {
        Self {
            weight: init::xavier_uniform(rng, in_dim, out_dim),
            bias: init::zeros_bias(out_dim),
            activation,
        }
    }

    /// Create with LeCun-normal weights (for SELU stacks).
    pub fn new_lecun(
        rng: &mut Prng,
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
    ) -> Self {
        Self {
            weight: init::lecun_normal(rng, in_dim, out_dim),
            bias: init::zeros_bias(out_dim),
            activation,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    /// The layer's activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Tape-free forward for inference-only paths.
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let y = x.matmul(&self.weight).add_row_broadcast(&self.bias);
        self.activation.apply_matrix(&y)
    }
}

impl BoundLinear {
    /// Forward pass on the tape. May be called any number of times per graph.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        self.forward_sharded(g, x, None)
    }

    /// [`BoundLinear::forward`] with a dense row-block shard layout:
    /// `bounds` partitions the batch rows, and the layer's matmul, bias add
    /// and activation all record it, so forward *and* backward fan across
    /// the tape's worker pool. `None` (or a single block) is exactly the
    /// legacy unsharded layer.
    pub fn forward_sharded(&self, g: &mut Graph, x: Var, bounds: Option<IndexInput<'_>>) -> Var {
        let h = g.matmul_sharded(x, self.weight, bounds.clone());
        let hb = g.add_bias_sharded(h, self.bias, bounds.clone());
        self.activation.apply_sharded(g, hb, bounds)
    }
}

impl Layer for Linear {
    type Bound = BoundLinear;

    fn bind(&self, g: &mut Graph) -> BoundLinear {
        BoundLinear {
            weight: g.param(self.weight.clone()),
            bias: g.param(self.bias.clone()),
            activation: self.activation,
        }
    }

    fn params(&self) -> Vec<&Matrix> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn bound_vars(bound: &BoundLinear) -> Vec<Var> {
        vec![bound.weight, bound.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_autograd::check::check_gradients;

    #[test]
    fn forward_shapes_and_values() {
        let mut rng = Prng::new(1);
        let layer = Linear::new(&mut rng, 3, 2, Activation::Identity);
        let x = Matrix::ones(4, 3);
        let y = layer.forward_inference(&x);
        assert_eq!(y.shape(), (4, 2));
        // identity activation: y = x·W + b; all rows equal for equal inputs
        for r in 1..4 {
            assert_eq!(y.row(r), y.row(0));
        }
    }

    #[test]
    fn tape_and_inference_agree() {
        let mut rng = Prng::new(2);
        let layer = Linear::new(&mut rng, 4, 3, Activation::Tanh);
        let x = rng.uniform_matrix(5, 4, -1.0, 1.0);
        let mut g = Graph::new();
        let bound = layer.bind(&mut g);
        let xv = g.constant(x.clone());
        let y = bound.forward(&mut g, xv);
        assert!(g.value(y).approx_eq(&layer.forward_inference(&x), 1e-5));
    }

    #[test]
    fn gradients_pass_finite_difference_check() {
        let mut rng = Prng::new(3);
        let x = rng.uniform_matrix(3, 4, -1.0, 1.0);
        let report = check_gradients(
            move |g, vars| {
                // vars[0] = weight (4x2), vars[1] = bias (1x2)
                let xv = g.constant(x.clone());
                let h = g.matmul(xv, vars[0]);
                let hb = g.add_bias(h, vars[1]);
                let a = g.tanh(hb);
                let sq = g.square(a);
                g.mean(sq)
            },
            &[rng.uniform_matrix(4, 2, -0.5, 0.5), Matrix::zeros(1, 2)],
            1e-2,
        );
        assert!(report.passes(2e-2), "{report:?}");
    }

    #[test]
    fn layer_grads_align_with_params() {
        let mut rng = Prng::new(4);
        let layer = Linear::new(&mut rng, 2, 2, Activation::Sigmoid);
        let mut g = Graph::new();
        let bound = layer.bind(&mut g);
        let x = g.constant(Matrix::ones(1, 2));
        let y = bound.forward(&mut g, x);
        let loss = g.mean(y);
        g.backward(loss);
        let grads = layer.grads(&g, &bound);
        assert_eq!(grads.len(), 2);
        assert_eq!(grads[0].shape(), (2, 2));
        assert_eq!(grads[1].shape(), (1, 2));
        assert!(grads[0].max_abs() > 0.0, "weight gradient must be nonzero");
    }

    #[test]
    fn param_count() {
        let mut rng = Prng::new(5);
        let layer = Linear::new(&mut rng, 7, 3, Activation::Identity);
        assert_eq!(layer.param_count(), 7 * 3 + 3);
    }

    #[test]
    fn serde_round_trip_preserves_outputs() {
        let mut rng = Prng::new(6);
        let layer = Linear::new(&mut rng, 3, 3, Activation::Selu);
        let json = serde_json::to_string(&layer).unwrap();
        let back: Linear = serde_json::from_str(&json).unwrap();
        let x = rng.uniform_matrix(2, 3, -1.0, 1.0);
        assert!(layer
            .forward_inference(&x)
            .approx_eq(&back.forward_inference(&x), 0.0));
    }
}
