//! Multi-layer perceptron — RouteNet's readout function.

use crate::{Activation, Layer, Linear};
use rn_autograd::{Graph, IndexInput, Var};
use rn_tensor::{Matrix, Prng};
use serde::{Deserialize, Serialize};

/// A stack of [`Linear`] layers: hidden layers share one activation, the
/// output layer has its own (often [`Activation::Identity`] or
/// [`Activation::Softplus`] for non-negative targets).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
}

/// Tape handles for a bound [`Mlp`].
#[derive(Debug, Clone)]
pub struct BoundMlp {
    layers: Vec<crate::BoundLinear>,
}

impl Mlp {
    /// Build an MLP with the given layer widths.
    ///
    /// `dims = [in, h1, h2, out]` produces three layers. `hidden_activation`
    /// applies to all but the last layer; `output_activation` to the last.
    /// Panics if fewer than two dims are given.
    pub fn new(
        rng: &mut Prng,
        dims: &[usize],
        hidden_activation: Activation,
        output_activation: Activation,
    ) -> Self {
        assert!(
            dims.len() >= 2,
            "Mlp::new: need at least [in, out] dims, got {dims:?}"
        );
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i + 2 == dims.len() {
                    output_activation
                } else {
                    hidden_activation
                };
                // SELU stacks train best from LeCun-normal init.
                if hidden_activation == Activation::Selu {
                    Linear::new_lecun(rng, w[0], w[1], act)
                } else {
                    Linear::new(rng, w[0], w[1], act)
                }
            })
            .collect();
        Self { layers }
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.layers
            .first()
            .expect("Mlp has at least one layer")
            .in_dim()
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.layers
            .last()
            .expect("Mlp has at least one layer")
            .out_dim()
    }

    /// Tape-free forward for inference-only paths.
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        self.layers
            .iter()
            .fold(x.clone(), |h, layer| layer.forward_inference(&h))
    }
}

impl BoundMlp {
    /// Forward pass on the tape.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        self.layers.iter().fold(x, |h, layer| layer.forward(g, h))
    }

    /// [`BoundMlp::forward`] with a dense row-block shard layout shared by
    /// every layer (the batch row count is constant through the stack) —
    /// this is how the megabatch readout fans its matmul/bias/activation
    /// work, forward and backward, across the worker gang.
    pub fn forward_sharded(&self, g: &mut Graph, x: Var, bounds: Option<IndexInput<'_>>) -> Var {
        self.layers
            .iter()
            .fold(x, |h, layer| layer.forward_sharded(g, h, bounds.clone()))
    }
}

impl Layer for Mlp {
    type Bound = BoundMlp;

    fn bind(&self, g: &mut Graph) -> BoundMlp {
        BoundMlp {
            layers: self.layers.iter().map(|l| l.bind(g)).collect(),
        }
    }

    fn params(&self) -> Vec<&Matrix> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    fn bound_vars(bound: &BoundMlp) -> Vec<Var> {
        bound.layers.iter().flat_map(Linear::bound_vars).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_wire_up() {
        let mut rng = Prng::new(1);
        let mlp = Mlp::new(
            &mut rng,
            &[8, 16, 8, 1],
            Activation::Selu,
            Activation::Identity,
        );
        assert_eq!(mlp.depth(), 3);
        assert_eq!(mlp.in_dim(), 8);
        assert_eq!(mlp.out_dim(), 1);
        let y = mlp.forward_inference(&Matrix::ones(5, 8));
        assert_eq!(y.shape(), (5, 1));
    }

    #[test]
    fn tape_and_inference_agree() {
        let mut rng = Prng::new(2);
        let mlp = Mlp::new(&mut rng, &[4, 6, 2], Activation::Relu, Activation::Softplus);
        let x = rng.uniform_matrix(3, 4, -1.0, 1.0);
        let mut g = Graph::new();
        let bound = mlp.bind(&mut g);
        let xv = g.constant(x.clone());
        let y = bound.forward(&mut g, xv);
        assert!(g.value(y).approx_eq(&mlp.forward_inference(&x), 1e-5));
    }

    #[test]
    fn softplus_output_is_positive() {
        let mut rng = Prng::new(3);
        let mlp = Mlp::new(&mut rng, &[3, 8, 1], Activation::Tanh, Activation::Softplus);
        let x = rng.uniform_matrix(10, 3, -5.0, 5.0);
        let y = mlp.forward_inference(&x);
        assert!(y.as_slice().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn training_reduces_loss_on_toy_regression() {
        use crate::{Adam, Optimizer};
        // Fit y = 2x on 1-D data: the whole bind/forward/backward/step cycle.
        let mut rng = Prng::new(4);
        let mut mlp = Mlp::new(&mut rng, &[1, 8, 1], Activation::Tanh, Activation::Identity);
        let x = Matrix::column_vector(&[-1.0, -0.5, 0.0, 0.5, 1.0]);
        let t = x.scale(2.0);

        let mut opt = Adam::new(1e-2);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..300 {
            let mut g = Graph::new();
            let bound = mlp.bind(&mut g);
            let xv = g.constant(x.clone());
            let tv = g.constant(t.clone());
            let y = bound.forward(&mut g, xv);
            let loss = g.mse(y, tv);
            last_loss = g.value(loss).get(0, 0);
            first_loss.get_or_insert(last_loss);
            g.backward(loss);
            let grads = mlp.grads(&g, &bound);
            opt.step(&mut mlp.params_mut(), &grads);
        }
        let first = first_loss.unwrap();
        assert!(
            last_loss < first * 0.05,
            "training failed to reduce loss: first {first}, last {last_loss}"
        );
    }

    #[test]
    fn serde_round_trip() {
        let mut rng = Prng::new(5);
        let mlp = Mlp::new(&mut rng, &[2, 4, 1], Activation::Selu, Activation::Identity);
        let json = serde_json::to_string(&mlp).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        let x = rng.uniform_matrix(3, 2, -1.0, 1.0);
        assert!(mlp
            .forward_inference(&x)
            .approx_eq(&back.forward_inference(&x), 0.0));
    }
}
