//! # rn-nn
//!
//! Neural-network building blocks for the RouteNet reproduction, built on the
//! [`rn_autograd`] tape.
//!
//! The crate follows a *bind-then-forward* pattern suited to define-by-run
//! graphs whose structure changes every sample:
//!
//! 1. A layer (e.g. [`GruCell`]) owns its parameters as plain
//!    [`rn_tensor::Matrix`] values.
//! 2. Before a forward pass, [`Layer::bind`] registers those parameters on a
//!    fresh [`rn_autograd::Graph`] and returns a lightweight *binding* of
//!    [`rn_autograd::Var`] handles.
//! 3. The binding's `forward` can be applied any number of times within the
//!    graph (a GRU cell is applied at every sequence position with shared
//!    weights — exactly what RouteNet's message passing needs).
//! 4. After `backward`, [`Layer::grads`] extracts the accumulated parameter
//!    gradients in a canonical order, and an [`optim`] optimizer applies them.
//!
//! All layers serialize with serde, so trained models round-trip through JSON.

pub mod activation;
pub mod gru;
pub mod init;
pub mod linear;
pub mod loss;
pub mod mlp;
pub mod optim;

pub use activation::Activation;
pub use gru::{BoundGruCell, GruCell};
pub use linear::{BoundLinear, Linear};
pub use mlp::{BoundMlp, Mlp};
pub use optim::{clip_global_norm, Adam, Optimizer, Sgd};

use rn_autograd::{Graph, Var};
use rn_tensor::Matrix;

/// Common interface of every trainable component.
///
/// Parameter order is canonical: `params`, `params_mut`, and the `Var` list of
/// a binding all enumerate parameters in the same order, so gradient vectors
/// and optimizer state line up by index.
pub trait Layer {
    /// The binding type returned by [`Layer::bind`].
    type Bound;

    /// Register this layer's parameters on `g` and return a binding.
    fn bind(&self, g: &mut Graph) -> Self::Bound;

    /// Immutable references to the parameters, in canonical order.
    fn params(&self) -> Vec<&Matrix>;

    /// Mutable references to the parameters, in canonical order.
    fn params_mut(&mut self) -> Vec<&mut Matrix>;

    /// The `Var` handles of a binding, in canonical order.
    fn bound_vars(bound: &Self::Bound) -> Vec<Var>;

    /// Total number of scalar parameters.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Extract gradients for this layer from a backward-completed graph.
    ///
    /// Parameters the loss did not touch yield zero matrices, so the result
    /// always aligns with [`Layer::params`].
    fn grads(&self, g: &Graph, bound: &Self::Bound) -> Vec<Matrix> {
        Self::bound_vars(bound)
            .iter()
            .zip(self.params())
            .map(|(&v, p)| {
                g.grad(v)
                    .cloned()
                    .unwrap_or_else(|| Matrix::zeros(p.rows(), p.cols()))
            })
            .collect()
    }

    /// Add `grads` (canonical order) into `acc`, used when summing gradients
    /// across the samples of a minibatch.
    fn accumulate_grads(acc: &mut [Matrix], grads: &[Matrix]) {
        assert_eq!(acc.len(), grads.len(), "accumulate_grads: length mismatch");
        for (a, g) in acc.iter_mut().zip(grads) {
            a.add_assign(g);
        }
    }
}
