//! Weight initialization schemes.
//!
//! RouteNet-era TensorFlow used Glorot (Xavier) uniform for dense kernels and
//! zeros for biases; we default to the same so training dynamics are
//! comparable.

use rn_tensor::{Matrix, Prng};

/// Glorot/Xavier uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
/// The default for kernels feeding tanh/sigmoid nonlinearities (GRU gates).
pub fn xavier_uniform(rng: &mut Prng, fan_in: usize, fan_out: usize) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    rng.uniform_matrix(fan_in, fan_out, -a, a)
}

/// He/Kaiming uniform: `U(-a, a)` with `a = sqrt(6 / fan_in)`. Preferred for
/// ReLU-family layers (the SELU readout works well with it too).
pub fn he_uniform(rng: &mut Prng, fan_in: usize, fan_out: usize) -> Matrix {
    let a = (6.0 / fan_in as f32).sqrt();
    rng.uniform_matrix(fan_in, fan_out, -a, a)
}

/// LeCun normal: `N(0, 1/fan_in)` — the initialization SELU networks were
/// derived with.
pub fn lecun_normal(rng: &mut Prng, fan_in: usize, fan_out: usize) -> Matrix {
    let std = (1.0 / fan_in as f32).sqrt();
    rng.normal_matrix(fan_in, fan_out, 0.0, std)
}

/// Zero bias row vector of width `n`.
pub fn zeros_bias(n: usize) -> Matrix {
    Matrix::zeros(1, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_bounds_hold() {
        let mut rng = Prng::new(1);
        let w = xavier_uniform(&mut rng, 64, 32);
        let bound = (6.0f32 / 96.0).sqrt();
        assert_eq!(w.shape(), (64, 32));
        assert!(w.as_slice().iter().all(|v| v.abs() <= bound));
        // values should not all be tiny — spread across the range
        assert!(w.max_abs() > bound * 0.8);
    }

    #[test]
    fn he_bounds_hold() {
        let mut rng = Prng::new(2);
        let w = he_uniform(&mut rng, 25, 10);
        let bound = (6.0f32 / 25.0).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn lecun_normal_std_plausible() {
        let mut rng = Prng::new(3);
        let fan_in = 100;
        let w = lecun_normal(&mut rng, fan_in, 200);
        let mean = w.mean();
        let var = w
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / w.len() as f32;
        let expected = 1.0 / fan_in as f32;
        assert!(
            (var - expected).abs() < expected * 0.2,
            "var {var} vs {expected}"
        );
    }

    #[test]
    fn init_is_seed_deterministic() {
        let a = xavier_uniform(&mut Prng::new(7), 8, 8);
        let b = xavier_uniform(&mut Prng::new(7), 8, 8);
        assert!(a.approx_eq(&b, 0.0));
    }
}
