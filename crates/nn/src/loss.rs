//! Regression losses built from tape primitives.

use rn_autograd::{Graph, Var};
use rn_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Which training loss to optimize.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Loss {
    /// Mean squared error.
    Mse,
    /// Mean absolute error.
    Mae,
    /// Huber loss with the given transition point `delta` — quadratic near
    /// zero, linear in the tails; robust to the heavy-tailed delay targets
    /// congested samples produce.
    Huber(f32),
}

impl Loss {
    /// Build the loss node on the tape. `pred` and `target` must share shape;
    /// the result is a `1 x 1` scalar node.
    pub fn apply(self, g: &mut Graph, pred: Var, target: Var) -> Var {
        match self {
            Loss::Mse => g.mse(pred, target),
            Loss::Mae => g.mae(pred, target),
            Loss::Huber(delta) => {
                assert!(delta > 0.0, "Huber delta must be positive, got {delta}");
                // 0.5·q² + δ·(a − q) with a = |pred − target|, q = min(a, δ)
                let d = g.sub(pred, target);
                let a = g.abs(d);
                let q = g.clamp_max(a, delta);
                let q2 = g.square(q);
                let half_q2 = g.scale(q2, 0.5);
                let lin = g.sub(a, q);
                let lin_scaled = g.scale(lin, delta);
                let total = g.add(half_q2, lin_scaled);
                g.mean(total)
            }
        }
    }

    /// Weighted form for block-diagonal megabatches: per-row errors are
    /// multiplied by `weights` (an `n x 1` constant column) and *summed*, not
    /// averaged. With `weights[i] = 1 / (num_samples * rows_in_sample(i))`
    /// this reproduces the per-sample-mean-then-batch-mean semantics of the
    /// per-sample training path, so megabatched gradients match the legacy
    /// ones up to f32 rounding.
    pub fn apply_weighted(self, g: &mut Graph, pred: Var, target: Var, weights: &Matrix) -> Var {
        let per_row = match self {
            Loss::Mse => {
                let d = g.sub(pred, target);
                g.square(d)
            }
            Loss::Mae => {
                let d = g.sub(pred, target);
                g.abs(d)
            }
            Loss::Huber(delta) => {
                assert!(delta > 0.0, "Huber delta must be positive, got {delta}");
                let d = g.sub(pred, target);
                let a = g.abs(d);
                let q = g.clamp_max(a, delta);
                let q2 = g.square(q);
                let half_q2 = g.scale(q2, 0.5);
                let lin = g.sub(a, q);
                let lin_scaled = g.scale(lin, delta);
                g.add(half_q2, lin_scaled)
            }
        };
        let weighted = g.mask_rows(per_row, weights);
        g.sum(weighted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_autograd::check::check_gradients;
    use rn_tensor::Matrix;

    fn eval(loss: Loss, pred: &[f32], target: &[f32]) -> f32 {
        let mut g = Graph::new();
        let p = g.param(Matrix::row_vector(pred));
        let t = g.constant(Matrix::row_vector(target));
        let l = loss.apply(&mut g, p, t);
        g.value(l).get(0, 0)
    }

    #[test]
    fn mse_and_mae_known_values() {
        assert!((eval(Loss::Mse, &[1.0, 3.0], &[0.0, 0.0]) - 5.0).abs() < 1e-6);
        assert!((eval(Loss::Mae, &[1.0, -3.0], &[0.0, 0.0]) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn huber_is_quadratic_inside_linear_outside() {
        // inside: |d| = 0.5 < delta=1 -> 0.5 * 0.25 = 0.125
        assert!((eval(Loss::Huber(1.0), &[0.5], &[0.0]) - 0.125).abs() < 1e-6);
        // outside: |d| = 3 -> 0.5*1 + 1*(3-1) = 2.5
        assert!((eval(Loss::Huber(1.0), &[3.0], &[0.0]) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn huber_matches_mse_for_small_errors() {
        let mse = eval(Loss::Mse, &[0.1, -0.2], &[0.0, 0.0]);
        let huber = eval(Loss::Huber(10.0), &[0.1, -0.2], &[0.0, 0.0]);
        assert!(
            (huber - 0.5 * mse).abs() < 1e-6,
            "huber {huber} vs mse/2 {}",
            0.5 * mse
        );
    }

    #[test]
    fn all_losses_pass_gradient_check() {
        let target = Matrix::row_vector(&[0.3, -0.7, 1.9, 0.0]);
        for loss in [Loss::Mse, Loss::Mae, Loss::Huber(0.5)] {
            let t = target.clone();
            let report = check_gradients(
                move |g, vars| {
                    let tv = g.constant(t.clone());
                    loss.apply(g, vars[0], tv)
                },
                // keep pred away from target so |x| kinks don't spoil the check
                &[Matrix::row_vector(&[1.3, 0.4, -0.8, 2.0])],
                1e-3,
            );
            assert!(report.passes(2e-2), "{loss:?}: {report:?}");
        }
    }

    #[test]
    fn zero_error_gives_zero_loss() {
        for loss in [Loss::Mse, Loss::Mae, Loss::Huber(1.0)] {
            assert_eq!(eval(loss, &[1.0, 2.0], &[1.0, 2.0]), 0.0);
        }
    }

    #[test]
    fn weighted_loss_reproduces_mean_of_per_sample_means() {
        // Two "samples": rows {0,1} and rows {2,3,4}. Uniform per-sample
        // weights 1/(2*2) and 1/(2*3) must equal the mean of the two
        // per-sample mean losses.
        let pred = [1.0f32, 3.0, 0.0, -1.0, 2.0];
        let target = [0.0f32; 5];
        let weights =
            Matrix::column_vector(&[1.0 / 4.0, 1.0 / 4.0, 1.0 / 6.0, 1.0 / 6.0, 1.0 / 6.0]);
        for loss in [Loss::Mse, Loss::Mae, Loss::Huber(0.7)] {
            let mut g = Graph::new();
            let p = g.param(Matrix::column_vector(&pred));
            let t = g.constant(Matrix::column_vector(&target));
            let l = loss.apply_weighted(&mut g, p, t, &weights);
            let got = g.value(l).get(0, 0);
            let expect =
                0.5 * (eval(loss, &pred[..2], &target[..2]) + eval(loss, &pred[2..], &target[2..]));
            assert!((got - expect).abs() < 1e-6, "{loss:?}: {got} vs {expect}");
            g.backward(l);
            assert!(g.grad(p).is_some());
        }
    }
}
