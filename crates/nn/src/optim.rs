//! First-order optimizers.
//!
//! Optimizers are stateful (momentum/moment buffers keyed by parameter index)
//! and operate on the canonical parameter order defined by
//! [`crate::Layer::params_mut`]. State buffers are allocated lazily on the
//! first step so an optimizer can be constructed before the model.

use rn_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A first-order gradient descent method.
pub trait Optimizer {
    /// Apply one update. `params` and `grads` must be index-aligned and keep
    /// the same shapes across calls.
    fn step(&mut self, params: &mut [&mut Matrix], grads: &[Matrix]);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replace the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional classical momentum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with momentum coefficient `momentum` in `[0, 1)`.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "Sgd: learning rate must be positive");
        assert!(
            (0.0..1.0).contains(&momentum),
            "Sgd: momentum must be in [0,1)"
        );
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Matrix], grads: &[Matrix]) {
        assert_eq!(
            params.len(),
            grads.len(),
            "Sgd::step: param/grad count mismatch"
        );
        if self.velocity.is_empty() {
            self.velocity = grads
                .iter()
                .map(|g| Matrix::zeros(g.rows(), g.cols()))
                .collect();
        }
        assert_eq!(
            self.velocity.len(),
            params.len(),
            "Sgd::step: parameter count changed"
        );
        for ((p, g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            if self.momentum > 0.0 {
                // v = μv + g;  p -= lr·v
                let mut new_v = v.scale(self.momentum);
                new_v.add_assign(g);
                *v = new_v;
                p.add_scaled(v, -self.lr);
            } else {
                p.add_scaled(g, -self.lr);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction — the optimizer RouteNet
/// trained with.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with the standard β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(lr: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.999, 1e-8)
    }

    /// Adam with explicit hyper-parameters.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        assert!(lr > 0.0, "Adam: learning rate must be positive");
        assert!(
            (0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2),
            "Adam: betas must be in [0,1)"
        );
        Self {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Matrix], grads: &[Matrix]) {
        assert_eq!(
            params.len(),
            grads.len(),
            "Adam::step: param/grad count mismatch"
        );
        if self.m.is_empty() {
            self.m = grads
                .iter()
                .map(|g| Matrix::zeros(g.rows(), g.cols()))
                .collect();
            self.v = grads
                .iter()
                .map(|g| Matrix::zeros(g.rows(), g.cols()))
                .collect();
        }
        assert_eq!(
            self.m.len(),
            params.len(),
            "Adam::step: parameter count changed"
        );
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (((p, g), m), v) in params
            .iter_mut()
            .zip(grads)
            .zip(&mut self.m)
            .zip(&mut self.v)
        {
            for i in 0..g.len() {
                let gi = g.as_slice()[i];
                let mi = self.beta1 * m.as_slice()[i] + (1.0 - self.beta1) * gi;
                let vi = self.beta2 * v.as_slice()[i] + (1.0 - self.beta2) * gi * gi;
                m.as_mut_slice()[i] = mi;
                v.as_mut_slice()[i] = vi;
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                p.as_mut_slice()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Scale all gradients so their global L2 norm is at most `max_norm`.
/// Returns the norm before clipping. RouteNet-style recurrent message passing
/// needs this to survive occasional exploding gradients on congested samples.
pub fn clip_global_norm(grads: &mut [Matrix], max_norm: f32) -> f32 {
    assert!(
        max_norm > 0.0,
        "clip_global_norm: max_norm must be positive"
    );
    let total_sq: f32 = grads
        .iter()
        .map(|g| {
            let n = g.frobenius_norm();
            n * n
        })
        .sum();
    let norm = total_sq.sqrt();
    if norm > max_norm && norm.is_finite() {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            g.map_inplace(|v| v * scale);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quadratic bowl: f(p) = 0.5‖p − target‖²; grad = p − target.
    fn quadratic_grad(p: &Matrix, target: &Matrix) -> Matrix {
        p.sub(target)
    }

    #[test]
    fn sgd_descends_quadratic() {
        let target = Matrix::row_vector(&[1.0, -2.0, 3.0]);
        let mut p = Matrix::zeros(1, 3);
        let mut opt = Sgd::new(0.1);
        for _ in 0..200 {
            let g = quadratic_grad(&p, &target);
            opt.step(&mut [&mut p], &[g]);
        }
        assert!(p.approx_eq(&target, 1e-3), "{p:?}");
    }

    #[test]
    fn momentum_accelerates_on_quadratic() {
        let target = Matrix::row_vector(&[5.0]);
        let run = |mut opt: Sgd| {
            let mut p = Matrix::zeros(1, 1);
            for _ in 0..30 {
                let g = quadratic_grad(&p, &target);
                opt.step(&mut [&mut p], &[g]);
            }
            (p.get(0, 0) - 5.0).abs()
        };
        let plain = run(Sgd::new(0.05));
        let momentum = run(Sgd::with_momentum(0.05, 0.9));
        assert!(
            momentum < plain,
            "momentum {momentum} should beat plain {plain}"
        );
    }

    #[test]
    fn adam_descends_quadratic() {
        let target = Matrix::row_vector(&[0.5, -0.5]);
        let mut p = Matrix::row_vector(&[4.0, -4.0]);
        let mut opt = Adam::new(0.05);
        for _ in 0..500 {
            let g = quadratic_grad(&p, &target);
            opt.step(&mut [&mut p], &[g]);
        }
        assert!(p.approx_eq(&target, 1e-2), "{p:?}");
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn adam_handles_sparse_like_grads() {
        // One coordinate gets gradients rarely; Adam should still move it.
        let mut p = Matrix::row_vector(&[1.0, 1.0]);
        let mut opt = Adam::new(0.01);
        for step in 0..400 {
            let g = if step % 10 == 0 {
                Matrix::row_vector(&[1.0, 1.0])
            } else {
                Matrix::row_vector(&[1.0, 0.0])
            };
            opt.step(&mut [&mut p], &[g]);
        }
        assert!(p.get(0, 1) < 1.0, "rare-gradient coordinate never moved");
    }

    #[test]
    fn clip_leaves_small_gradients_alone() {
        let mut grads = vec![Matrix::row_vector(&[0.3, 0.4])]; // norm 0.5
        let norm = clip_global_norm(&mut grads, 1.0);
        assert!((norm - 0.5).abs() < 1e-6);
        assert_eq!(grads[0].as_slice(), &[0.3, 0.4]);
    }

    #[test]
    fn clip_rescales_large_gradients() {
        let mut grads = vec![Matrix::row_vector(&[3.0, 4.0])]; // norm 5
        let norm = clip_global_norm(&mut grads, 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        let clipped_norm = grads[0].frobenius_norm();
        assert!((clipped_norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_norm_is_global_across_tensors() {
        let mut grads = vec![Matrix::row_vector(&[3.0]), Matrix::row_vector(&[4.0])];
        clip_global_norm(&mut grads, 1.0);
        let total: f32 = grads
            .iter()
            .map(|g| {
                let n = g.frobenius_norm();
                n * n
            })
            .sum();
        assert!((total.sqrt() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn lr_get_set() {
        let mut opt = Adam::new(1e-3);
        assert_eq!(opt.learning_rate(), 1e-3);
        opt.set_learning_rate(5e-4);
        assert_eq!(opt.learning_rate(), 5e-4);
    }

    #[test]
    #[should_panic(expected = "param/grad count mismatch")]
    fn step_rejects_mismatched_lengths() {
        let mut p = Matrix::zeros(1, 1);
        let mut opt = Sgd::new(0.1);
        opt.step(&mut [&mut p], &[]);
    }
}
