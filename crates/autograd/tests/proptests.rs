//! Property-based validation of the tape: random composite functions must
//! always agree with finite differences, and structural ops must preserve
//! linearity invariants.

use proptest::prelude::*;
use rn_autograd::check::check_gradients;
use rn_autograd::Graph;
use rn_tensor::{Matrix, Prng};

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0f32..1.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_dense_chain_passes_gradient_check(
        x in matrix_strategy(3, 4),
        w in matrix_strategy(4, 3),
        b in matrix_strategy(1, 3),
        pick in 0usize..4,
    ) {
        let report = check_gradients(
            move |g, vars| {
                let h = g.matmul(vars[0], vars[1]);
                let hb = g.add_bias(h, vars[2]);
                let a = match pick {
                    0 => g.sigmoid(hb),
                    1 => g.tanh(hb),
                    2 => g.selu(hb),
                    _ => g.softplus(hb),
                };
                let sq = g.square(a);
                g.mean(sq)
            },
            &[x, w, b],
            1e-2,
        );
        prop_assert!(report.passes(3e-2), "{report:?}");
    }

    #[test]
    fn gather_scatter_chain_passes_gradient_check(
        x in matrix_strategy(5, 3),
        raw_idx in proptest::collection::vec(0usize..5, 1..8),
    ) {
        let idx = raw_idx.clone();
        let segs: Vec<usize> = (0..idx.len()).map(|i| i % 3).collect();
        let report = check_gradients(
            move |g, vars| {
                let gathered = g.gather_rows(vars[0], &idx);
                let summed = g.segment_sum(gathered, &segs, 3);
                let t = g.tanh(summed);
                g.mean(t)
            },
            &[x],
            1e-2,
        );
        prop_assert!(report.passes(3e-2), "{report:?}");
    }

    #[test]
    fn backward_of_linear_function_is_input_independent(
        x in matrix_strategy(3, 3),
        y in matrix_strategy(3, 3),
    ) {
        // For loss = sum(a + b), gradients are all-ones regardless of values.
        let mut g = Graph::new();
        let a = g.param(x);
        let b = g.param(y);
        let s = g.add(a, b);
        let loss = g.sum(s);
        g.backward(loss);
        prop_assert!(g.grad(a).unwrap().approx_eq(&Matrix::ones(3, 3), 1e-6));
        prop_assert!(g.grad(b).unwrap().approx_eq(&Matrix::ones(3, 3), 1e-6));
    }

    #[test]
    fn gradient_scales_linearly_with_loss_scale(seed in any::<u64>(), k in 1.0f32..5.0) {
        let mut rng = Prng::new(seed);
        let x0 = rng.uniform_matrix(2, 3, -1.0, 1.0);

        let run = |scale: f32, x: Matrix| -> Matrix {
            let mut g = Graph::new();
            let v = g.param(x);
            let t = g.tanh(v);
            let m = g.mean(t);
            let loss = g.scale(m, scale);
            g.backward(loss);
            g.grad(v).unwrap().clone()
        };
        let g1 = run(1.0, x0.clone());
        let gk = run(k, x0);
        prop_assert!(gk.approx_eq(&g1.scale(k), 1e-4));
    }

    #[test]
    fn value_of_segment_sum_preserves_mass(
        x in matrix_strategy(6, 2),
        nseg in 1usize..4,
    ) {
        let segs: Vec<usize> = (0..6).map(|i| i % nseg).collect();
        let mut g = Graph::new();
        let v = g.param(x.clone());
        let s = g.segment_sum(v, &segs, nseg);
        prop_assert!((g.value(s).sum() - x.sum()).abs() < 1e-4);
    }

    #[test]
    fn reset_reuse_is_bit_identical_to_fresh_tape(
        seed in any::<u64>(),
        warm_runs in 1usize..4,
    ) {
        // A random fused chain (gather + compact GRU + scatter + loss) run
        // on a fresh tape must produce bitwise-identical values and
        // gradients to the same chain on a tape that has already been
        // through `warm_runs` forward/backward/reset cycles.
        let run = |g: &mut Graph, seed: u64| -> (f32, Vec<Matrix>) {
            let mut rng = Prng::new(seed);
            let vars = rn_autograd::GruVars {
                w_z: g.param(rng.uniform_matrix(8, 4, -0.5, 0.5)),
                b_z: g.param(rng.uniform_matrix(1, 4, -0.1, 0.1)),
                w_r: g.param(rng.uniform_matrix(8, 4, -0.5, 0.5)),
                b_r: g.param(rng.uniform_matrix(1, 4, -0.1, 0.1)),
                w_c: g.param(rng.uniform_matrix(8, 4, -0.5, 0.5)),
                b_c: g.param(rng.uniform_matrix(1, 4, -0.1, 0.1)),
                w_zr: None,
            };
            let states = g.param(rng.uniform_matrix(3, 4, -1.0, 1.0));
            let h = g.param(rng.uniform_matrix(5, 4, -1.0, 1.0));
            let rows = [0usize, 2, 4];
            let ids = [1usize, 0, 2];
            let x = g.gather_rows(states, &ids);
            let h2 = g.gru_step_rows(&vars, h, x, &rows);
            let acc = g.constant(Matrix::zeros(3, 4));
            let out = g.segment_acc_rows(acc, h2, &rows, &ids);
            let sq = g.square(out);
            let loss = g.mean(sq);
            g.backward(loss);
            let grads = [vars.w_z, vars.b_z, vars.w_r, vars.b_r, vars.w_c, vars.b_c, states, h]
                .iter()
                .map(|&v| g.grad(v).unwrap().clone())
                .collect();
            (g.value(loss).get(0, 0), grads)
        };

        let mut fresh = Graph::new();
        let (loss_fresh, grads_fresh) = run(&mut fresh, seed);

        let mut reused = Graph::new();
        for warm in 0..warm_runs {
            let _ = run(&mut reused, seed.wrapping_add(warm as u64 + 1));
            reused.reset();
        }
        prop_assert!(reused.pooled_buffers() > 0, "reset must park buffers");
        let (loss_reused, grads_reused) = run(&mut reused, seed);

        prop_assert_eq!(loss_fresh.to_bits(), loss_reused.to_bits());
        for (a, b) in grads_fresh.iter().zip(&grads_reused) {
            prop_assert!(a.approx_eq(b, 0.0), "gradients must be bit-identical");
        }
    }
}
