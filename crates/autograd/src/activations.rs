//! Scalar activation functions and their derivatives.
//!
//! Shared between the tape ops in [`crate::graph`] and the layer
//! implementations in `rn-nn`, so forward values and adjoints can never drift
//! apart.

/// SELU scale constant (Klambauer et al., 2017).
pub const SELU_LAMBDA: f32 = 1.050_700_9;
/// SELU alpha constant.
pub const SELU_ALPHA: f32 = 1.673_263_2;

/// Logistic sigmoid, numerically stable for large |x|.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Derivative of sigmoid expressed through its output `y = sigmoid(x)`.
#[inline]
pub fn sigmoid_deriv_from_output(y: f32) -> f32 {
    y * (1.0 - y)
}

/// Hyperbolic tangent.
#[inline]
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

/// Derivative of tanh expressed through its output `y = tanh(x)`.
#[inline]
pub fn tanh_deriv_from_output(y: f32) -> f32 {
    1.0 - y * y
}

/// Rectified linear unit.
#[inline]
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Derivative of ReLU with the `x = 0` subgradient fixed at 0.
#[inline]
pub fn relu_deriv(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Scaled exponential linear unit — the readout activation used by RouteNet.
#[inline]
pub fn selu(x: f32) -> f32 {
    if x > 0.0 {
        SELU_LAMBDA * x
    } else {
        SELU_LAMBDA * SELU_ALPHA * (x.exp() - 1.0)
    }
}

/// Derivative of SELU as a function of the input.
#[inline]
pub fn selu_deriv(x: f32) -> f32 {
    if x > 0.0 {
        SELU_LAMBDA
    } else {
        SELU_LAMBDA * SELU_ALPHA * x.exp()
    }
}

/// Softplus `ln(1 + e^x)`, numerically stable.
#[inline]
pub fn softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Derivative of softplus (= sigmoid).
#[inline]
pub fn softplus_deriv(x: f32) -> f32 {
    sigmoid(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_deriv(f: impl Fn(f32) -> f32, x: f32) -> f32 {
        let h = 1e-3;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn sigmoid_basics() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(30.0) > 0.999_999);
        assert!(sigmoid(-30.0) < 1e-6);
        // stability: no NaN at extremes
        assert!(sigmoid(1e4).is_finite());
        assert!(sigmoid(-1e4).is_finite());
    }

    #[test]
    fn derivative_formulas_match_numeric() {
        for &x in &[-2.0f32, -0.5, 0.3, 1.7] {
            let y = sigmoid(x);
            assert!((sigmoid_deriv_from_output(y) - numeric_deriv(sigmoid, x)).abs() < 1e-3);
            let t = tanh(x);
            assert!((tanh_deriv_from_output(t) - numeric_deriv(tanh, x)).abs() < 1e-3);
            assert!((selu_deriv(x) - numeric_deriv(selu, x)).abs() < 2e-3);
            assert!((softplus_deriv(x) - numeric_deriv(softplus, x)).abs() < 1e-3);
        }
        for &x in &[-1.5f32, 0.5, 2.0] {
            assert!((relu_deriv(x) - numeric_deriv(relu, x)).abs() < 1e-3);
        }
    }

    #[test]
    fn selu_is_continuous_at_zero() {
        assert!((selu(1e-6) - selu(-1e-6)).abs() < 1e-4);
    }

    #[test]
    fn softplus_extremes_are_stable() {
        assert!((softplus(50.0) - 50.0).abs() < 1e-3);
        assert!(softplus(-50.0) >= 0.0);
        assert!(softplus(-50.0) < 1e-6);
    }
}
