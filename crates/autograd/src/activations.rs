//! Scalar activation functions and their derivatives.
//!
//! Re-exported from [`rn_tensor::activations`], where they moved so the
//! SIMD kernels in `rn_tensor::simd` can vectorize the exact definitions the
//! tape replays — forward values, adjoints and the 8-lane kernels can never
//! drift apart. Existing `rn_autograd::activations::*` callers are
//! unaffected.

pub use rn_tensor::activations::*;
