//! Finite-difference gradient checking.
//!
//! Every op's adjoint in this crate, and every layer in `rn-nn`, is validated
//! against a central-difference approximation through [`check_gradients`].
//! Keeping the checker here (rather than in test code) lets downstream crates
//! reuse it for their own composite functions.

use crate::{Graph, Var};
use rn_tensor::Matrix;

/// Result of a gradient check: the worst absolute and relative deviation
/// observed across all checked elements.
#[derive(Debug, Clone, Copy)]
pub struct CheckReport {
    /// Largest absolute difference between analytic and numeric gradients.
    pub max_abs_err: f64,
    /// Largest relative difference (normalized by magnitude, floored at 1).
    pub max_rel_err: f64,
    /// Number of elements compared.
    pub elements: usize,
}

impl CheckReport {
    /// True when the analytic gradient is within `tol` of the numeric one.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_rel_err <= tol
    }
}

/// Compare the analytic gradients of `f` with central finite differences.
///
/// `f` receives a fresh [`Graph`] plus the registered input [`Var`]s (in the
/// order of `inputs`) and must return a scalar loss `Var`. The inputs are
/// registered as differentiable parameters. `eps` is the perturbation step —
/// `1e-2` to `1e-3` works well for f32.
///
/// Panics if `f` returns a non-scalar node.
pub fn check_gradients(
    f: impl Fn(&mut Graph, &[Var]) -> Var,
    inputs: &[Matrix],
    eps: f32,
) -> CheckReport {
    // Analytic pass.
    let mut g = Graph::new();
    let vars: Vec<Var> = inputs.iter().map(|m| g.param(m.clone())).collect();
    let loss = f(&mut g, &vars);
    g.backward(loss);
    let analytic: Vec<Matrix> = vars
        .iter()
        .zip(inputs)
        .map(|(&v, m)| {
            g.grad(v)
                .cloned()
                .unwrap_or_else(|| Matrix::zeros(m.rows(), m.cols()))
        })
        .collect();

    // Numeric pass: perturb each element of each input.
    let eval = |perturbed: &[Matrix]| -> f64 {
        let mut g = Graph::new();
        let vars: Vec<Var> = perturbed.iter().map(|m| g.param(m.clone())).collect();
        let loss = f(&mut g, &vars);
        g.value(loss).get(0, 0) as f64
    };

    let mut max_abs_err = 0.0f64;
    let mut max_rel_err = 0.0f64;
    let mut elements = 0usize;
    let mut work: Vec<Matrix> = inputs.to_vec();
    for (i, input) in inputs.iter().enumerate() {
        for r in 0..input.rows() {
            for c in 0..input.cols() {
                let orig = input.get(r, c);
                work[i].set(r, c, orig + eps);
                let up = eval(&work);
                work[i].set(r, c, orig - eps);
                let down = eval(&work);
                work[i].set(r, c, orig);
                let numeric = (up - down) / (2.0 * eps as f64);
                let a = analytic[i].get(r, c) as f64;
                let abs_err = (a - numeric).abs();
                let rel_err = abs_err / numeric.abs().max(a.abs()).max(1.0);
                max_abs_err = max_abs_err.max(abs_err);
                max_rel_err = max_rel_err.max(rel_err);
                elements += 1;
            }
        }
    }
    CheckReport {
        max_abs_err,
        max_rel_err,
        elements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_tensor::Prng;

    const TOL: f64 = 2e-2;
    const EPS: f32 = 1e-2;

    fn rand_matrix(seed: u64, rows: usize, cols: usize) -> Matrix {
        Prng::new(seed).uniform_matrix(rows, cols, -1.0, 1.0)
    }

    #[test]
    fn check_matmul_chain() {
        let report = check_gradients(
            |g, vars| {
                let y = g.matmul(vars[0], vars[1]);
                let t = g.tanh(y);
                g.mean(t)
            },
            &[rand_matrix(1, 3, 4), rand_matrix(2, 4, 2)],
            EPS,
        );
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn check_bias_and_activations() {
        for activation in ["sigmoid", "tanh", "selu", "softplus"] {
            let report = check_gradients(
                |g, vars| {
                    let y = g.add_bias(vars[0], vars[1]);
                    let a = match activation {
                        "sigmoid" => g.sigmoid(y),
                        "tanh" => g.tanh(y),
                        "selu" => g.selu(y),
                        _ => g.softplus(y),
                    };
                    g.mean(a)
                },
                &[rand_matrix(3, 4, 3), rand_matrix(4, 1, 3)],
                EPS,
            );
            assert!(report.passes(TOL), "{activation}: {report:?}");
        }
    }

    #[test]
    fn check_relu_away_from_kink() {
        // Shift inputs away from 0 where ReLU is non-differentiable.
        let x = rand_matrix(5, 2, 3).add_scalar(2.0);
        let report = check_gradients(
            |g, vars| {
                let y = g.relu(vars[0]);
                g.sum(y)
            },
            &[x],
            EPS,
        );
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn check_structural_ops() {
        let report = check_gradients(
            |g, vars| {
                let gathered = g.gather_rows(vars[0], &[0, 2, 1, 2, 0]);
                let summed = g.segment_sum(gathered, &[0, 0, 1, 1, 2], 3);
                let s = g.sigmoid(summed);
                g.mean(s)
            },
            &[rand_matrix(6, 3, 3)],
            EPS,
        );
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn check_concat_slice_mask() {
        let mask = Matrix::column_vector(&[1.0, 0.0, 1.0]);
        let report = check_gradients(
            move |g, vars| {
                let cat = g.concat_cols(vars[0], vars[1]);
                let masked = g.mask_rows(cat, &mask);
                let left = g.slice_cols(masked, 0, 2);
                let sq = g.square(left);
                g.mean(sq)
            },
            &[rand_matrix(7, 3, 2), rand_matrix(8, 3, 2)],
            EPS,
        );
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn check_gru_like_composite() {
        // A hand-rolled GRU step: validates the exact op mix the models use.
        let report = check_gradients(
            |g, vars| {
                let (h, x, wz, wr, wh) = (vars[0], vars[1], vars[2], vars[3], vars[4]);
                let hx = g.concat_cols(h, x);
                let zr_lin = g.matmul(hx, wz);
                let z = g.sigmoid(zr_lin);
                let r_lin = g.matmul(hx, wr);
                let r = g.sigmoid(r_lin);
                let rh = g.mul(r, h);
                let rhx = g.concat_cols(rh, x);
                let c_lin = g.matmul(rhx, wh);
                let c = g.tanh(c_lin);
                let zc = g.mul(z, c);
                let omz = g.one_minus(z);
                let zh = g.mul(omz, h);
                let h_new = g.add(zh, zc);
                let sq = g.square(h_new);
                g.mean(sq)
            },
            &[
                rand_matrix(11, 2, 3), // h
                rand_matrix(12, 2, 2), // x
                rand_matrix(13, 5, 3), // wz
                rand_matrix(14, 5, 3), // wr
                rand_matrix(15, 5, 3), // wh
            ],
            EPS,
        );
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn check_losses() {
        let target = rand_matrix(21, 4, 1);
        let report = check_gradients(
            move |g, vars| {
                let t = g.constant(target.clone());
                g.mse(vars[0], t)
            },
            &[rand_matrix(22, 4, 1)],
            EPS,
        );
        assert!(report.passes(TOL), "{report:?}");
    }
}
