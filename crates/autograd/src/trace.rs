//! Optional per-op-kind timing of the backward tape walk.
//!
//! When tracing is on (`RN_TRACE=1`, see [`rn_trace::enabled`]),
//! [`Graph::backward`](crate::Graph::backward) times each node's adjoint
//! and attributes it to one of the coarse [`OP_KINDS`] below in a
//! process-global [`rn_trace::StageRecorder`] — so a slow training step or
//! serve batch can be broken down to *which kernel family* dominates
//! (gather/scatter traffic vs. the fused GRU vs. dense matmuls) without a
//! profiler attach. When tracing is off the cost is one relaxed atomic
//! load per node.
//!
//! Only the **backward** sweep is instrumented: forward ops execute
//! eagerly at their call sites (define-by-run), so there is no central
//! forward interpreter loop to hook; the reverse sweep is where the tape
//! is replayed in one place. Kernel cost is roughly symmetric between the
//! two sweeps, so backward attribution identifies the same hotspots.
//!
//! The recorder is process-global and cumulative: consumers (the trainer's
//! end-of-run summary, ad-hoc tooling) call [`reset_op_trace`] at the
//! start of the window they want to attribute and [`op_snapshot`] at the
//! end. Tracing never perturbs results — gradients are bitwise identical
//! with tracing on or off (pinned by `tests/trace_equivalence.rs` at the
//! workspace root).

use crate::graph::Op;
use std::sync::OnceLock;
use std::time::Instant;

/// Coarse op families the backward walk attributes time to, in
/// recording-index order (the order [`op_snapshot`] returns).
pub const OP_KINDS: &[&str] = &[
    "gather",
    "gru",
    "segment",
    "matmul",
    "activation",
    "elementwise",
    "other",
];

/// Scatter/gather index traffic: `GatherRows`, `GatherMask`, `MaskRows`.
pub const KIND_GATHER: usize = 0;
/// The fused GRU cell adjoints: `GruStep`, `GruStepRows`.
pub const KIND_GRU: usize = 1;
/// Segment aggregation adjoints: `SegmentSum`, `SegmentAcc`,
/// `SegmentAccRows`.
pub const KIND_SEGMENT: usize = 2;
/// Dense linear algebra: `MatMul`, `AddBias`, `Affine`.
pub const KIND_MATMUL: usize = 3;
/// Nonlinearity maps (the vectorized slice kernels): `Sigmoid`, `Tanh`,
/// `Relu`, `Selu`, `Softplus`.
pub const KIND_ACTIVATION: usize = 4;
/// Elementwise arithmetic, reshapes and reductions.
pub const KIND_ELEMENTWISE: usize = 5;
/// Everything else (leaves).
pub const KIND_OTHER: usize = 6;

static RECORDER: OnceLock<rn_trace::StageRecorder> = OnceLock::new();

/// The process-global backward op-kind recorder (one histogram per
/// [`OP_KINDS`] entry, shared by every tape on every thread).
pub fn op_recorder() -> &'static rn_trace::StageRecorder {
    RECORDER.get_or_init(|| rn_trace::StageRecorder::new(OP_KINDS))
}

/// Snapshot the per-kind backward timing accumulated since process start
/// (or the last [`reset_op_trace`]), in [`OP_KINDS`] order. All-zero
/// entries mean tracing was off or no backward ran.
pub fn op_snapshot() -> Vec<rn_trace::StageStats> {
    op_recorder().snapshot()
}

/// Zero the global op-kind histograms — call at the start of the window
/// you want [`op_snapshot`] to describe (e.g. a training run).
pub fn reset_op_trace() {
    op_recorder().reset();
}

fn kind_of(op: &Op) -> usize {
    match op {
        Op::GatherRows { .. } | Op::GatherMask { .. } | Op::MaskRows { .. } => KIND_GATHER,
        Op::GruStep { .. } | Op::GruStepRows { .. } => KIND_GRU,
        Op::SegmentSum { .. } | Op::SegmentAcc { .. } | Op::SegmentAccRows { .. } => KIND_SEGMENT,
        Op::MatMul { .. } | Op::AddBias { .. } | Op::Affine { .. } => KIND_MATMUL,
        Op::Sigmoid(_) | Op::Tanh(_) | Op::Relu(_) | Op::Selu { .. } | Op::Softplus(_) => {
            KIND_ACTIVATION
        }
        Op::Leaf { .. } => KIND_OTHER,
        _ => KIND_ELEMENTWISE,
    }
}

/// Drop-guard timing one node's adjoint in the backward walk: created at
/// the top of the loop body so it also covers arms that `continue` early.
/// `None` (no clock read) while tracing is off.
pub(crate) struct OpSpan {
    kind: usize,
    start: Instant,
}

impl OpSpan {
    #[inline]
    pub(crate) fn begin(op: &Op) -> Option<OpSpan> {
        if !rn_trace::enabled() {
            return None;
        }
        Some(OpSpan {
            kind: kind_of(op),
            start: Instant::now(),
        })
    }
}

impl Drop for OpSpan {
    fn drop(&mut self) {
        op_recorder().record(self.kind, self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_tensor::Matrix;

    #[test]
    fn backward_attributes_op_kinds_when_enabled() {
        rn_trace::set_enabled(true);
        reset_op_trace();
        let mut g = crate::Graph::new();
        let x = g.param(Matrix::row_vector(&[1.0, 2.0]));
        let w = g.param(Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]));
        let y = g.matmul(x, w);
        let z = g.tanh(y);
        let loss = g.mean(z);
        g.backward(loss);
        rn_trace::set_enabled(false);
        let snap = op_snapshot();
        assert_eq!(snap.len(), OP_KINDS.len());
        assert!(snap[KIND_MATMUL].count >= 1, "matmul adjoint must be timed");
        assert!(
            snap[KIND_ACTIVATION].count >= 1,
            "tanh adjoint lands in the activation bin"
        );
        assert!(
            snap[KIND_ELEMENTWISE].count >= 1,
            "mean adjoint is elementwise"
        );
        // And with tracing off, nothing further accumulates.
        reset_op_trace();
        let mut g = crate::Graph::new();
        let x = g.param(Matrix::row_vector(&[1.0]));
        let loss = g.mean(x);
        g.backward(loss);
        assert!(op_snapshot().iter().all(|s| s.count == 0));
    }
}
