//! The differentiation tape.
//!
//! [`Graph`] owns a flat vector of nodes; every operation appends one node
//! holding the forward value plus enough information to compute the adjoint.
//! [`Var`] is a copyable handle (an index into the tape). Because nodes are
//! appended in execution order, a single reverse sweep in `backward` visits
//! every node after all of its consumers — the classic tape invariant.

use crate::activations as act;
use rn_tensor::Matrix;

/// Handle to a node on the tape. Cheap to copy; only valid for the [`Graph`]
/// that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// Recorded operation: the inputs and any auxiliary data the adjoint needs.
#[derive(Debug, Clone)]
enum Op {
    /// Leaf node. `requires_grad = false` marks constants whose gradient is
    /// never materialized (saves memory for targets and masks).
    Leaf { requires_grad: bool },
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    MatMul(Var, Var),
    /// Broadcast-add a `1 x c` bias row to every row of `x`.
    AddBias { x: Var, bias: Var },
    /// Element-wise `a * x + b`. Only the slope is recorded: the adjoint of
    /// an affine map does not depend on the offset.
    Affine { x: Var, a: f32 },
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    Selu(Var),
    Softplus(Var),
    Abs(Var),
    Square(Var),
    /// Element-wise `min(x, c)` for a scalar cap `c`.
    ClampMax { x: Var, cap: f32 },
    ConcatCols(Var, Var),
    SliceCols { x: Var, start: usize, end: usize },
    GatherRows { x: Var, indices: Vec<usize> },
    SegmentSum { x: Var, segments: Vec<usize> },
    /// Multiply each row of `x` by the matching entry of a constant `n x 1`
    /// mask. The mask is captured by value: it is padding structure, not a
    /// differentiable quantity.
    MaskRows { x: Var, mask: Matrix },
    Sum(Var),
    Mean(Var),
}

struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
}

/// A define-by-run differentiation tape.
///
/// Typical lifecycle: create, register parameters/inputs, run ops, call
/// [`Graph::backward`] once, read gradients with [`Graph::grad`], drop.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Empty tape with room for `capacity` nodes (avoids reallocation in the
    /// message-passing hot loop, where the node count is predictable).
    pub fn with_capacity(capacity: usize) -> Self {
        Self { nodes: Vec::with_capacity(capacity) }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        self.nodes.push(Node { value, grad: None, op });
        Var(self.nodes.len() - 1)
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    /// Register a differentiable leaf (a model parameter or input).
    pub fn param(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf { requires_grad: true })
    }

    /// Register a non-differentiable leaf (targets, masks, constants).
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf { requires_grad: false })
    }

    /// Forward value of a variable.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Gradient of the last `backward` call w.r.t. `v`, if one was produced.
    ///
    /// `None` for constants and for nodes the loss does not depend on.
    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        self.nodes[v.0].grad.as_ref()
    }

    // ------------------------------------------------------------------
    // Arithmetic
    // ------------------------------------------------------------------

    /// Element-wise sum. Shapes must match.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        self.push(v, Op::Add(a, b))
    }

    /// Element-wise difference. Shapes must match.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b));
        self.push(v, Op::Sub(a, b))
    }

    /// Element-wise (Hadamard) product. Shapes must match.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).mul(self.value(b));
        self.push(v, Op::Mul(a, b))
    }

    /// Matrix product `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::MatMul(a, b))
    }

    /// Broadcast-add a `1 x c` bias row vector to every row of `x`.
    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        let v = self.value(x).add_row_broadcast(self.value(bias));
        self.push(v, Op::AddBias { x, bias })
    }

    /// Element-wise affine map `a * x + b`.
    pub fn affine(&mut self, x: Var, a: f32, b: f32) -> Var {
        let v = self.value(x).map(|t| a * t + b);
        self.push(v, Op::Affine { x, a })
    }

    /// Multiply by a scalar.
    pub fn scale(&mut self, x: Var, a: f32) -> Var {
        self.affine(x, a, 0.0)
    }

    /// `1 - x`, element-wise (the GRU blend complement).
    pub fn one_minus(&mut self, x: Var) -> Var {
        self.affine(x, -1.0, 1.0)
    }

    // ------------------------------------------------------------------
    // Activations
    // ------------------------------------------------------------------

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        let v = self.value(x).map(act::sigmoid);
        self.push(v, Op::Sigmoid(x))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: Var) -> Var {
        let v = self.value(x).map(act::tanh);
        self.push(v, Op::Tanh(x))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, x: Var) -> Var {
        let v = self.value(x).map(act::relu);
        self.push(v, Op::Relu(x))
    }

    /// Scaled exponential linear unit (RouteNet's readout activation).
    pub fn selu(&mut self, x: Var) -> Var {
        let v = self.value(x).map(act::selu);
        self.push(v, Op::Selu(x))
    }

    /// Softplus `ln(1+e^x)`.
    pub fn softplus(&mut self, x: Var) -> Var {
        let v = self.value(x).map(act::softplus);
        self.push(v, Op::Softplus(x))
    }

    /// Element-wise absolute value.
    pub fn abs(&mut self, x: Var) -> Var {
        let v = self.value(x).map(f32::abs);
        self.push(v, Op::Abs(x))
    }

    /// Element-wise square.
    pub fn square(&mut self, x: Var) -> Var {
        let v = self.value(x).map(|t| t * t);
        self.push(v, Op::Square(x))
    }

    /// Element-wise `min(x, cap)`. Gradient flows only where `x < cap`
    /// (the tie at `x == cap` takes the pass-through branch).
    pub fn clamp_max(&mut self, x: Var, cap: f32) -> Var {
        let v = self.value(x).map(|t| t.min(cap));
        self.push(v, Op::ClampMax { x, cap })
    }

    // ------------------------------------------------------------------
    // Structure
    // ------------------------------------------------------------------

    /// Horizontal concatenation `[a | b]`. Row counts must match.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).concat_cols(self.value(b));
        self.push(v, Op::ConcatCols(a, b))
    }

    /// Column slice `x[:, start..end]`.
    pub fn slice_cols(&mut self, x: Var, start: usize, end: usize) -> Var {
        let v = self.value(x).slice_cols(start, end);
        self.push(v, Op::SliceCols { x, start, end })
    }

    /// Gather rows: `out[i] = x[indices[i]]`. Indices may repeat; the adjoint
    /// scatter-adds into the repeated rows.
    pub fn gather_rows(&mut self, x: Var, indices: &[usize]) -> Var {
        let v = self.value(x).gather_rows(indices);
        self.push(v, Op::GatherRows { x, indices: indices.to_vec() })
    }

    /// Segment sum: `out[segments[i]] += x[i]` with `num_segments` output rows.
    /// This is RouteNet's message aggregation (paths → links, paths → nodes).
    pub fn segment_sum(&mut self, x: Var, segments: &[usize], num_segments: usize) -> Var {
        let v = self.value(x).segment_sum(segments, num_segments);
        self.push(v, Op::SegmentSum { x, segments: segments.to_vec() })
    }

    /// Multiply each row of `x` by the matching entry of the constant `n x 1`
    /// mask matrix (used to zero padded sequence positions).
    pub fn mask_rows(&mut self, x: Var, mask: &Matrix) -> Var {
        let v = self.value(x).mul_col_broadcast(mask);
        self.push(v, Op::MaskRows { x, mask: mask.clone() })
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements, as a `1 x 1` matrix.
    pub fn sum(&mut self, x: Var) -> Var {
        let v = Matrix::filled(1, 1, self.value(x).sum());
        self.push(v, Op::Sum(x))
    }

    /// Mean of all elements, as a `1 x 1` matrix.
    pub fn mean(&mut self, x: Var) -> Var {
        let v = Matrix::filled(1, 1, self.value(x).mean());
        self.push(v, Op::Mean(x))
    }

    /// Mean squared error between `pred` and `target` as a scalar node.
    pub fn mse(&mut self, pred: Var, target: Var) -> Var {
        let d = self.sub(pred, target);
        let sq = self.square(d);
        self.mean(sq)
    }

    /// Mean absolute error between `pred` and `target` as a scalar node.
    pub fn mae(&mut self, pred: Var, target: Var) -> Var {
        let d = self.sub(pred, target);
        let a = self.abs(d);
        self.mean(a)
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Run the reverse sweep from `loss`, which must be a `1 x 1` node.
    ///
    /// Gradients accumulate into every node that (transitively) influences the
    /// loss; read them with [`Graph::grad`]. Calling `backward` twice on the
    /// same tape accumulates into existing gradients, which is almost never
    /// what you want — build a fresh tape per step instead.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward: loss must be scalar (1x1), got {:?}",
            self.value(loss).shape()
        );
        let n = self.nodes.len();
        let mut grads: Vec<Option<Matrix>> = (0..n).map(|_| None).collect();
        grads[loss.0] = Some(Matrix::ones(1, 1));

        for id in (0..n).rev() {
            let Some(g) = grads[id].take() else { continue };
            // Split borrows: the op and value of the current node are read-only
            // while we accumulate into `grads` entries of its inputs.
            let op = self.nodes[id].op.clone();
            match op {
                Op::Leaf { .. } => {}
                Op::Add(a, b) => {
                    accumulate(&mut grads, a, g.clone());
                    accumulate(&mut grads, b, g.clone());
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, a, g.clone());
                    accumulate(&mut grads, b, g.scale(-1.0));
                }
                Op::Mul(a, b) => {
                    let ga = g.mul(self.value(b));
                    let gb = g.mul(self.value(a));
                    accumulate(&mut grads, a, ga);
                    accumulate(&mut grads, b, gb);
                }
                Op::MatMul(a, b) => {
                    let ga = g.matmul_nt(self.value(b));
                    let gb = self.value(a).matmul_tn(&g);
                    accumulate(&mut grads, a, ga);
                    accumulate(&mut grads, b, gb);
                }
                Op::AddBias { x, bias } => {
                    accumulate(&mut grads, bias, g.sum_rows());
                    accumulate(&mut grads, x, g.clone());
                }
                Op::Affine { x, a } => {
                    accumulate(&mut grads, x, g.scale(a));
                }
                Op::Sigmoid(x) => {
                    let gx = g.zip(&self.nodes[id].value, |gi, y| gi * act::sigmoid_deriv_from_output(y));
                    accumulate(&mut grads, x, gx);
                }
                Op::Tanh(x) => {
                    let gx = g.zip(&self.nodes[id].value, |gi, y| gi * act::tanh_deriv_from_output(y));
                    accumulate(&mut grads, x, gx);
                }
                Op::Relu(x) => {
                    let gx = g.zip(self.value(x), |gi, xi| gi * act::relu_deriv(xi));
                    accumulate(&mut grads, x, gx);
                }
                Op::Selu(x) => {
                    let gx = g.zip(self.value(x), |gi, xi| gi * act::selu_deriv(xi));
                    accumulate(&mut grads, x, gx);
                }
                Op::Softplus(x) => {
                    let gx = g.zip(self.value(x), |gi, xi| gi * act::softplus_deriv(xi));
                    accumulate(&mut grads, x, gx);
                }
                Op::Abs(x) => {
                    let gx = g.zip(self.value(x), |gi, xi| gi * xi.signum());
                    accumulate(&mut grads, x, gx);
                }
                Op::Square(x) => {
                    let gx = g.zip(self.value(x), |gi, xi| gi * 2.0 * xi);
                    accumulate(&mut grads, x, gx);
                }
                Op::ClampMax { x, cap } => {
                    let gx = g.zip(self.value(x), |gi, xi| if xi <= cap { gi } else { 0.0 });
                    accumulate(&mut grads, x, gx);
                }
                Op::ConcatCols(a, b) => {
                    let ca = self.value(a).cols();
                    let cb = self.value(b).cols();
                    accumulate(&mut grads, a, g.slice_cols(0, ca));
                    accumulate(&mut grads, b, g.slice_cols(ca, ca + cb));
                }
                Op::SliceCols { x, start, end } => {
                    let (rows, cols) = self.value(x).shape();
                    let mut gx = Matrix::zeros(rows, cols);
                    for r in 0..rows {
                        let src = g.row(r);
                        gx.row_mut(r)[start..end].copy_from_slice(src);
                    }
                    accumulate(&mut grads, x, gx);
                }
                Op::GatherRows { x, ref indices } => {
                    // Adjoint of gather = scatter-add back to the source rows.
                    let gx = g.segment_sum(indices, self.value(x).rows());
                    accumulate(&mut grads, x, gx);
                }
                Op::SegmentSum { x, ref segments } => {
                    // Adjoint of scatter-add = gather from the output rows.
                    let gx = g.gather_rows(segments);
                    accumulate(&mut grads, x, gx);
                }
                Op::MaskRows { x, ref mask } => {
                    let gx = g.mul_col_broadcast(mask);
                    accumulate(&mut grads, x, gx);
                }
                Op::Sum(x) => {
                    let s = g.get(0, 0);
                    let (rows, cols) = self.value(x).shape();
                    accumulate(&mut grads, x, Matrix::filled(rows, cols, s));
                }
                Op::Mean(x) => {
                    let (rows, cols) = self.value(x).shape();
                    let denom = (rows * cols).max(1) as f32;
                    let s = g.get(0, 0) / denom;
                    accumulate(&mut grads, x, Matrix::filled(rows, cols, s));
                }
            }
            grads[id] = Some(g);
        }

        // Persist gradients onto the tape, skipping constants.
        for (node, g) in self.nodes.iter_mut().zip(grads) {
            if let Op::Leaf { requires_grad: false } = node.op {
                continue;
            }
            node.grad = g;
        }
    }
}

/// Accumulate `delta` into the pending gradient of node `v`.
fn accumulate(grads: &mut [Option<Matrix>], v: Var, delta: Matrix) {
    match &mut grads[v.0] {
        Some(existing) => existing.add_assign(&delta),
        slot @ None => *slot = Some(delta),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_and_grad_of_simple_chain() {
        // loss = mean((x * 3 + 1)^2), x = [1, 2]
        let mut g = Graph::new();
        let x = g.param(Matrix::row_vector(&[1.0, 2.0]));
        let y = g.affine(x, 3.0, 1.0); // [4, 7]
        let sq = g.square(y); // [16, 49]
        let loss = g.mean(sq); // 32.5
        assert!((g.value(loss).get(0, 0) - 32.5).abs() < 1e-5);
        g.backward(loss);
        // d/dx = 2*(3x+1)*3 / 2 = 3*(3x+1) -> [12, 21]
        let gx = g.grad(x).unwrap();
        assert!(gx.approx_eq(&Matrix::row_vector(&[12.0, 21.0]), 1e-4));
    }

    #[test]
    fn matmul_gradients() {
        // loss = sum(A·B); dA = 1·Bᵀ, dB = Aᵀ·1
        let mut g = Graph::new();
        let a = g.param(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = g.param(Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]));
        let c = g.matmul(a, b);
        let loss = g.sum(c);
        g.backward(loss);
        let ga = g.grad(a).unwrap();
        let gb = g.grad(b).unwrap();
        assert!(ga.approx_eq(&Matrix::from_vec(2, 2, vec![11.0, 15.0, 11.0, 15.0]), 1e-4));
        assert!(gb.approx_eq(&Matrix::from_vec(2, 2, vec![4.0, 4.0, 6.0, 6.0]), 1e-4));
    }

    #[test]
    fn constants_receive_no_grad() {
        let mut g = Graph::new();
        let x = g.param(Matrix::ones(1, 2));
        let t = g.constant(Matrix::ones(1, 2));
        let loss = g.mse(x, t);
        g.backward(loss);
        assert!(g.grad(t).is_none());
        assert!(g.grad(x).is_some());
    }

    #[test]
    fn grad_flows_through_gather_and_segment_sum() {
        // states: 3 rows. Gather [0, 1, 0, 2], sum each gathered row, loss=sum.
        // Row 0 is gathered twice so its grad should be 2, others 1.
        let mut g = Graph::new();
        let states = g.param(Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]));
        let gathered = g.gather_rows(states, &[0, 1, 0, 2]);
        let loss = g.sum(gathered);
        g.backward(loss);
        let gs = g.grad(states).unwrap();
        assert!(gs.approx_eq(&Matrix::from_rows(&[vec![2.0], vec![1.0], vec![1.0]]), 1e-5));
    }

    #[test]
    fn segment_sum_grad_is_gather() {
        // 4 rows scattered into 2 segments; loss weights segment 0 by 10.
        let mut g = Graph::new();
        let x = g.param(Matrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0], vec![1.0]]));
        let s = g.segment_sum(x, &[0, 1, 0, 1], 2);
        let w = g.constant(Matrix::from_rows(&[vec![10.0], vec![1.0]]));
        let weighted = g.mul(s, w);
        let loss = g.sum(weighted);
        g.backward(loss);
        let gx = g.grad(x).unwrap();
        assert!(gx.approx_eq(&Matrix::from_rows(&[vec![10.0], vec![1.0], vec![10.0], vec![1.0]]), 1e-5));
    }

    #[test]
    fn mask_rows_zeroes_gradient_of_padded_rows() {
        let mut g = Graph::new();
        let x = g.param(Matrix::ones(3, 2));
        let mask = Matrix::column_vector(&[1.0, 0.0, 1.0]);
        let m = g.mask_rows(x, &mask);
        let loss = g.sum(m);
        g.backward(loss);
        let gx = g.grad(x).unwrap();
        assert_eq!(gx.row(0), &[1.0, 1.0]);
        assert_eq!(gx.row(1), &[0.0, 0.0]);
        assert_eq!(gx.row(2), &[1.0, 1.0]);
    }

    #[test]
    fn concat_slice_gradients_route_correctly() {
        let mut g = Graph::new();
        let a = g.param(Matrix::ones(2, 2));
        let b = g.param(Matrix::ones(2, 3));
        let cat = g.concat_cols(a, b);
        // keep only the b-half scaled by 2 -> grad(a)=0, grad(b)=2
        let right = g.slice_cols(cat, 2, 5);
        let scaled = g.scale(right, 2.0);
        let loss = g.sum(scaled);
        g.backward(loss);
        assert!(g.grad(a).unwrap().approx_eq(&Matrix::zeros(2, 2), 1e-6));
        assert!(g.grad(b).unwrap().approx_eq(&Matrix::filled(2, 3, 2.0), 1e-6));
    }

    #[test]
    fn fan_out_accumulates() {
        // y = x + x  =>  dy/dx = 2
        let mut g = Graph::new();
        let x = g.param(Matrix::ones(1, 1));
        let y = g.add(x, x);
        let loss = g.sum(y);
        g.backward(loss);
        assert!((g.grad(x).unwrap().get(0, 0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn unused_nodes_have_no_grad() {
        let mut g = Graph::new();
        let x = g.param(Matrix::ones(1, 1));
        let orphan = g.param(Matrix::ones(1, 1));
        let loss = g.sum(x);
        g.backward(loss);
        assert!(g.grad(orphan).is_none());
    }

    #[test]
    #[should_panic(expected = "loss must be scalar")]
    fn backward_rejects_non_scalar_loss() {
        let mut g = Graph::new();
        let x = g.param(Matrix::ones(2, 2));
        g.backward(x);
    }

    #[test]
    fn mse_value() {
        let mut g = Graph::new();
        let p = g.param(Matrix::row_vector(&[1.0, 2.0]));
        let t = g.constant(Matrix::row_vector(&[3.0, 2.0]));
        let loss = g.mse(p, t);
        assert!((g.value(loss).get(0, 0) - 2.0).abs() < 1e-6);
    }
}
