//! The differentiation tape.
//!
//! [`Graph`] owns a flat vector of nodes; every operation appends one node
//! holding the forward value plus enough information to compute the adjoint.
//! [`Var`] is a copyable handle (an index into the tape). Because nodes are
//! appended in execution order, a single reverse sweep in `backward` visits
//! every node after all of its consumers — the classic tape invariant.
//!
//! ## Buffer pool
//!
//! Training runs thousands of short-lived tapes, and profiling showed the
//! dominant cost after kernel time is allocator churn: every op allocates its
//! output, every backward allocates adjoints. The tape therefore owns a free
//! list of `Vec<f32>` buffers. [`Graph::reset`] clears the tape for reuse but
//! harvests every node's value/grad (and fused-op scratch) into the free
//! list, so a tape that has processed one sample replays the next one with
//! **zero** heap allocation in steady state. Reuse is numerically inert:
//! pooled buffers are fully overwritten (or zero-filled) before use, so a
//! reused tape produces bit-identical values and gradients to a fresh one —
//! a property the proptests pin down.
//!
//! ## Fused ops
//!
//! RouteNet's hot loop is one GRU step per sequence position per
//! message-passing iteration. Expressed in primitive ops that is ~20 tape
//! nodes per position; the fused [`Graph::gather_mask`], [`Graph::gru_step`]
//! and [`Graph::segment_acc`] collapse it to 3, shrinking tape length (and
//! backward dispatch + allocation) by roughly an order of magnitude. The
//! primitive ops remain — tests use them as the numerical reference.

use crate::activations as act;
use crate::index::{IndexInput, IndexList, SharedIndices};
use rayon::WorkerPool;
use rn_tensor::simd::activations as vact;
use rn_tensor::{kernels, Matrix};
use std::sync::{Arc, Mutex};

/// Environment variable toggling zero-copy index recording (default **on**;
/// set to `0`, `false` or `off` to force the copying path). When on, callers
/// holding long-lived structure (a cached megabatch composition) hand the
/// tape refcounted [`SharedIndices`] views and no index list is copied per
/// step; when off, every list goes through the pooled-copy path. Both modes
/// are bitwise identical — the recorded contents are the same.
pub const ZERO_COPY_ENV: &str = "RN_ZERO_COPY";

/// Parse an `RN_ZERO_COPY` setting (`None` = unset = on).
pub fn parse_zero_copy(raw: Option<&str>) -> bool {
    !matches!(
        raw.map(str::trim),
        Some("0") | Some("false") | Some("off") | Some("FALSE") | Some("OFF")
    )
}

/// Process-wide default for zero-copy mode, read from [`ZERO_COPY_ENV`] once.
fn env_zero_copy() -> bool {
    use std::sync::OnceLock;
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| parse_zero_copy(std::env::var(ZERO_COPY_ENV).ok().as_deref()))
}

/// Handle to a node on the tape. Cheap to copy; only valid for the [`Graph`]
/// that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// The six parameter handles of one bound GRU cell, as the fused
/// [`Graph::gru_step`] op consumes them. Constructed by `rn_nn`'s
/// `BoundGruCell`; kernels are `(hidden + input) x hidden`, biases `1 x
/// hidden`.
#[derive(Debug, Clone, Copy)]
pub struct GruVars {
    /// Update-gate kernel.
    pub w_z: Var,
    /// Update-gate bias.
    pub b_z: Var,
    /// Reset-gate kernel.
    pub w_r: Var,
    /// Reset-gate bias.
    pub b_r: Var,
    /// Candidate kernel.
    pub w_c: Var,
    /// Candidate bias.
    pub b_c: Var,
    /// Optional merged `[W_z | W_r]` kernel (`(hidden + input) x 2*hidden`),
    /// cached at bind time. When present, the fused forward computes both
    /// gate pre-activations with ONE matmul over `[h|x]` instead of two,
    /// halving A-matrix traffic. Per-element accumulation order is identical
    /// to the split matmuls, so results are bitwise equal. The adjoint still
    /// accumulates into `w_z`/`w_r` separately; this node never receives a
    /// gradient and should be registered as a constant.
    pub w_zr: Option<Var>,
}

/// Forward intermediates the fused GRU step saves for its adjoint.
#[derive(Debug)]
pub(crate) struct GruSaved {
    /// `[h | x]`, `n x (hidden + input)`.
    hx: Matrix,
    /// `[r ⊙ h | x]`, `n x (hidden + input)`.
    rhx: Matrix,
    /// Update gate (post-sigmoid).
    z: Matrix,
    /// Reset gate (post-sigmoid).
    r: Matrix,
    /// Candidate state (post-tanh).
    c: Matrix,
    /// Row activity mask (`n x 1`), if this was a masked step.
    mask: Option<Matrix>,
}

/// Borrowed shard layout handed to the sharded fused ops at record time.
///
/// A megabatch packs `B` samples block-diagonally; its plan precompiles, per
/// fused op, where each sample's slice of the work lives. All three arrays
/// have `B + 1` ascending entries:
///
/// - `active`: offsets into the op's active row/index list (`rows`, `ids`);
///   shard `s` owns entries `active[s]..active[s+1]`.
/// - `dense`: row bounds of the dense per-path state the op reads/writes.
/// - `entity`: row bounds of the entity space gathered from / scattered into.
///
/// Because the megabatch is block-diagonal, shard `s`'s active entries only
/// reference dense rows in `dense[s]..dense[s+1]` and entity rows in
/// `entity[s]..entity[s+1]` — which is what makes every shard's reads and
/// writes disjoint, and therefore parallelizable without changing a single
/// bit of the result.
#[derive(Debug, Clone)]
pub struct ShardSplit<'a> {
    /// Offsets into the op's active list (len `B + 1`).
    pub active: IndexInput<'a>,
    /// Dense (path-state) row bounds (len `B + 1`), spanning all rows.
    pub dense: IndexInput<'a>,
    /// Entity (gather/scatter target) row bounds (len `B + 1`).
    pub entity: IndexInput<'a>,
}

impl<'a> ShardSplit<'a> {
    /// Build a split from three borrowed slices — the copying contract every
    /// pre-zero-copy caller used (and tests still use).
    pub fn borrowed(active: &'a [usize], dense: &'a [usize], entity: &'a [usize]) -> Self {
        Self {
            active: active.into(),
            dense: dense.into(),
            entity: entity.into(),
        }
    }
}

/// Owned capture of a [`ShardSplit`] stored on a tape node: pooled copies
/// (recycled through the index pool on [`Graph::reset`]) or zero-copy shared
/// views, mirroring what the caller handed in.
#[derive(Debug, Default)]
pub(crate) struct OpShards {
    active: IndexList,
    dense: IndexList,
    entity: IndexList,
}

impl OpShards {
    /// Number of shards.
    fn len(&self) -> usize {
        self.active.len().saturating_sub(1)
    }

    fn capture(idx_pool: &mut Vec<Vec<usize>>, copied: &mut u64, split: &ShardSplit<'_>) -> Self {
        Self {
            active: intern_indices(idx_pool, copied, &split.active),
            dense: intern_indices(idx_pool, copied, &split.dense),
            entity: intern_indices(idx_pool, copied, &split.entity),
        }
    }

    fn recycle(self, idx_pool: &mut Vec<Vec<usize>>) {
        recycle_index(idx_pool, self.active);
        recycle_index(idx_pool, self.dense);
        recycle_index(idx_pool, self.entity);
    }
}

/// Validate a shard split against the op's active-list length and the row
/// counts of the spaces it partitions (`None` skips that check).
fn validate_split(
    split: &ShardSplit<'_>,
    active_len: usize,
    dense_rows: Option<usize>,
    entity_rows: Option<usize>,
) {
    let check = |bounds: &[usize], total: usize, what: &str| {
        assert!(
            bounds.first() == Some(&0) && bounds.last() == Some(&total),
            "shard split: {what} bounds must span 0..{total}, got {bounds:?}"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] <= w[1]),
            "shard split: {what} bounds must be ascending"
        );
    };
    check(split.active.as_slice(), active_len, "active");
    if let Some(n) = dense_rows {
        check(split.dense.as_slice(), n, "dense");
    }
    if let Some(n) = entity_rows {
        check(split.entity.as_slice(), n, "entity");
    }
    assert_eq!(
        split.active.as_slice().len(),
        split.dense.as_slice().len(),
        "shard split: bounds arrays must agree on shard count"
    );
    assert_eq!(
        split.active.as_slice().len(),
        split.entity.as_slice().len(),
        "shard split: bounds arrays must agree on shard count"
    );
}

/// Validate a dense row-bounds partition (ascending, spanning `0..rows`)
/// and capture it into a pooled index buffer when it actually splits the
/// rows (more than one shard). Dense sharded ops — the readout matmuls, bias
/// adds and SELU maps, and the link/node GRU updates — carry only this one
/// bounds array: every row is active, so there is no separate active/entity
/// indirection like the [`ShardSplit`] of the compacted message-passing ops.
fn capture_dense_shards(
    idx_pool: &mut Vec<Vec<usize>>,
    copied: &mut u64,
    bounds: Option<&IndexInput<'_>>,
    rows: usize,
) -> Option<IndexList> {
    let input = bounds?;
    let b = input.as_slice();
    assert!(
        b.first() == Some(&0) && b.last() == Some(&rows),
        "dense shards: bounds must span 0..{rows}, got {b:?}"
    );
    assert!(
        b.windows(2).all(|w| w[0] <= w[1]),
        "dense shards: bounds must be ascending"
    );
    (b.len() > 2).then(|| intern_indices(idx_pool, copied, input))
}

/// Minimum per-op element-traffic estimate before fanning out to the
/// worker pool: below this, dispatch latency beats the parallel win (late
/// sequence positions have a handful of active rows). Inline vs pooled
/// execution is bitwise identical, so this is purely a scheduling
/// heuristic.
const PAR_MIN_ELEMS: usize = 4096;

/// The pool, if the estimated work is heavy enough to be worth a dispatch.
fn pool_if_worth(
    pool: &Option<Arc<WorkerPool>>,
    threshold: usize,
    work_elems: usize,
) -> Option<&WorkerPool> {
    pool.as_deref().filter(|_| work_elems >= threshold)
}

/// Run `f` over every task, inline or fanned out on the worker pool.
///
/// Workers pick tasks round-robin by index; since every task's result is a
/// pure function of its inputs (disjoint writes, shard-local scratch), the
/// produced bits do not depend on the worker count — including zero workers
/// (the inline path). `f` must not panic-degrade shared state; a panicking
/// task propagates out of the pool.
fn run_shard_tasks<T: Send>(pool: Option<&WorkerPool>, tasks: &mut [T], f: impl Fn(&mut T) + Sync) {
    match pool {
        Some(pool) if tasks.len() > 1 => {
            let workers = pool.workers();
            let slots: Vec<Mutex<&mut T>> = tasks.iter_mut().map(Mutex::new).collect();
            pool.run(&|w| {
                for (s, slot) in slots.iter().enumerate() {
                    if s % workers == w {
                        let mut guard = slot.lock().expect("shard task poisoned");
                        f(&mut **guard);
                    }
                }
            });
        }
        _ => {
            for t in tasks.iter_mut() {
                f(t);
            }
        }
    }
}

/// Run `f` over disjoint element chunks of `dst`, inline or on the pool.
///
/// The chunk boundaries are a pure function of `dst.len()` (fixed block
/// size), never of the worker count, and [`kernels::reduce_partials`]'s
/// per-element accumulation order is chunking-invariant besides — so the
/// merged bits cannot depend on scheduling.
fn reduce_partials_parallel(pool: Option<&WorkerPool>, dst: &mut Matrix, partials: &[&Matrix]) {
    const CHUNK: usize = 4096;
    let parts: Vec<&[f32]> = partials.iter().map(|p| p.as_slice()).collect();
    let d = dst.as_mut_slice();
    if pool.is_none() || d.len() <= CHUNK {
        kernels::reduce_partials(d, 0, &parts);
        return;
    }
    let mut tasks: Vec<(usize, &mut [f32])> = Vec::with_capacity(d.len() / CHUNK + 1);
    let mut rest = d;
    let mut offset = 0;
    while !rest.is_empty() {
        let take = rest.len().min(CHUNK);
        let (chunk, tail) = rest.split_at_mut(take);
        tasks.push((offset, chunk));
        offset += take;
        rest = tail;
    }
    run_shard_tasks(
        pool,
        &mut tasks,
        |(off, chunk): &mut (usize, &mut [f32])| {
            kernels::reduce_partials(chunk, *off, &parts);
        },
    );
}

/// Recorded operation: the inputs and any auxiliary data the adjoint needs.
#[derive(Debug)]
pub(crate) enum Op {
    /// Leaf node. `requires_grad = false` marks constants whose gradient is
    /// never materialized (saves memory for targets and masks).
    Leaf {
        requires_grad: bool,
    },
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    /// Matrix product `a · b`. `shards`, when present, is a dense row-bounds
    /// partition of `a`'s (and the output's) rows: the forward computes each
    /// output row block independently (bitwise identical to one full call),
    /// and the adjoint row-blocks the input gradient while accumulating
    /// `b`'s weight gradient as per-shard partials merged in shard order.
    MatMul {
        a: Var,
        b: Var,
        shards: Option<IndexList>,
    },
    /// Broadcast-add a `1 x c` bias row to every row of `x`. `shards` is a
    /// dense row partition (see [`Op::MatMul`]); the sharded adjoint reduces
    /// the bias gradient as per-shard column-sum partials in shard order.
    AddBias {
        x: Var,
        bias: Var,
        shards: Option<IndexList>,
    },
    /// Element-wise `a * x + b`. Only the slope is recorded: the adjoint of
    /// an affine map does not depend on the offset.
    Affine {
        x: Var,
        a: f32,
    },
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    /// SELU activation. `shards` is a dense row partition (see
    /// [`Op::MatMul`]): element-wise work is trivially row-decomposable, so
    /// forward and adjoint fan row blocks across the pool bitwise-safely.
    /// The readout MLP's hidden layers are the only heavy SELU consumers.
    Selu {
        x: Var,
        shards: Option<IndexList>,
    },
    Softplus(Var),
    Abs(Var),
    Square(Var),
    /// Element-wise `min(x, c)` for a scalar cap `c`.
    ClampMax {
        x: Var,
        cap: f32,
    },
    ConcatCols(Var, Var),
    SliceCols {
        x: Var,
        start: usize,
        end: usize,
    },
    GatherRows {
        x: Var,
        indices: IndexList,
        /// Megabatch shard layout (`active` splits `indices`; `entity`
        /// bounds the rows of `x` the adjoint scatters into).
        shards: Option<Box<OpShards>>,
    },
    SegmentSum {
        x: Var,
        segments: IndexList,
    },
    /// Multiply each row of `x` by the matching entry of a constant `n x 1`
    /// mask. The mask is captured by value: it is padding structure, not a
    /// differentiable quantity.
    MaskRows {
        x: Var,
        mask: Matrix,
    },
    Sum(Var),
    Mean(Var),
    /// Fused `gather_rows` + `mask_rows`: `out[i] = mask[i] * x[indices[i]]`.
    GatherMask {
        x: Var,
        indices: IndexList,
        mask: Matrix,
    },
    /// Fused masked scatter-add accumulate:
    /// `out = acc; out[segments[i]] += mask[i] * x[i]`.
    SegmentAcc {
        acc: Var,
        x: Var,
        segments: IndexList,
        mask: Matrix,
    },
    /// One whole (optionally masked) GRU step as a single node.
    GruStep {
        vars: GruVars,
        h: Var,
        x: Var,
        saved: Box<GruSaved>,
    },
    /// Row-compacted GRU step: only `rows` advance; all other rows of `h`
    /// pass through untouched. `x` is already compacted (`rows.len()` rows).
    GruStepRows {
        vars: GruVars,
        h: Var,
        x: Var,
        rows: IndexList,
        saved: Box<GruSaved>,
        /// Megabatch shard layout (`active` splits `rows`; `dense` bounds
        /// the rows of `h`). When present, the adjoint accumulates the GRU
        /// parameter gradients as per-shard partials merged in shard order —
        /// a canonical order that does not depend on how many workers run.
        shards: Option<Box<OpShards>>,
    },
    /// Row-compacted scatter-add accumulate:
    /// `out = acc; out[segments[k]] += x[rows[k]]`.
    SegmentAccRows {
        acc: Var,
        x: Var,
        rows: IndexList,
        segments: IndexList,
        /// Megabatch shard layout (`active` splits `rows`/`segments`;
        /// `dense` bounds the rows of `x`, `entity` the rows of `acc`).
        shards: Option<Box<OpShards>>,
    },
}

struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
}

/// A define-by-run differentiation tape.
///
/// Typical lifecycle: create, register parameters/inputs, run ops, call
/// [`Graph::backward`] once, read gradients with [`Graph::grad`] — then
/// either drop it or [`Graph::reset`] it to replay the next sample with the
/// same buffers.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    /// Free list of recycled backing buffers (see module docs).
    pool: Vec<Vec<f32>>,
    /// Free list of recycled index buffers (gather/scatter id lists).
    idx_pool: Vec<Vec<usize>>,
    /// Seed-faithful reference mode: primitive matmul/activation ops run the
    /// pre-refactor naive kernels and libm transcendentals. Used as the
    /// "before" side of the training-step benchmark and by equivalence tests.
    reference_mode: bool,
    /// Inference mode: fused GRU ops recycle their saved-for-backward
    /// activations immediately instead of keeping them resident until
    /// `reset`. Forward values are bitwise unchanged; `backward` is
    /// unavailable. This is the serving hot path's memory-footprint lever:
    /// a megabatch forward stops dragging ~10x its working set through the
    /// cache for gradients nobody will ask for.
    ///
    /// Inference mode additionally updates GRU states and scatter-add
    /// accumulators **in place**: the fused step ops steal the input state's
    /// buffer instead of copying it, so a megabatch inference stops paying
    /// an `n x state_dim` copy per sequence position. The consumed input
    /// `Var`'s value becomes empty — see [`Graph::gru_step_rows`].
    inference_mode: bool,
    /// Optional gang for intra-megabatch sharding: fused ops recorded with a
    /// [`ShardSplit`] fan their per-shard work out to these workers. Results
    /// are bitwise identical with and without the pool, at any worker count.
    worker_pool: Option<Arc<WorkerPool>>,
    /// Work-size floor (estimated element traffic) below which sharded ops
    /// skip the pool and run inline; 0 forces every sharded op through the
    /// pool. Defaults to `PAR_MIN_ELEMS` (set lazily on first use).
    par_threshold: Option<usize>,
    /// Cumulative count of index words the tape has copied into pooled
    /// buffers (never cleared by `reset`). Zero-copy tests assert this stays
    /// flat across steps bound against a cached composition.
    idx_copied: u64,
    /// Zero-copy override: `Some` wins over the `RN_ZERO_COPY` env knob.
    zero_copy: Option<bool>,
    /// Grow-only identity prefix `0..cap`, shared with dense fused steps in
    /// zero-copy mode so they stop materializing a per-step identity row
    /// list.
    identity: Option<Arc<[usize]>>,
}

/// Pop a recycled buffer (or allocate) and shape it into a zeroed matrix.
fn pool_matrix(pool: &mut Vec<Vec<f32>>, rows: usize, cols: usize) -> Matrix {
    let len = rows * cols;
    let mut buf = pool.pop().unwrap_or_default();
    buf.clear();
    buf.resize(len, 0.0);
    Matrix::from_vec(rows, cols, buf)
}

/// Pop a recycled buffer and shape it into a matrix of **arbitrary
/// contents** — for scratch every element of which is overwritten before it
/// is read (gathered/copied/matmul-`into` targets). Skipping the zero fill
/// is a measurable win: the fused hot loop shapes several such buffers per
/// tape node.
fn pool_matrix_scratch(pool: &mut Vec<Vec<f32>>, rows: usize, cols: usize) -> Matrix {
    let len = rows * cols;
    let mut buf = pool.pop().unwrap_or_default();
    if buf.len() > len {
        buf.truncate(len);
    } else {
        buf.resize(len, 0.0);
    }
    Matrix::from_vec(rows, cols, buf)
}

/// Return a matrix's backing buffer to the free list.
fn pool_recycle(pool: &mut Vec<Vec<f32>>, m: Matrix) {
    pool.push(m.into_vec());
}

impl GruSaved {
    /// The post-discard placeholder inference mode stores on the node: every
    /// matrix empty, nothing resident.
    fn discarded() -> Self {
        Self {
            hx: Matrix::zeros(0, 0),
            rhx: Matrix::zeros(0, 0),
            z: Matrix::zeros(0, 0),
            r: Matrix::zeros(0, 0),
            c: Matrix::zeros(0, 0),
            mask: None,
        }
    }
}

/// Return a fused GRU node's saved activations to the free list.
fn recycle_gru_saved(pool: &mut Vec<Vec<f32>>, s: GruSaved) {
    pool_recycle(pool, s.hx);
    pool_recycle(pool, s.rhx);
    pool_recycle(pool, s.z);
    pool_recycle(pool, s.r);
    pool_recycle(pool, s.c);
    if let Some(m) = s.mask {
        pool_recycle(pool, m);
    }
}

/// Copy an index slice into a recycled buffer (or a fresh one), counting the
/// copied words into the tape's traffic counter.
fn pool_indices(pool: &mut Vec<Vec<usize>>, copied: &mut u64, src: &[usize]) -> Vec<usize> {
    *copied += src.len() as u64;
    let mut v = pool.pop().unwrap_or_default();
    v.clear();
    v.extend_from_slice(src);
    v
}

/// Record an index input on the tape: copy a borrowed slice into a pooled
/// buffer, or store a shared view as-is (zero words copied).
fn intern_indices(
    pool: &mut Vec<Vec<usize>>,
    copied: &mut u64,
    input: &IndexInput<'_>,
) -> IndexList {
    match input {
        IndexInput::Copied(s) => IndexList::Pooled(pool_indices(pool, copied, s)),
        IndexInput::Shared(sh) => IndexList::Shared(sh.clone()),
    }
}

/// Return a recorded index list to the free list (pooled copies only; shared
/// views are just dropped).
fn recycle_index(idx_pool: &mut Vec<Vec<usize>>, list: IndexList) {
    if let IndexList::Pooled(v) = list {
        idx_pool.push(v);
    }
}

/// Add the column sums of `src` into the `1 x cols` accumulator `bias_grad`.
fn add_col_sums(bias_grad: &mut Matrix, src: &Matrix) {
    debug_assert_eq!(bias_grad.cols(), src.cols());
    let cols = src.cols();
    let acc = bias_grad.as_mut_slice();
    for r in 0..src.rows() {
        for (a, &v) in acc
            .iter_mut()
            .zip(&src.as_slice()[r * cols..(r + 1) * cols])
        {
            *a += v;
        }
    }
}

/// Compute both gate pre-activations `z = hx·W_z` and `r = hx·W_r` — through
/// the merged `[W_z|W_r]` kernel when one is bound (one matmul, one pass over
/// `hx`), through two matmuls otherwise. Each output element is accumulated
/// in the same order either way, so the two paths are bitwise identical.
#[allow(clippy::too_many_arguments)]
fn gate_matmuls(
    pool: &mut Vec<Vec<f32>>,
    hx: &Matrix,
    w_z: &Matrix,
    w_r: &Matrix,
    w_zr: Option<&Matrix>,
    hidden: usize,
    z: &mut Matrix,
    r: &mut Matrix,
) {
    match w_zr {
        Some(wzr) => {
            assert_eq!(
                wzr.shape(),
                (w_z.rows(), 2 * hidden),
                "gru_step: merged [W_z|W_r] kernel shape"
            );
            let n = hx.rows();
            let mut zr = pool_matrix_scratch(pool, n, 2 * hidden);
            hx.matmul_into(wzr, &mut zr);
            for i in 0..n {
                let src = zr.row(i);
                z.row_mut(i).copy_from_slice(&src[..hidden]);
                r.row_mut(i).copy_from_slice(&src[hidden..]);
            }
            pool_recycle(pool, zr);
        }
        None => {
            hx.matmul_into(w_z, z);
            hx.matmul_into(w_r, r);
        }
    }
}

/// Read-only inputs shared by every shard of one fused row-compacted GRU
/// step forward.
struct GruRowsFwdCtx<'a> {
    /// Old state `h`, `n x hidden` — `None` when the step runs in place (the
    /// state rows then live in each shard's `out` block already).
    hv: Option<&'a [f32]>,
    /// Compacted input `x`, `a x input`.
    xv: &'a [f32],
    /// Active row per compacted position.
    rows: &'a [usize],
    w_z: &'a Matrix,
    b_z: &'a [f32],
    w_r: &'a Matrix,
    b_r: &'a [f32],
    w_c: &'a Matrix,
    b_c: &'a [f32],
    /// Merged `[W_z|W_r]` kernel, when bound.
    w_zr: Option<&'a Matrix>,
    hidden: usize,
    input: usize,
}

/// One shard's mutable slices for the fused GRU step forward. `k_*` index
/// the compacted (active) dimension, `p_*` the dense state rows; all slices
/// are exactly the shard's disjoint blocks of the shared buffers.
struct GruRowsFwdTask<'a> {
    k_lo: usize,
    k_hi: usize,
    p_lo: usize,
    hx: &'a mut [f32],
    zr: Option<&'a mut [f32]>,
    z: &'a mut [f32],
    r: &'a mut [f32],
    rhx: &'a mut [f32],
    c: &'a mut [f32],
    /// Dense state rows `p_lo..p_hi`: on entry either uninitialized (copy
    /// mode: filled from `ctx.hv` first) or holding the old state rows
    /// (in-place mode); on exit, the stepped state.
    out: &'a mut [f32],
}

/// Advance one shard of a row-compacted GRU step (see
/// [`Graph::gru_step_rows`]). Every read and write stays inside the shard's
/// blocks, and each output element is computed with exactly the arithmetic
/// of the unsharded kernel — which is what makes any shard decomposition,
/// on any number of threads, bitwise identical.
fn gru_rows_forward_shard(ctx: &GruRowsFwdCtx<'_>, t: &mut GruRowsFwdTask<'_>) {
    let (hidden, input) = (ctx.hidden, ctx.input);
    let width = hidden + input;
    let a_s = t.k_hi - t.k_lo;
    // Copy mode: materialize the shard's old state rows first; afterwards
    // both modes read old state from `out`.
    if let Some(hv) = ctx.hv {
        t.out
            .copy_from_slice(&hv[t.p_lo * hidden..t.p_lo * hidden + t.out.len()]);
    }
    // hx = [h | x] over the shard's active rows.
    for k in 0..a_s {
        let row = ctx.rows[t.k_lo + k];
        let h_off = (row - t.p_lo) * hidden;
        let dst = &mut t.hx[k * width..(k + 1) * width];
        dst[..hidden].copy_from_slice(&t.out[h_off..h_off + hidden]);
        dst[hidden..].copy_from_slice(&ctx.xv[(t.k_lo + k) * input..(t.k_lo + k + 1) * input]);
    }
    // Gate pre-activations: through the merged kernel when bound (one matmul
    // over hx, split into z|r — per-element order identical to the split
    // matmuls), else two matmuls.
    match (ctx.w_zr, t.zr.as_deref_mut()) {
        (Some(wzr), Some(zr)) => {
            zr.fill(0.0);
            kernels::matmul_acc(t.hx, wzr.as_slice(), a_s, width, 2 * hidden, zr);
            for k in 0..a_s {
                let src = &zr[k * 2 * hidden..(k + 1) * 2 * hidden];
                t.z[k * hidden..(k + 1) * hidden].copy_from_slice(&src[..hidden]);
                t.r[k * hidden..(k + 1) * hidden].copy_from_slice(&src[hidden..]);
            }
        }
        _ => {
            t.z.fill(0.0);
            kernels::matmul_acc(t.hx, ctx.w_z.as_slice(), a_s, width, hidden, t.z);
            t.r.fill(0.0);
            kernels::matmul_acc(t.hx, ctx.w_r.as_slice(), a_s, width, hidden, t.r);
        }
    }
    // Fused bias + activation over the shard's whole gate block (same
    // per-element chain as the row loop, vectorized).
    if hidden > 0 {
        vact::sigmoid_bias_map_inplace(&mut t.z[..a_s * hidden], ctx.b_z);
        vact::sigmoid_bias_map_inplace(&mut t.r[..a_s * hidden], ctx.b_r);
    }
    // rhx = [r ⊙ h | x]; candidate c = tanh(rhx·W_c + b_c).
    for k in 0..a_s {
        let row = ctx.rows[t.k_lo + k];
        let h_off = (row - t.p_lo) * hidden;
        let dst = &mut t.rhx[k * width..(k + 1) * width];
        for (j, d) in dst[..hidden].iter_mut().enumerate() {
            *d = t.r[k * hidden + j] * t.out[h_off + j];
        }
        dst[hidden..].copy_from_slice(&ctx.xv[(t.k_lo + k) * input..(t.k_lo + k + 1) * input]);
    }
    t.c.fill(0.0);
    kernels::matmul_acc(t.rhx, ctx.w_c.as_slice(), a_s, width, hidden, t.c);
    if hidden > 0 {
        vact::tanh_bias_map_inplace(&mut t.c[..a_s * hidden], ctx.b_c);
    }
    // h' = (1 − z)⊙h + z⊙c on the active rows; inactive rows pass through.
    for k in 0..a_s {
        let row = ctx.rows[t.k_lo + k];
        let h_off = (row - t.p_lo) * hidden;
        for j in 0..hidden {
            let hvj = t.out[h_off + j];
            let (zj, cj) = (t.z[k * hidden + j], t.c[k * hidden + j]);
            t.out[h_off + j] = (1.0 - zj) * hvj + zj * cj;
        }
    }
}

/// Read-only inputs shared by every shard of one fused row-compacted GRU
/// step adjoint.
struct GruRowsBwdCtx<'a> {
    rows: &'a [usize],
    /// Incoming gradient (`n x hidden`).
    g: &'a [f32],
    /// Old state value (`n x hidden`).
    hv: &'a [f32],
    saved: &'a GruSaved,
    /// Transposed kernels, computed once per node and shared read-only.
    w_t_z: &'a Matrix,
    w_t_r: &'a Matrix,
    w_t_c: &'a Matrix,
    hidden: usize,
    input: usize,
}

/// Shard-local scratch for the GRU adjoint: intermediates plus the shard's
/// parameter-gradient **partials** (`pw_*`/`pb_*`, accumulated from zero and
/// merged into the gradient slots in fixed shard order afterwards).
struct GruBwdScratch {
    gm: Matrix,
    gz: Matrix,
    gc: Matrix,
    gr: Matrix,
    g_rhx: Matrix,
    g_hx: Matrix,
    pw_z: Matrix,
    pb_z: Matrix,
    pw_r: Matrix,
    pb_r: Matrix,
    pw_c: Matrix,
    pb_c: Matrix,
}

impl GruBwdScratch {
    /// Return every scratch matrix — intermediates AND parameter partials —
    /// to the free list. The single field list both backward branches
    /// recycle through, so adding a field to this struct cannot leak on
    /// one branch only.
    fn recycle(self, pool: &mut Vec<Vec<f32>>) {
        for m in [
            self.gm, self.gz, self.gc, self.gr, self.g_rhx, self.g_hx, self.pw_z, self.pb_z,
            self.pw_r, self.pb_r, self.pw_c, self.pb_c,
        ] {
            pool_recycle(pool, m);
        }
    }
}

/// One shard's mutable state for the GRU adjoint.
struct GruRowsBwdTask<'a> {
    k_lo: usize,
    k_hi: usize,
    p_lo: usize,
    /// Dense block of the state gradient (rows `p_lo..p_hi`).
    gh: &'a mut [f32],
    /// Active block of the compacted input gradient (rows `k_lo..k_hi`).
    gx: &'a mut [f32],
    scratch: GruBwdScratch,
}

/// Chunk size (elements) for fanning element-wise adjoints across the
/// worker pool. A multiple of the 8-lane vector width, so every chunk
/// decomposes into the same main/tail lanes the monolithic sweep would use.
const ELEMWISE_CHUNK: usize = 4096;

/// Run a `dst[i] = kernel(g[i], src[i])`-shaped adjoint over fixed chunks,
/// fanned across the worker pool when attached. Position-independent
/// element maps split at any boundary without changing bits, so this is
/// bitwise identical to one whole-slice kernel call at any worker count.
fn run_elementwise_chunks(
    pool: Option<&WorkerPool>,
    g: &[f32],
    src: &[f32],
    dst: &mut [f32],
    kernel: fn(&[f32], &[f32], &mut [f32]),
) {
    debug_assert_eq!(g.len(), dst.len());
    debug_assert_eq!(src.len(), dst.len());
    let mut tasks: Vec<(usize, &mut [f32])> = dst
        .chunks_mut(ELEMWISE_CHUNK)
        .enumerate()
        .map(|(i, chunk)| (i * ELEMWISE_CHUNK, chunk))
        .collect();
    run_shard_tasks(
        pool,
        &mut tasks,
        |(off, chunk): &mut (usize, &mut [f32])| {
            let len = chunk.len();
            kernel(&g[*off..*off + len], &src[*off..*off + len], chunk);
        },
    );
}

/// `acc[0..cols] += column sums of the rows of src` (slice form of
/// [`add_col_sums`]).
fn add_col_sums_slice(acc: &mut [f32], src: &[f32], cols: usize) {
    for row in src.chunks_exact(cols) {
        for (a, &v) in acc.iter_mut().zip(row) {
            *a += v;
        }
    }
}

/// The adjoint of one shard of a row-compacted GRU step. Row-disjoint
/// gradients (`gh`, `gx`) are written with exactly the unsharded kernel's
/// per-element arithmetic; parameter gradients land in the shard's zeroed
/// partials. Reads and writes never leave the shard's blocks, so shards run
/// concurrently and bitwise-reproducibly at any worker count.
fn gru_rows_backward_shard(ctx: &GruRowsBwdCtx<'_>, t: &mut GruRowsBwdTask<'_>) {
    let (hidden, input) = (ctx.hidden, ctx.input);
    let width = hidden + input;
    let a_s = t.k_hi - t.k_lo;
    let s = ctx.saved;
    let sc = &mut t.scratch;

    // Pass-through rows keep the incoming gradient; active rows are replaced
    // by the GRU adjoint below.
    t.gh.copy_from_slice(&ctx.g[t.p_lo * hidden..t.p_lo * hidden + t.gh.len()]);

    // Compact incoming gradient over the shard's active rows.
    for k in 0..a_s {
        let row = ctx.rows[t.k_lo + k];
        sc.gm
            .row_mut(k)
            .copy_from_slice(&ctx.g[row * hidden..(row + 1) * hidden]);
    }

    // gz = gm ⊙ (c - h); gc = gm ⊙ z; gh[row] = gm ⊙ (1-z)
    for k in 0..a_s {
        let row = ctx.rows[t.k_lo + k];
        let gm_r = sc.gm.row(k);
        let zr = s.z.row(t.k_lo + k);
        let cr = s.c.row(t.k_lo + k);
        let hr = &ctx.hv[row * hidden..(row + 1) * hidden];
        {
            let gz_r = sc.gz.row_mut(k);
            for j in 0..hidden {
                gz_r[j] = gm_r[j] * (cr[j] - hr[j]);
            }
        }
        {
            let gc_r = sc.gc.row_mut(k);
            for j in 0..hidden {
                gc_r[j] = gm_r[j] * zr[j];
            }
        }
        {
            let gh_r = &mut t.gh[(row - t.p_lo) * hidden..(row - t.p_lo + 1) * hidden];
            for j in 0..hidden {
                gh_r[j] = gm_r[j] * (1.0 - zr[j]);
            }
        }
    }

    // Candidate branch: gc_pre = gc ⊙ (1 - c²), vectorized in place.
    vact::tanh_deriv_mul_inplace(
        sc.gc.as_mut_slice(),
        &s.c.as_slice()[t.k_lo * hidden..t.k_hi * hidden],
    );
    // pW_c += rhx_shard^T · gc_pre ; pb_c += colsum(gc_pre)
    kernels::matmul_tn_acc(
        &s.rhx.as_slice()[t.k_lo * width..t.k_hi * width],
        sc.gc.as_slice(),
        a_s,
        width,
        hidden,
        sc.pw_c.as_mut_slice(),
    );
    add_col_sums_slice(sc.pb_c.as_mut_slice(), sc.gc.as_slice(), hidden);
    // g_rhx = gc_pre · W_c^T
    sc.g_rhx.as_mut_slice().fill(0.0);
    kernels::matmul_acc(
        sc.gc.as_slice(),
        ctx.w_t_c.as_slice(),
        a_s,
        hidden,
        width,
        sc.g_rhx.as_mut_slice(),
    );

    // Split g_rhx: left -> r⊙h branch, right -> x
    for k in 0..a_s {
        let row = ctx.rows[t.k_lo + k];
        let row_slice = sc.g_rhx.row(k);
        let rr = s.r.row(t.k_lo + k);
        let hr = &ctx.hv[row * hidden..(row + 1) * hidden];
        {
            let gr_r = sc.gr.row_mut(k);
            for j in 0..hidden {
                gr_r[j] = row_slice[j] * hr[j];
            }
        }
        {
            let gh_r = &mut t.gh[(row - t.p_lo) * hidden..(row - t.p_lo + 1) * hidden];
            for j in 0..hidden {
                gh_r[j] += row_slice[j] * rr[j];
            }
        }
        t.gx[k * input..(k + 1) * input].copy_from_slice(&row_slice[hidden..]);
    }

    // Gate pre-activations: σ' from outputs, vectorized in place.
    vact::sigmoid_deriv_mul_inplace(
        sc.gz.as_mut_slice(),
        &s.z.as_slice()[t.k_lo * hidden..t.k_hi * hidden],
    );
    vact::sigmoid_deriv_mul_inplace(
        sc.gr.as_mut_slice(),
        &s.r.as_slice()[t.k_lo * hidden..t.k_hi * hidden],
    );

    let hx_shard = &s.hx.as_slice()[t.k_lo * width..t.k_hi * width];
    kernels::matmul_tn_acc(
        hx_shard,
        sc.gz.as_slice(),
        a_s,
        width,
        hidden,
        sc.pw_z.as_mut_slice(),
    );
    add_col_sums_slice(sc.pb_z.as_mut_slice(), sc.gz.as_slice(), hidden);
    kernels::matmul_tn_acc(
        hx_shard,
        sc.gr.as_slice(),
        a_s,
        width,
        hidden,
        sc.pw_r.as_mut_slice(),
    );
    add_col_sums_slice(sc.pb_r.as_mut_slice(), sc.gr.as_slice(), hidden);

    // g_hx = gz_pre·W_z^T + gr_pre·W_r^T
    sc.g_hx.as_mut_slice().fill(0.0);
    kernels::matmul_acc(
        sc.gz.as_slice(),
        ctx.w_t_z.as_slice(),
        a_s,
        hidden,
        width,
        sc.g_hx.as_mut_slice(),
    );
    kernels::matmul_acc(
        sc.gr.as_slice(),
        ctx.w_t_r.as_slice(),
        a_s,
        hidden,
        width,
        sc.g_hx.as_mut_slice(),
    );
    for k in 0..a_s {
        let row = ctx.rows[t.k_lo + k];
        let row_slice = sc.g_hx.row(k);
        {
            let gh_r = &mut t.gh[(row - t.p_lo) * hidden..(row - t.p_lo + 1) * hidden];
            for j in 0..hidden {
                gh_r[j] += row_slice[j];
            }
        }
        let gx_r = &mut t.gx[k * input..(k + 1) * input];
        for (gxv, &v) in gx_r.iter_mut().zip(&row_slice[hidden..]) {
            *gxv += v;
        }
    }
}

/// Copy `[left_row | right_row]` into each row of `out`.
fn concat_rows_into(out: &mut Matrix, left: &Matrix, right: &Matrix) {
    let (n, lc, rc) = (left.rows(), left.cols(), right.cols());
    debug_assert_eq!(out.shape(), (n, lc + rc));
    for i in 0..n {
        let dst = out.row_mut(i);
        dst[..lc].copy_from_slice(left.row(i));
        dst[lc..].copy_from_slice(right.row(i));
    }
}

impl Graph {
    /// Empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty tape with room for `capacity` nodes (avoids reallocation in the
    /// message-passing hot loop, where the node count is predictable).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(capacity),
            ..Self::default()
        }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of buffers currently parked in the free list (observability
    /// for tests and benchmarks).
    pub fn pooled_buffers(&self) -> usize {
        self.pool.len()
    }

    /// Switch the primitive ops to the pre-refactor kernels (naive matmul,
    /// libm sigmoid/tanh/selu). Fused ops are unaffected — reference mode
    /// exists to reproduce the seed's hot path for honest before/after
    /// benchmarking and golden tests. Survives [`Graph::reset`].
    pub fn set_reference_mode(&mut self, on: bool) {
        self.reference_mode = on;
    }

    /// Toggle inference mode (see the struct docs): fused GRU steps drop
    /// their backward scratch as soon as the forward value is computed.
    /// Values are bitwise identical either way. [`Graph::backward`] panics
    /// while the mode is on; after toggling it off, [`Graph::reset`] before
    /// recording anything you intend to differentiate — nodes recorded
    /// under inference mode have no saved activations. The `predict_*`
    /// entry points scope the mode per call (reset, enable, run, disable).
    pub fn set_inference_mode(&mut self, on: bool) {
        self.inference_mode = on;
    }

    /// True while the tape records forward-only (inference) computations.
    pub fn inference_mode(&self) -> bool {
        self.inference_mode
    }

    /// Attach (or detach) a worker gang for intra-megabatch sharding. Fused
    /// ops recorded with a [`ShardSplit`] run their per-shard forward kernels
    /// on the gang, and [`Graph::backward`] fans per-shard adjoints out to
    /// it. Pure acceleration: results are bitwise identical with `None`,
    /// with one worker, or with sixty-four. Survives [`Graph::reset`].
    pub fn set_worker_pool(&mut self, pool: Option<Arc<WorkerPool>>) {
        self.worker_pool = pool;
    }

    /// The attached shard worker gang, if any.
    pub fn worker_pool(&self) -> Option<&Arc<WorkerPool>> {
        self.worker_pool.as_ref()
    }

    /// Override the work-size floor below which sharded ops run inline
    /// instead of dispatching to the pool (default: `PAR_MIN_ELEMS` —
    /// late sequence positions with a handful of rows are cheaper inline).
    /// Scheduling only; bits are identical at any threshold. Survives
    /// [`Graph::reset`].
    pub fn set_parallel_threshold(&mut self, elems: usize) {
        self.par_threshold = Some(elems);
    }

    /// The effective inline/pool work-size floor.
    fn par_threshold(&self) -> usize {
        self.par_threshold.unwrap_or(PAR_MIN_ELEMS)
    }

    /// Whether this tape runs in zero-copy mode: callers that own a cached
    /// composition hand ops [`IndexInput::Shared`] views instead of slices
    /// the tape must copy. Defaults to the `RN_ZERO_COPY` env knob (on
    /// unless set to `0`/`false`/`off`); [`Graph::set_zero_copy`] overrides.
    /// Recorded contents are identical either way, so this is a pure
    /// memory-traffic lever — results are bitwise unchanged.
    pub fn zero_copy(&self) -> bool {
        self.zero_copy.unwrap_or_else(env_zero_copy)
    }

    /// Override the zero-copy mode for this tape (wins over `RN_ZERO_COPY`).
    /// Survives [`Graph::reset`].
    pub fn set_zero_copy(&mut self, on: bool) {
        self.zero_copy = Some(on);
    }

    /// Cumulative count of index words this tape has copied into pooled
    /// buffers at record time (never cleared by [`Graph::reset`]). A step
    /// recorded entirely against shared composition views leaves this flat —
    /// the zero-copy acceptance tests assert exactly that.
    pub fn index_words_copied(&self) -> u64 {
        self.idx_copied
    }

    /// Shared identity row list `0..n`, grown on demand and recorded by
    /// refcount — the zero-copy replacement for building a fresh identity
    /// `Vec` per dense fused step.
    fn identity_rows(&mut self, n: usize) -> SharedIndices {
        let cur = self.identity.as_ref().map_or(0, |a| a.len());
        if cur < n {
            self.identity = Some((0..n.max(cur * 2)).collect::<Vec<_>>().into());
        }
        SharedIndices::new(self.identity.clone().expect("identity grown"), 0, n)
    }

    /// Clear the tape for reuse, retaining every allocation.
    ///
    /// All `Var` handles from before the reset become invalid. Node values,
    /// gradients and fused-op scratch matrices are harvested into the free
    /// list, so the next forward/backward replays allocation-free once the
    /// pool has warmed up. A reset tape computes bit-identical results to a
    /// fresh one (pooled buffers are fully overwritten before use).
    pub fn reset(&mut self) {
        let pool = &mut self.pool;
        let idx_pool = &mut self.idx_pool;
        for node in self.nodes.drain(..) {
            pool_recycle(pool, node.value);
            if let Some(g) = node.grad {
                pool_recycle(pool, g);
            }
            match node.op {
                Op::MaskRows { mask, .. } => pool_recycle(pool, mask),
                Op::MatMul {
                    shards: Some(s), ..
                }
                | Op::AddBias {
                    shards: Some(s), ..
                }
                | Op::Selu {
                    shards: Some(s), ..
                } => recycle_index(idx_pool, s),
                Op::GatherRows {
                    indices, shards, ..
                } => {
                    recycle_index(idx_pool, indices);
                    if let Some(s) = shards {
                        s.recycle(idx_pool);
                    }
                }
                Op::SegmentSum { segments, .. } => recycle_index(idx_pool, segments),
                Op::GatherMask { mask, indices, .. } => {
                    pool_recycle(pool, mask);
                    recycle_index(idx_pool, indices);
                }
                Op::SegmentAcc { mask, segments, .. } => {
                    pool_recycle(pool, mask);
                    recycle_index(idx_pool, segments);
                }
                Op::SegmentAccRows {
                    rows,
                    segments,
                    shards,
                    ..
                } => {
                    recycle_index(idx_pool, rows);
                    recycle_index(idx_pool, segments);
                    if let Some(s) = shards {
                        s.recycle(idx_pool);
                    }
                }
                Op::GruStep { saved, .. } => {
                    recycle_gru_saved(pool, *saved);
                }
                Op::GruStepRows {
                    rows,
                    saved,
                    shards,
                    ..
                } => {
                    recycle_index(idx_pool, rows);
                    recycle_gru_saved(pool, *saved);
                    if let Some(s) = shards {
                        s.recycle(idx_pool);
                    }
                }
                _ => {}
            }
        }
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        Var(self.nodes.len() - 1)
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    /// Register a differentiable leaf (a model parameter or input).
    pub fn param(&mut self, value: Matrix) -> Var {
        self.push(
            value,
            Op::Leaf {
                requires_grad: true,
            },
        )
    }

    /// Register a non-differentiable leaf (targets, masks, constants).
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(
            value,
            Op::Leaf {
                requires_grad: false,
            },
        )
    }

    /// Register a non-differentiable leaf built in a pooled buffer by `fill`.
    ///
    /// `fill` receives a zeroed `rows x cols` matrix; this is the
    /// allocation-free path for per-sample inputs on a reused tape.
    pub fn constant_with(
        &mut self,
        rows: usize,
        cols: usize,
        fill: impl FnOnce(&mut Matrix),
    ) -> Var {
        let mut m = pool_matrix(&mut self.pool, rows, cols);
        fill(&mut m);
        self.constant(m)
    }

    /// Register a non-differentiable leaf holding a copy of `src`, built in
    /// a pooled (allocation-free once warm) buffer.
    ///
    /// This is how a forward pass binds **float** state from a borrowed plan
    /// (a cached megabatch composition shared behind an `Arc`): the tape
    /// needs its own mutable copy because the fused step ops may advance
    /// states in place, stealing the leaf's buffer. Note the contrast with
    /// the tape's *index* lists, which zero-copy mode records as refcounted
    /// [`SharedIndices`] views precisely because no op ever mutates them.
    pub fn constant_copy(&mut self, src: &Matrix) -> Var {
        let mut m = pool_matrix_scratch(&mut self.pool, src.rows(), src.cols());
        m.as_mut_slice().copy_from_slice(src.as_slice());
        self.constant(m)
    }

    /// Forward value of a variable.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Gradient of the last `backward` call w.r.t. `v`, if one was produced.
    ///
    /// `None` for constants and for nodes the loss does not depend on.
    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        self.nodes[v.0].grad.as_ref()
    }

    // ------------------------------------------------------------------
    // Arithmetic
    // ------------------------------------------------------------------

    /// Element-wise sum. Shapes must match.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        self.push(v, Op::Add(a, b))
    }

    /// Element-wise difference. Shapes must match.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b));
        self.push(v, Op::Sub(a, b))
    }

    /// Element-wise (Hadamard) product. Shapes must match.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).mul(self.value(b));
        self.push(v, Op::Mul(a, b))
    }

    /// Matrix product `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        self.matmul_sharded(a, b, None)
    }

    /// [`Graph::matmul`] with a dense row-block shard layout: `bounds`
    /// partitions the rows of `a` (and of the output) into contiguous
    /// blocks, one per megabatch shard. With a worker pool attached the
    /// blocks compute in parallel; each output element is produced by
    /// exactly the full kernel's arithmetic, so the forward is bitwise
    /// identical to the unsharded call at any worker count. The adjoint
    /// row-blocks `a`'s gradient the same way and accumulates `b`'s
    /// (weight) gradient as per-shard partials merged in shard order — its
    /// own canonical grouping, also worker-count independent. Reference
    /// mode ignores the split (it reproduces the seed kernels).
    pub fn matmul_sharded(&mut self, a: Var, b: Var, bounds: Option<IndexInput<'_>>) -> Var {
        if self.reference_mode {
            let v = self.value(a).matmul_reference(self.value(b));
            return self.push(v, Op::MatMul { a, b, shards: None });
        }
        let (m, k) = self.value(a).shape();
        let n = self.value(b).cols();
        assert_eq!(
            self.value(b).rows(),
            k,
            "matmul: inner dimensions differ ({m}x{k} * {}x{n})",
            self.value(b).rows()
        );
        let shards =
            capture_dense_shards(&mut self.idx_pool, &mut self.idx_copied, bounds.as_ref(), m);
        let mut pool = std::mem::take(&mut self.pool);
        let mut out = pool_matrix_scratch(&mut pool, m, n);
        match &shards {
            Some(bounds) => {
                let a_slice = self.value(a).as_slice();
                let b_slice = self.value(b).as_slice();
                let mut tasks: Vec<(usize, usize, &mut [f32])> = out
                    .row_blocks_mut(bounds)
                    .into_iter()
                    .enumerate()
                    .map(|(s, block)| (bounds[s], bounds[s + 1], block))
                    .collect();
                run_shard_tasks(
                    pool_if_worth(&self.worker_pool, self.par_threshold(), m * (k + n)),
                    &mut tasks,
                    |(lo, hi, block): &mut (usize, usize, &mut [f32])| {
                        block.fill(0.0);
                        kernels::matmul_acc(
                            &a_slice[*lo * k..*hi * k],
                            b_slice,
                            *hi - *lo,
                            k,
                            n,
                            block,
                        );
                    },
                );
            }
            None => self.value(a).matmul_into(self.value(b), &mut out),
        }
        self.pool = pool;
        self.push(out, Op::MatMul { a, b, shards })
    }

    /// Broadcast-add a `1 x c` bias row vector to every row of `x`.
    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        self.add_bias_sharded(x, bias, None)
    }

    /// [`Graph::add_bias`] with a dense row-block shard layout (see
    /// [`Graph::matmul_sharded`]). The forward adds the bias row to each
    /// block independently (bitwise identical to the unsharded op); the
    /// adjoint reduces the bias gradient as per-shard column-sum partials
    /// merged in shard order, and row-blocks `x`'s pass-through gradient.
    pub fn add_bias_sharded(&mut self, x: Var, bias: Var, bounds: Option<IndexInput<'_>>) -> Var {
        let (rows, cols) = self.value(x).shape();
        assert_eq!(
            self.value(bias).shape(),
            (1, cols),
            "add_bias: bias must be 1 x cols"
        );
        let shards = if self.reference_mode {
            None
        } else {
            capture_dense_shards(
                &mut self.idx_pool,
                &mut self.idx_copied,
                bounds.as_ref(),
                rows,
            )
        };
        match &shards {
            Some(bounds) => {
                let mut pool = std::mem::take(&mut self.pool);
                let mut out = pool_matrix_scratch(&mut pool, rows, cols);
                {
                    let x_slice = self.value(x).as_slice();
                    let bias_row = self.value(bias).as_slice();
                    let mut tasks: Vec<(usize, &mut [f32])> = out
                        .row_blocks_mut(bounds)
                        .into_iter()
                        .enumerate()
                        .map(|(s, block)| (bounds[s], block))
                        .collect();
                    run_shard_tasks(
                        pool_if_worth(&self.worker_pool, self.par_threshold(), rows * cols),
                        &mut tasks,
                        |(lo, block): &mut (usize, &mut [f32])| {
                            for (r, dst) in block.chunks_exact_mut(cols).enumerate() {
                                let src = &x_slice[(*lo + r) * cols..(*lo + r + 1) * cols];
                                for ((d, &v), &b) in dst.iter_mut().zip(src).zip(bias_row) {
                                    *d = v + b;
                                }
                            }
                        },
                    );
                }
                self.pool = pool;
                self.push(out, Op::AddBias { x, bias, shards })
            }
            None => {
                let v = self.value(x).add_row_broadcast(self.value(bias));
                self.push(v, Op::AddBias { x, bias, shards })
            }
        }
    }

    /// Element-wise affine map `a * x + b`.
    pub fn affine(&mut self, x: Var, a: f32, b: f32) -> Var {
        let v = self.value(x).map(|t| a * t + b);
        self.push(v, Op::Affine { x, a })
    }

    /// Multiply by a scalar.
    pub fn scale(&mut self, x: Var, a: f32) -> Var {
        self.affine(x, a, 0.0)
    }

    /// `1 - x`, element-wise (the GRU blend complement).
    pub fn one_minus(&mut self, x: Var) -> Var {
        self.affine(x, -1.0, 1.0)
    }

    // ------------------------------------------------------------------
    // Activations
    // ------------------------------------------------------------------

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        // Reference mode keeps the seed's libm map; the fast path runs the
        // vectorized slice kernel (bitwise-identical to the scalar fast
        // form) into a pooled buffer.
        let v = if self.reference_mode {
            self.value(x).map(act::sigmoid_precise)
        } else {
            let (rows, cols) = self.value(x).shape();
            let mut pool = std::mem::take(&mut self.pool);
            let mut out = pool_matrix_scratch(&mut pool, rows, cols);
            vact::sigmoid_map(self.value(x).as_slice(), out.as_mut_slice());
            self.pool = pool;
            out
        };
        self.push(v, Op::Sigmoid(x))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: Var) -> Var {
        let v = if self.reference_mode {
            self.value(x).map(act::tanh_precise)
        } else {
            let (rows, cols) = self.value(x).shape();
            let mut pool = std::mem::take(&mut self.pool);
            let mut out = pool_matrix_scratch(&mut pool, rows, cols);
            vact::tanh_map(self.value(x).as_slice(), out.as_mut_slice());
            self.pool = pool;
            out
        };
        self.push(v, Op::Tanh(x))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, x: Var) -> Var {
        let v = self.value(x).map(act::relu);
        self.push(v, Op::Relu(x))
    }

    /// Scaled exponential linear unit (RouteNet's readout activation).
    pub fn selu(&mut self, x: Var) -> Var {
        self.selu_sharded(x, None)
    }

    /// [`Graph::selu`] with a dense row-block shard layout (see
    /// [`Graph::matmul_sharded`]). Element-wise maps decompose by rows
    /// trivially, so forward and adjoint are bitwise identical to the
    /// unsharded op at any worker count; the split exists so the readout
    /// MLP's activation traffic rides the same gang as its matmuls.
    pub fn selu_sharded(&mut self, x: Var, bounds: Option<IndexInput<'_>>) -> Var {
        if self.reference_mode {
            let v = self.value(x).map(act::selu_precise);
            return self.push(v, Op::Selu { x, shards: None });
        }
        let (rows, cols) = self.value(x).shape();
        let shards = capture_dense_shards(
            &mut self.idx_pool,
            &mut self.idx_copied,
            bounds.as_ref(),
            rows,
        );
        match &shards {
            Some(bounds) => {
                let mut pool = std::mem::take(&mut self.pool);
                let mut out = pool_matrix_scratch(&mut pool, rows, cols);
                {
                    let x_slice = self.value(x).as_slice();
                    let mut tasks: Vec<(usize, &mut [f32])> = out
                        .row_blocks_mut(bounds)
                        .into_iter()
                        .enumerate()
                        .map(|(s, block)| (bounds[s], block))
                        .collect();
                    run_shard_tasks(
                        pool_if_worth(&self.worker_pool, self.par_threshold(), rows * cols),
                        &mut tasks,
                        |(lo, block): &mut (usize, &mut [f32])| {
                            let len = block.len();
                            vact::selu_map(&x_slice[*lo * cols..*lo * cols + len], block);
                        },
                    );
                }
                self.pool = pool;
                self.push(out, Op::Selu { x, shards })
            }
            None => {
                let mut pool = std::mem::take(&mut self.pool);
                let mut out = pool_matrix_scratch(&mut pool, rows, cols);
                vact::selu_map(self.value(x).as_slice(), out.as_mut_slice());
                self.pool = pool;
                self.push(out, Op::Selu { x, shards })
            }
        }
    }

    /// Softplus `ln(1+e^x)`.
    pub fn softplus(&mut self, x: Var) -> Var {
        let v = self.value(x).map(act::softplus);
        self.push(v, Op::Softplus(x))
    }

    /// Element-wise absolute value.
    pub fn abs(&mut self, x: Var) -> Var {
        let v = self.value(x).map(f32::abs);
        self.push(v, Op::Abs(x))
    }

    /// Element-wise square.
    pub fn square(&mut self, x: Var) -> Var {
        let v = self.value(x).map(|t| t * t);
        self.push(v, Op::Square(x))
    }

    /// Element-wise `min(x, cap)`. Gradient flows only where `x < cap`
    /// (the tie at `x == cap` takes the pass-through branch).
    pub fn clamp_max(&mut self, x: Var, cap: f32) -> Var {
        let v = self.value(x).map(|t| t.min(cap));
        self.push(v, Op::ClampMax { x, cap })
    }

    // ------------------------------------------------------------------
    // Structure
    // ------------------------------------------------------------------

    /// Horizontal concatenation `[a | b]`. Row counts must match.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).concat_cols(self.value(b));
        self.push(v, Op::ConcatCols(a, b))
    }

    /// Column slice `x[:, start..end]`.
    pub fn slice_cols(&mut self, x: Var, start: usize, end: usize) -> Var {
        let v = self.value(x).slice_cols(start, end);
        self.push(v, Op::SliceCols { x, start, end })
    }

    /// Gather rows: `out[i] = x[indices[i]]`. Indices may repeat; the adjoint
    /// scatter-adds into the repeated rows. Output comes from the buffer pool.
    pub fn gather_rows(&mut self, x: Var, indices: &[usize]) -> Var {
        self.gather_rows_sharded(x, indices.into(), None)
    }

    /// [`Graph::gather_rows`] with a megabatch shard layout: `active` splits
    /// `indices`, `entity` bounds the rows of `x` (each shard's indices must
    /// stay inside its entity range — block-diagonality). With a worker pool
    /// attached, shards gather (and later scatter their adjoint) in
    /// parallel; the result is bitwise identical either way.
    pub fn gather_rows_sharded(
        &mut self,
        x: Var,
        ids: IndexInput<'_>,
        split: Option<ShardSplit<'_>>,
    ) -> Var {
        let mut pool = std::mem::take(&mut self.pool);
        let (x_rows, cols) = self.value(x).shape();
        let indices = ids.as_slice();
        let shards = split.and_then(|s| {
            validate_split(&s, indices.len(), None, Some(x_rows));
            debug_assert!(
                s.active
                    .as_slice()
                    .windows(2)
                    .zip(s.entity.as_slice().windows(2))
                    .all(|(ka, ea)| {
                        indices[ka[0]..ka[1]]
                            .iter()
                            .all(|&idx| idx >= ea[0] && idx < ea[1])
                    }),
                "gather_rows: shard indices escape their entity range"
            );
            (s.active.as_slice().len() > 2).then(|| {
                Box::new(OpShards::capture(
                    &mut self.idx_pool,
                    &mut self.idx_copied,
                    &s,
                ))
            })
        });
        let mut out = pool_matrix_scratch(&mut pool, indices.len(), cols);
        if cols > 0 {
            let x_slice = self.value(x).as_slice();
            let mut tasks: Vec<(usize, &mut [f32])> = match &shards {
                Some(s) => out
                    .row_blocks_mut(&s.active)
                    .into_iter()
                    .zip(s.active.iter())
                    .map(|(block, &k_lo)| (k_lo, block))
                    .collect(),
                None => vec![(0, out.as_mut_slice())],
            };
            run_shard_tasks(
                pool_if_worth(
                    &self.worker_pool,
                    self.par_threshold(),
                    indices.len() * cols,
                ),
                &mut tasks,
                |(k_lo, block): &mut (usize, &mut [f32])| {
                    for (i, dst) in block.chunks_exact_mut(cols).enumerate() {
                        let idx = indices[*k_lo + i];
                        dst.copy_from_slice(&x_slice[idx * cols..(idx + 1) * cols]);
                    }
                },
            );
        }
        self.pool = pool;
        let indices = intern_indices(&mut self.idx_pool, &mut self.idx_copied, &ids);
        self.push(out, Op::GatherRows { x, indices, shards })
    }

    /// Segment sum: `out[segments[i]] += x[i]` with `num_segments` output rows.
    /// This is RouteNet's message aggregation (paths → links, paths → nodes).
    pub fn segment_sum(&mut self, x: Var, segments: &[usize], num_segments: usize) -> Var {
        let v = self.value(x).segment_sum(segments, num_segments);
        let segments = IndexList::Pooled(pool_indices(
            &mut self.idx_pool,
            &mut self.idx_copied,
            segments,
        ));
        self.push(v, Op::SegmentSum { x, segments })
    }

    /// Multiply each row of `x` by the matching entry of the constant `n x 1`
    /// mask matrix (used to zero padded sequence positions).
    pub fn mask_rows(&mut self, x: Var, mask: &Matrix) -> Var {
        let v = self.value(x).mul_col_broadcast(mask);
        self.push(
            v,
            Op::MaskRows {
                x,
                mask: mask.clone(),
            },
        )
    }

    // ------------------------------------------------------------------
    // Fused message-passing ops
    // ------------------------------------------------------------------

    /// Fused gather + row mask: `out[i] = mask[i] * x[indices[i]]`.
    ///
    /// One tape node replacing the `gather_rows` → `mask_rows` pair. The
    /// production sweep uses the row-compacted form ([`Graph::gather_rows`]
    /// over active ids); this masked form is kept as the dense reference the
    /// compacted ops are validated against, and for callers whose masks are
    /// not 0/1. Masked rows are exact zeros, like the unfused pair.
    pub fn gather_mask(&mut self, x: Var, indices: &[usize], mask: &Matrix) -> Var {
        let mut pool = std::mem::take(&mut self.pool);
        let xv = self.value(x);
        assert_eq!(
            indices.len(),
            mask.rows(),
            "gather_mask: indices/mask mismatch"
        );
        let cols = xv.cols();
        let mut out = pool_matrix_scratch(&mut pool, indices.len(), cols);
        for (i, &idx) in indices.iter().enumerate() {
            let m = mask.get(i, 0);
            let dst = out.row_mut(i);
            let src = xv.row(idx);
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = m * s;
            }
        }
        let mut mask_copy = pool_matrix_scratch(&mut pool, mask.rows(), 1);
        mask_copy.as_mut_slice().copy_from_slice(mask.as_slice());
        self.pool = pool;
        let indices = IndexList::Pooled(pool_indices(
            &mut self.idx_pool,
            &mut self.idx_copied,
            indices,
        ));
        self.push(
            out,
            Op::GatherMask {
                x,
                indices,
                mask: mask_copy,
            },
        )
    }

    /// Fused masked scatter-add accumulate:
    /// `out = acc` then `out[segments[i]] += mask[i] * x[i]`.
    ///
    /// One tape node replacing the `mask_rows` → `segment_sum` → `add` chain
    /// that folds per-position messages into the per-entity accumulator.
    /// The production sweep uses [`Graph::segment_acc_rows`]; this masked
    /// form is the dense reference it is validated against.
    pub fn segment_acc(&mut self, acc: Var, x: Var, segments: &[usize], mask: &Matrix) -> Var {
        let mut pool = std::mem::take(&mut self.pool);
        let (acc_v, x_v) = (self.value(acc), self.value(x));
        assert_eq!(
            segments.len(),
            x_v.rows(),
            "segment_acc: segments/x mismatch"
        );
        assert_eq!(mask.rows(), x_v.rows(), "segment_acc: mask/x mismatch");
        assert_eq!(acc_v.cols(), x_v.cols(), "segment_acc: width mismatch");
        let num_segments = acc_v.rows();
        let mut out = pool_matrix_scratch(&mut pool, num_segments, acc_v.cols());
        out.as_mut_slice().copy_from_slice(acc_v.as_slice());
        for (i, &s) in segments.iter().enumerate() {
            assert!(
                s < num_segments,
                "segment_acc: segment id {s} out of range {num_segments}"
            );
            let m = mask.get(i, 0);
            let src = x_v.row(i);
            let dst = out.row_mut(s);
            for (d, &v) in dst.iter_mut().zip(src) {
                *d += m * v;
            }
        }
        let mut mask_copy = pool_matrix_scratch(&mut pool, mask.rows(), 1);
        mask_copy.as_mut_slice().copy_from_slice(mask.as_slice());
        self.pool = pool;
        let segments = IndexList::Pooled(pool_indices(
            &mut self.idx_pool,
            &mut self.idx_copied,
            segments,
        ));
        self.push(
            out,
            Op::SegmentAcc {
                acc,
                x,
                segments,
                mask: mask_copy,
            },
        )
    }

    /// Row-compacted scatter-add accumulate:
    /// `out = acc` then `out[segments[k]] += x[rows[k]]`.
    ///
    /// The compacted sibling of [`Graph::segment_acc`]: instead of masking
    /// inactive rows to zero and still touching them, only the active
    /// `rows` are visited at all. With RouteNet's path-length distribution
    /// most positions are inactive in late steps, so this trims both the
    /// forward scatter and the backward gather to the live set.
    /// In **inference mode** this op is destructive like
    /// [`Graph::gru_step_rows`]: it steals `acc`'s buffer and scatter-adds
    /// in place (the `Var` passed as `acc` must not be read afterwards).
    pub fn segment_acc_rows(
        &mut self,
        acc: Var,
        x: Var,
        rows: &[usize],
        segments: &[usize],
    ) -> Var {
        self.segment_acc_rows_sharded(acc, x, rows.into(), segments.into(), None)
    }

    /// [`Graph::segment_acc_rows`] with a megabatch shard layout: `active`
    /// splits `rows`/`segments`, `dense` bounds the rows of `x`, `entity`
    /// the rows of `acc`; shard `s`'s segments must fall inside its entity
    /// range and its rows inside its dense range (block-diagonality). With
    /// a worker pool attached, shards scatter in parallel — each into its
    /// own disjoint slice of the accumulator — bitwise identically to the
    /// sequential sweep.
    pub fn segment_acc_rows_sharded(
        &mut self,
        acc: Var,
        x: Var,
        rows: IndexInput<'_>,
        segments: IndexInput<'_>,
        split: Option<ShardSplit<'_>>,
    ) -> Var {
        let mut pool = std::mem::take(&mut self.pool);
        let (num_segments, cols) = self.value(acc).shape();
        let x_rows = self.value(x).rows();
        let (rows_in, segments_in) = (rows, segments);
        let (rows, segments) = (rows_in.as_slice(), segments_in.as_slice());
        assert_eq!(
            rows.len(),
            segments.len(),
            "segment_acc_rows: rows/segments mismatch"
        );
        assert_eq!(
            self.value(x).cols(),
            cols,
            "segment_acc_rows: width mismatch"
        );
        for &s in segments {
            assert!(
                s < num_segments,
                "segment_acc_rows: segment id {s} out of range"
            );
        }
        let shards = split.and_then(|s| {
            validate_split(&s, rows.len(), Some(x_rows), Some(num_segments));
            debug_assert!(
                s.active
                    .as_slice()
                    .windows(2)
                    .zip(s.entity.as_slice().windows(2))
                    .all(|(ka, ea)| {
                        segments[ka[0]..ka[1]]
                            .iter()
                            .all(|&seg| seg >= ea[0] && seg < ea[1])
                    }),
                "segment_acc_rows: shard segments escape their entity range"
            );
            (s.active.as_slice().len() > 2).then(|| {
                Box::new(OpShards::capture(
                    &mut self.idx_pool,
                    &mut self.idx_copied,
                    &s,
                ))
            })
        });

        // In-place inference: steal the accumulator instead of copying it.
        let inplace = self.inference_mode;
        let mut out = if inplace {
            std::mem::replace(&mut self.nodes[acc.0].value, Matrix::zeros(0, 0))
        } else {
            pool_matrix_scratch(&mut pool, num_segments, cols)
        };
        {
            let acc_src = (!inplace).then(|| self.value(acc).as_slice());
            let x_slice = self.value(x).as_slice();
            let full_active = [0, rows.len()];
            let full_entity = [0, num_segments];
            let (active_bounds, entity_bounds): (&[usize], &[usize]) = match &shards {
                Some(s) => (&s.active, &s.entity),
                None => (&full_active, &full_entity),
            };
            let mut tasks: Vec<(usize, usize, &mut [f32])> = out
                .row_blocks_mut(entity_bounds)
                .into_iter()
                .enumerate()
                .map(|(s, block)| (s, entity_bounds[s], block))
                .collect();
            run_shard_tasks(
                pool_if_worth(
                    &self.worker_pool,
                    self.par_threshold(),
                    (num_segments + rows.len()) * cols,
                ),
                &mut tasks,
                |(s, e_lo, block): &mut (usize, usize, &mut [f32])| {
                    if let Some(acc_src) = acc_src {
                        block.copy_from_slice(&acc_src[*e_lo * cols..*e_lo * cols + block.len()]);
                    }
                    for k in active_bounds[*s]..active_bounds[*s + 1] {
                        let (row, seg) = (rows[k], segments[k]);
                        let src = &x_slice[row * cols..(row + 1) * cols];
                        let dst = &mut block[(seg - *e_lo) * cols..(seg - *e_lo + 1) * cols];
                        for (d, &v) in dst.iter_mut().zip(src) {
                            *d += v;
                        }
                    }
                },
            );
        }
        self.pool = pool;
        let rows = intern_indices(&mut self.idx_pool, &mut self.idx_copied, &rows_in);
        let segments = intern_indices(&mut self.idx_pool, &mut self.idx_copied, &segments_in);
        self.push(
            out,
            Op::SegmentAccRows {
                acc,
                x,
                rows,
                segments,
                shards,
            },
        )
    }

    /// Row-compacted GRU step: only `rows` advance, every other row of `h`
    /// passes through bitwise untouched. `x` must already be compacted to
    /// `rows.len()` rows (e.g. by [`Graph::gather_rows`] with active ids).
    ///
    /// Numerically identical to [`Graph::gru_step`] with a 0/1 mask, but the
    /// gate matmuls and transcendentals shrink from all paths to the active
    /// set — the biggest single win on RouteNet's tail steps, where only a
    /// handful of long paths remain active.
    /// In **inference mode** this op is destructive: it steals `h`'s buffer
    /// and advances the active rows in place instead of copying all `n`
    /// rows (the `Var` passed as `h` must not be read afterwards — its value
    /// becomes empty). Training mode copies, so `h` stays intact for the
    /// adjoint. Output bits are identical either way.
    pub fn gru_step_rows(&mut self, vars: &GruVars, h: Var, x: Var, rows: &[usize]) -> Var {
        self.gru_step_rows_sharded(vars, h, x, rows.into(), None)
    }

    /// [`Graph::gru_step_rows`] with a megabatch shard layout: `active`
    /// splits `rows`, `dense` bounds the rows of `h`; shard `s`'s active
    /// rows must fall inside its dense range (block-diagonality). With a
    /// worker pool attached the shards advance in parallel; the backward
    /// pass accumulates parameter gradients as per-shard partials merged in
    /// shard order. Results are bitwise identical at any worker count,
    /// including none.
    pub fn gru_step_rows_sharded(
        &mut self,
        vars: &GruVars,
        h: Var,
        x: Var,
        rows: IndexInput<'_>,
        split: Option<ShardSplit<'_>>,
    ) -> Var {
        let mut pool = std::mem::take(&mut self.pool);
        let (n, hidden) = self.value(h).shape();
        let rows_in = rows;
        let rows = rows_in.as_slice();
        let a = rows.len();
        let input = self.value(x).cols();
        assert_eq!(
            self.value(x).rows(),
            a,
            "gru_step_rows: x must be compacted to rows"
        );
        assert_eq!(
            self.value(vars.w_z).shape(),
            (hidden + input, hidden),
            "gru_step_rows: W_z shape"
        );
        for &row in rows {
            assert!(row < n, "gru_step_rows: row {row} out of range {n}");
        }
        let shards = split.and_then(|s| {
            validate_split(&s, a, Some(n), None);
            debug_assert!(
                s.active
                    .as_slice()
                    .windows(2)
                    .zip(s.dense.as_slice().windows(2))
                    .all(|(ka, pa)| {
                        rows[ka[0]..ka[1]]
                            .iter()
                            .all(|&row| row >= pa[0] && row < pa[1])
                    }),
                "gru_step_rows: shard rows escape their dense range"
            );
            (s.active.as_slice().len() > 2).then(|| {
                Box::new(OpShards::capture(
                    &mut self.idx_pool,
                    &mut self.idx_copied,
                    &s,
                ))
            })
        });

        let needs_zr = vars.w_zr.is_some();
        let mut hx = pool_matrix_scratch(&mut pool, a, hidden + input);
        let mut z = pool_matrix_scratch(&mut pool, a, hidden);
        let mut r = pool_matrix_scratch(&mut pool, a, hidden);
        let mut rhx = pool_matrix_scratch(&mut pool, a, hidden + input);
        let mut c = pool_matrix_scratch(&mut pool, a, hidden);
        let mut zr = needs_zr.then(|| pool_matrix_scratch(&mut pool, a, 2 * hidden));

        // In-place inference: steal the state buffer instead of copying it.
        // Training mode takes scratch — every dense block is copied from
        // `hv` by its shard task before any read.
        let inplace = self.inference_mode;
        let mut out = if inplace {
            let stolen = std::mem::replace(&mut self.nodes[h.0].value, Matrix::zeros(0, 0));
            debug_assert_eq!(stolen.shape(), (n, hidden));
            stolen
        } else {
            pool_matrix_scratch(&mut pool, n, hidden)
        };

        {
            let full_active = [0, a];
            let full_dense = [0, n];
            let (active_bounds, dense_bounds): (&[usize], &[usize]) = match &shards {
                Some(s) => (&s.active, &s.dense),
                None => (&full_active, &full_dense),
            };
            let ctx = GruRowsFwdCtx {
                hv: (!inplace).then(|| self.value(h).as_slice()),
                xv: self.value(x).as_slice(),
                rows,
                w_z: self.value(vars.w_z),
                b_z: self.value(vars.b_z).as_slice(),
                w_r: self.value(vars.w_r),
                b_r: self.value(vars.b_r).as_slice(),
                w_c: self.value(vars.w_c),
                b_c: self.value(vars.b_c).as_slice(),
                w_zr: vars.w_zr.map(|v| self.value(v)),
                hidden,
                input,
            };
            let mut hx_it = hx.row_blocks_mut(active_bounds).into_iter();
            let mut z_it = z.row_blocks_mut(active_bounds).into_iter();
            let mut r_it = r.row_blocks_mut(active_bounds).into_iter();
            let mut rhx_it = rhx.row_blocks_mut(active_bounds).into_iter();
            let mut c_it = c.row_blocks_mut(active_bounds).into_iter();
            let zr_blocks: Vec<Option<&mut [f32]>> = match zr.as_mut() {
                Some(m) => m
                    .row_blocks_mut(active_bounds)
                    .into_iter()
                    .map(Some)
                    .collect(),
                None => active_bounds.windows(2).map(|_| None).collect(),
            };
            let mut zr_it = zr_blocks.into_iter();
            let mut tasks: Vec<GruRowsFwdTask> = out
                .row_blocks_mut(dense_bounds)
                .into_iter()
                .enumerate()
                .map(|(s, out_block)| GruRowsFwdTask {
                    k_lo: active_bounds[s],
                    k_hi: active_bounds[s + 1],
                    p_lo: dense_bounds[s],
                    hx: hx_it.next().expect("hx block"),
                    zr: zr_it.next().expect("zr block"),
                    z: z_it.next().expect("z block"),
                    r: r_it.next().expect("r block"),
                    rhx: rhx_it.next().expect("rhx block"),
                    c: c_it.next().expect("c block"),
                    out: out_block,
                })
                .collect();
            run_shard_tasks(
                pool_if_worth(
                    &self.worker_pool,
                    self.par_threshold(),
                    a * (hidden + input) * 6,
                ),
                &mut tasks,
                |t| gru_rows_forward_shard(&ctx, t),
            );
        }
        if let Some(zr) = zr {
            pool_recycle(&mut pool, zr);
        }

        let saved = if self.inference_mode {
            pool_recycle(&mut pool, hx);
            pool_recycle(&mut pool, rhx);
            pool_recycle(&mut pool, z);
            pool_recycle(&mut pool, r);
            pool_recycle(&mut pool, c);
            Box::new(GruSaved::discarded())
        } else {
            Box::new(GruSaved {
                hx,
                rhx,
                z,
                r,
                c,
                mask: None,
            })
        };
        self.pool = pool;
        let rows = intern_indices(&mut self.idx_pool, &mut self.idx_copied, &rows_in);
        self.push(
            out,
            Op::GruStepRows {
                vars: *vars,
                h,
                x,
                rows,
                saved,
                shards,
            },
        )
    }

    /// One whole GRU step as a single tape node:
    ///
    /// ```text
    /// z = σ([h|x]·W_z + b_z)       r = σ([h|x]·W_r + b_r)
    /// c = tanh([r⊙h|x]·W_c + b_c)  h' = (1−z)⊙h + z⊙c
    /// out = mask⊙h' + (1−mask)⊙h   (out = h' when mask is None)
    /// ```
    ///
    /// Replaces the ~17-node unfused expansion. Forward intermediates are
    /// kept on the node for the adjoint; all scratch comes from the pool.
    /// Numerics match the unfused op chain operation-for-operation. The
    /// production sweep uses the row-compacted [`Graph::gru_step_rows`];
    /// the masked form here is the dense reference it is validated against
    /// (and the fused step for callers without compaction lists).
    pub fn gru_step(&mut self, vars: &GruVars, h: Var, x: Var, mask: Option<&Matrix>) -> Var {
        let mut pool = std::mem::take(&mut self.pool);
        let (n, hidden) = self.value(h).shape();
        let input = self.value(x).cols();
        let hv = self.value(h);
        let xv = self.value(x);
        let w_z = self.value(vars.w_z);
        let b_z = self.value(vars.b_z);
        let w_r = self.value(vars.w_r);
        let b_r = self.value(vars.b_r);
        let w_c = self.value(vars.w_c);
        let b_c = self.value(vars.b_c);
        assert_eq!(w_z.shape(), (hidden + input, hidden), "gru_step: W_z shape");
        if let Some(m) = mask {
            assert_eq!(m.shape(), (n, 1), "gru_step: mask shape");
        }

        let w_zr = vars.w_zr.map(|v| self.value(v));

        let mut hx = pool_matrix_scratch(&mut pool, n, hidden + input);
        concat_rows_into(&mut hx, hv, xv);

        let mut z = pool_matrix_scratch(&mut pool, n, hidden);
        let mut r = pool_matrix_scratch(&mut pool, n, hidden);
        gate_matmuls(&mut pool, &hx, w_z, w_r, w_zr, hidden, &mut z, &mut r);
        // Fused bias + activation over the whole gate block: one pass, same
        // per-element chain as broadcast-add followed by the scalar map.
        if hidden > 0 && n > 0 {
            vact::sigmoid_bias_map_inplace(z.as_mut_slice(), b_z.as_slice());
            vact::sigmoid_bias_map_inplace(r.as_mut_slice(), b_r.as_slice());
        }

        let mut rhx = pool_matrix_scratch(&mut pool, n, hidden + input);
        for i in 0..n {
            let dst = rhx.row_mut(i);
            for ((d, &rv), &hvv) in dst[..hidden].iter_mut().zip(r.row(i)).zip(hv.row(i)) {
                *d = rv * hvv;
            }
            dst[hidden..].copy_from_slice(xv.row(i));
        }

        let mut c = pool_matrix_scratch(&mut pool, n, hidden);
        rhx.matmul_into(w_c, &mut c);
        if hidden > 0 && n > 0 {
            vact::tanh_bias_map_inplace(c.as_mut_slice(), b_c.as_slice());
        }

        // In-place inference: steal the state buffer (the pass-through part
        // of the blend is then already in place); training mode copies so
        // the adjoint can still read `h`. Old state is read from `out` in
        // both modes — identical values, identical bits.
        let mut out = if self.inference_mode {
            std::mem::replace(&mut self.nodes[h.0].value, Matrix::zeros(0, 0))
        } else {
            let mut fresh = pool_matrix_scratch(&mut pool, n, hidden);
            fresh
                .as_mut_slice()
                .copy_from_slice(self.value(h).as_slice());
            fresh
        };
        for i in 0..n {
            let dst = out.row_mut(i);
            let (zr, cr) = (z.row(i), c.row(i));
            match mask {
                // Same operation sequence as the unfused chain:
                // (1-z)*h + z*c, then blended with the mask.
                None => {
                    for j in 0..hidden {
                        let hvj = dst[j];
                        dst[j] = (1.0 - zr[j]) * hvj + zr[j] * cr[j];
                    }
                }
                Some(m) => {
                    let mv = m.get(i, 0);
                    let keep = 1.0 - mv;
                    for j in 0..hidden {
                        let hvj = dst[j];
                        let blended = (1.0 - zr[j]) * hvj + zr[j] * cr[j];
                        dst[j] = keep * hvj + mv * blended;
                    }
                }
            }
        }

        let saved = if self.inference_mode {
            pool_recycle(&mut pool, hx);
            pool_recycle(&mut pool, rhx);
            pool_recycle(&mut pool, z);
            pool_recycle(&mut pool, r);
            pool_recycle(&mut pool, c);
            Box::new(GruSaved::discarded())
        } else {
            let mask_copy = mask.map(|m| {
                let mut mc = pool_matrix_scratch(&mut pool, n, 1);
                mc.as_mut_slice().copy_from_slice(m.as_slice());
                mc
            });
            Box::new(GruSaved {
                hx,
                rhx,
                z,
                r,
                c,
                mask: mask_copy,
            })
        };
        self.pool = pool;
        self.push(
            out,
            Op::GruStep {
                vars: *vars,
                h,
                x,
                saved,
            },
        )
    }

    /// Dense (every-row) GRU step with a row-block shard layout — the
    /// link/node entity updates of a megabatch forward. `bounds` partitions
    /// the `n` state rows into contiguous blocks; `x` must have `n` rows.
    ///
    /// With more than one shard this records through the row-compacted
    /// sharded machinery with an identity row list, so the whole existing
    /// shard apparatus applies: forward blocks fan across the worker pool,
    /// the adjoint writes row-disjoint state/input gradients in place and
    /// accumulates the GRU weight gradients (the `matmul_tn_acc` over the
    /// z/r/h gates) as per-shard partials merged in canonical shard order —
    /// bitwise identical at any worker count. Without a split (or with a
    /// single shard) this is exactly [`Graph::gru_step`], preserving the
    /// legacy bitwise path for 1-sample plans.
    pub fn gru_step_dense_sharded(
        &mut self,
        vars: &GruVars,
        h: Var,
        x: Var,
        bounds: Option<IndexInput<'_>>,
    ) -> Var {
        match bounds {
            Some(b) if b.as_slice().len() > 2 && !self.reference_mode => {
                let n = self.value(h).rows();
                assert_eq!(
                    self.value(x).rows(),
                    n,
                    "gru_step_dense_sharded: x must have one row per state row"
                );
                let split = ShardSplit {
                    active: b.clone(),
                    dense: b.clone(),
                    entity: b,
                };
                if self.zero_copy() {
                    // Record the shared identity prefix by refcount instead
                    // of materializing (and then copying) a 0..n row list.
                    let rows = self.identity_rows(n);
                    self.gru_step_rows_sharded(vars, h, x, rows.into(), Some(split))
                } else {
                    let mut rows = self.idx_pool.pop().unwrap_or_default();
                    rows.clear();
                    rows.extend(0..n);
                    let out =
                        self.gru_step_rows_sharded(vars, h, x, rows.as_slice().into(), Some(split));
                    self.idx_pool.push(rows);
                    out
                }
            }
            _ => self.gru_step(vars, h, x, None),
        }
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements, as a `1 x 1` matrix.
    pub fn sum(&mut self, x: Var) -> Var {
        let v = Matrix::filled(1, 1, self.value(x).sum());
        self.push(v, Op::Sum(x))
    }

    /// Mean of all elements, as a `1 x 1` matrix.
    pub fn mean(&mut self, x: Var) -> Var {
        let v = Matrix::filled(1, 1, self.value(x).mean());
        self.push(v, Op::Mean(x))
    }

    /// Mean squared error between `pred` and `target` as a scalar node.
    pub fn mse(&mut self, pred: Var, target: Var) -> Var {
        let d = self.sub(pred, target);
        let sq = self.square(d);
        self.mean(sq)
    }

    /// Mean absolute error between `pred` and `target` as a scalar node.
    pub fn mae(&mut self, pred: Var, target: Var) -> Var {
        let d = self.sub(pred, target);
        let a = self.abs(d);
        self.mean(a)
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Run the reverse sweep from `loss`, which must be a `1 x 1` node.
    ///
    /// Gradients accumulate into every node that (transitively) influences the
    /// loss; read them with [`Graph::grad`]. Calling `backward` twice on the
    /// same tape accumulates into existing gradients, which is almost never
    /// what you want — [`Graph::reset`] and rebuild instead.
    pub fn backward(&mut self, loss: Var) {
        assert!(
            !self.inference_mode,
            "backward: tape is in inference mode (saved activations were discarded)"
        );
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward: loss must be scalar (1x1), got {:?}",
            self.value(loss).shape()
        );
        let n = self.nodes.len();
        let mut pool = std::mem::take(&mut self.pool);
        let mut grads: Vec<Option<Matrix>> = (0..n).map(|_| None).collect();
        grads[loss.0] = Some(Matrix::ones(1, 1));

        for id in (0..n).rev() {
            let Some(g) = grads[id].take() else { continue };
            // Per-op-kind timing (RN_TRACE=1): a drop-guard so arms that
            // `continue` out of the match are still attributed. Inert (one
            // relaxed atomic load, no clock read) while tracing is off.
            let _op_span = crate::trace::OpSpan::begin(&self.nodes[id].op);
            match &self.nodes[id].op {
                Op::Leaf { .. } => {}
                &Op::Add(a, b) => {
                    accumulate_ref(&mut grads, &mut pool, a, &g);
                    accumulate_ref(&mut grads, &mut pool, b, &g);
                }
                &Op::Sub(a, b) => {
                    accumulate_ref(&mut grads, &mut pool, a, &g);
                    accumulate(&mut grads, b, g.scale(-1.0));
                }
                &Op::Mul(a, b) => {
                    let ga = g.mul(self.value(b));
                    let gb = g.mul(self.value(a));
                    accumulate(&mut grads, a, ga);
                    accumulate(&mut grads, b, gb);
                }
                Op::MatMul { a, b, shards } => {
                    let (a, b) = (*a, *b);
                    if self.reference_mode {
                        let ga = g.matmul_nt_reference(self.value(b));
                        let gb = self.value(a).matmul_tn_reference(&g);
                        accumulate(&mut grads, a, ga);
                        accumulate(&mut grads, b, gb);
                    } else if let Some(bounds) = shards {
                        // Dense-sharded adjoint. ga = g·bᵀ is row-disjoint:
                        // each shard fills its own block with exactly the
                        // full kernel's arithmetic (bitwise identical to one
                        // call). gb = aᵀ·g reduces over rows, so each shard
                        // produces a zeroed partial over its row range; the
                        // partials merge into the gradient slot in shard
                        // order — the canonical grouping, independent of
                        // worker count (or the pool's absence).
                        let bv = self.value(b);
                        let (k_dim, n_dim) = bv.shape();
                        let m = g.rows();
                        let num_shards = bounds.len() - 1;
                        let mut bt = pool_matrix_scratch(&mut pool, n_dim, k_dim);
                        bv.transpose_into(&mut bt);
                        let mut ga = pool_matrix_scratch(&mut pool, m, k_dim);
                        let mut partials: Vec<Matrix> = (0..num_shards)
                            .map(|_| pool_matrix(&mut pool, k_dim, n_dim))
                            .collect();
                        let worker = pool_if_worth(
                            &self.worker_pool,
                            self.par_threshold(),
                            m * (k_dim + n_dim),
                        );
                        {
                            let g_slice = g.as_slice();
                            let a_slice = self.value(a).as_slice();
                            let bt_slice = bt.as_slice();
                            let mut tasks: Vec<(usize, usize, &mut [f32], &mut Matrix)> = ga
                                .row_blocks_mut(bounds)
                                .into_iter()
                                .zip(partials.iter_mut())
                                .enumerate()
                                .map(|(s, (block, partial))| {
                                    (bounds[s], bounds[s + 1], block, partial)
                                })
                                .collect();
                            run_shard_tasks(
                                worker,
                                &mut tasks,
                                |(lo, hi, ga_block, partial): &mut (
                                    usize,
                                    usize,
                                    &mut [f32],
                                    &mut Matrix,
                                )| {
                                    let rows_s = *hi - *lo;
                                    ga_block.fill(0.0);
                                    kernels::matmul_acc(
                                        &g_slice[*lo * n_dim..*hi * n_dim],
                                        bt_slice,
                                        rows_s,
                                        n_dim,
                                        k_dim,
                                        ga_block,
                                    );
                                    kernels::matmul_tn_acc(
                                        &a_slice[*lo * k_dim..*hi * k_dim],
                                        &g_slice[*lo * n_dim..*hi * n_dim],
                                        rows_s,
                                        k_dim,
                                        n_dim,
                                        partial.as_mut_slice(),
                                    );
                                },
                            );
                        }
                        pool_recycle(&mut pool, bt);
                        {
                            let refs: Vec<&Matrix> = partials.iter().collect();
                            let slot = grad_slot(&mut grads, b, k_dim, n_dim, &mut pool);
                            reduce_partials_parallel(worker, slot, &refs);
                        }
                        for p in partials {
                            pool_recycle(&mut pool, p);
                        }
                        accumulate_pooled(&mut grads, &mut pool, a, ga);
                    } else {
                        let bv = self.value(b);
                        let mut bt = pool_matrix_scratch(&mut pool, bv.cols(), bv.rows());
                        bv.transpose_into(&mut bt);
                        let mut ga = pool_matrix_scratch(&mut pool, g.rows(), bv.rows());
                        g.matmul_into(&bt, &mut ga);
                        pool_recycle(&mut pool, bt);
                        let mut gb = pool_matrix_scratch(&mut pool, self.value(a).cols(), g.cols());
                        self.value(a).matmul_tn_into(&g, &mut gb);
                        accumulate_pooled(&mut grads, &mut pool, a, ga);
                        accumulate_pooled(&mut grads, &mut pool, b, gb);
                    }
                }
                Op::AddBias { x, bias, shards } => {
                    let (x, bias) = (*x, *bias);
                    if let Some(bounds) = shards {
                        // gx is the pass-through gradient, row-blocked; the
                        // bias gradient reduces as per-shard column-sum
                        // partials merged in shard order (canonical).
                        let (rows, cols) = g.shape();
                        let num_shards = bounds.len() - 1;
                        let mut gx = pool_matrix_scratch(&mut pool, rows, cols);
                        let mut partials: Vec<Matrix> = (0..num_shards)
                            .map(|_| pool_matrix(&mut pool, 1, cols))
                            .collect();
                        let worker =
                            pool_if_worth(&self.worker_pool, self.par_threshold(), rows * cols);
                        {
                            let g_slice = g.as_slice();
                            let mut tasks: Vec<(usize, &mut [f32], &mut Matrix)> = gx
                                .row_blocks_mut(bounds)
                                .into_iter()
                                .zip(partials.iter_mut())
                                .enumerate()
                                .map(|(s, (block, partial))| (bounds[s], block, partial))
                                .collect();
                            run_shard_tasks(
                                worker,
                                &mut tasks,
                                |(lo, block, partial): &mut (usize, &mut [f32], &mut Matrix)| {
                                    block.copy_from_slice(
                                        &g_slice[*lo * cols..*lo * cols + block.len()],
                                    );
                                    add_col_sums_slice(partial.as_mut_slice(), block, cols);
                                },
                            );
                        }
                        {
                            let refs: Vec<&Matrix> = partials.iter().collect();
                            let slot = grad_slot(&mut grads, bias, 1, cols, &mut pool);
                            reduce_partials_parallel(worker, slot, &refs);
                        }
                        for p in partials {
                            pool_recycle(&mut pool, p);
                        }
                        accumulate_pooled(&mut grads, &mut pool, x, gx);
                    } else {
                        accumulate(&mut grads, bias, g.sum_rows());
                        accumulate_ref(&mut grads, &mut pool, x, &g);
                    }
                }
                &Op::Affine { x, a } => {
                    accumulate(&mut grads, x, g.scale(a));
                }
                &Op::Sigmoid(x) => {
                    // gx = g ⊙ y(1-y) via the fused vector kernel, fanned
                    // over fixed chunks when a pool is attached — bitwise
                    // identical to the sequential zip either way (the map is
                    // position-independent and the kernel is pinned to the
                    // scalar chain).
                    let (rows, cols) = g.shape();
                    let mut gx = pool_matrix_scratch(&mut pool, rows, cols);
                    run_elementwise_chunks(
                        pool_if_worth(&self.worker_pool, self.par_threshold(), rows * cols),
                        g.as_slice(),
                        self.nodes[id].value.as_slice(),
                        gx.as_mut_slice(),
                        vact::sigmoid_deriv_mul,
                    );
                    accumulate_pooled(&mut grads, &mut pool, x, gx);
                }
                &Op::Tanh(x) => {
                    let (rows, cols) = g.shape();
                    let mut gx = pool_matrix_scratch(&mut pool, rows, cols);
                    run_elementwise_chunks(
                        pool_if_worth(&self.worker_pool, self.par_threshold(), rows * cols),
                        g.as_slice(),
                        self.nodes[id].value.as_slice(),
                        gx.as_mut_slice(),
                        vact::tanh_deriv_mul,
                    );
                    accumulate_pooled(&mut grads, &mut pool, x, gx);
                }
                &Op::Relu(x) => {
                    let gx = g.zip(self.value(x), |gi, xi| gi * act::relu_deriv(xi));
                    accumulate(&mut grads, x, gx);
                }
                Op::Selu { x, shards } => {
                    let x = *x;
                    if self.reference_mode {
                        // Seed-faithful libm derivative (shards are never
                        // recorded in reference mode).
                        let gx = g.zip(self.value(x), |gi, xi| gi * act::selu_deriv_precise(xi));
                        accumulate(&mut grads, x, gx);
                        continue;
                    }
                    let (rows, cols) = g.shape();
                    let mut gx = pool_matrix_scratch(&mut pool, rows, cols);
                    if let Some(bounds) = shards {
                        // Element-wise adjoint, row-blocked: bitwise
                        // identical to the unsharded sweep at any worker
                        // count.
                        let g_slice = g.as_slice();
                        let x_slice = self.value(x).as_slice();
                        let mut tasks: Vec<(usize, &mut [f32])> = gx
                            .row_blocks_mut(bounds)
                            .into_iter()
                            .enumerate()
                            .map(|(s, block)| (bounds[s], block))
                            .collect();
                        run_shard_tasks(
                            pool_if_worth(&self.worker_pool, self.par_threshold(), rows * cols),
                            &mut tasks,
                            |(lo, block): &mut (usize, &mut [f32])| {
                                let off = *lo * cols;
                                let len = block.len();
                                vact::selu_deriv_mul(
                                    &g_slice[off..off + len],
                                    &x_slice[off..off + len],
                                    block,
                                );
                            },
                        );
                    } else {
                        run_elementwise_chunks(
                            pool_if_worth(&self.worker_pool, self.par_threshold(), rows * cols),
                            g.as_slice(),
                            self.value(x).as_slice(),
                            gx.as_mut_slice(),
                            vact::selu_deriv_mul,
                        );
                    }
                    accumulate_pooled(&mut grads, &mut pool, x, gx);
                }
                &Op::Softplus(x) => {
                    let gx = g.zip(self.value(x), |gi, xi| gi * act::softplus_deriv(xi));
                    accumulate(&mut grads, x, gx);
                }
                &Op::Abs(x) => {
                    let gx = g.zip(self.value(x), |gi, xi| gi * xi.signum());
                    accumulate(&mut grads, x, gx);
                }
                &Op::Square(x) => {
                    let gx = g.zip(self.value(x), |gi, xi| gi * 2.0 * xi);
                    accumulate(&mut grads, x, gx);
                }
                &Op::ClampMax { x, cap } => {
                    let gx = g.zip(self.value(x), |gi, xi| if xi <= cap { gi } else { 0.0 });
                    accumulate(&mut grads, x, gx);
                }
                &Op::ConcatCols(a, b) => {
                    let ca = self.value(a).cols();
                    let cb = self.value(b).cols();
                    accumulate(&mut grads, a, g.slice_cols(0, ca));
                    accumulate(&mut grads, b, g.slice_cols(ca, ca + cb));
                }
                &Op::SliceCols { x, start, end } => {
                    let (rows, cols) = self.value(x).shape();
                    let mut gx = pool_matrix(&mut pool, rows, cols);
                    for r in 0..rows {
                        gx.row_mut(r)[start..end].copy_from_slice(g.row(r));
                    }
                    accumulate_pooled(&mut grads, &mut pool, x, gx);
                }
                Op::GatherRows { x, indices, shards } => {
                    // Adjoint of gather = scatter-add back to the source
                    // rows. With shards, each one scatters into its own
                    // disjoint entity block (possibly in parallel); the k
                    // order within every target row matches the sequential
                    // sweep, so the bits do too.
                    let (x_rows, cols) = self.value(*x).shape();
                    let mut gx = pool_matrix(&mut pool, x_rows, cols);
                    if cols > 0 {
                        let g_slice = g.as_slice();
                        let full_active = [0, indices.len()];
                        let full_entity = [0, x_rows];
                        let (active_bounds, entity_bounds): (&[usize], &[usize]) = match shards {
                            Some(s) => (&s.active, &s.entity),
                            None => (&full_active, &full_entity),
                        };
                        let mut tasks: Vec<(usize, usize, &mut [f32])> = gx
                            .row_blocks_mut(entity_bounds)
                            .into_iter()
                            .enumerate()
                            .map(|(s, block)| (s, entity_bounds[s], block))
                            .collect();
                        run_shard_tasks(
                            pool_if_worth(
                                &self.worker_pool,
                                self.par_threshold(),
                                indices.len() * cols,
                            ),
                            &mut tasks,
                            |(s, e_lo, block): &mut (usize, usize, &mut [f32])| {
                                for k in active_bounds[*s]..active_bounds[*s + 1] {
                                    let idx = indices[k];
                                    let dst =
                                        &mut block[(idx - *e_lo) * cols..(idx - *e_lo + 1) * cols];
                                    for (d, &v) in
                                        dst.iter_mut().zip(&g_slice[k * cols..(k + 1) * cols])
                                    {
                                        *d += v;
                                    }
                                }
                            },
                        );
                    }
                    accumulate_pooled(&mut grads, &mut pool, *x, gx);
                }
                Op::SegmentSum { x, segments } => {
                    // Adjoint of scatter-add = gather from the output rows.
                    let gx = g.gather_rows(segments);
                    accumulate(&mut grads, *x, gx);
                }
                Op::MaskRows { x, mask } => {
                    let gx = g.mul_col_broadcast(mask);
                    accumulate(&mut grads, *x, gx);
                }
                &Op::Sum(x) => {
                    let s = g.get(0, 0);
                    let (rows, cols) = self.value(x).shape();
                    accumulate(&mut grads, x, Matrix::filled(rows, cols, s));
                }
                &Op::Mean(x) => {
                    let (rows, cols) = self.value(x).shape();
                    let denom = (rows * cols).max(1) as f32;
                    let s = g.get(0, 0) / denom;
                    accumulate(&mut grads, x, Matrix::filled(rows, cols, s));
                }
                Op::GatherMask { x, indices, mask } => {
                    // out[i] = mask[i] * x[idx[i]]  =>  gx[idx[i]] += mask[i]*g[i]
                    let (rows, cols) = self.value(*x).shape();
                    let mut gx = pool_matrix(&mut pool, rows, cols);
                    for (i, &idx) in indices.iter().enumerate() {
                        let m = mask.get(i, 0);
                        if m == 0.0 {
                            continue;
                        }
                        let dst = gx.row_mut(idx);
                        for (d, &v) in dst.iter_mut().zip(g.row(i)) {
                            *d += m * v;
                        }
                    }
                    accumulate_pooled(&mut grads, &mut pool, *x, gx);
                }
                Op::SegmentAcc {
                    acc,
                    x,
                    segments,
                    mask,
                } => {
                    // out = acc + scatter(mask*x): g_acc += g,
                    // g_x[i] += mask[i] * g[segments[i]].
                    let (rows, cols) = self.value(*x).shape();
                    let mut gx = pool_matrix(&mut pool, rows, cols);
                    for (i, &s) in segments.iter().enumerate() {
                        let m = mask.get(i, 0);
                        if m == 0.0 {
                            continue;
                        }
                        let dst = gx.row_mut(i);
                        for (d, &v) in dst.iter_mut().zip(g.row(s)) {
                            *d = m * v;
                        }
                    }
                    accumulate_pooled(&mut grads, &mut pool, *x, gx);
                    accumulate_ref(&mut grads, &mut pool, *acc, &g);
                }
                Op::GruStep { vars, h, x, saved } => {
                    let (vars, h, x) = (*vars, *h, *x);
                    let s: &GruSaved = saved;
                    let hv = self.value(h);
                    let hidden = hv.cols();
                    let input = self.value(x).cols();
                    let n_rows = hv.rows();

                    // Mask the incoming gradient; the pass-through part goes
                    // straight to h.
                    let mut gh = pool_matrix(&mut pool, n_rows, hidden);
                    let mut gm = pool_matrix_scratch(&mut pool, n_rows, hidden);
                    match &s.mask {
                        None => gm.as_mut_slice().copy_from_slice(g.as_slice()),
                        Some(m) => {
                            for i in 0..n_rows {
                                let mv = m.get(i, 0);
                                let keep = 1.0 - mv;
                                let g_row = g.row(i);
                                let gm_row = gm.row_mut(i);
                                for j in 0..hidden {
                                    gm_row[j] = mv * g_row[j];
                                }
                                let gh_row = gh.row_mut(i);
                                for j in 0..hidden {
                                    gh_row[j] += keep * g_row[j];
                                }
                            }
                        }
                    }

                    // gz = gm ⊙ (c - h); gc = gm ⊙ z; gh += gm ⊙ (1-z)
                    let mut gz = pool_matrix_scratch(&mut pool, n_rows, hidden);
                    let mut gc = pool_matrix_scratch(&mut pool, n_rows, hidden);
                    for i in 0..n_rows {
                        let gm_r = gm.row(i);
                        let zr = s.z.row(i);
                        let cr = s.c.row(i);
                        let hr = hv.row(i);
                        {
                            let gz_r = gz.row_mut(i);
                            for j in 0..hidden {
                                gz_r[j] = gm_r[j] * (cr[j] - hr[j]);
                            }
                        }
                        {
                            let gc_r = gc.row_mut(i);
                            for j in 0..hidden {
                                gc_r[j] = gm_r[j] * zr[j];
                            }
                        }
                        {
                            let gh_r = gh.row_mut(i);
                            for j in 0..hidden {
                                gh_r[j] += gm_r[j] * (1.0 - zr[j]);
                            }
                        }
                    }

                    // Candidate branch: gc_pre = gc ⊙ (1 - c²), vectorized.
                    vact::tanh_deriv_mul_inplace(gc.as_mut_slice(), s.c.as_slice());
                    let gc_pre = gc;
                    // gW_c += rhx^T · gc_pre ; gb_c += colsum(gc_pre)
                    {
                        let slot =
                            grad_slot(&mut grads, vars.w_c, hidden + input, hidden, &mut pool);
                        s.rhx.matmul_tn_acc(&gc_pre, slot);
                    }
                    {
                        let slot = grad_slot(&mut grads, vars.b_c, 1, hidden, &mut pool);
                        add_col_sums(slot, &gc_pre);
                    }
                    // g_rhx = gc_pre · W_c^T
                    let mut g_rhx = pool_matrix_scratch(&mut pool, n_rows, hidden + input);
                    {
                        // Pooled transpose: matmul_nt_* would re-transpose the
                        // weight (allocating) on every step's adjoint.
                        let w_c = self.value(vars.w_c);
                        let mut w_t = pool_matrix_scratch(&mut pool, w_c.cols(), w_c.rows());
                        w_c.transpose_into(&mut w_t);
                        gc_pre.matmul_into(&w_t, &mut g_rhx);
                        pool_recycle(&mut pool, w_t);
                    }
                    pool_recycle(&mut pool, gc_pre);

                    // Split g_rhx: left -> r⊙h branch, right -> x
                    let mut gx_acc = pool_matrix_scratch(&mut pool, n_rows, input);
                    let mut gr = pool_matrix_scratch(&mut pool, n_rows, hidden);
                    for i in 0..n_rows {
                        let row = g_rhx.row(i);
                        let (rr, hr) = (s.r.row(i), hv.row(i));
                        let gr_r = gr.row_mut(i);
                        for j in 0..hidden {
                            gr_r[j] = row[j] * hr[j];
                        }
                        for j in 0..hidden {
                            // gh += g_rh ⊙ r
                            gh.row_mut(i)[j] += row[j] * rr[j];
                        }
                        gx_acc.row_mut(i).copy_from_slice(&row[hidden..]);
                    }
                    pool_recycle(&mut pool, g_rhx);

                    // Gate pre-activations: σ' from outputs, vectorized.
                    vact::sigmoid_deriv_mul_inplace(gz.as_mut_slice(), s.z.as_slice());
                    let gz_pre = gz;
                    vact::sigmoid_deriv_mul_inplace(gr.as_mut_slice(), s.r.as_slice());
                    let gr_pre = gr;

                    {
                        let slot =
                            grad_slot(&mut grads, vars.w_z, hidden + input, hidden, &mut pool);
                        s.hx.matmul_tn_acc(&gz_pre, slot);
                    }
                    {
                        let slot = grad_slot(&mut grads, vars.b_z, 1, hidden, &mut pool);
                        add_col_sums(slot, &gz_pre);
                    }
                    {
                        let slot =
                            grad_slot(&mut grads, vars.w_r, hidden + input, hidden, &mut pool);
                        s.hx.matmul_tn_acc(&gr_pre, slot);
                    }
                    {
                        let slot = grad_slot(&mut grads, vars.b_r, 1, hidden, &mut pool);
                        add_col_sums(slot, &gr_pre);
                    }

                    // g_hx = gz_pre·W_z^T + gr_pre·W_r^T
                    let mut g_hx = pool_matrix_scratch(&mut pool, n_rows, hidden + input);
                    {
                        let w_z = self.value(vars.w_z);
                        let mut w_t = pool_matrix_scratch(&mut pool, w_z.cols(), w_z.rows());
                        w_z.transpose_into(&mut w_t);
                        gz_pre.matmul_into(&w_t, &mut g_hx);
                        self.value(vars.w_r).transpose_into(&mut w_t);
                        gr_pre.matmul_acc(&w_t, &mut g_hx);
                        pool_recycle(&mut pool, w_t);
                    }
                    pool_recycle(&mut pool, gz_pre);
                    pool_recycle(&mut pool, gr_pre);
                    for i in 0..n_rows {
                        let row = g_hx.row(i);
                        let gh_r = gh.row_mut(i);
                        for j in 0..hidden {
                            gh_r[j] += row[j];
                        }
                        let gx_r = gx_acc.row_mut(i);
                        for (gxv, &v) in gx_r.iter_mut().zip(&row[hidden..]) {
                            *gxv += v;
                        }
                    }
                    pool_recycle(&mut pool, g_hx);
                    pool_recycle(&mut pool, gm);

                    accumulate_pooled(&mut grads, &mut pool, h, gh);
                    accumulate_pooled(&mut grads, &mut pool, x, gx_acc);
                }
                Op::SegmentAccRows {
                    acc,
                    x,
                    rows,
                    segments,
                    shards,
                } => {
                    // out = acc + scatter(x[rows]): g_acc += g,
                    // g_x[rows[k]] += g[segments[k]]. Sharded: each shard
                    // writes its own dense block of g_x.
                    let (x_rows, cols) = self.value(*x).shape();
                    let mut gx = pool_matrix(&mut pool, x_rows, cols);
                    if cols > 0 {
                        let g_slice = g.as_slice();
                        let full_active = [0, rows.len()];
                        let full_dense = [0, x_rows];
                        let (active_bounds, dense_bounds): (&[usize], &[usize]) = match shards {
                            Some(s) => (&s.active, &s.dense),
                            None => (&full_active, &full_dense),
                        };
                        let mut tasks: Vec<(usize, usize, &mut [f32])> = gx
                            .row_blocks_mut(dense_bounds)
                            .into_iter()
                            .enumerate()
                            .map(|(s, block)| (s, dense_bounds[s], block))
                            .collect();
                        run_shard_tasks(
                            pool_if_worth(
                                &self.worker_pool,
                                self.par_threshold(),
                                rows.len() * cols,
                            ),
                            &mut tasks,
                            |(s, p_lo, block): &mut (usize, usize, &mut [f32])| {
                                for k in active_bounds[*s]..active_bounds[*s + 1] {
                                    let (row, seg) = (rows[k], segments[k]);
                                    let dst =
                                        &mut block[(row - *p_lo) * cols..(row - *p_lo + 1) * cols];
                                    for (d, &v) in
                                        dst.iter_mut().zip(&g_slice[seg * cols..(seg + 1) * cols])
                                    {
                                        *d += v;
                                    }
                                }
                            },
                        );
                    }
                    accumulate_pooled(&mut grads, &mut pool, *x, gx);
                    accumulate_ref(&mut grads, &mut pool, *acc, &g);
                }
                Op::GruStepRows {
                    vars,
                    h,
                    x,
                    rows,
                    saved,
                    shards,
                } => {
                    let (vars, h, x) = (*vars, *h, *x);
                    let s: &GruSaved = saved;
                    let hv = self.value(h);
                    let hidden = hv.cols();
                    let input = self.value(x).cols();
                    let a = rows.len();

                    if let Some(shards) = shards {
                        // Sharded canonical adjoint: row-disjoint gradients
                        // are written in place by each shard; parameter
                        // gradients are accumulated as per-shard partials
                        // and merged in shard order below. The result is a
                        // pure function of the shard layout — independent
                        // of the worker count (or the pool's absence).
                        let width = hidden + input;
                        let num_shards = shards.len();
                        let mut w_t_z = pool_matrix_scratch(&mut pool, hidden, width);
                        self.value(vars.w_z).transpose_into(&mut w_t_z);
                        let mut w_t_r = pool_matrix_scratch(&mut pool, hidden, width);
                        self.value(vars.w_r).transpose_into(&mut w_t_r);
                        let mut w_t_c = pool_matrix_scratch(&mut pool, hidden, width);
                        self.value(vars.w_c).transpose_into(&mut w_t_c);

                        let mut gh = pool_matrix_scratch(&mut pool, hv.rows(), hidden);
                        let mut gx_acc = pool_matrix_scratch(&mut pool, a, input);
                        let ctx = GruRowsBwdCtx {
                            rows,
                            g: g.as_slice(),
                            hv: hv.as_slice(),
                            saved: s,
                            w_t_z: &w_t_z,
                            w_t_r: &w_t_r,
                            w_t_c: &w_t_c,
                            hidden,
                            input,
                        };
                        let make_scratch = |pool: &mut Vec<Vec<f32>>, a_s: usize| GruBwdScratch {
                            gm: pool_matrix_scratch(pool, a_s, hidden),
                            gz: pool_matrix_scratch(pool, a_s, hidden),
                            gc: pool_matrix_scratch(pool, a_s, hidden),
                            gr: pool_matrix_scratch(pool, a_s, hidden),
                            g_rhx: pool_matrix_scratch(pool, a_s, width),
                            g_hx: pool_matrix_scratch(pool, a_s, width),
                            pw_z: pool_matrix(pool, width, hidden),
                            pb_z: pool_matrix(pool, 1, hidden),
                            pw_r: pool_matrix(pool, width, hidden),
                            pb_r: pool_matrix(pool, 1, hidden),
                            pw_c: pool_matrix(pool, width, hidden),
                            pb_c: pool_matrix(pool, 1, hidden),
                        };
                        let merge_and_recycle =
                            |grads: &mut Vec<Option<Matrix>>,
                             pool: &mut Vec<Vec<f32>>,
                             sc: GruBwdScratch| {
                                for (var, partial, rows_, cols_) in [
                                    (vars.w_z, &sc.pw_z, width, hidden),
                                    (vars.b_z, &sc.pb_z, 1, hidden),
                                    (vars.w_r, &sc.pw_r, width, hidden),
                                    (vars.b_r, &sc.pb_r, 1, hidden),
                                    (vars.w_c, &sc.pw_c, width, hidden),
                                    (vars.b_c, &sc.pb_c, 1, hidden),
                                ] {
                                    grad_slot(grads, var, rows_, cols_, pool).add_assign(partial);
                                }
                                sc.recycle(pool);
                            };
                        let worker_pool =
                            pool_if_worth(&self.worker_pool, self.par_threshold(), a * width * 6);
                        let mut gh_it = gh.row_blocks_mut(&shards.dense).into_iter();
                        let mut gx_it = gx_acc.row_blocks_mut(&shards.active).into_iter();
                        if worker_pool.is_some() {
                            // Parallel: every shard gets its own scratch up
                            // front; the ordered reduction below merges the
                            // partials in shard order once all are done.
                            let mut tasks: Vec<GruRowsBwdTask> = (0..num_shards)
                                .map(|si| {
                                    let a_s = shards.active[si + 1] - shards.active[si];
                                    GruRowsBwdTask {
                                        k_lo: shards.active[si],
                                        k_hi: shards.active[si + 1],
                                        p_lo: shards.dense[si],
                                        gh: gh_it.next().expect("gh block"),
                                        gx: gx_it.next().expect("gx block"),
                                        scratch: make_scratch(&mut pool, a_s),
                                    }
                                })
                                .collect();
                            run_shard_tasks(worker_pool, &mut tasks, |t| {
                                gru_rows_backward_shard(&ctx, t)
                            });
                            // Ordered parallel merge: each parameter's
                            // per-shard partials reduce in ascending shard
                            // order — per element exactly the sequential
                            // merge's addition order, so the bits match it
                            // at any worker count.
                            fn field(sc: &GruBwdScratch, i: usize) -> &Matrix {
                                match i {
                                    0 => &sc.pw_z,
                                    1 => &sc.pb_z,
                                    2 => &sc.pw_r,
                                    3 => &sc.pb_r,
                                    4 => &sc.pw_c,
                                    _ => &sc.pb_c,
                                }
                            }
                            for (i, (var, rows_, cols_)) in [
                                (vars.w_z, width, hidden),
                                (vars.b_z, 1, hidden),
                                (vars.w_r, width, hidden),
                                (vars.b_r, 1, hidden),
                                (vars.w_c, width, hidden),
                                (vars.b_c, 1, hidden),
                            ]
                            .into_iter()
                            .enumerate()
                            {
                                let refs: Vec<&Matrix> =
                                    tasks.iter().map(|t| field(&t.scratch, i)).collect();
                                let slot = grad_slot(&mut grads, var, rows_, cols_, &mut pool);
                                reduce_partials_parallel(worker_pool, slot, &refs);
                            }
                            for t in tasks {
                                t.scratch.recycle(&mut pool);
                            }
                        } else {
                            // Sequential canonical path: one scratch set
                            // cycles through the pool (LIFO keeps it
                            // cache-hot), each shard's partials merged the
                            // moment they exist. Same partial contents, same
                            // merge order — bitwise identical to the
                            // parallel branch.
                            for si in 0..num_shards {
                                let a_s = shards.active[si + 1] - shards.active[si];
                                let mut task = GruRowsBwdTask {
                                    k_lo: shards.active[si],
                                    k_hi: shards.active[si + 1],
                                    p_lo: shards.dense[si],
                                    gh: gh_it.next().expect("gh block"),
                                    gx: gx_it.next().expect("gx block"),
                                    scratch: make_scratch(&mut pool, a_s),
                                };
                                gru_rows_backward_shard(&ctx, &mut task);
                                merge_and_recycle(&mut grads, &mut pool, task.scratch);
                            }
                        }
                        drop(gh_it);
                        drop(gx_it);
                        pool_recycle(&mut pool, w_t_z);
                        pool_recycle(&mut pool, w_t_r);
                        pool_recycle(&mut pool, w_t_c);
                        accumulate_pooled(&mut grads, &mut pool, h, gh);
                        accumulate_pooled(&mut grads, &mut pool, x, gx_acc);
                        grads[id] = Some(g);
                        continue;
                    }

                    // Pass-through rows keep the incoming gradient; active
                    // rows are replaced by the GRU adjoint below.
                    let mut gh = pool_matrix_scratch(&mut pool, hv.rows(), hidden);
                    gh.as_mut_slice().copy_from_slice(g.as_slice());

                    // Compact incoming gradient over the active rows.
                    let mut gm = pool_matrix_scratch(&mut pool, a, hidden);
                    for (k, &row) in rows.iter().enumerate() {
                        gm.row_mut(k).copy_from_slice(g.row(row));
                    }

                    // gz = gm ⊙ (c - h); gc = gm ⊙ z; gh[row] = gm ⊙ (1-z)
                    let mut gz = pool_matrix_scratch(&mut pool, a, hidden);
                    let mut gc = pool_matrix_scratch(&mut pool, a, hidden);
                    for (k, &row) in rows.iter().enumerate() {
                        let gm_r = gm.row(k);
                        let zr = s.z.row(k);
                        let cr = s.c.row(k);
                        let hr = hv.row(row);
                        {
                            let gz_r = gz.row_mut(k);
                            for j in 0..hidden {
                                gz_r[j] = gm_r[j] * (cr[j] - hr[j]);
                            }
                        }
                        {
                            let gc_r = gc.row_mut(k);
                            for j in 0..hidden {
                                gc_r[j] = gm_r[j] * zr[j];
                            }
                        }
                        {
                            let gh_r = gh.row_mut(row);
                            for j in 0..hidden {
                                gh_r[j] = gm_r[j] * (1.0 - zr[j]);
                            }
                        }
                    }

                    // Candidate branch: gc_pre = gc ⊙ (1 - c²), vectorized.
                    vact::tanh_deriv_mul_inplace(gc.as_mut_slice(), s.c.as_slice());
                    let gc_pre = gc;
                    {
                        let slot =
                            grad_slot(&mut grads, vars.w_c, hidden + input, hidden, &mut pool);
                        s.rhx.matmul_tn_acc(&gc_pre, slot);
                    }
                    {
                        let slot = grad_slot(&mut grads, vars.b_c, 1, hidden, &mut pool);
                        add_col_sums(slot, &gc_pre);
                    }
                    let mut g_rhx = pool_matrix_scratch(&mut pool, a, hidden + input);
                    {
                        // Pooled transpose: matmul_nt_* would re-transpose the
                        // weight (allocating) on every step's adjoint.
                        let w_c = self.value(vars.w_c);
                        let mut w_t = pool_matrix_scratch(&mut pool, w_c.cols(), w_c.rows());
                        w_c.transpose_into(&mut w_t);
                        gc_pre.matmul_into(&w_t, &mut g_rhx);
                        pool_recycle(&mut pool, w_t);
                    }
                    pool_recycle(&mut pool, gc_pre);

                    // Split g_rhx: left -> r⊙h branch, right -> x
                    let mut gx_acc = pool_matrix_scratch(&mut pool, a, input);
                    let mut gr = pool_matrix_scratch(&mut pool, a, hidden);
                    for (k, &row) in rows.iter().enumerate() {
                        let row_slice = g_rhx.row(k);
                        let (rr, hr) = (s.r.row(k), hv.row(row));
                        {
                            let gr_r = gr.row_mut(k);
                            for j in 0..hidden {
                                gr_r[j] = row_slice[j] * hr[j];
                            }
                        }
                        {
                            let gh_r = gh.row_mut(row);
                            for j in 0..hidden {
                                gh_r[j] += row_slice[j] * rr[j];
                            }
                        }
                        gx_acc.row_mut(k).copy_from_slice(&row_slice[hidden..]);
                    }
                    pool_recycle(&mut pool, g_rhx);

                    // Gate pre-activations: σ' from outputs, vectorized.
                    vact::sigmoid_deriv_mul_inplace(gz.as_mut_slice(), s.z.as_slice());
                    let gz_pre = gz;
                    vact::sigmoid_deriv_mul_inplace(gr.as_mut_slice(), s.r.as_slice());
                    let gr_pre = gr;

                    {
                        let slot =
                            grad_slot(&mut grads, vars.w_z, hidden + input, hidden, &mut pool);
                        s.hx.matmul_tn_acc(&gz_pre, slot);
                    }
                    {
                        let slot = grad_slot(&mut grads, vars.b_z, 1, hidden, &mut pool);
                        add_col_sums(slot, &gz_pre);
                    }
                    {
                        let slot =
                            grad_slot(&mut grads, vars.w_r, hidden + input, hidden, &mut pool);
                        s.hx.matmul_tn_acc(&gr_pre, slot);
                    }
                    {
                        let slot = grad_slot(&mut grads, vars.b_r, 1, hidden, &mut pool);
                        add_col_sums(slot, &gr_pre);
                    }

                    // g_hx = gz_pre·W_z^T + gr_pre·W_r^T
                    let mut g_hx = pool_matrix_scratch(&mut pool, a, hidden + input);
                    {
                        let w_z = self.value(vars.w_z);
                        let mut w_t = pool_matrix_scratch(&mut pool, w_z.cols(), w_z.rows());
                        w_z.transpose_into(&mut w_t);
                        gz_pre.matmul_into(&w_t, &mut g_hx);
                        self.value(vars.w_r).transpose_into(&mut w_t);
                        gr_pre.matmul_acc(&w_t, &mut g_hx);
                        pool_recycle(&mut pool, w_t);
                    }
                    pool_recycle(&mut pool, gz_pre);
                    pool_recycle(&mut pool, gr_pre);
                    for (k, &row) in rows.iter().enumerate() {
                        let row_slice = g_hx.row(k);
                        {
                            let gh_r = gh.row_mut(row);
                            for j in 0..hidden {
                                gh_r[j] += row_slice[j];
                            }
                        }
                        let gx_r = gx_acc.row_mut(k);
                        for (gxv, &v) in gx_r.iter_mut().zip(&row_slice[hidden..]) {
                            *gxv += v;
                        }
                    }
                    pool_recycle(&mut pool, g_hx);
                    pool_recycle(&mut pool, gm);

                    accumulate_pooled(&mut grads, &mut pool, h, gh);
                    accumulate_pooled(&mut grads, &mut pool, x, gx_acc);
                }
            }
            grads[id] = Some(g);
        }

        // Persist gradients onto the tape, skipping constants.
        for (node, g) in self.nodes.iter_mut().zip(grads) {
            if let Op::Leaf {
                requires_grad: false,
            } = node.op
            {
                if let Some(gm) = g {
                    pool_recycle(&mut pool, gm);
                }
                continue;
            }
            if let Some(old) = node.grad.take() {
                pool_recycle(&mut pool, old);
            }
            node.grad = g;
        }
        self.pool = pool;
    }
}

/// Accumulate `delta` into the pending gradient of node `v`.
/// Accumulate a pass-through adjoint that equals the incoming gradient `g`
/// itself. When a gradient is already pending the add folds `g` in without
/// materializing a copy at all; the first contribution is copied into a
/// pooled buffer instead of `g.clone()`'s fresh allocation. Bits are
/// unchanged either way — this only changes where the buffer comes from.
fn accumulate_ref(grads: &mut [Option<Matrix>], pool: &mut Vec<Vec<f32>>, v: Var, g: &Matrix) {
    match &mut grads[v.0] {
        Some(existing) => existing.add_assign(g),
        slot @ None => {
            let mut copy = pool_matrix_scratch(pool, g.rows(), g.cols());
            copy.as_mut_slice().copy_from_slice(g.as_slice());
            *slot = Some(copy);
        }
    }
}

fn accumulate(grads: &mut [Option<Matrix>], v: Var, delta: Matrix) {
    match &mut grads[v.0] {
        Some(existing) => existing.add_assign(&delta),
        slot @ None => *slot = Some(delta),
    }
}

/// Like [`accumulate`], but recycles `delta`'s buffer when it is folded into
/// an existing gradient instead of stored.
fn accumulate_pooled(
    grads: &mut [Option<Matrix>],
    pool: &mut Vec<Vec<f32>>,
    v: Var,
    delta: Matrix,
) {
    match &mut grads[v.0] {
        Some(existing) => {
            existing.add_assign(&delta);
            pool_recycle(pool, delta);
        }
        slot @ None => *slot = Some(delta),
    }
}

/// Get (or zero-initialize) the gradient slot for `v` with the given shape.
fn grad_slot<'a>(
    grads: &'a mut [Option<Matrix>],
    v: Var,
    rows: usize,
    cols: usize,
    pool: &mut Vec<Vec<f32>>,
) -> &'a mut Matrix {
    let slot = &mut grads[v.0];
    if slot.is_none() {
        *slot = Some(pool_matrix(pool, rows, cols));
    }
    let m = slot.as_mut().expect("just initialized");
    debug_assert_eq!(m.shape(), (rows, cols));
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_and_grad_of_simple_chain() {
        // loss = mean((x * 3 + 1)^2), x = [1, 2]
        let mut g = Graph::new();
        let x = g.param(Matrix::row_vector(&[1.0, 2.0]));
        let y = g.affine(x, 3.0, 1.0); // [4, 7]
        let sq = g.square(y); // [16, 49]
        let loss = g.mean(sq); // 32.5
        assert!((g.value(loss).get(0, 0) - 32.5).abs() < 1e-5);
        g.backward(loss);
        // d/dx = 2*(3x+1)*3 / 2 = 3*(3x+1) -> [12, 21]
        let gx = g.grad(x).unwrap();
        assert!(gx.approx_eq(&Matrix::row_vector(&[12.0, 21.0]), 1e-4));
    }

    #[test]
    fn matmul_gradients() {
        // loss = sum(A·B); dA = 1·Bᵀ, dB = Aᵀ·1
        let mut g = Graph::new();
        let a = g.param(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = g.param(Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]));
        let c = g.matmul(a, b);
        let loss = g.sum(c);
        g.backward(loss);
        let ga = g.grad(a).unwrap();
        let gb = g.grad(b).unwrap();
        assert!(ga.approx_eq(&Matrix::from_vec(2, 2, vec![11.0, 15.0, 11.0, 15.0]), 1e-4));
        assert!(gb.approx_eq(&Matrix::from_vec(2, 2, vec![4.0, 4.0, 6.0, 6.0]), 1e-4));
    }

    #[test]
    fn constants_receive_no_grad() {
        let mut g = Graph::new();
        let x = g.param(Matrix::ones(1, 2));
        let t = g.constant(Matrix::ones(1, 2));
        let loss = g.mse(x, t);
        g.backward(loss);
        assert!(g.grad(t).is_none());
        assert!(g.grad(x).is_some());
    }

    #[test]
    fn grad_flows_through_gather_and_segment_sum() {
        // states: 3 rows. Gather [0, 1, 0, 2], sum each gathered row, loss=sum.
        // Row 0 is gathered twice so its grad should be 2, others 1.
        let mut g = Graph::new();
        let states = g.param(Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]));
        let gathered = g.gather_rows(states, &[0, 1, 0, 2]);
        let loss = g.sum(gathered);
        g.backward(loss);
        let gs = g.grad(states).unwrap();
        assert!(gs.approx_eq(&Matrix::from_rows(&[vec![2.0], vec![1.0], vec![1.0]]), 1e-5));
    }

    #[test]
    fn segment_sum_grad_is_gather() {
        // 4 rows scattered into 2 segments; loss weights segment 0 by 10.
        let mut g = Graph::new();
        let x = g.param(Matrix::from_rows(&[
            vec![1.0],
            vec![1.0],
            vec![1.0],
            vec![1.0],
        ]));
        let s = g.segment_sum(x, &[0, 1, 0, 1], 2);
        let w = g.constant(Matrix::from_rows(&[vec![10.0], vec![1.0]]));
        let weighted = g.mul(s, w);
        let loss = g.sum(weighted);
        g.backward(loss);
        let gx = g.grad(x).unwrap();
        assert!(gx.approx_eq(
            &Matrix::from_rows(&[vec![10.0], vec![1.0], vec![10.0], vec![1.0]]),
            1e-5
        ));
    }

    #[test]
    fn mask_rows_zeroes_gradient_of_padded_rows() {
        let mut g = Graph::new();
        let x = g.param(Matrix::ones(3, 2));
        let mask = Matrix::column_vector(&[1.0, 0.0, 1.0]);
        let m = g.mask_rows(x, &mask);
        let loss = g.sum(m);
        g.backward(loss);
        let gx = g.grad(x).unwrap();
        assert_eq!(gx.row(0), &[1.0, 1.0]);
        assert_eq!(gx.row(1), &[0.0, 0.0]);
        assert_eq!(gx.row(2), &[1.0, 1.0]);
    }

    #[test]
    fn concat_slice_gradients_route_correctly() {
        let mut g = Graph::new();
        let a = g.param(Matrix::ones(2, 2));
        let b = g.param(Matrix::ones(2, 3));
        let cat = g.concat_cols(a, b);
        // keep only the b-half scaled by 2 -> grad(a)=0, grad(b)=2
        let right = g.slice_cols(cat, 2, 5);
        let scaled = g.scale(right, 2.0);
        let loss = g.sum(scaled);
        g.backward(loss);
        assert!(g.grad(a).unwrap().approx_eq(&Matrix::zeros(2, 2), 1e-6));
        assert!(g
            .grad(b)
            .unwrap()
            .approx_eq(&Matrix::filled(2, 3, 2.0), 1e-6));
    }

    #[test]
    fn fan_out_accumulates() {
        // y = x + x  =>  dy/dx = 2
        let mut g = Graph::new();
        let x = g.param(Matrix::ones(1, 1));
        let y = g.add(x, x);
        let loss = g.sum(y);
        g.backward(loss);
        assert!((g.grad(x).unwrap().get(0, 0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn unused_nodes_have_no_grad() {
        let mut g = Graph::new();
        let x = g.param(Matrix::ones(1, 1));
        let orphan = g.param(Matrix::ones(1, 1));
        let loss = g.sum(x);
        g.backward(loss);
        assert!(g.grad(orphan).is_none());
    }

    #[test]
    #[should_panic(expected = "loss must be scalar")]
    fn backward_rejects_non_scalar_loss() {
        let mut g = Graph::new();
        let x = g.param(Matrix::ones(2, 2));
        g.backward(x);
    }

    #[test]
    fn mse_value() {
        let mut g = Graph::new();
        let p = g.param(Matrix::row_vector(&[1.0, 2.0]));
        let t = g.constant(Matrix::row_vector(&[3.0, 2.0]));
        let loss = g.mse(p, t);
        assert!((g.value(loss).get(0, 0) - 2.0).abs() < 1e-6);
    }

    // ------------------------------------------------------------------
    // Fused ops & buffer pool
    // ------------------------------------------------------------------

    fn det_matrix(rows: usize, cols: usize, salt: u64) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            let v = (r as u64 * 31 + c as u64 * 17 + salt * 13) % 23;
            v as f32 / 11.0 - 1.0
        })
    }

    /// Weights for a toy GRU cell registered on the tape.
    fn toy_gru(g: &mut Graph, hidden: usize, input: usize, salt: u64) -> GruVars {
        GruVars {
            w_z: g.param(det_matrix(hidden + input, hidden, salt)),
            b_z: g.param(det_matrix(1, hidden, salt + 1)),
            w_r: g.param(det_matrix(hidden + input, hidden, salt + 2)),
            b_r: g.param(det_matrix(1, hidden, salt + 3)),
            w_c: g.param(det_matrix(hidden + input, hidden, salt + 4)),
            b_c: g.param(det_matrix(1, hidden, salt + 5)),
            w_zr: None,
        }
    }

    /// The same toy cell with the merged `[W_z|W_r]` kernel bound.
    fn with_merged_gates(g: &mut Graph, vars: GruVars) -> GruVars {
        let merged = g.value(vars.w_z).concat_cols(g.value(vars.w_r));
        GruVars {
            w_zr: Some(g.constant(merged)),
            ..vars
        }
    }

    /// The unfused op-by-op GRU step (the numerical reference).
    fn gru_step_unfused(
        g: &mut Graph,
        vars: &GruVars,
        h: Var,
        x: Var,
        mask: Option<&Matrix>,
    ) -> Var {
        let hx = g.concat_cols(h, x);
        let z_lin = g.matmul(hx, vars.w_z);
        let z_b = g.add_bias(z_lin, vars.b_z);
        let z = g.sigmoid(z_b);
        let r_lin = g.matmul(hx, vars.w_r);
        let r_b = g.add_bias(r_lin, vars.b_r);
        let r = g.sigmoid(r_b);
        let rh = g.mul(r, h);
        let rhx = g.concat_cols(rh, x);
        let c_lin = g.matmul(rhx, vars.w_c);
        let c_b = g.add_bias(c_lin, vars.b_c);
        let c = g.tanh(c_b);
        let one_minus_z = g.one_minus(z);
        let keep = g.mul(one_minus_z, h);
        let update = g.mul(z, c);
        let advanced = g.add(keep, update);
        match mask {
            None => advanced,
            Some(m) => {
                let keep_mask = m.map(|v| 1.0 - v);
                let kept = g.mask_rows(h, &keep_mask);
                let moved = g.mask_rows(advanced, m);
                g.add(kept, moved)
            }
        }
    }

    #[test]
    fn gather_mask_matches_unfused_pair() {
        let indices = [2usize, 0, 1, 2, 0];
        let mask = Matrix::column_vector(&[1.0, 0.0, 1.0, 1.0, 0.0]);

        let mut ga = Graph::new();
        let xa = ga.param(det_matrix(3, 4, 7));
        let fused = ga.gather_mask(xa, &indices, &mask);
        let la = ga.sum(fused);
        ga.backward(la);

        let mut gb = Graph::new();
        let xb = gb.param(det_matrix(3, 4, 7));
        let gathered = gb.gather_rows(xb, &indices);
        let masked = gb.mask_rows(gathered, &mask);
        let lb = gb.sum(masked);
        gb.backward(lb);

        assert!(
            ga.value(fused).approx_eq(gb.value(masked), 0.0),
            "forward must be exact"
        );
        assert!(ga.grad(xa).unwrap().approx_eq(gb.grad(xb).unwrap(), 0.0));
    }

    #[test]
    fn segment_acc_matches_unfused_chain() {
        let segments = [1usize, 0, 1, 1];
        let mask = Matrix::column_vector(&[1.0, 1.0, 0.0, 1.0]);

        let mut ga = Graph::new();
        let acc_a = ga.param(det_matrix(2, 3, 1));
        let xa = ga.param(det_matrix(4, 3, 2));
        let out_a = ga.segment_acc(acc_a, xa, &segments, &mask);
        let wa = ga.constant(det_matrix(2, 3, 3));
        let prod_a = ga.mul(out_a, wa);
        let la = ga.sum(prod_a);
        ga.backward(la);

        let mut gb = Graph::new();
        let acc_b = gb.param(det_matrix(2, 3, 1));
        let xb = gb.param(det_matrix(4, 3, 2));
        let masked = gb.mask_rows(xb, &mask);
        let seg = gb.segment_sum(masked, &segments, 2);
        let out_b = gb.add(acc_b, seg);
        let wb = gb.constant(det_matrix(2, 3, 3));
        let prod_b = gb.mul(out_b, wb);
        let lb = gb.sum(prod_b);
        gb.backward(lb);

        assert!(ga.value(out_a).approx_eq(gb.value(out_b), 0.0));
        assert!(ga.grad(xa).unwrap().approx_eq(gb.grad(xb).unwrap(), 1e-6));
        assert!(ga
            .grad(acc_a)
            .unwrap()
            .approx_eq(gb.grad(acc_b).unwrap(), 1e-6));
    }

    #[test]
    fn gru_step_forward_matches_unfused() {
        for mask in [None, Some(Matrix::column_vector(&[1.0, 0.0, 1.0, 1.0]))] {
            let mut ga = Graph::new();
            let va = toy_gru(&mut ga, 5, 3, 42);
            let ha = ga.constant(det_matrix(4, 5, 10));
            let xa = ga.constant(det_matrix(4, 3, 11));
            let fused = ga.gru_step(&va, ha, xa, mask.as_ref());

            let mut gb = Graph::new();
            let vb = toy_gru(&mut gb, 5, 3, 42);
            let hb = gb.constant(det_matrix(4, 5, 10));
            let xb = gb.constant(det_matrix(4, 3, 11));
            let unfused = gru_step_unfused(&mut gb, &vb, hb, xb, mask.as_ref());

            assert!(
                ga.value(fused).approx_eq(gb.value(unfused), 1e-6),
                "fused forward diverged (mask: {})",
                mask.is_some()
            );
        }
    }

    #[test]
    fn gru_step_gradients_match_unfused() {
        for mask in [None, Some(Matrix::column_vector(&[1.0, 0.0, 1.0, 1.0]))] {
            let mut ga = Graph::new();
            let va = toy_gru(&mut ga, 5, 3, 9);
            let ha = ga.param(det_matrix(4, 5, 20));
            let xa = ga.param(det_matrix(4, 3, 21));
            let fused = ga.gru_step(&va, ha, xa, mask.as_ref());
            let sq_a = ga.square(fused);
            let la = ga.mean(sq_a);
            ga.backward(la);

            let mut gb = Graph::new();
            let vb = toy_gru(&mut gb, 5, 3, 9);
            let hb = gb.param(det_matrix(4, 5, 20));
            let xb = gb.param(det_matrix(4, 3, 21));
            let unfused = gru_step_unfused(&mut gb, &vb, hb, xb, mask.as_ref());
            let sq_b = gb.square(unfused);
            let lb = gb.mean(sq_b);
            gb.backward(lb);

            let pairs = [
                (va.w_z, vb.w_z),
                (va.b_z, vb.b_z),
                (va.w_r, vb.w_r),
                (va.b_r, vb.b_r),
                (va.w_c, vb.w_c),
                (va.b_c, vb.b_c),
                (ha, hb),
                (xa, xb),
            ];
            for (i, (fa, fb)) in pairs.iter().enumerate() {
                let grad_a = ga.grad(*fa).expect("fused grad");
                let grad_b = gb.grad(*fb).expect("unfused grad");
                assert!(
                    grad_a.approx_eq(grad_b, 2e-5),
                    "grad {i} diverged (mask {}): {:?} vs {:?}",
                    mask.is_some(),
                    grad_a,
                    grad_b
                );
            }
        }
    }

    #[test]
    fn gru_step_rows_matches_masked_gru_step() {
        // Active rows {0, 2, 3} of 4; compact ops must agree with the masked
        // form on values and on every gradient.
        let rows = [0usize, 2, 3];
        let mask = Matrix::column_vector(&[1.0, 0.0, 1.0, 1.0]);
        let ids = [1usize, 0, 2]; // entity per active row

        let mut ga = Graph::new();
        let va = toy_gru(&mut ga, 5, 4, 9);
        let states_a = ga.param(det_matrix(3, 4, 33));
        let ha = ga.param(det_matrix(4, 5, 20));
        let xa = ga.gather_rows(states_a, &ids);
        let fused = ga.gru_step_rows(&va, ha, xa, &rows);
        let acc_a = ga.constant(Matrix::zeros(3, 5));
        let out_a = ga.segment_acc_rows(acc_a, fused, &rows, &ids);
        let sq_a = ga.square(out_a);
        let la = ga.mean(sq_a);
        ga.backward(la);

        let mut gb = Graph::new();
        let vb = toy_gru(&mut gb, 5, 4, 9);
        let states_b = gb.param(det_matrix(3, 4, 33));
        let hb = gb.param(det_matrix(4, 5, 20));
        // Masked form: gather a full-width id list (0 for inactive) + mask.
        let full_ids = [1usize, 0, 0, 2];
        let xb = gb.gather_mask(states_b, &full_ids, &mask);
        let stepped = gb.gru_step(&vb, hb, xb, Some(&mask));
        let acc_b = gb.constant(Matrix::zeros(3, 5));
        let out_b = gb.segment_acc(acc_b, stepped, &full_ids, &mask);
        let sq_b = gb.square(out_b);
        let lb = gb.mean(sq_b);
        gb.backward(lb);

        assert!(
            ga.value(fused).approx_eq(gb.value(stepped), 1e-6),
            "forward diverged"
        );
        assert!(ga.value(out_a).approx_eq(gb.value(out_b), 1e-6));
        let pairs = [
            (va.w_z, vb.w_z),
            (va.b_z, vb.b_z),
            (va.w_r, vb.w_r),
            (va.b_r, vb.b_r),
            (va.w_c, vb.w_c),
            (va.b_c, vb.b_c),
            (ha, hb),
            (states_a, states_b),
        ];
        for (i, (fa, fb)) in pairs.iter().enumerate() {
            let grad_a = ga.grad(*fa).expect("compact grad");
            let grad_b = gb.grad(*fb).expect("masked grad");
            assert!(grad_a.approx_eq(grad_b, 2e-5), "grad {i} diverged");
        }
    }

    #[test]
    fn merged_gate_kernel_is_bitwise_identical_to_split() {
        // gru_step and gru_step_rows with a bound [W_z|W_r] kernel must
        // produce bit-identical values and gradients to the split matmuls.
        let rows = [0usize, 2, 3];

        let run = |merged: bool| -> (Matrix, Matrix, Vec<Matrix>) {
            let mut g = Graph::new();
            let mut vars = toy_gru(&mut g, 5, 3, 42);
            if merged {
                vars = with_merged_gates(&mut g, vars);
            }
            let h = g.param(det_matrix(4, 5, 10));
            let x_dense = g.param(det_matrix(4, 3, 11));
            let dense = g.gru_step(&vars, h, x_dense, None);
            let x_rows = g.param(det_matrix(rows.len(), 3, 12));
            let compact = g.gru_step_rows(&vars, dense, x_rows, &rows);
            let sq = g.square(compact);
            let loss = g.mean(sq);
            g.backward(loss);
            let grads = [
                vars.w_z, vars.b_z, vars.w_r, vars.b_r, vars.w_c, vars.b_c, h,
            ]
            .iter()
            .map(|&v| g.grad(v).unwrap().clone())
            .collect();
            (g.value(dense).clone(), g.value(compact).clone(), grads)
        };

        let (dense_s, compact_s, grads_s) = run(false);
        let (dense_m, compact_m, grads_m) = run(true);
        assert!(dense_s.approx_eq(&dense_m, 0.0), "dense step diverged");
        assert!(
            compact_s.approx_eq(&compact_m, 0.0),
            "compact step diverged"
        );
        for (i, (a, b)) in grads_s.iter().zip(&grads_m).enumerate() {
            assert!(a.approx_eq(b, 0.0), "grad {i} diverged");
        }
    }

    #[test]
    fn reference_mode_matches_fast_ops_closely() {
        let run = |reference: bool| {
            let mut g = Graph::new();
            g.set_reference_mode(reference);
            let a = g.param(det_matrix(6, 5, 1));
            let b = g.param(det_matrix(5, 4, 2));
            let mm = g.matmul(a, b);
            let sg = g.sigmoid(mm);
            let th = g.tanh(sg);
            let se = g.selu(th);
            let loss = g.mean(se);
            g.backward(loss);
            (
                g.value(loss).get(0, 0),
                g.grad(a).unwrap().clone(),
                g.grad(b).unwrap().clone(),
            )
        };
        let (l_fast, ga_fast, gb_fast) = run(false);
        let (l_ref, ga_ref, gb_ref) = run(true);
        assert!((l_fast - l_ref).abs() < 1e-5, "loss {l_fast} vs {l_ref}");
        assert!(ga_fast.approx_eq(&ga_ref, 1e-4));
        assert!(gb_fast.approx_eq(&gb_ref, 1e-4));
    }

    /// Run one fused forward+backward and return (loss, all grads).
    fn run_fused_case(g: &mut Graph) -> (f32, Vec<Matrix>) {
        let vars = toy_gru(g, 4, 4, 3);
        let h0 = g.constant(det_matrix(5, 4, 30));
        let x0 = g.constant(det_matrix(5, 4, 31));
        let mask = Matrix::column_vector(&[1.0, 1.0, 0.0, 1.0, 1.0]);
        let x = g.gather_mask(x0, &[0, 2, 1, 4, 3], &mask);
        let h1 = g.gru_step(&vars, h0, x, Some(&mask));
        let acc0 = g.constant(Matrix::zeros(3, 4));
        let acc = g.segment_acc(acc0, h1, &[0, 1, 2, 0, 1], &mask);
        let sq = g.square(acc);
        let loss = g.mean(sq);
        g.backward(loss);
        let grads = [vars.w_z, vars.b_z, vars.w_r, vars.b_r, vars.w_c, vars.b_c]
            .iter()
            .map(|&v| g.grad(v).unwrap().clone())
            .collect();
        (g.value(loss).get(0, 0), grads)
    }

    #[test]
    fn reset_reuse_is_bit_identical_and_allocation_free() {
        let mut fresh = Graph::new();
        let (loss_fresh, grads_fresh) = run_fused_case(&mut fresh);

        let mut reused = Graph::new();
        let _ = run_fused_case(&mut reused);
        reused.reset();
        assert!(reused.is_empty());
        assert!(reused.pooled_buffers() > 0, "reset must harvest buffers");
        let (loss_reused, grads_reused) = run_fused_case(&mut reused);

        assert_eq!(loss_fresh, loss_reused, "reused tape must be bit-identical");
        for (a, b) in grads_fresh.iter().zip(&grads_reused) {
            assert!(
                a.approx_eq(b, 0.0),
                "gradients must be bit-identical after reset"
            );
        }
    }

    #[test]
    fn inference_mode_is_bit_identical_and_discards_gru_scratch() {
        let run = |inference: bool| -> (Matrix, usize) {
            let mut g = Graph::new();
            g.set_inference_mode(inference);
            let vars = toy_gru(&mut g, 4, 4, 3);
            let h = g.constant(det_matrix(5, 4, 30));
            let x = g.constant(det_matrix(5, 4, 31));
            let h1 = g.gru_step(&vars, h, x, None);
            let x2 = g.gather_rows(h1, &[0, 1, 2]);
            let h2 = g.gru_step_rows(&vars, h1, x2, &[1, 2, 3]);
            (g.value(h2).clone(), g.pooled_buffers())
        };
        let (train_out, train_pooled) = run(false);
        let (infer_out, infer_pooled) = run(true);
        assert!(
            train_out.approx_eq(&infer_out, 0.0),
            "inference mode must not change forward bits"
        );
        // Training keeps GRU scratch resident on nodes; inference recycles
        // it immediately, so each step reuses the previous step's buffers
        // and one step's worth stays parked when recording ends.
        assert_eq!(train_pooled, 0);
        assert!(
            infer_pooled >= 5,
            "expected recycled scratch, got {infer_pooled}"
        );
    }

    /// A toy 2-sample block-diagonal layout: paths 0..2 / 2..5, entities
    /// 0..3 / 3..6, one padded path (row 3) inactive.
    const SH_ROWS: [usize; 4] = [0, 1, 2, 4];
    const SH_IDS: [usize; 4] = [1, 0, 4, 5];
    const SH_ACTIVE: [usize; 3] = [0, 2, 4];
    const SH_DENSE: [usize; 3] = [0, 2, 5];
    const SH_ENTITY: [usize; 3] = [0, 3, 6];

    /// Run the full fused chain (gather → gru_step_rows → segment_acc_rows)
    /// with an optional shard split, returning (out value, loss, grads).
    fn sharded_case(g: &mut Graph, split: Option<ShardSplit<'_>>) -> (Matrix, f32, Vec<Matrix>) {
        let vars = toy_gru(g, 4, 3, 11);
        let states = g.param(det_matrix(6, 3, 50));
        let h = g.param(det_matrix(5, 4, 51));
        let x = g.gather_rows_sharded(states, (&SH_IDS).into(), split.clone());
        let h2 = g.gru_step_rows_sharded(&vars, h, x, (&SH_ROWS).into(), split.clone());
        let acc0 = g.constant(Matrix::zeros(6, 4));
        let out = g.segment_acc_rows_sharded(acc0, h2, (&SH_ROWS).into(), (&SH_IDS).into(), split);
        let sq = g.square(out);
        let loss = g.mean(sq);
        g.backward(loss);
        let grads = [
            vars.w_z, vars.b_z, vars.w_r, vars.b_r, vars.w_c, vars.b_c, h, states,
        ]
        .iter()
        .map(|&v| g.grad(v).unwrap().clone())
        .collect();
        (g.value(out).clone(), g.value(loss).get(0, 0), grads)
    }

    fn toy_split() -> ShardSplit<'static> {
        ShardSplit::borrowed(&SH_ACTIVE, &SH_DENSE, &SH_ENTITY)
    }

    #[test]
    fn sharded_forward_is_bitwise_identical_to_unsharded() {
        let mut ga = Graph::new();
        let (out_plain, _, grads_plain) = sharded_case(&mut ga, None);
        let mut gb = Graph::new();
        let (out_sharded, _, grads_sharded) = sharded_case(&mut gb, Some(toy_split()));
        assert!(
            out_plain.approx_eq(&out_sharded, 0.0),
            "sharding must not change forward bits"
        );
        // Gradients agree numerically; the parameter grads may differ in the
        // last bit (per-shard partial merge is the sharded canonical order).
        for (a, b) in grads_plain.iter().zip(&grads_sharded) {
            assert!(a.approx_eq(b, 1e-5));
        }
    }

    #[test]
    fn sharded_backward_is_bitwise_invariant_across_worker_counts() {
        let mut base = Graph::new();
        let (out_seq, loss_seq, grads_seq) = sharded_case(&mut base, Some(toy_split()));
        for workers in [1, 2, 3, 8] {
            let mut g = Graph::new();
            g.set_worker_pool(Some(Arc::new(WorkerPool::new(workers))));
            // Force even these toy-sized ops through the pool.
            g.set_parallel_threshold(0);
            let (out_par, loss_par, grads_par) = sharded_case(&mut g, Some(toy_split()));
            assert!(
                out_seq.approx_eq(&out_par, 0.0),
                "forward diverged at {workers} workers"
            );
            assert_eq!(loss_seq, loss_par, "loss diverged at {workers} workers");
            for (i, (a, b)) in grads_seq.iter().zip(&grads_par).enumerate() {
                assert!(
                    a.approx_eq(b, 0.0),
                    "grad {i} diverged at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn sharded_ops_handle_empty_shards() {
        // Second sample contributes no active rows at this position.
        let rows = [0usize, 1];
        let ids = [1usize, 0];
        let active = [0usize, 2, 2];
        let split = ShardSplit::borrowed(&active, &SH_DENSE, &SH_ENTITY);
        let run = |split: Option<ShardSplit<'_>>, pool: Option<Arc<WorkerPool>>| {
            let mut g = Graph::new();
            g.set_worker_pool(pool);
            g.set_parallel_threshold(0);
            let vars = toy_gru(&mut g, 4, 3, 13);
            let states = g.param(det_matrix(6, 3, 60));
            let h = g.param(det_matrix(5, 4, 61));
            let x = g.gather_rows_sharded(states, (&ids).into(), split.clone());
            let h2 = g.gru_step_rows_sharded(&vars, h, x, (&rows).into(), split.clone());
            let acc0 = g.constant(Matrix::zeros(6, 4));
            let out = g.segment_acc_rows_sharded(acc0, h2, (&rows).into(), (&ids).into(), split);
            let sq = g.square(out);
            let loss = g.mean(sq);
            g.backward(loss);
            (g.value(out).clone(), g.grad(h).unwrap().clone())
        };
        let (out_seq, gh_seq) = run(Some(split.clone()), None);
        let (out_par, gh_par) = run(Some(split.clone()), Some(Arc::new(WorkerPool::new(4))));
        assert!(out_seq.approx_eq(&out_par, 0.0));
        assert!(gh_seq.approx_eq(&gh_par, 0.0));
        let (out_plain, _) = run(None, None);
        assert!(out_seq.approx_eq(&out_plain, 0.0));
    }

    #[test]
    fn single_shard_splits_record_no_shards() {
        // A 1-sample "megabatch" must stay on the legacy backward path, so
        // its gradients remain bitwise identical to plain single plans.
        let (active, dense, entity) = ([0usize, 4], [0usize, 5], [0usize, 6]);
        let split = ShardSplit::borrowed(&active, &dense, &entity);
        let mut ga = Graph::new();
        let (_, loss_a, grads_a) = sharded_case(&mut ga, Some(split));
        let mut gb = Graph::new();
        let (_, loss_b, grads_b) = sharded_case(&mut gb, None);
        assert_eq!(loss_a, loss_b);
        for (a, b) in grads_a.iter().zip(&grads_b) {
            assert!(a.approx_eq(b, 0.0), "1-shard split must be a no-op");
        }
    }

    /// A 3-block dense row partition of 7 rows (deliberately unbalanced,
    /// with one single-row block).
    const DENSE_BOUNDS: [usize; 4] = [0, 3, 4, 7];

    /// Readout-shaped chain: matmul → add_bias → selu → matmul, dense GRU on
    /// top, optionally recorded with the dense shard layout. Returns the
    /// output value, the loss bits and every parameter gradient.
    fn dense_sharded_case(g: &mut Graph, bounds: Option<&[usize]>) -> (Matrix, f32, Vec<Matrix>) {
        let vars = toy_gru(g, 4, 4, 21);
        let h = g.param(det_matrix(7, 4, 70));
        let acc = g.param(det_matrix(7, 4, 71));
        let stepped = g.gru_step_dense_sharded(&vars, h, acc, bounds.map(Into::into));
        let w1 = g.param(det_matrix(4, 5, 72));
        let b1 = g.param(det_matrix(1, 5, 73));
        let lin = g.matmul_sharded(stepped, w1, bounds.map(Into::into));
        let biased = g.add_bias_sharded(lin, b1, bounds.map(Into::into));
        let act = g.selu_sharded(biased, bounds.map(Into::into));
        let w2 = g.param(det_matrix(5, 1, 74));
        let out = g.matmul_sharded(act, w2, bounds.map(Into::into));
        let sq = g.square(out);
        let loss = g.mean(sq);
        g.backward(loss);
        let grads = [
            vars.w_z, vars.b_z, vars.w_r, vars.b_r, vars.w_c, vars.b_c, h, acc, w1, b1, w2,
        ]
        .iter()
        .map(|&v| g.grad(v).unwrap().clone())
        .collect();
        (g.value(out).clone(), g.value(loss).get(0, 0), grads)
    }

    #[test]
    fn dense_sharded_forward_is_bitwise_identical_to_unsharded() {
        let mut ga = Graph::new();
        let (out_plain, _, grads_plain) = dense_sharded_case(&mut ga, None);
        let mut gb = Graph::new();
        let (out_sharded, _, grads_sharded) = dense_sharded_case(&mut gb, Some(&DENSE_BOUNDS));
        assert!(
            out_plain.approx_eq(&out_sharded, 0.0),
            "dense sharding must not change forward bits"
        );
        // Gradients agree numerically; weight grads may differ in the last
        // bit (per-shard partial merge is the sharded canonical grouping).
        for (i, (a, b)) in grads_plain.iter().zip(&grads_sharded).enumerate() {
            assert!(a.approx_eq(b, 1e-4), "grad {i} diverged numerically");
        }
    }

    #[test]
    fn dense_sharded_backward_is_bitwise_invariant_across_worker_counts() {
        let mut base = Graph::new();
        let (out_seq, loss_seq, grads_seq) = dense_sharded_case(&mut base, Some(&DENSE_BOUNDS));
        for workers in [1, 2, 3, 8] {
            let mut g = Graph::new();
            g.set_worker_pool(Some(Arc::new(WorkerPool::new(workers))));
            // Force even toy-sized dense ops through the pool.
            g.set_parallel_threshold(0);
            let (out_par, loss_par, grads_par) = dense_sharded_case(&mut g, Some(&DENSE_BOUNDS));
            assert!(
                out_seq.approx_eq(&out_par, 0.0),
                "forward diverged at {workers} workers"
            );
            assert_eq!(
                loss_seq.to_bits(),
                loss_par.to_bits(),
                "loss diverged at {workers} workers"
            );
            for (i, (a, b)) in grads_seq.iter().zip(&grads_par).enumerate() {
                assert!(
                    a.approx_eq(b, 0.0),
                    "grad {i} diverged at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn dense_sharded_ops_reset_reuse_is_bit_identical() {
        let mut fresh = Graph::new();
        let (_, loss_fresh, grads_fresh) = dense_sharded_case(&mut fresh, Some(&DENSE_BOUNDS));
        let mut reused = Graph::new();
        let _ = dense_sharded_case(&mut reused, Some(&DENSE_BOUNDS));
        reused.reset();
        let (_, loss_reused, grads_reused) = dense_sharded_case(&mut reused, Some(&DENSE_BOUNDS));
        assert_eq!(loss_fresh.to_bits(), loss_reused.to_bits());
        for (a, b) in grads_fresh.iter().zip(&grads_reused) {
            assert!(a.approx_eq(b, 0.0), "reused dense-sharded tape drifted");
        }
    }

    #[test]
    fn single_block_dense_bounds_record_no_shards() {
        // A [0, n] partition (one shard) must stay on the legacy bitwise
        // path — exactly what 1-sample megabatch plans rely on.
        let single = [0usize, 7];
        let mut ga = Graph::new();
        let (_, loss_a, grads_a) = dense_sharded_case(&mut ga, Some(&single));
        let mut gb = Graph::new();
        let (_, loss_b, grads_b) = dense_sharded_case(&mut gb, None);
        assert_eq!(loss_a.to_bits(), loss_b.to_bits());
        for (a, b) in grads_a.iter().zip(&grads_b) {
            assert!(a.approx_eq(b, 0.0), "1-block dense split must be a no-op");
        }
    }

    #[test]
    fn dense_gru_step_matches_plain_gru_step_numerically() {
        let run = |bounds: Option<&[usize]>| -> (Matrix, Vec<Matrix>) {
            let mut g = Graph::new();
            let vars = toy_gru(&mut g, 4, 3, 33);
            let h = g.param(det_matrix(7, 4, 80));
            let x = g.param(det_matrix(7, 3, 81));
            let out = g.gru_step_dense_sharded(&vars, h, x, bounds.map(Into::into));
            let sq = g.square(out);
            let loss = g.mean(sq);
            g.backward(loss);
            let grads = [
                vars.w_z, vars.b_z, vars.w_r, vars.b_r, vars.w_c, vars.b_c, h, x,
            ]
            .iter()
            .map(|&v| g.grad(v).unwrap().clone())
            .collect();
            (g.value(out).clone(), grads)
        };
        let (out_plain, grads_plain) = run(None);
        let (out_dense, grads_dense) = run(Some(&DENSE_BOUNDS));
        assert!(
            out_plain.approx_eq(&out_dense, 0.0),
            "dense GRU forward must be bitwise identical"
        );
        for (i, (a, b)) in grads_plain.iter().zip(&grads_dense).enumerate() {
            assert!(a.approx_eq(b, 1e-4), "dense GRU grad {i} diverged");
        }
    }

    #[test]
    fn inference_steps_consume_their_input_state_in_place() {
        let mut g = Graph::new();
        g.set_inference_mode(true);
        let vars = toy_gru(&mut g, 4, 4, 3);
        let h = g.constant(det_matrix(5, 4, 30));
        let x = g.constant(det_matrix(5, 4, 31));
        let h1 = g.gru_step(&vars, h, x, None);
        // The input state's buffer was stolen: h is now empty, h1 owns it.
        assert_eq!(g.value(h).shape(), (0, 0), "h consumed by in-place step");
        assert_eq!(g.value(h1).shape(), (5, 4));
        let acc = g.constant(Matrix::zeros(3, 4));
        let out = g.segment_acc_rows(acc, h1, &[0, 2], &[1, 2]);
        assert_eq!(g.value(acc).shape(), (0, 0), "acc consumed in place");
        assert_eq!(g.value(out).shape(), (3, 4));
        // Training mode copies: inputs stay readable.
        let mut t = Graph::new();
        let vars = toy_gru(&mut t, 4, 4, 3);
        let h = t.constant(det_matrix(5, 4, 30));
        let x = t.constant(det_matrix(5, 4, 31));
        let h1t = t.gru_step(&vars, h, x, None);
        assert_eq!(t.value(h).shape(), (5, 4), "training mode must not steal");
        // And the in-place values are bitwise identical to the copying ones.
        assert!(g.value(h1).approx_eq(t.value(h1t), 0.0));
    }

    #[test]
    #[should_panic(expected = "inference mode")]
    fn backward_rejects_inference_tapes() {
        let mut g = Graph::new();
        g.set_inference_mode(true);
        let x = g.param(Matrix::ones(1, 1));
        let loss = g.sum(x);
        g.backward(loss);
    }

    #[test]
    fn constant_with_builds_pooled_inputs() {
        let mut g = Graph::new();
        let v = g.constant_with(2, 3, |m| m.set(1, 2, 5.0));
        assert_eq!(g.value(v).get(1, 2), 5.0);
        assert_eq!(g.value(v).get(0, 0), 0.0, "pooled constants start zeroed");
    }

    #[test]
    fn index_copy_counter_tracks_copied_but_not_shared_inputs() {
        use crate::index::SharedIndices;
        use std::sync::Arc;
        let ids = [2usize, 0, 1];
        let shared: Arc<[usize]> = Arc::from(&ids[..]);
        let run = |input_shared: bool| {
            let mut g = Graph::new();
            let x = g.param(det_matrix(3, 4, 77));
            let y = if input_shared {
                g.gather_rows_sharded(x, SharedIndices::full(shared.clone()).into(), None)
            } else {
                g.gather_rows(x, &ids)
            };
            let loss = g.mean(y);
            g.backward(loss);
            (
                g.value(y).clone(),
                g.grad(x).unwrap().clone(),
                g.index_words_copied(),
            )
        };
        let (y_copied, gx_copied, words_copied) = run(false);
        let (y_shared, gx_shared, words_shared) = run(true);
        assert_eq!(
            words_copied,
            ids.len() as u64,
            "copied input must count each index word"
        );
        assert_eq!(
            words_shared, 0,
            "shared input is a refcount bump, not a copy"
        );
        assert!(
            y_copied.approx_eq(&y_shared, 0.0),
            "values must be bitwise equal"
        );
        assert!(
            gx_copied.approx_eq(&gx_shared, 0.0),
            "grads must be bitwise equal"
        );
    }

    #[test]
    fn index_copy_counter_is_cumulative_across_reset() {
        let ids = [1usize, 0];
        let mut g = Graph::new();
        let x = g.param(det_matrix(2, 2, 5));
        g.gather_rows(x, &ids);
        let after_first = g.index_words_copied();
        assert_eq!(after_first, ids.len() as u64);
        g.reset();
        let x = g.param(det_matrix(2, 2, 5));
        g.gather_rows(x, &ids);
        assert_eq!(
            g.index_words_copied(),
            2 * after_first,
            "reset recycles buffers but never clears the traffic counter"
        );
    }
}
