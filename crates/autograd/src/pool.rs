//! A shared pool of reusable differentiation tapes.
//!
//! Worker threads that each process a stream of samples check a [`Graph`]
//! out of the pool, [`Graph::reset`] it between samples, and return it when
//! the batch is done. Because `reset` retains every buffer, a warmed pool
//! makes the steady-state training loop allocation-free regardless of which
//! thread picks up which tape next batch.

use crate::Graph;
use std::sync::Mutex;

/// Thread-safe free list of [`Graph`] tapes.
#[derive(Default)]
pub struct TapePool {
    slots: Mutex<Vec<Graph>>,
}

impl TapePool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Check out a tape (reset and ready to record), creating one if the
    /// pool is empty.
    pub fn acquire(&self) -> Graph {
        let mut g = self
            .slots
            .lock()
            .expect("tape pool poisoned")
            .pop()
            .unwrap_or_default();
        g.reset();
        g
    }

    /// Return a tape to the pool for reuse. The tape is reset lazily on the
    /// next [`TapePool::acquire`], so buffers stay parked in the meantime.
    pub fn release(&self, g: Graph) {
        self.slots.lock().expect("tape pool poisoned").push(g);
    }

    /// Number of parked tapes (observability for tests).
    pub fn parked(&self) -> usize {
        self.slots.lock().expect("tape pool poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_tensor::Matrix;

    #[test]
    fn acquire_release_round_trip_retains_buffers() {
        let pool = TapePool::new();
        let mut g = pool.acquire();
        let x = g.param(Matrix::ones(4, 4));
        let y = g.square(x);
        let loss = g.mean(y);
        g.backward(loss);
        pool.release(g);
        assert_eq!(pool.parked(), 1);

        let g2 = pool.acquire();
        assert!(g2.is_empty(), "acquired tape must be reset");
        assert!(
            g2.pooled_buffers() > 0,
            "acquired tape must keep its buffers"
        );
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool = TapePool::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..8 {
                        let mut g = pool.acquire();
                        let x = g.param(Matrix::ones(2, 2));
                        let loss = g.sum(x);
                        g.backward(loss);
                        pool.release(g);
                    }
                });
            }
        });
        assert!(pool.parked() >= 1);
    }
}
