//! # rn-autograd
//!
//! Tape-based reverse-mode automatic differentiation over [`rn_tensor::Matrix`].
//!
//! The RouteNet message-passing loop is a *define-by-run* computation: the
//! structure of the graph (which links/nodes each path traverses) changes with
//! every sample, so the differentiation tape is rebuilt per forward pass.
//! [`Graph`] records every operation as it executes; [`Graph::backward`]
//! replays the tape in reverse, accumulating gradients into every node.
//!
//! Besides the usual dense ops (matmul, elementwise arithmetic, activations)
//! the tape supports the two *structural* primitives GNN message passing is
//! made of, with exact adjoints:
//!
//! - [`Graph::gather_rows`] — read entity states into per-position rows
//!   (adjoint: scatter-add), and
//! - [`Graph::segment_sum`] — aggregate per-position messages back into entity
//!   states (adjoint: gather).
//!
//! [`check`] provides finite-difference gradient checking, used extensively in
//! the test suites of this crate and of `rn-nn`.
//!
//! See `docs/ARCHITECTURE.md` at the workspace root for how the tape fits
//! into the plan → compose → megabatch → tape pipeline and which
//! bitwise-determinism invariants this crate promises the layers above it.
//!
//! ## Example
//!
//! ```
//! use rn_tensor::Matrix;
//! use rn_autograd::Graph;
//!
//! let mut g = Graph::new();
//! let x = g.param(Matrix::row_vector(&[1.0, 2.0]));
//! let w = g.param(Matrix::from_vec(2, 1, vec![3.0, 4.0]));
//! let y = g.matmul(x, w);          // y = x·w = 11
//! let loss = g.mean(y);
//! g.backward(loss);
//! assert_eq!(g.grad(w).unwrap().as_slice(), &[1.0, 2.0]); // d(loss)/dw = xᵀ
//! ```

#![warn(missing_docs)]

pub mod activations;
pub mod check;
pub mod graph;
pub mod index;
pub mod pool;
pub mod trace;

pub use graph::{Graph, GruVars, ShardSplit, Var, ZERO_COPY_ENV};
pub use index::{IndexInput, SharedIndices};
pub use pool::TapePool;
pub use rayon::WorkerPool;
