//! Borrow-or-copy index lists — the zero-copy tape mode.
//!
//! Every fused tape op records the index/segment lists it replays in the
//! backward sweep (gather ids, active rows, shard bounds). Historically the
//! tape copied each list into a pooled `Vec<usize>` at record time — cheap
//! per call, but paid again at every sequence position of every forward,
//! and it was the last per-step O(batch) memory traffic that is not kernel
//! work. A cached megabatch composition already owns identical lists with a
//! lifetime longer than any tape, so the tape can record a refcounted
//! *borrow* of the composition's buffer instead.
//!
//! [`SharedIndices`] is that borrow: an `Arc<[usize]>` plus a sub-range.
//! [`IndexInput`] is what callers hand the sharded ops — either a plain
//! slice the tape must copy (legacy/uncached callers, tests), or a shared
//! view recorded as-is with **zero** copying. Which one a caller builds is
//! the only difference between the modes; the recorded list contents are
//! identical either way, so results are bitwise identical by construction.
//! [`crate::Graph::index_words_copied`] counts the words the tape actually
//! copies, which is how the zero-copy tests assert "zero".

use std::ops::Deref;
use std::sync::Arc;

/// A refcounted view of an index list owned by long-lived structure (a
/// cached megabatch composition). Cloning bumps a refcount; recording one on
/// a tape op copies nothing.
#[derive(Debug, Clone)]
pub struct SharedIndices {
    buf: Arc<[usize]>,
    start: usize,
    end: usize,
}

impl SharedIndices {
    /// View of `buf[start..end]`. Panics when the range is out of bounds.
    pub fn new(buf: Arc<[usize]>, start: usize, end: usize) -> Self {
        assert!(
            start <= end && end <= buf.len(),
            "SharedIndices: range {start}..{end} out of bounds for buffer of {}",
            buf.len()
        );
        Self { buf, start, end }
    }

    /// View of the whole buffer.
    pub fn full(buf: Arc<[usize]>) -> Self {
        let end = buf.len();
        Self { buf, start: 0, end }
    }

    /// The viewed indices.
    pub fn as_slice(&self) -> &[usize] {
        &self.buf[self.start..self.end]
    }

    /// Number of indices in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// An index list handed to a tape op at record time.
///
/// `Copied` is the legacy contract: the tape copies the slice into a pooled
/// buffer before the caller's borrow ends. `Shared` is the zero-copy
/// contract: the tape stores the refcounted view itself. The op's recorded
/// contents — and therefore every forward value and gradient — are the same
/// either way.
#[derive(Debug, Clone)]
pub enum IndexInput<'a> {
    /// Borrowed slice; the tape copies it into a pooled buffer.
    Copied(&'a [usize]),
    /// Shared view; the tape records it by refcount, copying nothing.
    Shared(SharedIndices),
}

impl IndexInput<'_> {
    /// The indices, whichever representation carries them.
    pub fn as_slice(&self) -> &[usize] {
        match self {
            IndexInput::Copied(s) => s,
            IndexInput::Shared(sh) => sh.as_slice(),
        }
    }
}

impl<'a> From<&'a [usize]> for IndexInput<'a> {
    fn from(s: &'a [usize]) -> Self {
        IndexInput::Copied(s)
    }
}

impl<'a> From<&'a Vec<usize>> for IndexInput<'a> {
    fn from(s: &'a Vec<usize>) -> Self {
        IndexInput::Copied(s)
    }
}

impl<'a, const N: usize> From<&'a [usize; N]> for IndexInput<'a> {
    fn from(s: &'a [usize; N]) -> Self {
        IndexInput::Copied(s)
    }
}

impl<'a> From<SharedIndices> for IndexInput<'a> {
    fn from(sh: SharedIndices) -> Self {
        IndexInput::Shared(sh)
    }
}

impl<'a> From<&SharedIndices> for IndexInput<'a> {
    fn from(sh: &SharedIndices) -> Self {
        IndexInput::Shared(sh.clone())
    }
}

/// The list a tape op actually stores: a pooled copy (recycled into the
/// index pool on reset) or a shared view (dropped on reset — one refcount
/// decrement).
#[derive(Debug)]
pub(crate) enum IndexList {
    Pooled(Vec<usize>),
    Shared(SharedIndices),
}

impl Deref for IndexList {
    type Target = [usize];

    fn deref(&self) -> &[usize] {
        match self {
            IndexList::Pooled(v) => v,
            IndexList::Shared(sh) => sh.as_slice(),
        }
    }
}

impl Default for IndexList {
    fn default() -> Self {
        IndexList::Pooled(Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_view_slices_and_clones_cheaply() {
        let buf: Arc<[usize]> = vec![5, 6, 7, 8, 9].into();
        let sh = SharedIndices::new(buf.clone(), 1, 4);
        assert_eq!(sh.as_slice(), &[6, 7, 8]);
        assert_eq!(sh.len(), 3);
        let clone = sh.clone();
        assert_eq!(clone.as_slice(), sh.as_slice());
        let full = SharedIndices::full(buf);
        assert_eq!(full.len(), 5);
        assert!(!full.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn shared_view_rejects_bad_range() {
        let buf: Arc<[usize]> = vec![1, 2].into();
        let _ = SharedIndices::new(buf, 1, 3);
    }

    #[test]
    fn input_conversions_expose_the_same_slice() {
        let v = vec![1usize, 2, 3];
        let from_vec: IndexInput = (&v).into();
        assert_eq!(from_vec.as_slice(), &[1, 2, 3]);
        let from_slice: IndexInput = v.as_slice().into();
        assert_eq!(from_slice.as_slice(), &[1, 2, 3]);
        let arr = [4usize, 5];
        let from_arr: IndexInput = (&arr).into();
        assert_eq!(from_arr.as_slice(), &[4, 5]);
        let sh = SharedIndices::full(vec![9usize].into());
        let from_shared: IndexInput = sh.into();
        assert_eq!(from_shared.as_slice(), &[9]);
    }
}
