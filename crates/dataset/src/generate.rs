//! Simulator-backed sample generation.
//!
//! Each sample draws — deterministically from `(master_seed, index)` — a
//! routing scheme, a traffic matrix at a random load level, a queue-profile
//! assignment, optionally heterogeneous link capacities; runs the
//! packet-level simulator; and records the per-path labels. Samples are
//! generated in parallel with rayon, which is safe because every sample owns
//! an independent split RNG stream.

use crate::schema::{Dataset, PathTarget, Sample, SampleQos};
use rayon::prelude::*;
use rn_netgraph::{Routing, Topology, TrafficMatrix};
use rn_netsim::{
    simulate, simulate_qos, FaultPlan, QosSpec, QueueProfile, SchedulingPolicy, SimConfig,
    SimResult, TrafficProfile,
};
use rn_tensor::Prng;
use serde::{Deserialize, Serialize};

/// How per-sample traffic matrices are drawn.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficModel {
    /// Draw uniform per-pair rates, then rescale so the busiest link's
    /// offered utilization hits a per-sample target from
    /// [`GeneratorConfig::utilization_range`]. Gives precise control of the
    /// congestion regime, but couples per-flow rates to the topology (bigger
    /// topologies get smaller per-flow rates at equal utilization).
    TargetUtilization,
    /// Draw per-pair rates uniformly from `rate_range_bps`, multiplied by a
    /// per-sample global intensity from `intensity_range` — the KDN-dataset
    /// approach. Rate features are identically distributed across
    /// topologies, which is what lets a model trained on GEANT2 see
    /// in-distribution inputs on NSFNET (the paper's generalization
    /// experiment).
    AbsoluteRates {
        /// Per-pair base rate range in bits per second.
        rate_range_bps: (f64, f64),
        /// Per-sample global multiplier range (the "traffic intensity").
        intensity_range: (f64, f64),
    },
}

/// Controls for the QoS dimension of generated scenarios: each sample draws
/// a scheduling policy from the menu and assigns every flow a ToS class
/// uniformly at random. The per-class traffic profiles are fixed by the
/// config (class count = profile count).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QosGenConfig {
    /// Menu of scheduling policies; each sample draws one uniformly.
    pub policies: Vec<SchedulingPolicy>,
    /// Per-class traffic model; the length fixes the number of ToS classes.
    pub class_profiles: Vec<TrafficProfile>,
}

impl QosGenConfig {
    /// A two-class strict-priority/WFQ/DRR mix with heterogeneous traffic —
    /// a reasonable default QoS scenario space.
    pub fn two_class_mix() -> Self {
        Self {
            policies: vec![
                SchedulingPolicy::StrictPriority,
                SchedulingPolicy::Wfq {
                    weights: vec![3.0, 1.0],
                },
                SchedulingPolicy::Drr {
                    quanta_bits: vec![3_000.0, 1_000.0],
                },
            ],
            class_profiles: vec![
                TrafficProfile::Poisson,
                TrafficProfile::OnOff {
                    on_mean_s: 1.0,
                    off_mean_s: 1.0,
                },
            ],
        }
    }

    /// Validate the menu against the class count.
    pub fn validate(&self) -> Result<(), String> {
        if self.policies.is_empty() {
            return Err("QoS config needs at least one policy".into());
        }
        let n = self.class_profiles.len();
        for p in &self.policies {
            p.validate(n)?;
        }
        for p in &self.class_profiles {
            p.validate()?;
        }
        Ok(())
    }
}

/// Controls for the dataset generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Simulator parameters (per-sample seeds are derived, the `seed` field
    /// here is ignored).
    pub sim: SimConfig,
    /// Traffic-matrix model.
    pub traffic_model: TrafficModel,
    /// Per-sample target utilization of the busiest link, drawn uniformly
    /// from this range (used by [`TrafficModel::TargetUtilization`]).
    pub utilization_range: (f64, f64),
    /// Per-sample fraction of nodes with [`QueueProfile::Tiny`] queues, drawn
    /// uniformly from this range before assigning profiles per node.
    pub tiny_fraction_range: (f64, f64),
    /// Optional menu of link capacities (bps). When non-empty, every directed
    /// link independently draws a capacity from the menu per sample —
    /// exercising the variable-capacity support of the reference RouteNet.
    pub capacity_choices_bps: Vec<f64>,
    /// Randomize the routing scheme per sample (Dijkstra under random link
    /// weights). When false, minimum-hop routing is used for every sample.
    pub randomize_routing: bool,
    /// QoS scenario dimension: per-sample scheduling policies, ToS classes
    /// and heterogeneous traffic models. `None` (the default, and what old
    /// configs deserialize to) generates legacy FIFO scenarios **with a
    /// bit-identical RNG stream** — every QoS draw is gated behind this
    /// option.
    pub qos: Option<QosGenConfig>,
    /// Fault scenario dimension: a fault plan applied to every sample's
    /// simulation and recorded on the sample. `None` means fault-free.
    pub faults: Option<FaultPlan>,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            sim: SimConfig::default(),
            traffic_model: TrafficModel::TargetUtilization,
            utilization_range: (0.4, 0.95),
            tiny_fraction_range: (0.2, 0.8),
            capacity_choices_bps: Vec::new(),
            randomize_routing: true,
            qos: None,
            faults: None,
        }
    }
}

impl GeneratorConfig {
    /// Validate ranges.
    pub fn validate(&self) -> Result<(), String> {
        self.sim.validate()?;
        let (ulo, uhi) = self.utilization_range;
        if !(ulo > 0.0 && uhi >= ulo) {
            return Err(format!("bad utilization range ({ulo}, {uhi})"));
        }
        if let TrafficModel::AbsoluteRates {
            rate_range_bps: (rlo, rhi),
            intensity_range: (ilo, ihi),
        } = self.traffic_model
        {
            if !(rlo > 0.0 && rhi >= rlo) {
                return Err(format!("bad rate range ({rlo}, {rhi})"));
            }
            if !(ilo > 0.0 && ihi >= ilo) {
                return Err(format!("bad intensity range ({ilo}, {ihi})"));
            }
        }
        let (tlo, thi) = self.tiny_fraction_range;
        if !(0.0..=1.0).contains(&tlo) || !(0.0..=1.0).contains(&thi) || thi < tlo {
            return Err(format!("bad tiny-fraction range ({tlo}, {thi})"));
        }
        if self.capacity_choices_bps.iter().any(|&c| c <= 0.0) {
            return Err("capacity choices must be positive".into());
        }
        if let Some(qos) = &self.qos {
            qos.validate()?;
        }
        if let Some(faults) = &self.faults {
            // Link indices are checked per-topology at simulation time.
            faults.validate(usize::MAX)?;
        }
        Ok(())
    }
}

/// Draw the per-sample [`QosSpec`] (policy + per-flow classes) and run the
/// simulator through the matching entry point. All QoS RNG draws happen in
/// here, *after* the queue-profile draw and *before* the sim-seed draw, so
/// a `None` QoS config leaves the legacy RNG stream untouched.
fn draw_qos_and_simulate(
    rng: &mut Prng,
    sample_topo: &Topology,
    routing: &Routing,
    traffic: &TrafficMatrix,
    queue_capacities: &[usize],
    config: &GeneratorConfig,
) -> (Option<QosSpec>, u64, SimResult) {
    let spec = config.qos.as_ref().map(|qc| {
        let policy = rng.choose(&qc.policies).clone();
        let num_classes = qc.class_profiles.len() as u64;
        let num_flows = routing
            .iter_paths()
            .filter(|&(s, d, _)| traffic.rate(s, d) > 0.0)
            .count();
        QosSpec {
            policy,
            class_profiles: qc.class_profiles.clone(),
            flow_classes: (0..num_flows)
                .map(|_| rng.int_range(0, num_classes) as u8)
                .collect(),
        }
    });
    let sim_seed = rng.int_range(0, u64::MAX);
    let sim_config = SimConfig {
        seed: sim_seed,
        ..config.sim.clone()
    };
    let faults = config.faults.clone().unwrap_or_default();
    let result = match &spec {
        Some(spec) => simulate_qos(
            sample_topo,
            routing,
            traffic,
            queue_capacities,
            &sim_config,
            &faults,
            spec,
        ),
        None => simulate(
            sample_topo,
            routing,
            traffic,
            queue_capacities,
            &sim_config,
            &faults,
        ),
    }
    .expect("generator inputs are validated");
    debug_assert!(result.conservation_holds(), "simulator lost packets");
    (spec, sim_seed, result)
}

/// Generate one sample deterministically from `(master_seed, index)`.
pub fn generate_sample(
    topo: &Topology,
    config: &GeneratorConfig,
    master_seed: u64,
    index: u64,
) -> Sample {
    let master = Prng::new(master_seed);
    let mut rng = master.split(index);

    // Per-sample topology: clone and (optionally) re-draw link capacities.
    let mut sample_topo = topo.clone();
    if !config.capacity_choices_bps.is_empty() {
        for l in 0..sample_topo.num_links() {
            let cap = *rng.choose(&config.capacity_choices_bps);
            sample_topo.set_link_capacity(l, cap);
        }
    }

    let routing = if config.randomize_routing {
        Routing::randomized(&sample_topo, &mut rng)
    } else {
        Routing::shortest_paths(&sample_topo)
    };

    let traffic = match config.traffic_model {
        TrafficModel::TargetUtilization => {
            let (ulo, uhi) = config.utilization_range;
            let target_util = ulo + (uhi - ulo) * rng.uniform() as f64;
            TrafficMatrix::with_target_utilization(&sample_topo, &routing, &mut rng, target_util)
        }
        TrafficModel::AbsoluteRates {
            rate_range_bps: (rlo, rhi),
            intensity_range: (ilo, ihi),
        } => {
            let intensity = ilo + (ihi - ilo) * rng.uniform() as f64;
            TrafficMatrix::uniform_random(
                sample_topo.num_nodes(),
                &mut rng,
                rlo * intensity,
                rhi * intensity,
            )
        }
    };

    let (tlo, thi) = config.tiny_fraction_range;
    let tiny_fraction = tlo + (thi - tlo) * rng.uniform() as f64;
    let queue_profiles =
        QueueProfile::random_assignment(sample_topo.num_nodes(), tiny_fraction, &mut rng);
    let queue_capacities = QueueProfile::capacities(&queue_profiles, &config.sim);

    let (spec, sim_seed, result) = draw_qos_and_simulate(
        &mut rng,
        &sample_topo,
        &routing,
        &traffic,
        &queue_capacities,
        config,
    );

    let targets = result
        .flows
        .iter()
        .zip(&result.flow_pairs)
        .map(|(f, &(src, dst))| PathTarget {
            src,
            dst,
            mean_delay_s: f.mean_delay_s,
            jitter_s: f.jitter_s,
            loss_ratio: f.loss_ratio,
            delivered: f.delivered,
        })
        .collect();

    Sample {
        routing,
        traffic,
        queue_profiles,
        queue_capacities,
        link_capacities: sample_topo.links().iter().map(|l| l.capacity_bps).collect(),
        targets,
        seed: sim_seed,
        qos: spec.map(|s| SampleQos {
            policy: s.policy,
            class_profiles: s.class_profiles,
            path_classes: s.flow_classes,
            class_targets: result.classes,
        }),
        faults: config.faults.clone(),
    }
}

/// Generate one **sparse** sample: only `active_pairs` source–destination
/// pairs carry traffic, and the routing scheme routes exactly those pairs
/// ([`Routing::sparse_weighted_shortest_paths`]). This is the giant-topology
/// entry point: a full scheme on an `n`-node graph is `n(n-1)` paths (a
/// million for `n = 1000`), while a scenario's label count — the simulator
/// creates one flow per pair with positive rate — stays at `active_pairs`.
/// Sparse samples therefore cost `O(active_pairs)` in paths, labels and
/// plan rows regardless of `n`, which is what lets a model trained on
/// 14–24-node topologies be *evaluated* on 500+-node graphs.
///
/// Pair selection, routing weights, rates, queue profiles and the simulator
/// seed all derive from `(master_seed, index)` exactly like
/// [`generate_sample`]. Traffic rates follow the configured
/// [`TrafficModel`]: `AbsoluteRates` keeps per-path rate features
/// identically distributed across topology sizes (the cross-topology
/// generalization requirement); `TargetUtilization` rescales the sparse
/// matrix so the busiest *loaded* link hits the drawn utilization target.
pub fn generate_sparse_sample(
    topo: &Topology,
    config: &GeneratorConfig,
    active_pairs: usize,
    master_seed: u64,
    index: u64,
) -> Sample {
    let n = topo.num_nodes();
    assert!(n >= 2, "sparse sample needs at least two nodes");
    let max_pairs = n * (n - 1);
    let active_pairs = active_pairs.min(max_pairs);
    assert!(active_pairs > 0, "sparse sample needs at least one pair");
    let master = Prng::new(master_seed);
    let mut rng = master.split(index);

    // Per-sample topology: clone and (optionally) re-draw link capacities —
    // identical to the dense generator.
    let mut sample_topo = topo.clone();
    if !config.capacity_choices_bps.is_empty() {
        for l in 0..sample_topo.num_links() {
            let cap = *rng.choose(&config.capacity_choices_bps);
            sample_topo.set_link_capacity(l, cap);
        }
    }

    // Distinct ordered pairs, drawn by rejection (active_pairs << n² in the
    // sparse regime this exists for, so collisions are rare; the draw is
    // still deterministic and terminates because active_pairs <= n(n-1)).
    let mut chosen = std::collections::HashSet::with_capacity(active_pairs);
    let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(active_pairs);
    while pairs.len() < active_pairs {
        let src = rng.index(n);
        let dst = rng.index(n);
        if src != dst && chosen.insert((src, dst)) {
            pairs.push((src, dst));
        }
    }

    // Routing over exactly the active pairs, with the same weight model as
    // the dense generator (random weights per sample, or unit weights).
    let weights: Vec<f64> = if config.randomize_routing {
        (0..sample_topo.num_links())
            .map(|_| 1.0 + rng.uniform() as f64)
            .collect()
    } else {
        vec![1.0; sample_topo.num_links()]
    };
    let routing = Routing::sparse_weighted_shortest_paths(&sample_topo, &weights, &pairs);

    let mut traffic = TrafficMatrix::zeros(n);
    match config.traffic_model {
        TrafficModel::AbsoluteRates {
            rate_range_bps: (rlo, rhi),
            intensity_range: (ilo, ihi),
        } => {
            let intensity = ilo + (ihi - ilo) * rng.uniform() as f64;
            for &(src, dst) in &pairs {
                let rate = rlo + (rhi - rlo) * rng.uniform() as f64;
                traffic.set(src, dst, rate * intensity);
            }
        }
        TrafficModel::TargetUtilization => {
            let (ulo, uhi) = config.utilization_range;
            let target_util = ulo + (uhi - ulo) * rng.uniform() as f64;
            for &(src, dst) in &pairs {
                traffic.set(src, dst, 0.5 + rng.uniform() as f64);
            }
            let max_util = traffic.max_link_utilization(&sample_topo, &routing);
            if max_util > 0.0 {
                let scale = target_util / max_util;
                for &(src, dst) in &pairs {
                    let r = traffic.rate(src, dst);
                    traffic.set(src, dst, r * scale);
                }
            }
        }
    }

    let (tlo, thi) = config.tiny_fraction_range;
    let tiny_fraction = tlo + (thi - tlo) * rng.uniform() as f64;
    let queue_profiles = QueueProfile::random_assignment(n, tiny_fraction, &mut rng);
    let queue_capacities = QueueProfile::capacities(&queue_profiles, &config.sim);

    let (spec, sim_seed, result) = draw_qos_and_simulate(
        &mut rng,
        &sample_topo,
        &routing,
        &traffic,
        &queue_capacities,
        config,
    );

    let targets = result
        .flows
        .iter()
        .zip(&result.flow_pairs)
        .map(|(f, &(src, dst))| PathTarget {
            src,
            dst,
            mean_delay_s: f.mean_delay_s,
            jitter_s: f.jitter_s,
            loss_ratio: f.loss_ratio,
            delivered: f.delivered,
        })
        .collect();

    Sample {
        routing,
        traffic,
        queue_profiles,
        queue_capacities,
        link_capacities: sample_topo.links().iter().map(|l| l.capacity_bps).collect(),
        targets,
        seed: sim_seed,
        qos: spec.map(|s| SampleQos {
            policy: s.policy,
            class_profiles: s.class_profiles,
            path_classes: s.flow_classes,
            class_targets: result.classes,
        }),
        faults: config.faults.clone(),
    }
}

/// Generate `count` sparse samples in parallel (see
/// [`generate_sparse_sample`]).
pub fn generate_sparse(
    topo: &Topology,
    config: &GeneratorConfig,
    active_pairs: usize,
    master_seed: u64,
    count: usize,
) -> Dataset {
    config.validate().expect("invalid generator config");
    let samples: Vec<Sample> = (0..count as u64)
        .into_par_iter()
        .map(|i| generate_sparse_sample(topo, config, active_pairs, master_seed, i))
        .collect();
    Dataset {
        topology: topo.clone(),
        samples,
    }
}

/// Generate `count` samples in parallel.
pub fn generate(
    topo: &Topology,
    config: &GeneratorConfig,
    master_seed: u64,
    count: usize,
) -> Dataset {
    config.validate().expect("invalid generator config");
    let samples: Vec<Sample> = (0..count as u64)
        .into_par_iter()
        .map(|i| generate_sample(topo, config, master_seed, i))
        .collect();
    Dataset {
        topology: topo.clone(),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_netgraph::topologies;

    fn quick_config() -> GeneratorConfig {
        GeneratorConfig {
            sim: SimConfig {
                duration_s: 60.0,
                warmup_s: 10.0,
                ..SimConfig::default()
            },
            ..GeneratorConfig::default()
        }
    }

    #[test]
    fn generates_valid_samples() {
        let topo = topologies::toy5();
        let ds = generate(&topo, &quick_config(), 42, 4);
        assert_eq!(ds.len(), 4);
        ds.validate().unwrap();
    }

    #[test]
    fn generation_is_deterministic() {
        let topo = topologies::toy5();
        let a = generate(&topo, &quick_config(), 7, 3);
        let b = generate(&topo, &quick_config(), 7, 3);
        for (sa, sb) in a.samples.iter().zip(&b.samples) {
            assert_eq!(sa.seed, sb.seed);
            assert_eq!(sa.targets, sb.targets);
            assert_eq!(sa.queue_profiles, sb.queue_profiles);
        }
    }

    #[test]
    fn single_sample_reproduces_independently() {
        let topo = topologies::toy5();
        let ds = generate(&topo, &quick_config(), 11, 3);
        let regenerated = generate_sample(&topo, &quick_config(), 11, 2);
        assert_eq!(ds.samples[2].targets, regenerated.targets);
    }

    #[test]
    fn samples_differ_from_each_other() {
        let topo = topologies::toy5();
        let ds = generate(&topo, &quick_config(), 13, 2);
        assert_ne!(ds.samples[0].targets, ds.samples[1].targets);
    }

    #[test]
    fn heterogeneous_capacities_are_drawn_from_menu() {
        let topo = topologies::toy5();
        let mut config = quick_config();
        config.capacity_choices_bps = vec![10_000.0, 40_000.0];
        let ds = generate(&topo, &config, 17, 3);
        for s in &ds.samples {
            assert!(s
                .link_capacities
                .iter()
                .all(|c| *c == 10_000.0 || *c == 40_000.0));
        }
        // At least one sample should mix both speeds.
        assert!(ds.samples.iter().any(
            |s| s.link_capacities.contains(&10_000.0) && s.link_capacities.contains(&40_000.0)
        ));
    }

    #[test]
    fn queue_profiles_mix_tiny_and_standard() {
        let topo = topologies::nsfnet_default();
        let config = quick_config();
        let ds = generate(&topo, &config, 19, 4);
        let mut saw_tiny = false;
        let mut saw_std = false;
        for s in &ds.samples {
            saw_tiny |= s.queue_profiles.contains(&QueueProfile::Tiny);
            saw_std |= s.queue_profiles.contains(&QueueProfile::Standard);
        }
        assert!(
            saw_tiny && saw_std,
            "expected both queue archetypes across samples"
        );
    }

    #[test]
    fn higher_load_range_produces_higher_delays() {
        let topo = topologies::toy5();
        let mut low = quick_config();
        low.utilization_range = (0.1, 0.2);
        let mut high = quick_config();
        high.utilization_range = (0.9, 0.95);
        let d_low = generate(&topo, &low, 23, 3);
        let d_high = generate(&topo, &high, 23, 3);
        let mean = |ds: &Dataset| {
            let v = ds.all_delays(1);
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(mean(&d_high) > mean(&d_low));
    }

    #[test]
    fn absolute_rates_are_topology_independent() {
        let mut config = quick_config();
        config.traffic_model = TrafficModel::AbsoluteRates {
            rate_range_bps: (100.0, 200.0),
            intensity_range: (1.0, 1.0),
        };
        let small = generate(&topologies::toy5(), &config, 71, 2);
        let large = generate(&topologies::nsfnet_default(), &config, 71, 2);
        // Every pair's rate must come from the same absolute range on both.
        for ds in [&small, &large] {
            for s in &ds.samples {
                for (src, dst, _) in s.routing.iter_paths() {
                    let r = s.traffic.rate(src, dst);
                    assert!(
                        (100.0..200.0).contains(&r),
                        "rate {r} outside the absolute range"
                    );
                }
            }
        }
    }

    #[test]
    fn intensity_scales_absolute_rates() {
        let mut lo = quick_config();
        lo.traffic_model = TrafficModel::AbsoluteRates {
            rate_range_bps: (100.0, 200.0),
            intensity_range: (0.5, 0.5),
        };
        let mut hi = quick_config();
        hi.traffic_model = TrafficModel::AbsoluteRates {
            rate_range_bps: (100.0, 200.0),
            intensity_range: (2.0, 2.0),
        };
        let ds_lo = generate(&topologies::toy5(), &lo, 73, 1);
        let ds_hi = generate(&topologies::toy5(), &hi, 73, 1);
        assert!(ds_hi.samples[0].traffic.total_bps() > 3.0 * ds_lo.samples[0].traffic.total_bps());
    }

    #[test]
    fn sparse_samples_validate_and_stay_sparse() {
        let mut rng = rn_tensor::Prng::new(31);
        let topo = rn_netgraph::generators::isp_tiered(
            100,
            &rn_netgraph::generators::TierConfig::default(),
            &mut rng,
        )
        .unwrap();
        let mut config = quick_config();
        config.sim.duration_s = 30.0;
        config.sim.warmup_s = 5.0;
        config.traffic_model = TrafficModel::AbsoluteRates {
            rate_range_bps: (100.0, 1_000.0),
            intensity_range: (0.5, 1.8),
        };
        let ds = generate_sparse(&topo, &config, 32, 41, 2);
        ds.validate().unwrap();
        for s in &ds.samples {
            // Label count tracks the active-pair budget, not n(n-1).
            assert_eq!(s.routing.num_paths(), 32);
            assert_eq!(s.targets.len(), 32);
            // Labels align with iter_paths order (row-major): the invariant
            // build_plan's target zip relies on.
            for ((src, dst, _), t) in s.routing.iter_paths().zip(&s.targets) {
                assert_eq!((src, dst), (t.src, t.dst));
                assert!(s.traffic.rate(src, dst) > 0.0);
            }
        }
    }

    #[test]
    fn sparse_generation_is_deterministic() {
        let topo = topologies::nsfnet_default();
        let mut config = quick_config();
        config.sim.duration_s = 30.0;
        let a = generate_sparse(&topo, &config, 20, 53, 2);
        let b = generate_sparse(&topo, &config, 20, 53, 2);
        for (sa, sb) in a.samples.iter().zip(&b.samples) {
            assert_eq!(sa.seed, sb.seed);
            assert_eq!(sa.targets, sb.targets);
        }
        // Independent regeneration of one index reproduces it.
        let lone = generate_sparse_sample(&topo, &config, 20, 53, 1);
        assert_eq!(a.samples[1].targets, lone.targets);
    }

    #[test]
    fn sparse_target_utilization_hits_a_sane_load() {
        let topo = topologies::nsfnet_default();
        let mut config = quick_config();
        config.sim.duration_s = 20.0;
        config.utilization_range = (0.5, 0.5);
        let s = generate_sparse_sample(&topo, &config, 12, 61, 0);
        // The busiest loaded link should sit at the drawn target.
        let topo_caps = topologies::nsfnet_default();
        let util = s.traffic.max_link_utilization(&topo_caps, &s.routing);
        assert!(
            (util - 0.5).abs() < 1e-9,
            "sparse rescaling missed the target: {util}"
        );
    }

    #[test]
    fn qos_samples_carry_classes_and_per_class_labels() {
        let topo = topologies::toy5();
        let mut config = quick_config();
        config.qos = Some(QosGenConfig::two_class_mix());
        config.faults = Some(FaultPlan::with_drop_chance(0.005));
        let ds = generate(&topo, &config, 29, 4);
        ds.validate().unwrap();
        for s in &ds.samples {
            let qos = s.qos.as_ref().expect("QoS config produces QoS samples");
            assert_eq!(qos.path_classes.len(), s.targets.len());
            assert_eq!(qos.num_classes(), 2);
            assert_eq!(qos.class_targets.len(), 2);
            assert!(!qos.is_single_class_fifo());
            assert_eq!(s.faults, Some(FaultPlan::with_drop_chance(0.005)));
            // Per-class delivered counts pool the per-flow counts exactly.
            let per_class: u64 = qos.class_targets.iter().map(|c| c.delivered).sum();
            let per_flow: u64 = s.targets.iter().map(|t| t.delivered).sum();
            assert_eq!(per_class, per_flow);
        }
        // The policy menu actually varies across samples (drawn per sample).
        let distinct: std::collections::HashSet<_> = ds
            .samples
            .iter()
            .map(|s| format!("{:?}", s.qos.as_ref().unwrap().policy))
            .collect();
        assert!(distinct.len() > 1, "4 samples should draw >1 policy");
    }

    #[test]
    fn qos_generation_is_deterministic() {
        let topo = topologies::toy5();
        let mut config = quick_config();
        config.qos = Some(QosGenConfig::two_class_mix());
        let a = generate(&topo, &config, 37, 2);
        let b = generate(&topo, &config, 37, 2);
        for (sa, sb) in a.samples.iter().zip(&b.samples) {
            assert_eq!(sa.targets, sb.targets);
            assert_eq!(sa.qos, sb.qos);
        }
    }

    #[test]
    fn legacy_config_produces_legacy_samples() {
        // No QoS, no faults: samples must carry neither dimension, so the
        // serialized form (and the RNG stream — no gated draws taken) matches
        // what the pre-QoS generator produced.
        let topo = topologies::toy5();
        let ds = generate(&topo, &quick_config(), 42, 2);
        for s in &ds.samples {
            assert!(s.qos.is_none());
            assert!(s.faults.is_none());
        }
    }

    #[test]
    fn sparse_qos_samples_validate() {
        let topo = topologies::nsfnet_default();
        let mut config = quick_config();
        config.sim.duration_s = 30.0;
        config.qos = Some(QosGenConfig::two_class_mix());
        let ds = generate_sparse(&topo, &config, 16, 43, 2);
        ds.validate().unwrap();
        for s in &ds.samples {
            assert_eq!(s.qos.as_ref().unwrap().path_classes.len(), 16);
        }
    }

    #[test]
    fn invalid_qos_config_is_rejected() {
        let mut c = quick_config();
        c.qos = Some(QosGenConfig {
            policies: vec![SchedulingPolicy::Wfq {
                weights: vec![1.0], // arity mismatch with two profiles
            }],
            class_profiles: vec![TrafficProfile::Poisson, TrafficProfile::Poisson],
        });
        assert!(c.validate().is_err());
        let mut c = quick_config();
        c.qos = Some(QosGenConfig {
            policies: vec![],
            class_profiles: vec![TrafficProfile::Poisson],
        });
        assert!(c.validate().is_err());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut c = quick_config();
        c.utilization_range = (0.5, 0.1);
        assert!(c.validate().is_err());
        let mut c = quick_config();
        c.tiny_fraction_range = (0.5, 1.5);
        assert!(c.validate().is_err());
    }
}
