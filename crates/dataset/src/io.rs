//! Dataset persistence.
//!
//! Datasets serialize to a single JSON document (convenient, diffable,
//! inspectable with standard tooling) or to JSON-lines (one sample per line;
//! streams without holding the whole set in memory). Benchmarks cache
//! generated datasets on disk so reruns skip simulation.

use crate::schema::{Dataset, Sample};
use rn_netgraph::Topology;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Save a dataset as one pretty-printed JSON document.
pub fn save_json(dataset: &Dataset, path: &Path) -> Result<(), String> {
    let file = File::create(path).map_err(|e| format!("create {}: {e}", path.display()))?;
    serde_json::to_writer(BufWriter::new(file), dataset)
        .map_err(|e| format!("serialize {}: {e}", path.display()))
}

/// Load a dataset saved by [`save_json`].
pub fn load_json(path: &Path) -> Result<Dataset, String> {
    let file = File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    serde_json::from_reader(BufReader::new(file))
        .map_err(|e| format!("parse {}: {e}", path.display()))
}

/// Save as JSON-lines: line 1 is the topology, each further line one sample.
pub fn save_jsonl(dataset: &Dataset, path: &Path) -> Result<(), String> {
    let file = File::create(path).map_err(|e| format!("create {}: {e}", path.display()))?;
    let mut w = BufWriter::new(file);
    let topo_line =
        serde_json::to_string(&dataset.topology).map_err(|e| format!("serialize topology: {e}"))?;
    writeln!(w, "{topo_line}").map_err(|e| format!("write {}: {e}", path.display()))?;
    for (i, sample) in dataset.samples.iter().enumerate() {
        let line =
            serde_json::to_string(sample).map_err(|e| format!("serialize sample {i}: {e}"))?;
        writeln!(w, "{line}").map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    Ok(())
}

/// Load a JSON-lines dataset saved by [`save_jsonl`].
pub fn load_jsonl(path: &Path) -> Result<Dataset, String> {
    let file = File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    let mut lines = BufReader::new(file).lines();
    let topo_line = lines
        .next()
        .ok_or_else(|| format!("{}: empty file", path.display()))?
        .map_err(|e| format!("read {}: {e}", path.display()))?;
    let topology: Topology =
        serde_json::from_str(&topo_line).map_err(|e| format!("parse topology: {e}"))?;
    let mut samples = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line.map_err(|e| format!("read {}: {e}", path.display()))?;
        if line.trim().is_empty() {
            continue;
        }
        let sample: Sample =
            serde_json::from_str(&line).map_err(|e| format!("parse sample {i}: {e}"))?;
        samples.push(sample);
    }
    Ok(Dataset { topology, samples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GeneratorConfig};
    use rn_netgraph::topologies;
    use rn_netsim::SimConfig;

    fn small_dataset() -> Dataset {
        let config = GeneratorConfig {
            sim: SimConfig {
                duration_s: 30.0,
                warmup_s: 5.0,
                ..SimConfig::default()
            },
            ..GeneratorConfig::default()
        };
        generate(&topologies::toy5(), &config, 5, 3)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rn_dataset_io_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn json_round_trip() {
        let ds = small_dataset();
        let path = tmp("ds.json");
        save_json(&ds, &path).unwrap();
        let back = load_json(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.len(), ds.len());
        back.validate().unwrap();
        for (a, b) in ds.samples.iter().zip(&back.samples) {
            assert_eq!(a.targets, b.targets);
            assert_eq!(a.seed, b.seed);
        }
    }

    #[test]
    fn jsonl_round_trip() {
        let ds = small_dataset();
        let path = tmp("ds.jsonl");
        save_jsonl(&ds, &path).unwrap();
        let back = load_jsonl(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.len(), ds.len());
        back.validate().unwrap();
        for (a, b) in ds.samples.iter().zip(&back.samples) {
            assert_eq!(a.targets, b.targets);
        }
    }

    #[test]
    fn load_missing_file_errors_cleanly() {
        let err = load_json(Path::new("/nonexistent/nope.json")).unwrap_err();
        assert!(err.contains("open"), "{err}");
    }

    #[test]
    fn jsonl_rejects_empty_file() {
        let path = tmp("empty.jsonl");
        std::fs::write(&path, "").unwrap();
        let err = load_jsonl(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.contains("empty"), "{err}");
    }
}
