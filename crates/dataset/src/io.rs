//! Dataset persistence.
//!
//! Datasets serialize to a single JSON document (convenient, diffable,
//! inspectable with standard tooling) or to JSON-lines (one sample per line;
//! streams without holding the whole set in memory). Benchmarks cache
//! generated datasets on disk so reruns skip simulation.
//!
//! Both writers are **atomic** (temp file + rename in the target directory):
//! a crashed run, or two bench processes racing on the same cache path,
//! never leaves a torn dataset behind — the cache either has the old file,
//! the new file, or nothing.

use crate::schema::{Dataset, Sample};
use rn_netgraph::Topology;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// A temporary sibling of `path` (same directory, so the final rename never
/// crosses a filesystem boundary). pid + per-process counter keep
/// concurrent writers — other processes or other threads of this one — on
/// separate scratch files.
fn tmp_sibling(path: &Path) -> PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".tmp.{}.{seq}", std::process::id()));
    path.with_file_name(name)
}

/// Write via `fill`, then atomically rename into place. The temp file is
/// fsynced before the rename, so even across an OS crash the final path
/// holds either the old content or the complete new content — never a torn
/// file. Cleans up the temp file on any failure.
///
/// Shared by every JSON artifact writer in the workspace (datasets here,
/// models in `rn_core::persist`) so the crash-safety rules live in one
/// place.
pub fn atomic_write(
    path: &Path,
    fill: impl FnOnce(&mut BufWriter<File>) -> Result<(), String>,
) -> Result<(), String> {
    let tmp = tmp_sibling(path);
    let write = (|| {
        let file = File::create(&tmp).map_err(|e| format!("create {}: {e}", tmp.display()))?;
        let mut w = BufWriter::new(file);
        fill(&mut w)?;
        w.flush()
            .map_err(|e| format!("flush {}: {e}", tmp.display()))?;
        // Data must be durable before the rename's metadata: otherwise a
        // crash can journal the new directory entry ahead of the blocks,
        // leaving a truncated file at the final path.
        w.get_ref()
            .sync_all()
            .map_err(|e| format!("fsync {}: {e}", tmp.display()))
    })();
    if let Err(e) = write {
        std::fs::remove_file(&tmp).ok();
        return Err(e);
    }
    std::fs::rename(&tmp, path).map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        format!("rename {} -> {}: {e}", tmp.display(), path.display())
    })
}

/// Save a dataset as one JSON document (atomic: temp file + rename).
pub fn save_json(dataset: &Dataset, path: &Path) -> Result<(), String> {
    atomic_write(path, |w| {
        serde_json::to_writer(w, dataset).map_err(|e| format!("serialize {}: {e}", path.display()))
    })
}

/// Load a dataset saved by [`save_json`].
pub fn load_json(path: &Path) -> Result<Dataset, String> {
    let file = File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    serde_json::from_reader(BufReader::new(file))
        .map_err(|e| format!("parse {}: {e}", path.display()))
}

/// Save as JSON-lines: line 1 is the topology, each further line one sample.
/// Atomic like [`save_json`]: the lines land in a temp file renamed into
/// place only once every sample has been written.
pub fn save_jsonl(dataset: &Dataset, path: &Path) -> Result<(), String> {
    atomic_write(path, |w| {
        let topo_line = serde_json::to_string(&dataset.topology)
            .map_err(|e| format!("serialize topology: {e}"))?;
        writeln!(w, "{topo_line}").map_err(|e| format!("write {}: {e}", path.display()))?;
        for (i, sample) in dataset.samples.iter().enumerate() {
            let line =
                serde_json::to_string(sample).map_err(|e| format!("serialize sample {i}: {e}"))?;
            writeln!(w, "{line}").map_err(|e| format!("write {}: {e}", path.display()))?;
        }
        Ok(())
    })
}

/// Load a JSON-lines dataset saved by [`save_jsonl`].
pub fn load_jsonl(path: &Path) -> Result<Dataset, String> {
    let file = File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    let mut lines = BufReader::new(file).lines();
    let topo_line = lines
        .next()
        .ok_or_else(|| format!("{}: empty file", path.display()))?
        .map_err(|e| format!("read {}: {e}", path.display()))?;
    let topology: Topology =
        serde_json::from_str(&topo_line).map_err(|e| format!("parse topology: {e}"))?;
    let mut samples = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line.map_err(|e| format!("read {}: {e}", path.display()))?;
        if line.trim().is_empty() {
            continue;
        }
        let sample: Sample =
            serde_json::from_str(&line).map_err(|e| format!("parse sample {i}: {e}"))?;
        samples.push(sample);
    }
    Ok(Dataset { topology, samples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GeneratorConfig};
    use rn_netgraph::topologies;
    use rn_netsim::SimConfig;

    fn small_dataset() -> Dataset {
        let config = GeneratorConfig {
            sim: SimConfig {
                duration_s: 30.0,
                warmup_s: 5.0,
                ..SimConfig::default()
            },
            ..GeneratorConfig::default()
        };
        generate(&topologies::toy5(), &config, 5, 3)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rn_dataset_io_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn json_round_trip() {
        let ds = small_dataset();
        let path = tmp("ds.json");
        save_json(&ds, &path).unwrap();
        let back = load_json(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.len(), ds.len());
        back.validate().unwrap();
        for (a, b) in ds.samples.iter().zip(&back.samples) {
            assert_eq!(a.targets, b.targets);
            assert_eq!(a.seed, b.seed);
        }
    }

    #[test]
    fn jsonl_round_trip() {
        let ds = small_dataset();
        let path = tmp("ds.jsonl");
        save_jsonl(&ds, &path).unwrap();
        let back = load_jsonl(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.len(), ds.len());
        back.validate().unwrap();
        for (a, b) in ds.samples.iter().zip(&back.samples) {
            assert_eq!(a.targets, b.targets);
        }
    }

    #[test]
    fn qos_dimension_round_trips() {
        let config = GeneratorConfig {
            sim: SimConfig {
                duration_s: 30.0,
                warmup_s: 5.0,
                ..SimConfig::default()
            },
            qos: Some(crate::generate::QosGenConfig::two_class_mix()),
            faults: Some(rn_netsim::FaultPlan::with_drop_chance(0.01)),
            ..GeneratorConfig::default()
        };
        let ds = generate(&topologies::toy5(), &config, 11, 2);
        let path = tmp("ds_qos.json");
        save_json(&ds, &path).unwrap();
        let back = load_json(&path).unwrap();
        std::fs::remove_file(&path).ok();
        back.validate().unwrap();
        for (a, b) in ds.samples.iter().zip(&back.samples) {
            assert_eq!(a.qos, b.qos, "QoS dimension must survive the round trip");
            assert_eq!(a.faults, b.faults);
        }
    }

    #[test]
    fn legacy_files_without_qos_fields_still_load() {
        // A sample serialized before the QoS/fault fields existed has no
        // `qos`/`faults` keys; the loader must default both to None.
        let ds = small_dataset();
        let path = tmp("ds_legacy.json");
        save_json(&ds, &path).unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        // Strip the new keys to reconstruct the legacy wire format.
        text = text
            .replace("\"qos\":null,", "")
            .replace("\"faults\":null,", "");
        text = text
            .replace(",\"qos\":null", "")
            .replace(",\"faults\":null", "");
        std::fs::write(&path, &text).unwrap();
        let back = load_json(&path).unwrap();
        std::fs::remove_file(&path).ok();
        back.validate().unwrap();
        for s in &back.samples {
            assert!(s.qos.is_none() && s.faults.is_none());
        }
    }

    #[test]
    fn jsonl_round_trip_is_atomic_and_overwrites_cleanly() {
        let ds = small_dataset();
        let path = tmp("atomic.jsonl");
        // Two consecutive saves (fresh + overwrite) both go through the
        // temp-and-rename path; neither leaves scratch files behind.
        save_jsonl(&ds, &path).unwrap();
        save_jsonl(&ds, &path).unwrap();
        let stem = path.file_name().unwrap().to_string_lossy().into_owned();
        let leftovers: Vec<String> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with(&stem) && n.contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        let back = load_jsonl(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.len(), ds.len());
        assert_eq!(back.topology.name, ds.topology.name);
        for (a, b) in ds.samples.iter().zip(&back.samples) {
            assert_eq!(a.targets, b.targets);
            assert_eq!(a.queue_capacities, b.queue_capacities);
            assert_eq!(a.link_capacities, b.link_capacities);
        }
    }

    #[test]
    fn save_into_missing_directory_errors_cleanly() {
        let ds = small_dataset();
        let err = save_jsonl(&ds, Path::new("/no/such/dir/ds.jsonl")).unwrap_err();
        assert!(err.contains("create"), "{err}");
    }

    #[test]
    fn load_missing_file_errors_cleanly() {
        let err = load_json(Path::new("/nonexistent/nope.json")).unwrap_err();
        assert!(err.contains("open"), "{err}");
    }

    #[test]
    fn jsonl_rejects_empty_file() {
        let path = tmp("empty.jsonl");
        std::fs::write(&path, "").unwrap();
        let err = load_jsonl(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.contains("empty"), "{err}");
    }
}
