//! # rn-dataset
//!
//! Dataset schema, generation, normalization and IO for the RouteNet
//! reproduction.
//!
//! A [`Sample`] is one simulated network scenario: a routing scheme, a traffic
//! matrix, per-node queue profiles and per-link capacities, plus the simulated
//! per-path delay/jitter/loss labels. A [`Dataset`] is a topology plus many
//! samples; [`generate()`] produces them in parallel, each fully determined by
//! `master_seed` and its index (so regenerating sample 17 alone yields exactly
//! the same scenario).
//!
//! The paper trains on 400,000 GEANT2 samples and evaluates on 100,000 GEANT2
//! plus 100,000 NSFNET samples. Dataset sizes here are arguments, not
//! constants — `EXPERIMENTS.md` records the scaled-down defaults used for the
//! reproduction and why the conclusion survives the scaling.

pub mod generate;
pub mod io;
pub mod normalize;
pub mod schema;
pub mod split;

pub use generate::{
    generate, generate_sample, generate_sparse, generate_sparse_sample, GeneratorConfig,
    QosGenConfig, TrafficModel,
};
pub use normalize::Normalizer;
pub use schema::{Dataset, PathTarget, Sample, SampleQos};
pub use split::train_test_split;
