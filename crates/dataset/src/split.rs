//! Train/test splitting.

use crate::schema::Dataset;
use rn_tensor::Prng;

/// Shuffle the samples with `rng` and split them into
/// `(train, test)` with `train_fraction` of the samples in the first part.
///
/// Panics unless `0 < train_fraction < 1`. A split of a non-empty dataset
/// always leaves at least one sample on each side.
pub fn train_test_split(
    dataset: Dataset,
    train_fraction: f64,
    rng: &mut Prng,
) -> (Dataset, Dataset) {
    assert!(
        train_fraction > 0.0 && train_fraction < 1.0,
        "train_fraction must be in (0,1), got {train_fraction}"
    );
    let Dataset {
        topology,
        mut samples,
    } = dataset;
    rng.shuffle(&mut samples);
    let n = samples.len();
    let mut n_train = ((n as f64) * train_fraction).round() as usize;
    if n >= 2 {
        n_train = n_train.clamp(1, n - 1);
    }
    let test_samples = samples.split_off(n_train);
    (
        Dataset {
            topology: topology.clone(),
            samples,
        },
        Dataset {
            topology,
            samples: test_samples,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GeneratorConfig};
    use rn_netgraph::topologies;
    use rn_netsim::SimConfig;

    fn small_dataset(n: usize) -> Dataset {
        let config = GeneratorConfig {
            sim: SimConfig {
                duration_s: 30.0,
                warmup_s: 5.0,
                ..SimConfig::default()
            },
            ..GeneratorConfig::default()
        };
        generate(&topologies::toy5(), &config, 3, n)
    }

    #[test]
    fn split_partitions_samples() {
        let ds = small_dataset(10);
        let seeds: Vec<u64> = ds.samples.iter().map(|s| s.seed).collect();
        let (train, test) = train_test_split(ds, 0.7, &mut Prng::new(1));
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        let mut all: Vec<u64> = train
            .samples
            .iter()
            .chain(&test.samples)
            .map(|s| s.seed)
            .collect();
        all.sort_unstable();
        let mut expected = seeds;
        expected.sort_unstable();
        assert_eq!(all, expected, "split must be a partition");
    }

    #[test]
    fn split_never_empties_a_side() {
        let ds = small_dataset(2);
        let (train, test) = train_test_split(ds, 0.99, &mut Prng::new(2));
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 1);
    }

    #[test]
    fn split_is_seed_deterministic() {
        let a = train_test_split(small_dataset(8), 0.5, &mut Prng::new(9));
        let b = train_test_split(small_dataset(8), 0.5, &mut Prng::new(9));
        let ids = |d: &Dataset| d.samples.iter().map(|s| s.seed).collect::<Vec<_>>();
        assert_eq!(ids(&a.0), ids(&b.0));
        assert_eq!(ids(&a.1), ids(&b.1));
    }

    #[test]
    #[should_panic(expected = "train_fraction")]
    fn rejects_degenerate_fraction() {
        let _ = train_test_split(small_dataset(4), 1.0, &mut Prng::new(1));
    }
}
