//! Dataset schema: samples, per-path labels, and the dataset container.

use rn_netgraph::{Routing, Topology, TrafficMatrix};
use rn_netsim::{ClassStats, FaultPlan, QueueProfile, SchedulingPolicy, TrafficProfile};
use serde::{Deserialize, Serialize};

/// Ground-truth labels for one source–destination path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathTarget {
    /// Source node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Simulated mean end-to-end delay in seconds.
    pub mean_delay_s: f64,
    /// Simulated delay standard deviation (jitter) in seconds.
    pub jitter_s: f64,
    /// Simulated loss ratio.
    pub loss_ratio: f64,
    /// Packets the statistic is based on; low counts mean noisy labels and
    /// are filtered by [`PathTarget::is_reliable`].
    pub delivered: u64,
}

impl PathTarget {
    /// True when the label rests on at least `min_packets` deliveries.
    pub fn is_reliable(&self, min_packets: u64) -> bool {
        self.delivered >= min_packets
    }
}

/// The QoS dimension of one sample: the scheduling policy and per-class
/// traffic models the simulator ran, the ToS class of every labeled path,
/// and the simulator's pooled per-class ground truth (the labels the
/// queue-theory validation harness checks the model against).
///
/// Kept as an `Option` on [`Sample`] — legacy (FIFO, single-class) datasets
/// simply omit it, and files written before this field existed deserialize
/// with `qos: None` (the vendored serde maps missing keys to `None` for
/// `Option` fields; do not add non-`Option` fields to persisted structs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleQos {
    /// The per-port scheduling discipline of this scenario.
    pub policy: SchedulingPolicy,
    /// Per-class traffic model; the length is the number of ToS classes.
    pub class_profiles: Vec<TrafficProfile>,
    /// ToS class of each labeled path, aligned with [`Sample::targets`].
    pub path_classes: Vec<u8>,
    /// Simulated per-class pooled statistics (ground truth for per-class
    /// validation), indexed by class.
    pub class_targets: Vec<ClassStats>,
}

impl SampleQos {
    /// Number of ToS classes.
    pub fn num_classes(&self) -> usize {
        self.class_profiles.len()
    }

    /// True when this spec is indistinguishable from the legacy model:
    /// one class scheduled FIFO. Plans built from such samples carry no
    /// queue entities.
    pub fn is_single_class_fifo(&self) -> bool {
        self.num_classes() == 1 && self.policy == SchedulingPolicy::Fifo
    }
}

/// One simulated network scenario with its labels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sample {
    /// The routing scheme of this scenario.
    pub routing: Routing,
    /// The offered traffic matrix (bits per second per ordered pair).
    pub traffic: TrafficMatrix,
    /// Per-node queue archetype (the feature the extended model sees).
    pub queue_profiles: Vec<QueueProfile>,
    /// Per-node waiting-room capacity in packets (derived from the profiles
    /// and the simulator config; stored so consumers need no sim config).
    pub queue_capacities: Vec<usize>,
    /// Per-directed-link capacity in bits per second (may vary per sample).
    pub link_capacities: Vec<f64>,
    /// Ground-truth labels, in `routing.iter_paths()` order.
    pub targets: Vec<PathTarget>,
    /// The seed that generated this sample (provenance).
    pub seed: u64,
    /// QoS dimension (scheduling policy, classes, per-class labels).
    /// `None` for legacy FIFO scenarios.
    pub qos: Option<SampleQos>,
    /// Fault dimension (random drops, link outages) the simulator applied.
    /// `None` means the fault-free baseline.
    pub faults: Option<FaultPlan>,
}

impl Sample {
    /// Number of labeled paths.
    pub fn num_paths(&self) -> usize {
        self.targets.len()
    }

    /// Fraction of paths whose labels rest on at least `min_packets`
    /// deliveries.
    pub fn reliable_fraction(&self, min_packets: u64) -> f64 {
        if self.targets.is_empty() {
            return 0.0;
        }
        self.targets
            .iter()
            .filter(|t| t.is_reliable(min_packets))
            .count() as f64
            / self.targets.len() as f64
    }

    /// Structural validation against the dataset topology.
    pub fn validate(&self, topo: &Topology) -> Result<(), String> {
        if self.queue_profiles.len() != topo.num_nodes() {
            return Err(format!(
                "{} queue profiles for {} nodes",
                self.queue_profiles.len(),
                topo.num_nodes()
            ));
        }
        if self.queue_capacities.len() != topo.num_nodes() {
            return Err(format!(
                "{} queue capacities for {} nodes",
                self.queue_capacities.len(),
                topo.num_nodes()
            ));
        }
        if self.link_capacities.len() != topo.num_links() {
            return Err(format!(
                "{} link capacities for {} links",
                self.link_capacities.len(),
                topo.num_links()
            ));
        }
        self.routing.validate(topo)?;
        if self.targets.len() != self.routing.num_paths() {
            return Err(format!(
                "{} targets for {} routed paths",
                self.targets.len(),
                self.routing.num_paths()
            ));
        }
        for t in &self.targets {
            if !(t.mean_delay_s.is_finite() && t.jitter_s.is_finite() && t.loss_ratio.is_finite()) {
                return Err(format!("non-finite label on path {}->{}", t.src, t.dst));
            }
            if t.mean_delay_s < 0.0 || t.jitter_s < 0.0 || !(0.0..=1.0).contains(&t.loss_ratio) {
                return Err(format!("out-of-range label on path {}->{}", t.src, t.dst));
            }
        }
        if let Some(qos) = &self.qos {
            if qos.path_classes.len() != self.targets.len() {
                return Err(format!(
                    "{} path classes for {} targets",
                    qos.path_classes.len(),
                    self.targets.len()
                ));
            }
            let n = qos.num_classes();
            qos.policy.validate(n)?;
            for p in &qos.class_profiles {
                p.validate()?;
            }
            if let Some(&c) = qos.path_classes.iter().find(|&&c| c as usize >= n) {
                return Err(format!("path class {c} out of range (num classes {n})"));
            }
            if qos.class_targets.len() != n {
                return Err(format!(
                    "{} class targets for {} classes",
                    qos.class_targets.len(),
                    n
                ));
            }
        }
        if let Some(faults) = &self.faults {
            faults.validate(topo.num_links())?;
        }
        Ok(())
    }
}

/// A topology plus its simulated samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// The shared topology (per-sample link capacities may override the
    /// topology's nominal ones).
    pub topology: Topology,
    /// The scenarios.
    pub samples: Vec<Sample>,
}

impl Dataset {
    /// Validate every sample against the topology.
    pub fn validate(&self) -> Result<(), String> {
        for (i, s) in self.samples.iter().enumerate() {
            s.validate(&self.topology)
                .map_err(|e| format!("sample {i}: {e}"))?;
        }
        Ok(())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// All reliable mean-delay labels across the dataset (for normalization).
    pub fn all_delays(&self, min_packets: u64) -> Vec<f64> {
        self.samples
            .iter()
            .flat_map(|s| {
                s.targets
                    .iter()
                    .filter(move |t| t.is_reliable(min_packets))
                    .map(|t| t.mean_delay_s)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_netgraph::topologies;

    fn tiny_sample(topo: &Topology) -> Sample {
        let routing = Routing::shortest_paths(topo);
        let n = topo.num_nodes();
        let targets: Vec<PathTarget> = routing
            .iter_paths()
            .map(|(s, d, _)| PathTarget {
                src: s,
                dst: d,
                mean_delay_s: 0.1,
                jitter_s: 0.01,
                loss_ratio: 0.0,
                delivered: 100,
            })
            .collect();
        Sample {
            routing,
            traffic: TrafficMatrix::zeros(n),
            queue_profiles: vec![QueueProfile::Standard; n],
            queue_capacities: vec![32; n],
            link_capacities: vec![1e4; topo.num_links()],
            targets,
            seed: 7,
            qos: None,
            faults: None,
        }
    }

    fn tiny_qos(num_paths: usize) -> SampleQos {
        SampleQos {
            policy: SchedulingPolicy::StrictPriority,
            class_profiles: vec![TrafficProfile::Poisson, TrafficProfile::Poisson],
            path_classes: (0..num_paths).map(|i| (i % 2) as u8).collect(),
            class_targets: ClassStats::from_accumulators(
                &vec![Default::default(); num_paths],
                &(0..num_paths).map(|i| (i % 2) as u8).collect::<Vec<_>>(),
                2,
            ),
        }
    }

    #[test]
    fn valid_sample_validates() {
        let topo = topologies::toy5();
        let s = tiny_sample(&topo);
        s.validate(&topo).unwrap();
        assert_eq!(s.num_paths(), 20);
        assert_eq!(s.reliable_fraction(50), 1.0);
        assert_eq!(s.reliable_fraction(200), 0.0);
    }

    #[test]
    fn corrupted_sample_fails_validation() {
        let topo = topologies::toy5();
        let mut s = tiny_sample(&topo);
        s.targets[0].mean_delay_s = f64::NAN;
        assert!(s.validate(&topo).is_err());

        let mut s = tiny_sample(&topo);
        s.queue_capacities.pop();
        assert!(s.validate(&topo).is_err());

        let mut s = tiny_sample(&topo);
        s.targets.pop();
        assert!(s.validate(&topo).is_err());
    }

    #[test]
    fn qos_dimension_validates() {
        let topo = topologies::toy5();
        let mut s = tiny_sample(&topo);
        s.qos = Some(tiny_qos(s.num_paths()));
        s.faults = Some(FaultPlan::with_drop_chance(0.01));
        s.validate(&topo).unwrap();
        assert!(!s.qos.as_ref().unwrap().is_single_class_fifo());

        // Misaligned path classes are rejected.
        let mut bad = s.clone();
        bad.qos.as_mut().unwrap().path_classes.pop();
        assert!(bad.validate(&topo).is_err());

        // Out-of-range classes are rejected.
        let mut bad = s.clone();
        bad.qos.as_mut().unwrap().path_classes[0] = 9;
        assert!(bad.validate(&topo).is_err());

        // Fault plans referencing missing links are rejected.
        let mut bad = s.clone();
        bad.faults = Some(FaultPlan::none().with_outage(topo.num_links(), 0.0, 1.0));
        assert!(bad.validate(&topo).is_err());
    }

    #[test]
    fn single_class_fifo_is_recognized_as_legacy() {
        let q = SampleQos {
            policy: SchedulingPolicy::Fifo,
            class_profiles: vec![TrafficProfile::Poisson],
            path_classes: vec![0; 4],
            class_targets: ClassStats::from_accumulators(
                &vec![Default::default(); 4],
                &[0, 0, 0, 0],
                1,
            ),
        };
        assert!(q.is_single_class_fifo());
    }

    #[test]
    fn dataset_collects_delays() {
        let topo = topologies::toy5();
        let ds = Dataset {
            topology: topo.clone(),
            samples: vec![tiny_sample(&topo), tiny_sample(&topo)],
        };
        ds.validate().unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.all_delays(1).len(), 40);
        assert!(ds.all_delays(1000).is_empty());
    }
}
