//! Target and feature normalization.
//!
//! Delays span orders of magnitude across load levels; training on raw
//! seconds makes the readout chase the heavy tail. The trainer therefore
//! standardizes log-delays (or raw values) with statistics computed on the
//! *training* set only, and inverts the transform for reporting.

use serde::{Deserialize, Serialize};

/// An affine normalizer `y = (f(x) − mean) / std`, where `f` is identity or
/// natural log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    /// Whether values pass through `ln` before standardization.
    pub log_space: bool,
    /// Mean of (possibly log-transformed) fitting values.
    pub mean: f64,
    /// Standard deviation of the fitting values (floored to avoid division
    /// blow-ups on near-constant data).
    pub std: f64,
}

impl Normalizer {
    /// Fit on raw values. With `log_space`, all values must be positive.
    pub fn fit(values: &[f64], log_space: bool) -> Self {
        assert!(!values.is_empty(), "Normalizer::fit: empty input");
        let transformed: Vec<f64> = values
            .iter()
            .map(|&v| {
                if log_space {
                    assert!(
                        v > 0.0,
                        "Normalizer::fit: non-positive value {v} in log space"
                    );
                    v.ln()
                } else {
                    v
                }
            })
            .collect();
        let n = transformed.len() as f64;
        let mean = transformed.iter().sum::<f64>() / n;
        let var = transformed
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / n;
        Self {
            log_space,
            mean,
            std: var.sqrt().max(1e-9),
        }
    }

    /// Identity normalizer (useful as a disabled-normalization sentinel).
    pub fn identity() -> Self {
        Self {
            log_space: false,
            mean: 0.0,
            std: 1.0,
        }
    }

    /// Forward transform: raw → normalized.
    pub fn normalize(&self, v: f64) -> f64 {
        let t = if self.log_space { v.ln() } else { v };
        (t - self.mean) / self.std
    }

    /// Inverse transform: normalized → raw.
    pub fn denormalize(&self, v: f64) -> f64 {
        let t = v * self.std + self.mean;
        if self.log_space {
            t.exp()
        } else {
            t
        }
    }

    /// Map a whole slice.
    pub fn normalize_all(&self, values: &[f64]) -> Vec<f64> {
        values.iter().map(|&v| self.normalize(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_identity() {
        let n = Normalizer::fit(&[1.0, 2.0, 3.0, 4.0], false);
        for v in [0.5, 1.7, 9.9] {
            assert!((n.denormalize(n.normalize(v)) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn round_trip_log_space() {
        let n = Normalizer::fit(&[0.01, 0.1, 1.0, 10.0], true);
        for v in [0.02, 0.5, 7.0] {
            assert!((n.denormalize(n.normalize(v)) - v).abs() < 1e-9 * v.max(1.0));
        }
    }

    #[test]
    fn fitted_values_are_standardized() {
        let data = [2.0, 4.0, 6.0, 8.0];
        let n = Normalizer::fit(&data, false);
        let z = n.normalize_all(&data);
        let mean: f64 = z.iter().sum::<f64>() / z.len() as f64;
        let var: f64 = z.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / z.len() as f64;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_data_does_not_blow_up() {
        let n = Normalizer::fit(&[5.0, 5.0, 5.0], false);
        let z = n.normalize(5.0);
        assert!(z.is_finite());
        assert!((n.denormalize(z) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn identity_is_inert() {
        let n = Normalizer::identity();
        assert_eq!(n.normalize(3.5), 3.5);
        assert_eq!(n.denormalize(3.5), 3.5);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn log_space_rejects_zero() {
        Normalizer::fit(&[1.0, 0.0], true);
    }

    #[test]
    fn serde_round_trip() {
        let n = Normalizer::fit(&[0.1, 0.2, 0.4], true);
        let back: Normalizer = serde_json::from_str(&serde_json::to_string(&n).unwrap()).unwrap();
        assert_eq!(n, back);
    }
}
