//! From dataset samples to message-passing plans.
//!
//! A [`SamplePlan`] is everything a forward pass needs, precomputed once per
//! sample and reused across epochs:
//!
//! - initial entity states (features zero-padded to `state_dim`),
//! - per-sequence-position gather/scatter index plans ([`StepPlan`]) for both
//!   the original (links only) and extended (interleaved `node-link-node-…`)
//!   path sequences,
//! - the path↔node incidence lists used by the
//!   [`crate::NodeUpdate::FinalPathStateSum`] ablation,
//! - normalized regression targets and the indices of paths whose labels are
//!   statistically reliable.
//!
//! ## Sequence convention
//!
//! For a path `v₀ → v₁ → … → v_k` over links `l₁ … l_k`, the extended
//! sequence is `v₀, l₁, v₁, l₂, …, v_{k-1}, l_k` (length `2k`): each link is
//! preceded by the node whose output queue feeds it, so the source node is
//! included and the destination node (which performs no forwarding) is not.
//! Even positions are therefore always nodes and odd positions always links —
//! a uniform alternation that lets a whole batch of paths advance through one
//! GRU step per position.
//!
//! ## QoS sequence convention
//!
//! Samples carrying a QoS dimension (a scheduling policy with more than one
//! ToS class — see `rn_dataset::schema::SampleQos`) grow a third entity: one
//! **queue** per (directed link, class) pair, id `link * num_classes +
//! class`. The extended sequence becomes 3-periodic per hop — `v₀, q₁, l₁,
//! v₁, q₂, l₂, …` (length `3k`): the forwarding node, then the per-class
//! queue the path's packets wait in at that port, then the link that drains
//! it. Legacy samples (`qos: None`) and single-class FIFO QoS samples build
//! the exact 2-periodic structure above with `num_queues == 0`, so plans —
//! and everything downstream of them — are bitwise identical to the
//! two-entity model.

use crate::config::ModelConfig;
use crate::features::FeatureScales;
use rn_autograd::SharedIndices;
use rn_dataset::{Normalizer, Sample};
use rn_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// Which entity type a sequence position refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EntityKind {
    /// A directed link.
    Link,
    /// A forwarding device.
    Node,
    /// A per-(link, class) scheduler queue — present only in QoS plans.
    Queue,
}

/// What the regression target is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TargetKind {
    /// Per-path mean delay (the paper's experiment).
    Delay,
    /// Per-path jitter (delay standard deviation) — supported as an
    /// extension; RouteNet predicts it with the same architecture.
    Jitter,
}

/// One sequence position across all paths of a sample.
#[derive(Debug, Clone)]
pub struct StepPlan {
    /// Entity type at this position (uniform across paths by construction).
    pub kind: EntityKind,
    /// Per-path entity id at this position; 0 (an arbitrary valid id) for
    /// paths shorter than the position — those rows are masked out.
    pub ids: Vec<usize>,
    /// `n_paths x 1` activity mask: 1.0 where the path has this position.
    pub mask: Matrix,
    /// Number of active paths at this position.
    pub active: usize,
}

/// Step schedule precompiled into flat CSR-style buffers.
///
/// The fused forward pass walks this instead of `Vec<StepPlan>`: all gather
/// indices live in one contiguous `ids_flat` array indexed through `offsets`
/// (a CSR indptr), and each step's activity mask is prebuilt as the `n x 1`
/// matrix the tape ops consume. One compile per sample, reused every epoch.
#[derive(Debug, Clone, Default)]
pub struct CompiledSteps {
    /// Entity type per step.
    pub kinds: Vec<EntityKind>,
    /// Active-path count per step (steps with 0 are skipped entirely).
    pub active: Vec<usize>,
    /// CSR index pointer: step `s` covers `ids_flat[offsets[s]..offsets[s+1]]`.
    pub offsets: Vec<usize>,
    /// All gather indices, step-major (one per path row, padded rows
    /// included).
    pub ids_flat: Vec<usize>,
    /// Per-step `n_paths x 1` masks.
    pub masks: Vec<Matrix>,
    /// CSR index pointer into the active-row compaction buffers.
    pub active_offsets: Vec<usize>,
    /// Path rows active at each step (rows whose mask is 1), step-major.
    pub active_rows_flat: Vec<usize>,
    /// Entity id per active row, aligned with `active_rows_flat`. The
    /// compacted forward gathers/scatter-adds through these, skipping
    /// padded rows entirely.
    pub active_ids_flat: Vec<usize>,
    /// Megabatch shard bounds into each step's active list, flat with
    /// stride `num_shards + 1`: step `s`, shard `b` covers active entries
    /// `shard_bounds[s*(num_shards+1)+b] .. ..+b+1` (offsets relative to
    /// the step's active slice). Empty when the plan is unsharded.
    pub shard_bounds: Vec<usize>,
    /// Number of shards (samples) the plan was packed from; 0 = unsharded.
    pub num_shards: usize,
    /// Lazily built `Arc<[usize]>` mirrors of the index buffers for the
    /// tape's zero-copy mode — steps then bind refcounted views instead of
    /// pooled copies. Built on first use, invalidated by
    /// [`CompiledSteps::compute_shard_bounds`].
    shared: OnceLock<SharedCsr>,
}

/// Zero-copy mirror of the [`CompiledSteps`] flat index buffers: the same
/// words, re-homed once into `Arc<[usize]>` allocations so per-step windows
/// ([`rn_autograd::SharedIndices`]) are refcount bumps rather than copies.
#[derive(Debug, Clone)]
struct SharedCsr {
    active_rows: Arc<[usize]>,
    active_ids: Arc<[usize]>,
    shard_bounds: Arc<[usize]>,
}

impl CompiledSteps {
    /// Flatten a step list into CSR buffers.
    pub fn compile(steps: &[StepPlan]) -> Self {
        let mut out = Self {
            kinds: Vec::with_capacity(steps.len()),
            active: Vec::with_capacity(steps.len()),
            offsets: Vec::with_capacity(steps.len() + 1),
            ids_flat: Vec::with_capacity(steps.iter().map(|s| s.ids.len()).sum()),
            masks: Vec::with_capacity(steps.len()),
            active_offsets: Vec::with_capacity(steps.len() + 1),
            active_rows_flat: Vec::new(),
            active_ids_flat: Vec::new(),
            shard_bounds: Vec::new(),
            num_shards: 0,
            shared: OnceLock::new(),
        };
        out.offsets.push(0);
        out.active_offsets.push(0);
        for step in steps {
            out.kinds.push(step.kind);
            out.active.push(step.active);
            out.ids_flat.extend_from_slice(&step.ids);
            out.offsets.push(out.ids_flat.len());
            out.masks.push(step.mask.clone());
            for (row, &id) in step.ids.iter().enumerate() {
                if step.mask.get(row, 0) > 0.0 {
                    out.active_rows_flat.push(row);
                    out.active_ids_flat.push(id);
                }
            }
            out.active_offsets.push(out.active_rows_flat.len());
        }
        out
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// True when there are no steps.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The gather indices of step `s` (all path rows).
    pub fn ids(&self, s: usize) -> &[usize] {
        &self.ids_flat[self.offsets[s]..self.offsets[s + 1]]
    }

    /// The active path rows of step `s`.
    pub fn active_rows(&self, s: usize) -> &[usize] {
        &self.active_rows_flat[self.active_offsets[s]..self.active_offsets[s + 1]]
    }

    /// The entity ids of the active rows of step `s`.
    pub fn active_ids(&self, s: usize) -> &[usize] {
        &self.active_ids_flat[self.active_offsets[s]..self.active_offsets[s + 1]]
    }

    /// Precompile per-step shard bounds for a block-diagonal megabatch whose
    /// per-sample path row bounds are `path_bounds` (`B + 1` ascending
    /// entries). Each step's active rows are ascending, so every sample's
    /// slice of the active list is found by binary search; the resulting
    /// bounds are relative to the step's active slice and feed straight into
    /// the sharded tape ops.
    pub fn compute_shard_bounds(&mut self, path_bounds: &[usize]) {
        // The shard-bound buffer is about to change under any previously
        // built zero-copy mirror; drop it so the next view rebuilds.
        self.shared = OnceLock::new();
        let shards = path_bounds.len().saturating_sub(1);
        self.num_shards = shards;
        self.shard_bounds.clear();
        self.shard_bounds.reserve(self.len() * (shards + 1));
        let mut bounds = std::mem::take(&mut self.shard_bounds);
        for s in 0..self.len() {
            let active = self.active_rows(s);
            debug_assert!(active.windows(2).all(|w| w[0] < w[1]));
            for &bound in path_bounds {
                bounds.push(active.partition_point(|&row| row < bound));
            }
        }
        self.shard_bounds = bounds;
    }

    /// The shard bounds of step `s` (len `num_shards + 1`, offsets relative
    /// to the step's active slice). Panics when the plan is unsharded.
    pub fn step_shard_bounds(&self, s: usize) -> &[usize] {
        let stride = self.num_shards + 1;
        &self.shard_bounds[s * stride..(s + 1) * stride]
    }

    fn shared(&self) -> &SharedCsr {
        self.shared.get_or_init(|| SharedCsr {
            active_rows: self.active_rows_flat.as_slice().into(),
            active_ids: self.active_ids_flat.as_slice().into(),
            shard_bounds: self.shard_bounds.as_slice().into(),
        })
    }

    /// Zero-copy view of [`CompiledSteps::active_rows`]: an `Arc`-backed
    /// window the tape stores without copying the indices.
    pub fn shared_active_rows(&self, s: usize) -> SharedIndices {
        SharedIndices::new(
            self.shared().active_rows.clone(),
            self.active_offsets[s],
            self.active_offsets[s + 1],
        )
    }

    /// Zero-copy view of [`CompiledSteps::active_ids`].
    pub fn shared_active_ids(&self, s: usize) -> SharedIndices {
        SharedIndices::new(
            self.shared().active_ids.clone(),
            self.active_offsets[s],
            self.active_offsets[s + 1],
        )
    }

    /// Zero-copy view of [`CompiledSteps::step_shard_bounds`]. Panics when
    /// the plan is unsharded, like its borrowing counterpart.
    pub fn shared_step_shard_bounds(&self, s: usize) -> SharedIndices {
        let stride = self.num_shards + 1;
        SharedIndices::new(
            self.shared().shard_bounds.clone(),
            s * stride,
            (s + 1) * stride,
        )
    }
}

/// Per-sample row bounds of a block-diagonal megabatch plan — the shard
/// layout the fused forward/backward passes parallelize over.
///
/// All three vectors have `B + 1` ascending entries; sample `b` owns path
/// rows `path_bounds[b]..path_bounds[b+1]`, link rows
/// `link_bounds[b]..link_bounds[b+1]` and node rows
/// `node_bounds[b]..node_bounds[b+1]`. Because the megabatch is
/// block-diagonal, a shard's gathers and scatters never leave its own
/// ranges, which is what lets shards run on separate threads with **bitwise
/// identical** results.
#[derive(Debug, Clone)]
pub struct PlanShards {
    /// Per-sample path row bounds (len `B + 1`).
    pub path_bounds: Vec<usize>,
    /// Per-sample directed-link row bounds (len `B + 1`).
    pub link_bounds: Vec<usize>,
    /// Per-sample node row bounds (len `B + 1`).
    pub node_bounds: Vec<usize>,
    /// Per-sample queue row bounds (len `B + 1`; all-zero spans for packs
    /// without queue entities).
    pub queue_bounds: Vec<usize>,
    /// Balanced row-block bounds over the **path** rows for the dense
    /// per-row work — the readout MLP forward/backward (len `B + 1`, built
    /// by [`balanced_row_bounds`]). Unlike the per-sample bounds above,
    /// dense ops touch every row independently, so the partition need not
    /// follow sample boundaries: balanced blocks keep ragged batches from
    /// leaving workers idle. Empty disables dense sharding (legacy path).
    pub dense_path_bounds: Vec<usize>,
    /// Balanced row-block bounds over the link rows for the dense link-GRU
    /// entity update (len `B + 1`, empty = dense sharding disabled).
    pub dense_link_bounds: Vec<usize>,
    /// Balanced row-block bounds over the node rows for the dense node-GRU
    /// entity update (len `B + 1`, empty = dense sharding disabled).
    pub dense_node_bounds: Vec<usize>,
    /// Balanced row-block bounds over the queue rows for the dense queue-GRU
    /// entity update (len `B + 1`, empty = dense sharding disabled or no
    /// queue entities).
    pub dense_queue_bounds: Vec<usize>,
    /// Lazily built `Arc<[usize]>` mirrors of the bound vectors for the
    /// tape's zero-copy mode (see [`CompiledSteps`]'s mirror).
    pub(crate) shared: OnceLock<SharedShardBounds>,
}

/// Zero-copy mirror of the [`PlanShards`] bound vectors.
#[derive(Debug, Clone)]
pub(crate) struct SharedShardBounds {
    path: Arc<[usize]>,
    link: Arc<[usize]>,
    node: Arc<[usize]>,
    queue: Arc<[usize]>,
    dense_path: Arc<[usize]>,
    dense_link: Arc<[usize]>,
    dense_node: Arc<[usize]>,
    dense_queue: Arc<[usize]>,
}

// Manual equality: the lazy mirror is a cache of the bound vectors, so it is
// (and must stay) excluded from comparisons.
impl PartialEq for PlanShards {
    fn eq(&self, other: &Self) -> bool {
        self.path_bounds == other.path_bounds
            && self.link_bounds == other.link_bounds
            && self.node_bounds == other.node_bounds
            && self.queue_bounds == other.queue_bounds
            && self.dense_path_bounds == other.dense_path_bounds
            && self.dense_link_bounds == other.dense_link_bounds
            && self.dense_node_bounds == other.dense_node_bounds
            && self.dense_queue_bounds == other.dense_queue_bounds
    }
}

impl Eq for PlanShards {}

/// Evenly balanced row-block bounds: `shards` contiguous blocks covering
/// `0..total` whose sizes differ by at most one row (`bounds[s] = s * total
/// / shards`, `shards + 1` ascending entries). Every row lands in exactly
/// one block; blocks may be empty when `total < shards`. This is the dense
/// shard partition — any contiguous partition is bitwise-safe for dense
/// ops, so the balanced one is chosen for load balance on ragged batches.
pub fn balanced_row_bounds(total: usize, shards: usize) -> Vec<usize> {
    let shards = shards.max(1);
    (0..=shards).map(|s| s * total / shards).collect()
}

impl PlanShards {
    /// Number of shards.
    pub fn len(&self) -> usize {
        self.path_bounds.len().saturating_sub(1)
    }

    /// True when there are no shards.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The entity bounds for a step of the given kind.
    pub fn entity_bounds(&self, kind: EntityKind) -> &[usize] {
        match kind {
            EntityKind::Link => &self.link_bounds,
            EntityKind::Node => &self.node_bounds,
            EntityKind::Queue => &self.queue_bounds,
        }
    }

    /// The dense row partition for the readout MLP (path rows), or `None`
    /// when dense sharding is disabled (bounds stripped or degenerate).
    pub fn dense_path(&self) -> Option<&[usize]> {
        (self.dense_path_bounds.len() > 2).then_some(self.dense_path_bounds.as_slice())
    }

    /// The dense row partition for the link-GRU entity update, if enabled.
    pub fn dense_link(&self) -> Option<&[usize]> {
        (self.dense_link_bounds.len() > 2).then_some(self.dense_link_bounds.as_slice())
    }

    /// The dense row partition for the node-GRU entity update, if enabled.
    pub fn dense_node(&self) -> Option<&[usize]> {
        (self.dense_node_bounds.len() > 2).then_some(self.dense_node_bounds.as_slice())
    }

    /// The dense row partition for the queue-GRU entity update, if enabled.
    pub fn dense_queue(&self) -> Option<&[usize]> {
        (self.dense_queue_bounds.len() > 2).then_some(self.dense_queue_bounds.as_slice())
    }

    fn shared(&self) -> &SharedShardBounds {
        self.shared.get_or_init(|| SharedShardBounds {
            path: self.path_bounds.as_slice().into(),
            link: self.link_bounds.as_slice().into(),
            node: self.node_bounds.as_slice().into(),
            queue: self.queue_bounds.as_slice().into(),
            dense_path: self.dense_path_bounds.as_slice().into(),
            dense_link: self.dense_link_bounds.as_slice().into(),
            dense_node: self.dense_node_bounds.as_slice().into(),
            dense_queue: self.dense_queue_bounds.as_slice().into(),
        })
    }

    /// Zero-copy view of the per-sample path bounds.
    pub fn shared_path_bounds(&self) -> SharedIndices {
        SharedIndices::full(self.shared().path.clone())
    }

    /// Zero-copy view of [`PlanShards::entity_bounds`].
    pub fn shared_entity_bounds(&self, kind: EntityKind) -> SharedIndices {
        SharedIndices::full(match kind {
            EntityKind::Link => self.shared().link.clone(),
            EntityKind::Node => self.shared().node.clone(),
            EntityKind::Queue => self.shared().queue.clone(),
        })
    }

    /// Zero-copy counterpart of [`PlanShards::dense_path`].
    pub fn shared_dense_path(&self) -> Option<SharedIndices> {
        (self.dense_path_bounds.len() > 2)
            .then(|| SharedIndices::full(self.shared().dense_path.clone()))
    }

    /// Zero-copy counterpart of [`PlanShards::dense_link`].
    pub fn shared_dense_link(&self) -> Option<SharedIndices> {
        (self.dense_link_bounds.len() > 2)
            .then(|| SharedIndices::full(self.shared().dense_link.clone()))
    }

    /// Zero-copy counterpart of [`PlanShards::dense_node`].
    pub fn shared_dense_node(&self) -> Option<SharedIndices> {
        (self.dense_node_bounds.len() > 2)
            .then(|| SharedIndices::full(self.shared().dense_node.clone()))
    }

    /// Zero-copy counterpart of [`PlanShards::dense_queue`].
    pub fn shared_dense_queue(&self) -> Option<SharedIndices> {
        (self.dense_queue_bounds.len() > 2)
            .then(|| SharedIndices::full(self.shared().dense_queue.clone()))
    }
}

/// Precomputed forward-pass inputs for one sample.
#[derive(Debug, Clone)]
pub struct SamplePlan {
    /// Number of paths (rows of `path_init` and of the prediction).
    pub n_paths: usize,
    /// Number of directed links.
    pub num_links: usize,
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of scheduler queues (`num_links * num_classes` for QoS plans,
    /// 0 for legacy/single-class-FIFO plans — see the module docs).
    pub num_queues: usize,
    /// `(src, dst)` per path, aligned with rows.
    pub pairs: Vec<(usize, usize)>,
    /// Initial path states: `n_paths x state_dim` (traffic feature in col 0).
    pub path_init: Matrix,
    /// Initial link states: `num_links x state_dim` (capacity in col 0).
    pub link_init: Matrix,
    /// Initial node states: `num_nodes x state_dim` (queue size in col 0,
    /// tiny-queue indicator in col 1).
    pub node_init: Matrix,
    /// Initial queue states: `num_queues x state_dim` (scheduler share of
    /// the queue's class in col 0, priority rank in col 1). `0 x state_dim`
    /// for plans without queue entities.
    pub queue_init: Matrix,
    /// Steps of the extended interleaved sequence.
    pub extended_steps: Vec<StepPlan>,
    /// Steps of the original links-only sequence.
    pub original_steps: Vec<StepPlan>,
    /// `extended_steps` precompiled into flat CSR buffers (fused forward).
    pub extended_csr: CompiledSteps,
    /// `original_steps` precompiled into flat CSR buffers (fused forward).
    pub original_csr: CompiledSteps,
    /// Flattened path-node incidence: for every (path, traversed node) pair,
    /// the path row index…
    pub node_incidence_paths: Vec<usize>,
    /// …and the node id (aligned with `node_incidence_paths`).
    pub node_incidence_nodes: Vec<usize>,
    /// Normalized regression targets, `n_paths x 1` (0.0 for unreliable rows).
    pub targets_norm: Matrix,
    /// Raw (denormalized) targets in seconds, aligned with rows.
    pub targets_raw: Vec<f64>,
    /// Rows whose labels are reliable enough to train/evaluate on.
    pub reliable_idx: Vec<usize>,
    /// Megabatch shard layout (`None` for single-sample plans). When set,
    /// the fused sweep records shard descriptors on its tape nodes, enabling
    /// the parallel sharded backward and its canonical per-shard gradient
    /// reduction.
    pub shards: Option<PlanShards>,
    /// Memoized structure fingerprint (see
    /// [`SamplePlan::structure_fingerprint`]): computed on first use, shared
    /// by clones. Covers only the shape-dependent parts of the plan, so it
    /// stays valid when features (targets, reliability) are edited in place.
    pub(crate) structure_fp: OnceLock<u64>,
    /// Lazily built `Arc` mirror of `reliable_idx` for the tape's zero-copy
    /// loss gather. Must be invalidated (reset to an empty cell) wherever
    /// `reliable_idx` is rewritten in place — feature refill, eval
    /// re-thresholding.
    pub(crate) reliable_shared: OnceLock<Arc<[usize]>>,
}

/// Options controlling plan construction.
///
/// Borrows the preprocessing state instead of owning it: plans are built once
/// per sample (often for hundreds of thousands of samples), and cloning the
/// fitted `FeatureScales`/`Normalizer` per sample was measurable overhead in
/// the planning pass.
#[derive(Debug, Clone)]
pub struct PlanConfig<'a> {
    /// Feature scaling (fitted on the training set).
    pub scales: &'a FeatureScales,
    /// Target normalizer (fitted on the training set).
    pub normalizer: &'a Normalizer,
    /// Entity state width.
    pub state_dim: usize,
    /// Minimum delivered packets for a label to count as reliable.
    pub min_packets: u64,
    /// Which label to regress.
    pub target: TargetKind,
}

impl<'a> PlanConfig<'a> {
    /// Plan options from a model configuration plus preprocessing state.
    pub fn new(
        config: &ModelConfig,
        scales: &'a FeatureScales,
        normalizer: &'a Normalizer,
    ) -> Self {
        Self {
            scales,
            normalizer,
            state_dim: config.state_dim,
            min_packets: 10,
            target: TargetKind::Delay,
        }
    }
}

/// Build the message-passing plan for one sample.
///
/// Panics if `state_dim < 2` (features need two leading columns).
pub fn build_plan(sample: &Sample, config: &PlanConfig) -> SamplePlan {
    assert!(config.state_dim >= 2, "state_dim must be at least 2");
    let d = config.state_dim;
    let num_nodes = sample.queue_capacities.len();
    let num_links = sample.link_capacities.len();

    // ---- Entity features -> initial states -------------------------------
    let paths: Vec<(usize, usize, &rn_netgraph::Path)> = sample.routing.iter_paths().collect();
    let n_paths = paths.len();
    assert_eq!(
        n_paths,
        sample.targets.len(),
        "targets misaligned with routing"
    );

    let mut path_init = Matrix::zeros(n_paths, d);
    for (row, &(s, dst, _)) in paths.iter().enumerate() {
        path_init.set(row, 0, config.scales.rate(sample.traffic.rate(s, dst)));
    }
    let mut link_init = Matrix::zeros(num_links, d);
    for (l, &cap) in sample.link_capacities.iter().enumerate() {
        link_init.set(l, 0, config.scales.capacity(cap));
    }
    let mut node_init = Matrix::zeros(num_nodes, d);
    for (n, &q) in sample.queue_capacities.iter().enumerate() {
        node_init.set(n, 0, config.scales.queue(q));
        // Binary tiny-queue indicator: gives the model the same categorical
        // signal the scenario generator used.
        let is_tiny = if q <= 1 { 1.0 } else { 0.0 };
        node_init.set(n, 1, is_tiny);
    }

    // ---- Queue entities (QoS plans only) ----------------------------------
    // One queue per (directed link, class); single-class FIFO degenerates to
    // the legacy two-entity plan so existing scenarios stay bitwise
    // identical.
    let qos = sample.qos.as_ref().filter(|q| !q.is_single_class_fifo());
    let num_classes = qos.map_or(1, |q| q.num_classes());
    let num_queues = qos.map_or(0, |_| num_links * num_classes);
    let mut queue_init = Matrix::zeros(num_queues, d);
    if let Some(q) = qos {
        for link in 0..num_links {
            for class in 0..num_classes {
                let row = link * num_classes + class;
                // Col 0: the scheduler's long-run share of the link this
                // class is configured for (exact for WFQ/DRR, a rank proxy
                // for strict priority). Col 1: priority rank in (0, 1],
                // highest class first — disambiguates strict priority from
                // equal-share policies.
                queue_init.set(row, 0, q.policy.class_share(class, num_classes) as f32);
                queue_init.set(row, 1, 1.0 - class as f32 / num_classes as f32);
            }
        }
    }

    // ---- Sequences --------------------------------------------------------
    // Extended: v0, l1, v1, l2, ..., v_{k-1}, l_k  (length 2k);
    //   QoS plans: v0, q1, l1, v1, q2, l2, ...     (length 3k)
    // Original: l1, ..., l_k                        (length k)
    let max_hops = paths
        .iter()
        .map(|(_, _, p)| p.hop_count())
        .max()
        .unwrap_or(0);
    let period = if qos.is_some() { 3 } else { 2 };
    let mut extended_steps = Vec::with_capacity(period * max_hops);
    for pos in 0..(period * max_hops) {
        let kind = match (pos % period, period) {
            (0, _) => EntityKind::Node,
            (1, 3) => EntityKind::Queue,
            _ => EntityKind::Link,
        };
        let mut ids = vec![0usize; n_paths];
        let mut mask = Matrix::zeros(n_paths, 1);
        let mut active = 0;
        for (row, (_, _, path)) in paths.iter().enumerate() {
            let hop = pos / period;
            if hop < path.hop_count() {
                ids[row] = match kind {
                    EntityKind::Node => path.nodes[hop],
                    EntityKind::Link => path.links[hop],
                    EntityKind::Queue => {
                        let class = qos.map_or(0, |q| q.path_classes[row] as usize);
                        path.links[hop] * num_classes + class
                    }
                };
                mask.set(row, 0, 1.0);
                active += 1;
            }
        }
        extended_steps.push(StepPlan {
            kind,
            ids,
            mask,
            active,
        });
    }
    let mut original_steps = Vec::with_capacity(max_hops);
    for hop in 0..max_hops {
        let mut ids = vec![0usize; n_paths];
        let mut mask = Matrix::zeros(n_paths, 1);
        let mut active = 0;
        for (row, (_, _, path)) in paths.iter().enumerate() {
            if hop < path.hop_count() {
                ids[row] = path.links[hop];
                mask.set(row, 0, 1.0);
                active += 1;
            }
        }
        original_steps.push(StepPlan {
            kind: EntityKind::Link,
            ids,
            mask,
            active,
        });
    }

    // ---- Node incidences (forwarding nodes: all but the destination) ------
    let mut node_incidence_paths = Vec::new();
    let mut node_incidence_nodes = Vec::new();
    for (row, (_, _, path)) in paths.iter().enumerate() {
        for hop in 0..path.hop_count() {
            node_incidence_paths.push(row);
            node_incidence_nodes.push(path.nodes[hop]);
        }
    }

    // ---- Targets -----------------------------------------------------------
    let mut targets_norm = Matrix::zeros(n_paths, 1);
    let mut targets_raw = vec![0.0; n_paths];
    let mut reliable_idx = Vec::new();
    for (row, t) in sample.targets.iter().enumerate() {
        let raw = match config.target {
            TargetKind::Delay => t.mean_delay_s,
            TargetKind::Jitter => t.jitter_s,
        };
        targets_raw[row] = raw;
        let positive_enough = !config.normalizer.log_space || raw > 0.0;
        if t.is_reliable(config.min_packets) && positive_enough {
            targets_norm.set(row, 0, config.normalizer.normalize(raw) as f32);
            reliable_idx.push(row);
        }
    }

    let extended_csr = CompiledSteps::compile(&extended_steps);
    let original_csr = CompiledSteps::compile(&original_steps);
    SamplePlan {
        n_paths,
        num_links,
        num_nodes,
        num_queues,
        pairs: paths.iter().map(|&(s, d2, _)| (s, d2)).collect(),
        path_init,
        link_init,
        node_init,
        queue_init,
        extended_steps,
        original_steps,
        extended_csr,
        original_csr,
        node_incidence_paths,
        node_incidence_nodes,
        targets_norm,
        targets_raw,
        reliable_idx,
        shards: None,
        structure_fp: OnceLock::new(),
        reliable_shared: OnceLock::new(),
    }
}

// ---------------------------------------------------------------------------
// Megabatching
// ---------------------------------------------------------------------------

/// `B` sample plans packed into one block-diagonal plan.
///
/// Entity ids of sample `b` are shifted by that sample's path/link/node
/// offsets, so the union plan runs through the *same* forward code as a
/// single sample: gathers and scatter-adds never cross sample boundaries,
/// matmuls grow `B`-fold taller (better kernel utilization), and one
/// parameter `bind()` is amortized over the whole pack. Positions past a
/// sample's sequence length are masked out, which the fused ops turn into
/// exact no-ops, so predictions are identical to running each sample alone.
#[derive(Debug, Clone)]
pub struct MegabatchPlan {
    /// The fused plan; feed it to `forward` like any single-sample plan.
    pub plan: SamplePlan,
    /// Per-sample path row ranges `[start, end)` in the fused plan.
    pub path_ranges: Vec<(usize, usize)>,
    /// Per reliable row (aligned with `plan.reliable_idx`): `1 / r_s` where
    /// `r_s` is its sample's reliable-row count. Scaling these by
    /// `1 / num_reliable_samples` reproduces mean-of-per-sample-means loss.
    pub sample_mean_weights: Vec<f32>,
    /// Samples contributing at least one reliable row.
    pub reliable_samples: usize,
}

/// Why a megabatch could not be assembled. All variants are caller bugs in
/// a batch-training context, but a serving layer that admission-queues
/// arbitrary requests needs to reject them without tearing the process down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MegabatchError {
    /// The part list was empty: there is nothing to pack.
    EmptyBatch,
    /// Two parts were planned with different `state_dim`s and cannot share
    /// one forward pass. Carries `(expected, found)`.
    StateDimMismatch(usize, usize),
    /// Parts with incompatible sequence schedules — a legacy two-entity
    /// part packed with a QoS queue-entity part — would need two different
    /// entity kinds at the carried sequence position. Batch QoS and legacy
    /// samples separately.
    ScheduleMismatch(usize),
}

impl std::fmt::Display for MegabatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptyBatch => write!(f, "build_megabatch: empty batch"),
            Self::StateDimMismatch(expected, found) => write!(
                f,
                "build_megabatch: state_dim mismatch (expected {expected}, found {found})"
            ),
            Self::ScheduleMismatch(pos) => write!(
                f,
                "build_megabatch: mixed legacy/QoS sequence schedules (entity kind \
                 conflict at position {pos})"
            ),
        }
    }
}

impl std::error::Error for MegabatchError {}

/// Pack `parts` into one block-diagonal [`MegabatchPlan`].
///
/// Panics on an empty slice or on state-width mismatches between parts; use
/// [`try_build_megabatch`] where those are runtime conditions (e.g. a
/// serving queue) rather than caller bugs.
///
/// # Example
///
/// Plan two simulated scenarios and pack them into one megabatch whose
/// entity spaces are the samples stacked block-diagonally:
///
/// ```
/// use rn_dataset::{generate, GeneratorConfig, Normalizer};
/// use rn_netsim::SimConfig;
/// use routenet::entities::{build_megabatch, build_plan, PlanConfig, TargetKind};
/// use routenet::FeatureScales;
///
/// let gen = GeneratorConfig {
///     sim: SimConfig { duration_s: 30.0, warmup_s: 5.0, ..SimConfig::default() },
///     ..GeneratorConfig::default()
/// };
/// let ds = generate(&rn_netgraph::topologies::toy5(), &gen, 7, 2);
/// let (scales, normalizer) = (FeatureScales::unit(), Normalizer::identity());
/// let cfg = PlanConfig {
///     scales: &scales,
///     normalizer: &normalizer,
///     state_dim: 8,
///     min_packets: 1,
///     target: TargetKind::Delay,
/// };
/// let plans: Vec<_> = ds.samples.iter().map(|s| build_plan(s, &cfg)).collect();
/// let parts: Vec<_> = plans.iter().collect();
///
/// let mb = build_megabatch(&parts);
/// assert_eq!(mb.plan.n_paths, plans[0].n_paths + plans[1].n_paths);
/// assert_eq!(mb.path_ranges.len(), 2);
/// // Multi-sample packs precompile the shard layout the parallel backward
/// // fans out over (1-sample packs stay on the legacy bitwise path).
/// let shards = mb.plan.shards.as_ref().unwrap();
/// assert_eq!(shards.len(), 2);
/// assert!(shards.dense_path().is_some());
/// ```
pub fn build_megabatch(parts: &[&SamplePlan]) -> MegabatchPlan {
    match try_build_megabatch(parts) {
        Ok(mb) => mb,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`build_megabatch`]: returns a [`MegabatchError`] instead of
/// panicking on an empty part list or mismatched state widths.
///
/// Implemented on top of the composition layer ([`crate::compose`]): a
/// fresh build is exactly "compose the structure, extract the features,
/// assemble" — which is what makes a cached
/// [`crate::compose::ComposedMegabatch`] with refilled features **bitwise
/// identical** to this function by construction rather than by test alone.
pub fn try_build_megabatch(parts: &[&SamplePlan]) -> Result<MegabatchPlan, MegabatchError> {
    crate::compose::ComposedMegabatch::compose(parts)
        .map(crate::compose::ComposedMegabatch::into_plan)
}

/// Copy all of `src`'s rows into `dst` starting at row `at`.
pub(crate) fn copy_rows(dst: &mut Matrix, at: usize, src: &Matrix) {
    for r in 0..src.rows() {
        dst.row_mut(at + r).copy_from_slice(src.row(r));
    }
}

impl SamplePlan {
    /// Zero-copy view of [`SamplePlan::reliable_idx`] — what the loss
    /// gather binds in the tape's zero-copy mode instead of a pooled copy.
    pub fn reliable_idx_shared(&self) -> SharedIndices {
        SharedIndices::full(
            self.reliable_shared
                .get_or_init(|| self.reliable_idx.as_slice().into())
                .clone(),
        )
    }

    /// Raw targets restricted to reliable rows.
    pub fn reliable_targets_raw(&self) -> Vec<f64> {
        self.reliable_idx
            .iter()
            .map(|&i| self.targets_raw[i])
            .collect()
    }

    /// Normalized targets restricted to reliable rows, as a column matrix.
    pub fn reliable_targets_norm(&self) -> Matrix {
        self.targets_norm.gather_rows(&self.reliable_idx)
    }

    /// A human-readable trace of the extended message-passing schedule for
    /// the first `max_paths` paths — the machine-checkable counterpart of the
    /// paper's Figure 1.
    pub fn schedule_trace(&self, max_paths: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "extended message passing: {} paths, {} links, {} nodes, {} sequence steps\n",
            self.n_paths,
            self.num_links,
            self.num_nodes,
            self.extended_steps.len()
        ));
        for (row, &(s, d)) in self.pairs.iter().take(max_paths).enumerate() {
            out.push_str(&format!("path {row} ({s} -> {d}): "));
            let mut parts = Vec::new();
            for step in &self.extended_steps {
                if step.mask.get(row, 0) > 0.0 {
                    let tag = match step.kind {
                        EntityKind::Node => format!("RNN_P<-node{}", step.ids[row]),
                        EntityKind::Link => format!("RNN_P<-link{}", step.ids[row]),
                        EntityKind::Queue => format!("RNN_P<-queue{}", step.ids[row]),
                    };
                    parts.push(tag);
                }
            }
            out.push_str(&parts.join(" "));
            out.push('\n');
        }
        out.push_str("aggregation: msg(path,pos)->link via RNN_L; msg(path,pos)->node via RNN_N\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_dataset::{generate, GeneratorConfig, Normalizer};
    use rn_netgraph::topologies;
    use rn_netsim::SimConfig;

    fn toy_sample() -> (rn_netgraph::Topology, Sample) {
        let topo = topologies::toy5();
        let config = GeneratorConfig {
            sim: SimConfig {
                duration_s: 60.0,
                warmup_s: 10.0,
                ..SimConfig::default()
            },
            ..GeneratorConfig::default()
        };
        let mut ds = generate(&topo, &config, 31, 1);
        (topo, ds.samples.pop().unwrap())
    }

    /// Owned preprocessing state the borrowed `PlanConfig` points into.
    fn preprocessing(ds_delays: &[f64]) -> (FeatureScales, Normalizer) {
        (FeatureScales::unit(), Normalizer::fit(ds_delays, true))
    }

    fn plan_config<'a>(prep: &'a (FeatureScales, Normalizer)) -> PlanConfig<'a> {
        PlanConfig {
            scales: &prep.0,
            normalizer: &prep.1,
            state_dim: 8,
            min_packets: 5,
            target: TargetKind::Delay,
        }
    }

    #[test]
    fn plan_shapes_are_consistent() {
        let (topo, sample) = toy_sample();
        let delays: Vec<f64> = sample
            .targets
            .iter()
            .map(|t| t.mean_delay_s.max(1e-6))
            .collect();
        let prep = preprocessing(&delays);
        let plan = build_plan(&sample, &plan_config(&prep));
        assert_eq!(plan.n_paths, 20);
        assert_eq!(plan.num_links, topo.num_links());
        assert_eq!(plan.num_nodes, 5);
        assert_eq!(plan.path_init.shape(), (20, 8));
        assert_eq!(plan.link_init.shape(), (topo.num_links(), 8));
        assert_eq!(plan.node_init.shape(), (5, 8));
        assert_eq!(plan.targets_norm.shape(), (20, 1));
    }

    #[test]
    fn extended_sequence_alternates_node_link() {
        let (_, sample) = toy_sample();
        let delays: Vec<f64> = sample
            .targets
            .iter()
            .map(|t| t.mean_delay_s.max(1e-6))
            .collect();
        let prep = preprocessing(&delays);
        let plan = build_plan(&sample, &plan_config(&prep));
        for (i, step) in plan.extended_steps.iter().enumerate() {
            let expected = if i % 2 == 0 {
                EntityKind::Node
            } else {
                EntityKind::Link
            };
            assert_eq!(step.kind, expected, "position {i}");
        }
        assert_eq!(plan.extended_steps.len(), 2 * plan.original_steps.len());
    }

    #[test]
    fn sequences_match_paths() {
        let (_, sample) = toy_sample();
        let delays: Vec<f64> = sample
            .targets
            .iter()
            .map(|t| t.mean_delay_s.max(1e-6))
            .collect();
        let prep = preprocessing(&delays);
        let plan = build_plan(&sample, &plan_config(&prep));
        for (row, (s, d, path)) in sample.routing.iter_paths().enumerate() {
            assert_eq!(plan.pairs[row], (s, d));
            // Extended: node at even 2*h, the traversed link at odd 2*h+1.
            for (h, &l) in path.links.iter().enumerate() {
                let node_step = &plan.extended_steps[2 * h];
                let link_step = &plan.extended_steps[2 * h + 1];
                assert_eq!(node_step.ids[row], path.nodes[h]);
                assert_eq!(node_step.mask.get(row, 0), 1.0);
                assert_eq!(link_step.ids[row], l);
                assert_eq!(link_step.mask.get(row, 0), 1.0);
                // Original: link at position h.
                assert_eq!(plan.original_steps[h].ids[row], l);
            }
            // Positions past the path length are masked out.
            for pos in (2 * path.hop_count())..plan.extended_steps.len() {
                assert_eq!(plan.extended_steps[pos].mask.get(row, 0), 0.0);
            }
        }
    }

    fn toy_qos_sample() -> (rn_netgraph::Topology, Sample) {
        let topo = topologies::toy5();
        let config = GeneratorConfig {
            sim: SimConfig {
                duration_s: 30.0,
                warmup_s: 5.0,
                ..SimConfig::default()
            },
            qos: Some(rn_dataset::QosGenConfig::two_class_mix()),
            ..GeneratorConfig::default()
        };
        let mut ds = generate(&topo, &config, 41, 1);
        (topo, ds.samples.pop().unwrap())
    }

    #[test]
    fn qos_plan_builds_three_entity_sequence() {
        let (topo, sample) = toy_qos_sample();
        let qos = sample.qos.clone().unwrap();
        let n = qos.num_classes();
        let delays: Vec<f64> = sample
            .targets
            .iter()
            .map(|t| t.mean_delay_s.max(1e-6))
            .collect();
        let prep = preprocessing(&delays);
        let plan = build_plan(&sample, &plan_config(&prep));

        assert_eq!(plan.num_queues, topo.num_links() * n);
        assert_eq!(plan.queue_init.shape(), (plan.num_queues, 8));
        assert_eq!(plan.extended_steps.len(), 3 * plan.original_steps.len());
        for (i, step) in plan.extended_steps.iter().enumerate() {
            let expected = match i % 3 {
                0 => EntityKind::Node,
                1 => EntityKind::Queue,
                _ => EntityKind::Link,
            };
            assert_eq!(step.kind, expected, "position {i}");
        }
        // Queue ids address the (link, class) queue of each hop.
        for (row, (_, _, path)) in sample.routing.iter_paths().enumerate() {
            let class = qos.path_classes[row] as usize;
            for (h, &l) in path.links.iter().enumerate() {
                let qstep = &plan.extended_steps[3 * h + 1];
                assert_eq!(qstep.ids[row], l * n + class, "row {row} hop {h}");
                assert_eq!(qstep.mask.get(row, 0), 1.0);
                assert_eq!(plan.extended_steps[3 * h].ids[row], path.nodes[h]);
                assert_eq!(plan.extended_steps[3 * h + 2].ids[row], l);
            }
        }
        // Queue features: per-link scheduler shares sum to 1, ranks descend.
        for link in 0..topo.num_links() {
            let share: f32 = (0..n).map(|c| plan.queue_init.get(link * n + c, 0)).sum();
            assert!((share - 1.0).abs() < 1e-5, "link {link} share sum {share}");
            for c in 1..n {
                assert!(
                    plan.queue_init.get(link * n + c, 1) < plan.queue_init.get(link * n + c - 1, 1),
                    "priority rank must strictly descend with class index"
                );
            }
        }
    }

    #[test]
    fn single_class_fifo_qos_plan_matches_legacy_plan_exactly() {
        let (_, sample) = toy_sample();
        let mut fifo = sample.clone();
        fifo.qos = Some(rn_dataset::SampleQos {
            policy: rn_netsim::SchedulingPolicy::Fifo,
            class_profiles: vec![rn_netsim::TrafficProfile::Poisson],
            path_classes: vec![0; sample.targets.len()],
            class_targets: rn_netsim::ClassStats::from_accumulators(
                &vec![Default::default(); sample.targets.len()],
                &vec![0; sample.targets.len()],
                1,
            ),
        });
        let delays: Vec<f64> = sample
            .targets
            .iter()
            .map(|t| t.mean_delay_s.max(1e-6))
            .collect();
        let prep = preprocessing(&delays);
        let cfg = plan_config(&prep);
        let legacy = build_plan(&sample, &cfg);
        let degenerate = build_plan(&fifo, &cfg);

        assert_eq!(degenerate.num_queues, 0);
        assert_eq!(degenerate.queue_init.shape(), (0, 8));
        assert_eq!(degenerate.extended_steps.len(), legacy.extended_steps.len());
        for (a, b) in legacy.extended_steps.iter().zip(&degenerate.extended_steps) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.ids, b.ids);
            assert!(a.mask.approx_eq(&b.mask, 0.0));
        }
        assert!(legacy.path_init.approx_eq(&degenerate.path_init, 0.0));
        assert!(legacy.link_init.approx_eq(&degenerate.link_init, 0.0));
        assert!(legacy.node_init.approx_eq(&degenerate.node_init, 0.0));
    }

    #[test]
    fn active_counts_match_masks() {
        let (_, sample) = toy_sample();
        let delays: Vec<f64> = sample
            .targets
            .iter()
            .map(|t| t.mean_delay_s.max(1e-6))
            .collect();
        let prep = preprocessing(&delays);
        let plan = build_plan(&sample, &plan_config(&prep));
        for step in plan.extended_steps.iter().chain(&plan.original_steps) {
            let mask_sum = step.mask.sum() as usize;
            assert_eq!(step.active, mask_sum);
        }
        // The first position involves every path (every path has >= 1 hop).
        assert_eq!(plan.extended_steps[0].active, plan.n_paths);
    }

    #[test]
    fn node_incidence_excludes_destination() {
        let (_, sample) = toy_sample();
        let delays: Vec<f64> = sample
            .targets
            .iter()
            .map(|t| t.mean_delay_s.max(1e-6))
            .collect();
        let prep = preprocessing(&delays);
        let plan = build_plan(&sample, &plan_config(&prep));
        for (row, (_, dst, path)) in sample.routing.iter_paths().enumerate() {
            let visited: Vec<usize> = plan
                .node_incidence_paths
                .iter()
                .zip(&plan.node_incidence_nodes)
                .filter(|&(&p, _)| p == row)
                .map(|(_, &n)| n)
                .collect();
            assert_eq!(visited.len(), path.hop_count());
            assert!(!visited.contains(&dst), "destination must not forward");
            assert_eq!(visited[0], path.src());
        }
    }

    #[test]
    fn node_features_encode_queue_size() {
        let (_, mut sample) = toy_sample();
        sample.queue_capacities = vec![32, 1, 32, 1, 32];
        let delays: Vec<f64> = sample
            .targets
            .iter()
            .map(|t| t.mean_delay_s.max(1e-6))
            .collect();
        let prep = preprocessing(&delays);
        let plan = build_plan(&sample, &plan_config(&prep));
        assert_eq!(plan.node_init.get(0, 0), 32.0);
        assert_eq!(plan.node_init.get(0, 1), 0.0);
        assert_eq!(plan.node_init.get(1, 0), 1.0);
        assert_eq!(plan.node_init.get(1, 1), 1.0, "tiny flag set");
    }

    #[test]
    fn unreliable_paths_are_excluded() {
        let (_, mut sample) = toy_sample();
        sample.targets[3].delivered = 0;
        sample.targets[3].mean_delay_s = 0.0;
        let delays: Vec<f64> = sample
            .targets
            .iter()
            .filter(|t| t.mean_delay_s > 0.0)
            .map(|t| t.mean_delay_s)
            .collect();
        let prep = preprocessing(&delays);
        let plan = build_plan(&sample, &plan_config(&prep));
        assert!(!plan.reliable_idx.contains(&3));
        assert_eq!(plan.targets_norm.get(3, 0), 0.0);
    }

    #[test]
    fn normalized_targets_round_trip() {
        let (_, sample) = toy_sample();
        let delays: Vec<f64> = sample
            .targets
            .iter()
            .map(|t| t.mean_delay_s.max(1e-6))
            .collect();
        let prep = preprocessing(&delays);
        let cfg = plan_config(&prep);
        let plan = build_plan(&sample, &cfg);
        for &i in &plan.reliable_idx {
            let raw_back = cfg
                .normalizer
                .denormalize(plan.targets_norm.get(i, 0) as f64);
            let rel = (raw_back - plan.targets_raw[i]).abs() / plan.targets_raw[i];
            assert!(rel < 1e-5, "row {i}: {raw_back} vs {}", plan.targets_raw[i]);
        }
    }

    #[test]
    fn megabatch_is_block_diagonal() {
        let topo = topologies::toy5();
        let config = GeneratorConfig {
            sim: SimConfig {
                duration_s: 60.0,
                warmup_s: 10.0,
                ..SimConfig::default()
            },
            ..GeneratorConfig::default()
        };
        let ds = generate(&topo, &config, 33, 3);
        let delays: Vec<f64> = ds
            .samples
            .iter()
            .flat_map(|s| s.targets.iter().map(|t| t.mean_delay_s.max(1e-6)))
            .collect();
        let prep = preprocessing(&delays);
        let cfg = plan_config(&prep);
        let plans: Vec<SamplePlan> = ds.samples.iter().map(|s| build_plan(s, &cfg)).collect();
        let parts: Vec<&SamplePlan> = plans.iter().collect();
        let mb = build_megabatch(&parts);

        assert_eq!(mb.plan.n_paths, 3 * plans[0].n_paths);
        assert_eq!(mb.plan.num_links, 3 * plans[0].num_links);
        assert_eq!(mb.plan.num_nodes, 15);
        assert_eq!(mb.path_ranges.len(), 3);
        assert_eq!(mb.sample_mean_weights.len(), mb.plan.reliable_idx.len());

        // Ids stay inside each sample's entity block (block-diagonality).
        for (b, p) in plans.iter().enumerate() {
            let link_base: usize = plans[..b].iter().map(|q| q.num_links).sum();
            let node_base: usize = plans[..b].iter().map(|q| q.num_nodes).sum();
            let queue_base: usize = plans[..b].iter().map(|q| q.num_queues).sum();
            let (row_lo, row_hi) = mb.path_ranges[b];
            for (pos, step) in mb.plan.extended_steps.iter().enumerate() {
                for row in row_lo..row_hi {
                    if step.mask.get(row, 0) > 0.0 {
                        let local = &p.extended_steps[pos];
                        let (base, local_id) = match step.kind {
                            EntityKind::Link => (link_base, local.ids[row - row_lo]),
                            EntityKind::Node => (node_base, local.ids[row - row_lo]),
                            EntityKind::Queue => (queue_base, local.ids[row - row_lo]),
                        };
                        assert_eq!(step.ids[row], base + local_id, "step {pos} row {row}");
                    }
                }
            }
            // Targets and reliability line up with offsets.
            for &i in &p.reliable_idx {
                assert!(mb.plan.reliable_idx.contains(&(row_lo + i)));
            }
            for row in 0..p.n_paths {
                assert_eq!(mb.plan.targets_raw[row_lo + row], p.targets_raw[row]);
            }
        }

        // Weights of each sample's rows sum to 1 (per-sample mean semantics).
        for (b, p) in plans.iter().enumerate() {
            if p.reliable_idx.is_empty() {
                continue;
            }
            let (row_lo, row_hi) = mb.path_ranges[b];
            let sum: f32 = mb
                .plan
                .reliable_idx
                .iter()
                .zip(&mb.sample_mean_weights)
                .filter(|(&i, _)| i >= row_lo && i < row_hi)
                .map(|(_, &w)| w)
                .sum();
            assert!((sum - 1.0).abs() < 1e-5, "sample {b} weight sum {sum}");
        }
    }

    #[test]
    fn megabatch_shard_layout_is_disjoint_complete_and_sample_aligned() {
        let topo = topologies::toy5();
        let config = GeneratorConfig {
            sim: SimConfig {
                duration_s: 60.0,
                warmup_s: 10.0,
                ..SimConfig::default()
            },
            ..GeneratorConfig::default()
        };
        let ds = generate(&topo, &config, 34, 3);
        let delays: Vec<f64> = ds
            .samples
            .iter()
            .flat_map(|s| s.targets.iter().map(|t| t.mean_delay_s.max(1e-6)))
            .collect();
        let prep = preprocessing(&delays);
        let cfg = plan_config(&prep);
        let plans: Vec<SamplePlan> = ds.samples.iter().map(|s| build_plan(s, &cfg)).collect();
        let parts: Vec<&SamplePlan> = plans.iter().collect();
        let mb = build_megabatch(&parts);

        let shards = mb.plan.shards.as_ref().expect("megabatch must shard");
        assert_eq!(shards.len(), 3);
        assert_eq!(shards.path_bounds, vec![0, 20, 40, 60]);
        assert_eq!(*shards.link_bounds.last().unwrap(), mb.plan.num_links);
        assert_eq!(*shards.node_bounds.last().unwrap(), mb.plan.num_nodes);

        for csr in [&mb.plan.extended_csr, &mb.plan.original_csr] {
            assert_eq!(csr.num_shards, 3);
            for s in 0..csr.len() {
                let bounds = csr.step_shard_bounds(s);
                let active = csr.active_rows(s);
                // Complete and disjoint: ascending bounds spanning the list.
                assert_eq!(bounds[0], 0);
                assert_eq!(*bounds.last().unwrap(), active.len());
                assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
                // Sample-aligned: shard b's rows live in b's path range.
                for b in 0..3 {
                    for &row in &active[bounds[b]..bounds[b + 1]] {
                        assert!(
                            row >= shards.path_bounds[b] && row < shards.path_bounds[b + 1],
                            "step {s} shard {b}: row {row} outside sample range"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn single_sample_megabatch_stays_unsharded() {
        let (_, sample) = toy_sample();
        let delays: Vec<f64> = sample
            .targets
            .iter()
            .map(|t| t.mean_delay_s.max(1e-6))
            .collect();
        let prep = preprocessing(&delays);
        let plan = build_plan(&sample, &plan_config(&prep));
        // Without the RN_INTRA_SHARDS opt-in (compose_with(parts, N) /
        // env), a 1-sample megabatch runs the legacy (bitwise-seed)
        // kernels entirely unsharded.
        let mb = crate::compose::ComposedMegabatch::compose_with(&[&plan], 1)
            .unwrap()
            .into_plan();
        assert!(
            mb.plan.shards.is_none(),
            "1-sample megabatch must run the legacy (bitwise-seed) kernels"
        );
        assert_eq!(mb.plan.extended_csr.num_shards, 0);
    }

    #[test]
    fn balanced_row_bounds_handles_degenerate_shapes() {
        // total < shards: every row still lands in exactly one block; the
        // surplus blocks are empty, never out of range.
        let bounds = balanced_row_bounds(3, 8);
        assert_eq!(bounds.len(), 9);
        assert_eq!(bounds[0], 0);
        assert_eq!(*bounds.last().unwrap(), 3);
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
        let sizes: usize = bounds.windows(2).map(|w| w[1] - w[0]).sum();
        assert_eq!(sizes, 3, "blocks partition all rows");

        // total == 0: all-empty blocks, still well-formed bounds.
        let empty = balanced_row_bounds(0, 4);
        assert_eq!(empty, vec![0, 0, 0, 0, 0]);

        // shards == 0 clamps to one block spanning everything.
        assert_eq!(balanced_row_bounds(7, 0), vec![0, 7]);

        // Exact division: equal blocks.
        assert_eq!(balanced_row_bounds(8, 4), vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn plan_shards_degenerate_bounds_disable_dense_cleanly() {
        // A PlanShards whose dense bounds are stripped (legacy layout) or
        // collapsed to a single block must report dense sharding disabled —
        // the `len() > 2` gate — while per-sample accessors keep working.
        let shards = PlanShards {
            path_bounds: vec![0, 10],
            link_bounds: vec![0, 4],
            node_bounds: vec![0, 3],
            queue_bounds: vec![0, 0],
            dense_path_bounds: Vec::new(),
            dense_link_bounds: balanced_row_bounds(4, 1),
            dense_node_bounds: balanced_row_bounds(0, 4),
            dense_queue_bounds: Vec::new(),
            shared: OnceLock::new(),
        };
        assert_eq!(shards.len(), 1);
        assert!(!shards.is_empty());
        assert!(shards.dense_path().is_none(), "stripped bounds disable");
        assert!(shards.dense_link().is_none(), "single block disables");
        assert!(
            shards.dense_node().is_some(),
            "zero-row multi-block bounds stay structurally enabled"
        );
        assert_eq!(shards.entity_bounds(EntityKind::Link), &[0, 4]);
        assert_eq!(shards.entity_bounds(EntityKind::Node), &[0, 3]);

        let empty = PlanShards {
            path_bounds: Vec::new(),
            link_bounds: Vec::new(),
            node_bounds: Vec::new(),
            queue_bounds: Vec::new(),
            dense_path_bounds: Vec::new(),
            dense_link_bounds: Vec::new(),
            dense_node_bounds: Vec::new(),
            dense_queue_bounds: Vec::new(),
            shared: OnceLock::new(),
        };
        assert_eq!(empty.len(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn empty_megabatch_is_an_error_not_a_panic() {
        assert_eq!(
            try_build_megabatch(&[]).unwrap_err(),
            MegabatchError::EmptyBatch
        );
        let msg = MegabatchError::EmptyBatch.to_string();
        assert!(msg.contains("empty batch"), "{msg}");
    }

    #[test]
    fn megabatch_state_dim_mismatch_is_an_error() {
        let (_, sample) = toy_sample();
        let delays: Vec<f64> = sample
            .targets
            .iter()
            .map(|t| t.mean_delay_s.max(1e-6))
            .collect();
        let prep = preprocessing(&delays);
        let mut cfg = plan_config(&prep);
        let plan_a = build_plan(&sample, &cfg);
        cfg.state_dim = 16;
        let plan_b = build_plan(&sample, &cfg);
        assert_eq!(
            try_build_megabatch(&[&plan_a, &plan_b]).unwrap_err(),
            MegabatchError::StateDimMismatch(8, 16)
        );
    }

    #[test]
    fn compiled_steps_mirror_step_plans() {
        let (_, sample) = toy_sample();
        let delays: Vec<f64> = sample
            .targets
            .iter()
            .map(|t| t.mean_delay_s.max(1e-6))
            .collect();
        let prep = preprocessing(&delays);
        let plan = build_plan(&sample, &plan_config(&prep));
        assert_eq!(plan.extended_csr.len(), plan.extended_steps.len());
        for (s, step) in plan.extended_steps.iter().enumerate() {
            assert_eq!(plan.extended_csr.kinds[s], step.kind);
            assert_eq!(plan.extended_csr.active[s], step.active);
            assert_eq!(plan.extended_csr.ids(s), &step.ids[..]);
            assert!(plan.extended_csr.masks[s].approx_eq(&step.mask, 0.0));
        }
    }

    #[test]
    fn schedule_trace_mentions_all_rnns() {
        let (_, sample) = toy_sample();
        let delays: Vec<f64> = sample
            .targets
            .iter()
            .map(|t| t.mean_delay_s.max(1e-6))
            .collect();
        let prep = preprocessing(&delays);
        let plan = build_plan(&sample, &plan_config(&prep));
        let trace = plan.schedule_trace(3);
        assert!(trace.contains("RNN_P<-node"));
        assert!(trace.contains("RNN_P<-link"));
        assert!(trace.contains("RNN_L"));
        assert!(trace.contains("RNN_N"));
    }
}
