//! From dataset samples to message-passing plans.
//!
//! A [`SamplePlan`] is everything a forward pass needs, precomputed once per
//! sample and reused across epochs:
//!
//! - initial entity states (features zero-padded to `state_dim`),
//! - per-sequence-position gather/scatter index plans ([`StepPlan`]) for both
//!   the original (links only) and extended (interleaved `node-link-node-…`)
//!   path sequences,
//! - the path↔node incidence lists used by the
//!   [`crate::NodeUpdate::FinalPathStateSum`] ablation,
//! - normalized regression targets and the indices of paths whose labels are
//!   statistically reliable.
//!
//! ## Sequence convention
//!
//! For a path `v₀ → v₁ → … → v_k` over links `l₁ … l_k`, the extended
//! sequence is `v₀, l₁, v₁, l₂, …, v_{k-1}, l_k` (length `2k`): each link is
//! preceded by the node whose output queue feeds it, so the source node is
//! included and the destination node (which performs no forwarding) is not.
//! Even positions are therefore always nodes and odd positions always links —
//! a uniform alternation that lets a whole batch of paths advance through one
//! GRU step per position.

use crate::config::ModelConfig;
use crate::features::FeatureScales;
use rn_dataset::{Normalizer, Sample};
use rn_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Which entity type a sequence position refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EntityKind {
    /// A directed link.
    Link,
    /// A forwarding device.
    Node,
}

/// What the regression target is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TargetKind {
    /// Per-path mean delay (the paper's experiment).
    Delay,
    /// Per-path jitter (delay standard deviation) — supported as an
    /// extension; RouteNet predicts it with the same architecture.
    Jitter,
}

/// One sequence position across all paths of a sample.
#[derive(Debug, Clone)]
pub struct StepPlan {
    /// Entity type at this position (uniform across paths by construction).
    pub kind: EntityKind,
    /// Per-path entity id at this position; 0 (an arbitrary valid id) for
    /// paths shorter than the position — those rows are masked out.
    pub ids: Vec<usize>,
    /// `n_paths x 1` activity mask: 1.0 where the path has this position.
    pub mask: Matrix,
    /// Number of active paths at this position.
    pub active: usize,
}

/// Precomputed forward-pass inputs for one sample.
#[derive(Debug, Clone)]
pub struct SamplePlan {
    /// Number of paths (rows of `path_init` and of the prediction).
    pub n_paths: usize,
    /// Number of directed links.
    pub num_links: usize,
    /// Number of nodes.
    pub num_nodes: usize,
    /// `(src, dst)` per path, aligned with rows.
    pub pairs: Vec<(usize, usize)>,
    /// Initial path states: `n_paths x state_dim` (traffic feature in col 0).
    pub path_init: Matrix,
    /// Initial link states: `num_links x state_dim` (capacity in col 0).
    pub link_init: Matrix,
    /// Initial node states: `num_nodes x state_dim` (queue size in col 0,
    /// tiny-queue indicator in col 1).
    pub node_init: Matrix,
    /// Steps of the extended interleaved sequence.
    pub extended_steps: Vec<StepPlan>,
    /// Steps of the original links-only sequence.
    pub original_steps: Vec<StepPlan>,
    /// Flattened path-node incidence: for every (path, traversed node) pair,
    /// the path row index…
    pub node_incidence_paths: Vec<usize>,
    /// …and the node id (aligned with `node_incidence_paths`).
    pub node_incidence_nodes: Vec<usize>,
    /// Normalized regression targets, `n_paths x 1` (0.0 for unreliable rows).
    pub targets_norm: Matrix,
    /// Raw (denormalized) targets in seconds, aligned with rows.
    pub targets_raw: Vec<f64>,
    /// Rows whose labels are reliable enough to train/evaluate on.
    pub reliable_idx: Vec<usize>,
}

/// Options controlling plan construction.
#[derive(Debug, Clone)]
pub struct PlanConfig {
    /// Feature scaling (fitted on the training set).
    pub scales: FeatureScales,
    /// Target normalizer (fitted on the training set).
    pub normalizer: Normalizer,
    /// Entity state width.
    pub state_dim: usize,
    /// Minimum delivered packets for a label to count as reliable.
    pub min_packets: u64,
    /// Which label to regress.
    pub target: TargetKind,
}

impl PlanConfig {
    /// Plan options from a model configuration plus preprocessing state.
    pub fn new(config: &ModelConfig, scales: FeatureScales, normalizer: Normalizer) -> Self {
        Self {
            scales,
            normalizer,
            state_dim: config.state_dim,
            min_packets: 10,
            target: TargetKind::Delay,
        }
    }
}

/// Build the message-passing plan for one sample.
///
/// Panics if `state_dim < 2` (features need two leading columns).
pub fn build_plan(sample: &Sample, config: &PlanConfig) -> SamplePlan {
    assert!(config.state_dim >= 2, "state_dim must be at least 2");
    let d = config.state_dim;
    let num_nodes = sample.queue_capacities.len();
    let num_links = sample.link_capacities.len();

    // ---- Entity features -> initial states -------------------------------
    let paths: Vec<(usize, usize, &rn_netgraph::Path)> = sample.routing.iter_paths().collect();
    let n_paths = paths.len();
    assert_eq!(n_paths, sample.targets.len(), "targets misaligned with routing");

    let mut path_init = Matrix::zeros(n_paths, d);
    for (row, &(s, dst, _)) in paths.iter().enumerate() {
        path_init.set(row, 0, config.scales.rate(sample.traffic.rate(s, dst)));
    }
    let mut link_init = Matrix::zeros(num_links, d);
    for (l, &cap) in sample.link_capacities.iter().enumerate() {
        link_init.set(l, 0, config.scales.capacity(cap));
    }
    let mut node_init = Matrix::zeros(num_nodes, d);
    for (n, &q) in sample.queue_capacities.iter().enumerate() {
        node_init.set(n, 0, config.scales.queue(q));
        // Binary tiny-queue indicator: gives the model the same categorical
        // signal the scenario generator used.
        let is_tiny = if q <= 1 { 1.0 } else { 0.0 };
        node_init.set(n, 1, is_tiny);
    }

    // ---- Sequences --------------------------------------------------------
    // Extended: v0, l1, v1, l2, ..., v_{k-1}, l_k  (length 2k)
    // Original: l1, ..., l_k                        (length k)
    let max_hops = paths.iter().map(|(_, _, p)| p.hop_count()).max().unwrap_or(0);
    let mut extended_steps = Vec::with_capacity(2 * max_hops);
    for pos in 0..(2 * max_hops) {
        let kind = if pos % 2 == 0 { EntityKind::Node } else { EntityKind::Link };
        let mut ids = vec![0usize; n_paths];
        let mut mask = Matrix::zeros(n_paths, 1);
        let mut active = 0;
        for (row, (_, _, path)) in paths.iter().enumerate() {
            let hop = pos / 2;
            if hop < path.hop_count() {
                ids[row] = match kind {
                    EntityKind::Node => path.nodes[hop],
                    EntityKind::Link => path.links[hop],
                };
                mask.set(row, 0, 1.0);
                active += 1;
            }
        }
        extended_steps.push(StepPlan { kind, ids, mask, active });
    }
    let mut original_steps = Vec::with_capacity(max_hops);
    for hop in 0..max_hops {
        let mut ids = vec![0usize; n_paths];
        let mut mask = Matrix::zeros(n_paths, 1);
        let mut active = 0;
        for (row, (_, _, path)) in paths.iter().enumerate() {
            if hop < path.hop_count() {
                ids[row] = path.links[hop];
                mask.set(row, 0, 1.0);
                active += 1;
            }
        }
        original_steps.push(StepPlan { kind: EntityKind::Link, ids, mask, active });
    }

    // ---- Node incidences (forwarding nodes: all but the destination) ------
    let mut node_incidence_paths = Vec::new();
    let mut node_incidence_nodes = Vec::new();
    for (row, (_, _, path)) in paths.iter().enumerate() {
        for hop in 0..path.hop_count() {
            node_incidence_paths.push(row);
            node_incidence_nodes.push(path.nodes[hop]);
        }
    }

    // ---- Targets -----------------------------------------------------------
    let mut targets_norm = Matrix::zeros(n_paths, 1);
    let mut targets_raw = vec![0.0; n_paths];
    let mut reliable_idx = Vec::new();
    for (row, t) in sample.targets.iter().enumerate() {
        let raw = match config.target {
            TargetKind::Delay => t.mean_delay_s,
            TargetKind::Jitter => t.jitter_s,
        };
        targets_raw[row] = raw;
        let positive_enough = !config.normalizer.log_space || raw > 0.0;
        if t.is_reliable(config.min_packets) && positive_enough {
            targets_norm.set(row, 0, config.normalizer.normalize(raw) as f32);
            reliable_idx.push(row);
        }
    }

    SamplePlan {
        n_paths,
        num_links,
        num_nodes,
        pairs: paths.iter().map(|&(s, d2, _)| (s, d2)).collect(),
        path_init,
        link_init,
        node_init,
        extended_steps,
        original_steps,
        node_incidence_paths,
        node_incidence_nodes,
        targets_norm,
        targets_raw,
        reliable_idx,
    }
}

impl SamplePlan {
    /// Raw targets restricted to reliable rows.
    pub fn reliable_targets_raw(&self) -> Vec<f64> {
        self.reliable_idx.iter().map(|&i| self.targets_raw[i]).collect()
    }

    /// Normalized targets restricted to reliable rows, as a column matrix.
    pub fn reliable_targets_norm(&self) -> Matrix {
        self.targets_norm.gather_rows(&self.reliable_idx)
    }

    /// A human-readable trace of the extended message-passing schedule for
    /// the first `max_paths` paths — the machine-checkable counterpart of the
    /// paper's Figure 1.
    pub fn schedule_trace(&self, max_paths: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "extended message passing: {} paths, {} links, {} nodes, {} sequence steps\n",
            self.n_paths,
            self.num_links,
            self.num_nodes,
            self.extended_steps.len()
        ));
        for (row, &(s, d)) in self.pairs.iter().take(max_paths).enumerate() {
            out.push_str(&format!("path {row} ({s} -> {d}): "));
            let mut parts = Vec::new();
            for step in &self.extended_steps {
                if step.mask.get(row, 0) > 0.0 {
                    let tag = match step.kind {
                        EntityKind::Node => format!("RNN_P<-node{}", step.ids[row]),
                        EntityKind::Link => format!("RNN_P<-link{}", step.ids[row]),
                    };
                    parts.push(tag);
                }
            }
            out.push_str(&parts.join(" "));
            out.push('\n');
        }
        out.push_str("aggregation: msg(path,pos)->link via RNN_L; msg(path,pos)->node via RNN_N\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_dataset::{generate, GeneratorConfig, Normalizer};
    use rn_netgraph::topologies;
    use rn_netsim::SimConfig;

    fn toy_sample() -> (rn_netgraph::Topology, Sample) {
        let topo = topologies::toy5();
        let config = GeneratorConfig {
            sim: SimConfig { duration_s: 60.0, warmup_s: 10.0, ..SimConfig::default() },
            ..GeneratorConfig::default()
        };
        let mut ds = generate(&topo, &config, 31, 1);
        (topo, ds.samples.pop().unwrap())
    }

    fn plan_config(ds_delays: &[f64]) -> PlanConfig {
        PlanConfig {
            scales: FeatureScales::unit(),
            normalizer: Normalizer::fit(ds_delays, true),
            state_dim: 8,
            min_packets: 5,
            target: TargetKind::Delay,
        }
    }

    #[test]
    fn plan_shapes_are_consistent() {
        let (topo, sample) = toy_sample();
        let delays: Vec<f64> = sample.targets.iter().map(|t| t.mean_delay_s.max(1e-6)).collect();
        let plan = build_plan(&sample, &plan_config(&delays));
        assert_eq!(plan.n_paths, 20);
        assert_eq!(plan.num_links, topo.num_links());
        assert_eq!(plan.num_nodes, 5);
        assert_eq!(plan.path_init.shape(), (20, 8));
        assert_eq!(plan.link_init.shape(), (topo.num_links(), 8));
        assert_eq!(plan.node_init.shape(), (5, 8));
        assert_eq!(plan.targets_norm.shape(), (20, 1));
    }

    #[test]
    fn extended_sequence_alternates_node_link() {
        let (_, sample) = toy_sample();
        let delays: Vec<f64> = sample.targets.iter().map(|t| t.mean_delay_s.max(1e-6)).collect();
        let plan = build_plan(&sample, &plan_config(&delays));
        for (i, step) in plan.extended_steps.iter().enumerate() {
            let expected = if i % 2 == 0 { EntityKind::Node } else { EntityKind::Link };
            assert_eq!(step.kind, expected, "position {i}");
        }
        assert_eq!(plan.extended_steps.len(), 2 * plan.original_steps.len());
    }

    #[test]
    fn sequences_match_paths() {
        let (_, sample) = toy_sample();
        let delays: Vec<f64> = sample.targets.iter().map(|t| t.mean_delay_s.max(1e-6)).collect();
        let plan = build_plan(&sample, &plan_config(&delays));
        for (row, (s, d, path)) in sample.routing.iter_paths().enumerate() {
            assert_eq!(plan.pairs[row], (s, d));
            // Extended: node at even 2*h, the traversed link at odd 2*h+1.
            for (h, &l) in path.links.iter().enumerate() {
                let node_step = &plan.extended_steps[2 * h];
                let link_step = &plan.extended_steps[2 * h + 1];
                assert_eq!(node_step.ids[row], path.nodes[h]);
                assert_eq!(node_step.mask.get(row, 0), 1.0);
                assert_eq!(link_step.ids[row], l);
                assert_eq!(link_step.mask.get(row, 0), 1.0);
                // Original: link at position h.
                assert_eq!(plan.original_steps[h].ids[row], l);
            }
            // Positions past the path length are masked out.
            for pos in (2 * path.hop_count())..plan.extended_steps.len() {
                assert_eq!(plan.extended_steps[pos].mask.get(row, 0), 0.0);
            }
        }
    }

    #[test]
    fn active_counts_match_masks() {
        let (_, sample) = toy_sample();
        let delays: Vec<f64> = sample.targets.iter().map(|t| t.mean_delay_s.max(1e-6)).collect();
        let plan = build_plan(&sample, &plan_config(&delays));
        for step in plan.extended_steps.iter().chain(&plan.original_steps) {
            let mask_sum = step.mask.sum() as usize;
            assert_eq!(step.active, mask_sum);
        }
        // The first position involves every path (every path has >= 1 hop).
        assert_eq!(plan.extended_steps[0].active, plan.n_paths);
    }

    #[test]
    fn node_incidence_excludes_destination() {
        let (_, sample) = toy_sample();
        let delays: Vec<f64> = sample.targets.iter().map(|t| t.mean_delay_s.max(1e-6)).collect();
        let plan = build_plan(&sample, &plan_config(&delays));
        for (row, (_, dst, path)) in sample.routing.iter_paths().enumerate() {
            let visited: Vec<usize> = plan
                .node_incidence_paths
                .iter()
                .zip(&plan.node_incidence_nodes)
                .filter(|&(&p, _)| p == row)
                .map(|(_, &n)| n)
                .collect();
            assert_eq!(visited.len(), path.hop_count());
            assert!(!visited.contains(&dst), "destination must not forward");
            assert_eq!(visited[0], path.src());
        }
    }

    #[test]
    fn node_features_encode_queue_size() {
        let (_, mut sample) = toy_sample();
        sample.queue_capacities = vec![32, 1, 32, 1, 32];
        let delays: Vec<f64> = sample.targets.iter().map(|t| t.mean_delay_s.max(1e-6)).collect();
        let plan = build_plan(&sample, &plan_config(&delays));
        assert_eq!(plan.node_init.get(0, 0), 32.0);
        assert_eq!(plan.node_init.get(0, 1), 0.0);
        assert_eq!(plan.node_init.get(1, 0), 1.0);
        assert_eq!(plan.node_init.get(1, 1), 1.0, "tiny flag set");
    }

    #[test]
    fn unreliable_paths_are_excluded() {
        let (_, mut sample) = toy_sample();
        sample.targets[3].delivered = 0;
        sample.targets[3].mean_delay_s = 0.0;
        let delays: Vec<f64> = sample
            .targets
            .iter()
            .filter(|t| t.mean_delay_s > 0.0)
            .map(|t| t.mean_delay_s)
            .collect();
        let plan = build_plan(&sample, &plan_config(&delays));
        assert!(!plan.reliable_idx.contains(&3));
        assert_eq!(plan.targets_norm.get(3, 0), 0.0);
    }

    #[test]
    fn normalized_targets_round_trip() {
        let (_, sample) = toy_sample();
        let delays: Vec<f64> = sample.targets.iter().map(|t| t.mean_delay_s.max(1e-6)).collect();
        let cfg = plan_config(&delays);
        let plan = build_plan(&sample, &cfg);
        for &i in &plan.reliable_idx {
            let raw_back = cfg.normalizer.denormalize(plan.targets_norm.get(i, 0) as f64);
            let rel = (raw_back - plan.targets_raw[i]).abs() / plan.targets_raw[i];
            assert!(rel < 1e-5, "row {i}: {raw_back} vs {}", plan.targets_raw[i]);
        }
    }

    #[test]
    fn schedule_trace_mentions_all_rnns() {
        let (_, sample) = toy_sample();
        let delays: Vec<f64> = sample.targets.iter().map(|t| t.mean_delay_s.max(1e-6)).collect();
        let plan = build_plan(&sample, &plan_config(&delays));
        let trace = plan.schedule_trace(3);
        assert!(trace.contains("RNN_P<-node"));
        assert!(trace.contains("RNN_P<-link"));
        assert!(trace.contains("RNN_L"));
        assert!(trace.contains("RNN_N"));
    }
}
