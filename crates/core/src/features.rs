//! Feature scaling.
//!
//! Raw inputs span very different ranges (traffic in hundreds of bit/s, link
//! capacity in tens of kbit/s, queue sizes in packets). Scales are fitted on
//! the training dataset and stored inside the trained model so evaluation on
//! other topologies applies identical scaling — crucial for the paper's
//! train-on-GEANT2 / test-on-NSFNET generalization experiment.

use rn_dataset::Dataset;
use serde::{Deserialize, Serialize};

/// Divisors mapping raw features into roughly `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureScales {
    /// Divisor for per-pair traffic rates (bps).
    pub rate_scale: f64,
    /// Divisor for link capacities (bps).
    pub capacity_scale: f64,
    /// Divisor for queue capacities (packets).
    pub queue_scale: f64,
}

impl FeatureScales {
    /// Fit on a training dataset: each scale is the maximum observed value
    /// (floored at 1 to avoid degenerate divisors).
    pub fn fit(dataset: &Dataset) -> Self {
        let mut rate_max = 0.0f64;
        let mut cap_max = 0.0f64;
        let mut queue_max = 0.0f64;
        for s in &dataset.samples {
            for (src, dst, _) in s.routing.iter_paths() {
                rate_max = rate_max.max(s.traffic.rate(src, dst));
            }
            for &c in &s.link_capacities {
                cap_max = cap_max.max(c);
            }
            for &q in &s.queue_capacities {
                queue_max = queue_max.max(q as f64);
            }
        }
        Self {
            rate_scale: rate_max.max(1.0),
            capacity_scale: cap_max.max(1.0),
            queue_scale: queue_max.max(1.0),
        }
    }

    /// Unit scales (features pass through unchanged) — for tests.
    pub fn unit() -> Self {
        Self {
            rate_scale: 1.0,
            capacity_scale: 1.0,
            queue_scale: 1.0,
        }
    }

    /// Scale a traffic rate.
    pub fn rate(&self, bps: f64) -> f32 {
        (bps / self.rate_scale) as f32
    }

    /// Scale a link capacity.
    pub fn capacity(&self, bps: f64) -> f32 {
        (bps / self.capacity_scale) as f32
    }

    /// Scale a queue capacity.
    pub fn queue(&self, packets: usize) -> f32 {
        (packets as f64 / self.queue_scale) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_dataset::{generate, GeneratorConfig};
    use rn_netgraph::topologies;
    use rn_netsim::SimConfig;

    #[test]
    fn fit_produces_scales_that_bound_features() {
        let config = GeneratorConfig {
            sim: SimConfig {
                duration_s: 30.0,
                warmup_s: 5.0,
                ..SimConfig::default()
            },
            ..GeneratorConfig::default()
        };
        let ds = generate(&topologies::toy5(), &config, 21, 3);
        let scales = FeatureScales::fit(&ds);
        for s in &ds.samples {
            for (src, dst, _) in s.routing.iter_paths() {
                assert!(scales.rate(s.traffic.rate(src, dst)) <= 1.0 + 1e-6);
            }
            for &c in &s.link_capacities {
                assert!(scales.capacity(c) <= 1.0 + 1e-6);
            }
            for &q in &s.queue_capacities {
                assert!(scales.queue(q) <= 1.0 + 1e-6);
            }
        }
    }

    #[test]
    fn unit_scales_are_identity() {
        let s = FeatureScales::unit();
        assert_eq!(s.rate(5.0), 5.0);
        assert_eq!(s.capacity(3.0), 3.0);
        assert_eq!(s.queue(7), 7.0);
    }

    #[test]
    fn empty_dataset_gives_safe_scales() {
        let ds = Dataset {
            topology: topologies::toy5(),
            samples: vec![],
        };
        let s = FeatureScales::fit(&ds);
        assert_eq!(s.rate_scale, 1.0);
        assert_eq!(s.capacity_scale, 1.0);
        assert_eq!(s.queue_scale, 1.0);
    }
}
