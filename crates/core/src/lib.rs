//! # routenet
//!
//! The paper's contribution: **RouteNet** (Rusek et al., SOSR'19) and the
//! **extended RouteNet** of Badia-Sampera et al. (CoNEXT'19), which adds a
//! *node entity* so device-level features — queue size in the paper — enter
//! the model.
//!
//! ## Architecture recap
//!
//! RouteNet maintains hidden state vectors for **links** and **paths** and
//! alternates, for `T` iterations:
//!
//! 1. **Path update** — a GRU reads, for every path, the sequence of entity
//!    states along the path (original: its links; extended: the interleaved
//!    `node₁-link₁-node₂-link₂-…` sequence). The GRU's hidden state after
//!    consuming position *j* is the *message* from the path to the entity at
//!    position *j*; the final hidden state becomes the new path state.
//! 2. **Link update** — every link aggregates (element-wise sum) the messages
//!    of the paths crossing it and feeds them through `RNN_L`.
//! 3. **Node update** (extended only) — every node aggregates the messages of
//!    the paths traversing it and feeds them through `RNN_N`.
//!
//! After `T` iterations a feed-forward readout maps each path state to the
//! predicted per-path delay. The learnable functions are exactly the four of
//! the paper: `RNN_P`, `RNN_L`, `RNN_N`, readout.
//!
//! ## Crate layout
//!
//! - [`config`] — hyper-parameters, including the [`config::NodeUpdate`]
//!   ablation switch (positional messages vs. the paper's literal "sum of
//!   path states").
//! - [`features`] — feature scaling fitted on the training set.
//! - [`entities`] — converts a dataset sample into the tensors and
//!   gather/scatter index plans message passing executes over.
//! - [`model`] — [`OriginalRouteNet`], [`ExtendedRouteNet`] and the
//!   QoS-aware [`QosRouteNet`] (adds a per-(link, class) queue entity).
//! - [`trainer`] — minibatch Adam training with rayon data-parallel gradients.
//! - [`eval`] — relative-error evaluation and CDF series (Figure 2).
//! - [`persist`] — atomic JSON save/load of trained models.
//! - [`plan_cache`] — scenario fingerprints and the compiled-plan LRU cache
//!   the serving layer (`rn_serve`) builds on.
//! - [`compose`] — the megabatch composition layer: shape-dependent
//!   structure split from per-batch features, with in-place feature refill
//!   and the LRU composition cache recurring batch shapes hit instead of
//!   re-running `build_megabatch`.

#![warn(missing_docs)]

pub mod compose;
pub mod config;
pub mod entities;
pub mod eval;
pub mod features;
pub mod model;
pub mod persist;
pub mod plan_cache;
pub mod train_trace;
pub mod trainer;

pub use compose::{ComposedMegabatch, CompositionCache, MegabatchFeatures, MegabatchStructure};
pub use config::{ModelConfig, NodeUpdate};
pub use entities::{EntityKind, MegabatchError, SamplePlan};
pub use eval::{evaluate, EvalReport};
pub use features::FeatureScales;
pub use model::{ExtendedRouteNet, OriginalRouteNet, PathPredictor, QosRouteNet};
pub use plan_cache::{sample_fingerprint, PlanCache};
pub use trainer::{train, TrainConfig, TrainingHistory};
