//! The megabatch **composition layer**: structure/feature split, cached
//! composition, and the LRU composition cache shared by the trainer and the
//! serving workers.
//!
//! The workload this system serves is many scenarios over a *fixed small set
//! of graph shapes*: what changes between samples is traffic, capacities and
//! queue profiles, not the CSR structure message passing runs over. Yet a
//! fresh [`build_megabatch`](crate::entities::build_megabatch) redoes all of
//! the shape-dependent work — step merging, CSR compilation, shard-bound
//! precomputation — for every batch, even when the batch has exactly the
//! ordered sample shapes of the previous one.
//!
//! This module splits megabatch assembly into:
//!
//! - [`MegabatchStructure`] — everything **shape-dependent**: merged step
//!   schedules, block-diagonal CSR index buffers (with per-step compaction
//!   lists and `shard_bounds`), entity offsets, pairs, incidences and the
//!   per-sample shard layout. Expensive to build, reusable for any batch
//!   whose ordered per-sample [structure
//!   fingerprints](crate::entities::SamplePlan::structure_fingerprint) match.
//! - [`MegabatchFeatures`] — everything **per-batch**: the stacked initial
//!   state matrices, targets, reliability indices and loss weights. Cheap to
//!   (re)write: O(rows × state_dim) copies.
//! - [`ComposedMegabatch`] — structure and features assembled into the
//!   [`MegabatchPlan`] the fused forward/backward consumes, plus the layout
//!   metadata needed to [`refill_features`](ComposedMegabatch::refill_features)
//!   in place for the next batch with the same shapes.
//!
//! A fresh `build_megabatch` **is** `compose structure → extract features →
//! assemble`, and `refill_features` rewrites exactly the fields feature
//! extraction writes, through the same code path — so a cached composition
//! with refilled features is bitwise identical to a fresh build by
//! construction. The golden suite (`tests/composed_equivalence.rs`) pins
//! this down across shard-worker counts and model hot-swaps.
//!
//! [`CompositionCache`] is the LRU that makes recurring batch shapes free:
//! keyed by the ordered tuple of per-sample structure fingerprints, entries
//! are **checked out** (removed) for exclusive refill + use and published
//! back afterwards, so concurrent workers never contend on a shared
//! composition's buffers.

use crate::entities::{
    balanced_row_bounds, copy_rows, CompiledSteps, EntityKind, MegabatchError, MegabatchPlan,
    PlanShards, SamplePlan, StepPlan,
};
use crate::plan_cache::Fingerprint;
use rn_tensor::Matrix;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Intra-sample shard knob
// ---------------------------------------------------------------------------

/// The env var setting the ambient **intra-sample** dense shard count picked
/// up by [`MegabatchStructure::compose`] / [`ComposedMegabatch::compose`]
/// when a composition holds a single sample. Giant single-sample plans
/// (ISP-scale topologies) otherwise run fully unsharded; with
/// `RN_INTRA_SHARDS=N` (N > 1) their dense per-row work — the link/node GRU
/// entity updates and the readout MLP — fans out over N balanced row blocks
/// while message passing keeps the exact legacy single-shard schedule.
/// Explicit callers pass the count to
/// [`MegabatchStructure::compose_with`] instead of mutating the environment.
pub const INTRA_SHARDS_ENV: &str = "RN_INTRA_SHARDS";

/// Interpret a raw `RN_INTRA_SHARDS` value: integers above 1 apply
/// (surrounding whitespace tolerated); anything else — unset, garbage,
/// `0`, `1` — means "disabled" and returns 1. Pure and unit-testable, so
/// tests exercise the parser instead of mutating process-global env state
/// under a multi-threaded harness.
pub fn parse_intra_shards(raw: Option<&str>) -> usize {
    raw.and_then(|r| r.trim().parse::<usize>().ok())
        .filter(|&n| n > 1)
        .unwrap_or(1)
}

/// The ambient intra-sample shard count: [`INTRA_SHARDS_ENV`] run through
/// [`parse_intra_shards`]. Read per composition — composing is orders of
/// magnitude more expensive than a `getenv`.
pub fn env_intra_shards() -> usize {
    parse_intra_shards(std::env::var(INTRA_SHARDS_ENV).ok().as_deref())
}

// ---------------------------------------------------------------------------
// Structure
// ---------------------------------------------------------------------------

/// The shape-dependent half of a composed megabatch (see the module docs).
///
/// Everything in here is a pure function of the parts' *structure* — entity
/// counts, routing, sequence schedules — and is therefore reusable across
/// batches whose ordered structure fingerprints match, no matter how their
/// traffic, capacities, queue profiles or labels differ.
#[derive(Debug)]
pub struct MegabatchStructure {
    /// Entity state width every part was planned with.
    pub state_dim: usize,
    /// Total path rows.
    pub n_paths: usize,
    /// Total directed links.
    pub num_links: usize,
    /// Total nodes.
    pub num_nodes: usize,
    /// Total scheduler queues (0 for packs of legacy two-entity parts).
    pub num_queues: usize,
    /// Per-part path row offsets (len `B`).
    pub path_off: Vec<usize>,
    /// Per-part link row offsets (len `B`).
    pub link_off: Vec<usize>,
    /// Per-part node row offsets (len `B`).
    pub node_off: Vec<usize>,
    /// Per-part queue row offsets (len `B`; all zero for legacy packs).
    pub queue_off: Vec<usize>,
    /// Ordered per-part structure fingerprints — the composition cache key.
    pub part_fps: Vec<u64>,
    /// Merged `(src, dst)` pairs in the union node id space.
    pub pairs: Vec<(usize, usize)>,
    /// Merged extended steps (ids shifted, masks padded).
    pub extended_steps: Vec<StepPlan>,
    /// Merged original (links-only) steps.
    pub original_steps: Vec<StepPlan>,
    /// `extended_steps` compiled to CSR, shard bounds included for `B > 1`.
    pub extended_csr: CompiledSteps,
    /// `original_steps` compiled to CSR, shard bounds included for `B > 1`.
    pub original_csr: CompiledSteps,
    /// Merged path→node incidence rows.
    pub node_incidence_paths: Vec<usize>,
    /// Merged path→node incidence node ids.
    pub node_incidence_nodes: Vec<usize>,
    /// Per-sample shard layout (`None` for single-part compositions, which
    /// stay on the legacy bitwise path).
    pub shards: Option<PlanShards>,
    /// Per-part path row ranges `[start, end)`.
    pub path_ranges: Vec<(usize, usize)>,
}

impl MegabatchStructure {
    /// Compose the shape-dependent state of a block-diagonal megabatch from
    /// `parts` — the expensive half of `build_megabatch`. Single-sample
    /// compositions honor the ambient [`INTRA_SHARDS_ENV`] dense shard
    /// count; see [`MegabatchStructure::compose_with`].
    pub fn compose(parts: &[&SamplePlan]) -> Result<Self, MegabatchError> {
        Self::compose_with(parts, env_intra_shards())
    }

    /// [`MegabatchStructure::compose`] with an explicit intra-sample dense
    /// shard count instead of the `RN_INTRA_SHARDS` ambient default.
    ///
    /// `intra_shards` only matters for **single-sample** compositions:
    /// multi-sample batches already shard per sample. A single sample cannot
    /// be subdivided along sample boundaries — splitting its paths across
    /// message shards would interleave scatter-adds into shared entity rows
    /// and change float associativity — so with `intra_shards > 1` message
    /// passing keeps the single-shard (bitwise-legacy) schedule and only the
    /// dense per-row work (link/node GRU updates, readout MLP), which has no
    /// block-diagonal constraint, fans out over `intra_shards` balanced row
    /// blocks. Output is bitwise identical to the unsharded plan at any
    /// value (`tests/sharded_determinism.rs` pins this).
    pub fn compose_with(
        parts: &[&SamplePlan],
        intra_shards: usize,
    ) -> Result<Self, MegabatchError> {
        if parts.is_empty() {
            return Err(MegabatchError::EmptyBatch);
        }
        let state_dim = parts[0].path_init.cols();
        let n_paths: usize = parts.iter().map(|p| p.n_paths).sum();
        let num_links: usize = parts.iter().map(|p| p.num_links).sum();
        let num_nodes: usize = parts.iter().map(|p| p.num_nodes).sum();
        let num_queues: usize = parts.iter().map(|p| p.num_queues).sum();

        // Entity offsets per part.
        let mut path_off = Vec::with_capacity(parts.len());
        let mut link_off = Vec::with_capacity(parts.len());
        let mut node_off = Vec::with_capacity(parts.len());
        let mut queue_off = Vec::with_capacity(parts.len());
        let (mut po, mut lo, mut no, mut qo) = (0usize, 0usize, 0usize, 0usize);
        for p in parts {
            if p.path_init.cols() != state_dim {
                return Err(MegabatchError::StateDimMismatch(
                    state_dim,
                    p.path_init.cols(),
                ));
            }
            path_off.push(po);
            link_off.push(lo);
            node_off.push(no);
            queue_off.push(qo);
            po += p.n_paths;
            lo += p.num_links;
            no += p.num_nodes;
            qo += p.num_queues;
        }

        // Steps padded to the longest sequence in the pack; ids shifted into
        // the union id space. Padded rows point at the part's first entity
        // (any valid id works — the zero mask makes the position inert).
        // The entity kind at each position is whatever the parts carrying
        // the position agree on — legacy parts alternate node/link, QoS
        // parts cycle node/queue/link — and a disagreement (mixed legacy and
        // QoS parts) is unbatchable: the merged step would need two kinds.
        let merge_steps =
            |select: fn(&SamplePlan) -> &Vec<StepPlan>| -> Result<Vec<StepPlan>, MegabatchError> {
                let max_len = parts.iter().map(|p| select(p).len()).max().unwrap_or(0);
                let mut merged = Vec::with_capacity(max_len);
                for pos in 0..max_len {
                    let mut carried = parts.iter().filter_map(|p| select(p).get(pos));
                    let kind = carried.next().expect("pos < max_len").kind;
                    if carried.any(|s| s.kind != kind) {
                        return Err(MegabatchError::ScheduleMismatch(pos));
                    }
                    let mut ids = vec![0usize; n_paths];
                    let mut mask = Matrix::zeros(n_paths, 1);
                    let mut active = 0usize;
                    for (b, p) in parts.iter().enumerate() {
                        let offset = match kind {
                            EntityKind::Link => link_off[b],
                            EntityKind::Node => node_off[b],
                            EntityKind::Queue => queue_off[b],
                        };
                        let rows = path_off[b]..path_off[b] + p.n_paths;
                        match select(p).get(pos) {
                            Some(step) => {
                                for (row, &id) in rows.zip(&step.ids) {
                                    ids[row] = offset + id;
                                    let m = step.mask.get(row - path_off[b], 0);
                                    mask.set(row, 0, m);
                                }
                                active += step.active;
                            }
                            None => {
                                for row in rows {
                                    ids[row] = offset;
                                }
                            }
                        }
                    }
                    merged.push(StepPlan {
                        kind,
                        ids,
                        mask,
                        active,
                    });
                }
                Ok(merged)
            };
        let extended_steps = merge_steps(|p| &p.extended_steps)?;
        let original_steps = merge_steps(|p| &p.original_steps)?;

        // Pairs, incidences and row ranges live in the union id space.
        let mut node_incidence_paths = Vec::new();
        let mut node_incidence_nodes = Vec::new();
        let mut pairs = Vec::with_capacity(n_paths);
        let mut path_ranges = Vec::with_capacity(parts.len());
        for (b, p) in parts.iter().enumerate() {
            for (&pi, &ni) in p.node_incidence_paths.iter().zip(&p.node_incidence_nodes) {
                node_incidence_paths.push(path_off[b] + pi);
                node_incidence_nodes.push(node_off[b] + ni);
            }
            for &(s, d) in &p.pairs {
                pairs.push((node_off[b] + s, node_off[b] + d));
            }
            path_ranges.push((path_off[b], path_off[b] + p.n_paths));
        }

        let mut extended_csr = CompiledSteps::compile(&extended_steps);
        let mut original_csr = CompiledSteps::compile(&original_steps);
        // Shard layout: per-sample row bounds in every entity space, plus the
        // per-step splits of the CSR active lists. A single-sample
        // "megabatch" runs the exact legacy kernels bit for bit — fully
        // unsharded by default, or (with `intra_shards > 1`) with
        // single-shard message passing plus balanced dense row blocks, which
        // is the same arithmetic in the same order.
        let shards = if parts.len() > 1 {
            let close = |offs: &[usize], total: usize| {
                let mut bounds = offs.to_vec();
                bounds.push(total);
                bounds
            };
            Some(PlanShards {
                path_bounds: close(&path_off, n_paths),
                link_bounds: close(&link_off, num_links),
                node_bounds: close(&node_off, num_nodes),
                queue_bounds: close(&queue_off, num_queues),
                // Dense ops (readout MLP, link/node/queue GRU updates) have
                // no block-diagonal constraint, so their shard partition is
                // balanced rather than per-sample — ragged batches then
                // spread the dense rows evenly over the gang.
                dense_path_bounds: balanced_row_bounds(n_paths, parts.len()),
                dense_link_bounds: balanced_row_bounds(num_links, parts.len()),
                dense_node_bounds: balanced_row_bounds(num_nodes, parts.len()),
                dense_queue_bounds: balanced_row_bounds(num_queues, parts.len()),
                shared: OnceLock::new(),
            })
        } else if intra_shards > 1 {
            // Intra-sample sharding for giant single-sample plans: the
            // message-passing sweep stays one shard — its scatter-adds into
            // shared entity rows cannot be split without changing float
            // associativity — while the dense per-row bulk fans out.
            Some(PlanShards {
                path_bounds: vec![0, n_paths],
                link_bounds: vec![0, num_links],
                node_bounds: vec![0, num_nodes],
                queue_bounds: vec![0, num_queues],
                dense_path_bounds: balanced_row_bounds(n_paths, intra_shards),
                dense_link_bounds: balanced_row_bounds(num_links, intra_shards),
                dense_node_bounds: balanced_row_bounds(num_nodes, intra_shards),
                dense_queue_bounds: balanced_row_bounds(num_queues, intra_shards),
                shared: OnceLock::new(),
            })
        } else {
            None
        };
        if let Some(sh) = &shards {
            extended_csr.compute_shard_bounds(&sh.path_bounds);
            original_csr.compute_shard_bounds(&sh.path_bounds);
        }
        let part_fps = parts.iter().map(|p| p.structure_fingerprint()).collect();
        Ok(Self {
            state_dim,
            n_paths,
            num_links,
            num_nodes,
            num_queues,
            path_off,
            link_off,
            node_off,
            queue_off,
            part_fps,
            pairs,
            extended_steps,
            original_steps,
            extended_csr,
            original_csr,
            node_incidence_paths,
            node_incidence_nodes,
            shards,
            path_ranges,
        })
    }

    /// The ordered per-part structure fingerprints — the cache key.
    pub fn key(&self) -> &[u64] {
        &self.part_fps
    }
}

// ---------------------------------------------------------------------------
// Features
// ---------------------------------------------------------------------------

/// The per-batch half of a composed megabatch: stacked feature rows,
/// targets, reliability and loss weights. Everything here is rewritten by
/// [`ComposedMegabatch::refill_features`]; nothing here influences the
/// compiled structure.
#[derive(Debug)]
pub struct MegabatchFeatures {
    /// Stacked initial path states.
    pub path_init: Matrix,
    /// Stacked initial link states.
    pub link_init: Matrix,
    /// Stacked initial node states.
    pub node_init: Matrix,
    /// Stacked initial queue states (`0 x state_dim` for legacy packs).
    pub queue_init: Matrix,
    /// Stacked normalized targets (`n_paths x 1`).
    pub targets_norm: Matrix,
    /// Stacked raw targets.
    pub targets_raw: Vec<f64>,
    /// Reliable rows in the union row space.
    pub reliable_idx: Vec<usize>,
    /// Per reliable row: `1 / r_s` of its sample (mean-of-means weights).
    pub sample_mean_weights: Vec<f32>,
    /// Samples contributing at least one reliable row.
    pub reliable_samples: usize,
}

/// Mutable slots the feature writer fills — one definition shared by fresh
/// extraction and in-place refill, so the two cannot drift apart (this is
/// what makes cached-composition output bitwise identical to a fresh build).
struct FeatureSlots<'a> {
    path_init: &'a mut Matrix,
    link_init: &'a mut Matrix,
    node_init: &'a mut Matrix,
    queue_init: &'a mut Matrix,
    targets_norm: &'a mut Matrix,
    targets_raw: &'a mut Vec<f64>,
    reliable_idx: &'a mut Vec<usize>,
    sample_mean_weights: &'a mut Vec<f32>,
}

/// Write every feature field from `parts`, fully overwriting the matrices
/// (every row belongs to exactly one part, so no stale value survives) and
/// rebuilding the per-row vectors. Returns the reliable-sample count.
fn write_features(
    parts: &[&SamplePlan],
    path_off: &[usize],
    link_off: &[usize],
    node_off: &[usize],
    queue_off: &[usize],
    slots: FeatureSlots<'_>,
) -> usize {
    for (b, p) in parts.iter().enumerate() {
        copy_rows(slots.path_init, path_off[b], &p.path_init);
        copy_rows(slots.link_init, link_off[b], &p.link_init);
        copy_rows(slots.node_init, node_off[b], &p.node_init);
        copy_rows(slots.queue_init, queue_off[b], &p.queue_init);
    }
    slots.targets_raw.clear();
    slots.reliable_idx.clear();
    slots.sample_mean_weights.clear();
    let mut reliable_samples = 0usize;
    for (b, p) in parts.iter().enumerate() {
        for row in 0..p.n_paths {
            slots
                .targets_norm
                .set(path_off[b] + row, 0, p.targets_norm.get(row, 0));
        }
        slots.targets_raw.extend_from_slice(&p.targets_raw);
        let r_s = p.reliable_idx.len();
        if r_s > 0 {
            reliable_samples += 1;
        }
        for &i in &p.reliable_idx {
            slots.reliable_idx.push(path_off[b] + i);
            slots.sample_mean_weights.push(1.0 / r_s as f32);
        }
    }
    reliable_samples
}

impl MegabatchFeatures {
    /// Fresh feature extraction for a composed structure.
    pub fn extract(structure: &MegabatchStructure, parts: &[&SamplePlan]) -> Self {
        let mut features = Self {
            path_init: Matrix::zeros(structure.n_paths, structure.state_dim),
            link_init: Matrix::zeros(structure.num_links, structure.state_dim),
            node_init: Matrix::zeros(structure.num_nodes, structure.state_dim),
            queue_init: Matrix::zeros(structure.num_queues, structure.state_dim),
            targets_norm: Matrix::zeros(structure.n_paths, 1),
            targets_raw: Vec::with_capacity(structure.n_paths),
            reliable_idx: Vec::new(),
            sample_mean_weights: Vec::new(),
            reliable_samples: 0,
        };
        features.reliable_samples = write_features(
            parts,
            &structure.path_off,
            &structure.link_off,
            &structure.node_off,
            &structure.queue_off,
            FeatureSlots {
                path_init: &mut features.path_init,
                link_init: &mut features.link_init,
                node_init: &mut features.node_init,
                queue_init: &mut features.queue_init,
                targets_norm: &mut features.targets_norm,
                targets_raw: &mut features.targets_raw,
                reliable_idx: &mut features.reliable_idx,
                sample_mean_weights: &mut features.sample_mean_weights,
            },
        );
        features
    }
}

// ---------------------------------------------------------------------------
// Assembly + refill
// ---------------------------------------------------------------------------

/// A structure + features pair assembled into the [`MegabatchPlan`] the
/// fused forward/backward consumes, retaining the layout metadata needed to
/// rewrite the feature fields in place for the next same-shaped batch.
#[derive(Debug)]
pub struct ComposedMegabatch {
    /// Ordered per-part structure fingerprints (the cache key).
    part_fps: Vec<u64>,
    /// Per-part row offsets, kept for refill.
    path_off: Vec<usize>,
    link_off: Vec<usize>,
    node_off: Vec<usize>,
    queue_off: Vec<usize>,
    /// Per-part `(n_paths, num_links, num_nodes, num_queues)` — the cheap
    /// release-mode sanity check refill runs before trusting a fingerprint
    /// match.
    part_dims: Vec<(usize, usize, usize, usize)>,
    /// Entity state width.
    state_dim: usize,
    /// The assembled plan. Structural fields are immutable after assembly;
    /// feature fields are rewritten by [`ComposedMegabatch::refill_features`].
    mb: MegabatchPlan,
}

impl ComposedMegabatch {
    /// Compose structure, extract features and assemble — exactly what a
    /// fresh [`build_megabatch`](crate::entities::build_megabatch) does
    /// (that function is implemented as this call). Single-sample
    /// compositions honor the ambient [`INTRA_SHARDS_ENV`] count.
    pub fn compose(parts: &[&SamplePlan]) -> Result<Self, MegabatchError> {
        Self::compose_with(parts, env_intra_shards())
    }

    /// [`ComposedMegabatch::compose`] with an explicit intra-sample dense
    /// shard count (see [`MegabatchStructure::compose_with`]).
    pub fn compose_with(
        parts: &[&SamplePlan],
        intra_shards: usize,
    ) -> Result<Self, MegabatchError> {
        let structure = MegabatchStructure::compose_with(parts, intra_shards)?;
        let features = MegabatchFeatures::extract(&structure, parts);
        Ok(Self::assemble(structure, features, parts))
    }

    /// Move a structure and a matching feature set into the runnable plan.
    fn assemble(
        structure: MegabatchStructure,
        features: MegabatchFeatures,
        parts: &[&SamplePlan],
    ) -> Self {
        let part_dims = parts
            .iter()
            .map(|p| (p.n_paths, p.num_links, p.num_nodes, p.num_queues))
            .collect();
        Self {
            part_fps: structure.part_fps,
            path_off: structure.path_off,
            link_off: structure.link_off,
            node_off: structure.node_off,
            queue_off: structure.queue_off,
            part_dims,
            state_dim: structure.state_dim,
            mb: MegabatchPlan {
                plan: SamplePlan {
                    n_paths: structure.n_paths,
                    num_links: structure.num_links,
                    num_nodes: structure.num_nodes,
                    num_queues: structure.num_queues,
                    pairs: structure.pairs,
                    path_init: features.path_init,
                    link_init: features.link_init,
                    node_init: features.node_init,
                    queue_init: features.queue_init,
                    extended_steps: structure.extended_steps,
                    original_steps: structure.original_steps,
                    extended_csr: structure.extended_csr,
                    original_csr: structure.original_csr,
                    node_incidence_paths: structure.node_incidence_paths,
                    node_incidence_nodes: structure.node_incidence_nodes,
                    targets_norm: features.targets_norm,
                    targets_raw: features.targets_raw,
                    reliable_idx: features.reliable_idx,
                    shards: structure.shards,
                    structure_fp: OnceLock::new(),
                    reliable_shared: OnceLock::new(),
                },
                path_ranges: structure.path_ranges,
                sample_mean_weights: features.sample_mean_weights,
                reliable_samples: features.reliable_samples,
            },
        }
    }

    /// Rewrite the feature fields in place for a new batch with the **same
    /// ordered structure** (fingerprints are checked; a mismatch is a caller
    /// bug and panics). The rewritten plan is bitwise identical to a fresh
    /// `build_megabatch` over `parts`: the writer is the same function fresh
    /// extraction runs, the structure was compiled by the same code, and
    /// matrices are fully overwritten row by row.
    ///
    /// # Example
    ///
    /// A feature-only change (here: scaled link capacities) keeps the
    /// structure fingerprint, so a cached composition refills in place and
    /// reproduces a fresh build bit for bit:
    ///
    /// ```
    /// use rn_dataset::{generate, GeneratorConfig, Normalizer};
    /// use rn_netsim::SimConfig;
    /// use routenet::compose::ComposedMegabatch;
    /// use routenet::entities::{build_megabatch, build_plan, PlanConfig, TargetKind};
    /// use routenet::FeatureScales;
    ///
    /// let gen = GeneratorConfig {
    ///     sim: SimConfig { duration_s: 30.0, warmup_s: 5.0, ..SimConfig::default() },
    ///     ..GeneratorConfig::default()
    /// };
    /// let ds = generate(&rn_netgraph::topologies::toy5(), &gen, 9, 2);
    /// let (scales, normalizer) = (FeatureScales::unit(), Normalizer::identity());
    /// let cfg = PlanConfig {
    ///     scales: &scales,
    ///     normalizer: &normalizer,
    ///     state_dim: 8,
    ///     min_packets: 1,
    ///     target: TargetKind::Delay,
    /// };
    /// let plans_a: Vec<_> = ds.samples.iter().map(|s| build_plan(s, &cfg)).collect();
    /// // Same topology/routing/queues, different features: structure match.
    /// let perturbed: Vec<_> = ds
    ///     .samples
    ///     .iter()
    ///     .map(|s| {
    ///         let mut s = s.clone();
    ///         for c in &mut s.link_capacities {
    ///             *c *= 1.25;
    ///         }
    ///         s
    ///     })
    ///     .collect();
    /// let plans_b: Vec<_> = perturbed.iter().map(|s| build_plan(s, &cfg)).collect();
    /// let parts_a: Vec<_> = plans_a.iter().collect();
    /// let parts_b: Vec<_> = plans_b.iter().collect();
    ///
    /// let mut composed = ComposedMegabatch::compose(&parts_a).unwrap();
    /// composed.refill_features(&parts_b);
    /// let fresh = build_megabatch(&parts_b);
    /// // Bitwise identical to building from scratch (0.0 tolerance).
    /// assert!(composed.plan().link_init.approx_eq(&fresh.plan.link_init, 0.0));
    /// assert!(composed.plan().targets_norm.approx_eq(&fresh.plan.targets_norm, 0.0));
    /// ```
    pub fn refill_features(&mut self, parts: &[&SamplePlan]) {
        assert_eq!(
            parts.len(),
            self.part_fps.len(),
            "refill_features: part count changed"
        );
        for (b, p) in parts.iter().enumerate() {
            assert_eq!(
                (p.n_paths, p.num_links, p.num_nodes, p.num_queues),
                self.part_dims[b],
                "refill_features: part {b} entity counts diverge from the cached structure"
            );
            assert_eq!(
                p.path_init.cols(),
                self.state_dim,
                "refill_features: part {b} state width diverges"
            );
            assert_eq!(
                p.structure_fingerprint(),
                self.part_fps[b],
                "refill_features: part {b} structure fingerprint diverges"
            );
        }
        let mb = &mut self.mb;
        // `reliable_idx` is about to be rewritten in place under any
        // previously built zero-copy mirror; drop the stale cell.
        mb.plan.reliable_shared = OnceLock::new();
        mb.reliable_samples = write_features(
            parts,
            &self.path_off,
            &self.link_off,
            &self.node_off,
            &self.queue_off,
            FeatureSlots {
                path_init: &mut mb.plan.path_init,
                link_init: &mut mb.plan.link_init,
                node_init: &mut mb.plan.node_init,
                queue_init: &mut mb.plan.queue_init,
                targets_norm: &mut mb.plan.targets_norm,
                targets_raw: &mut mb.plan.targets_raw,
                reliable_idx: &mut mb.plan.reliable_idx,
                sample_mean_weights: &mut mb.sample_mean_weights,
            },
        );
    }

    /// The assembled megabatch, ready for the fused forward/backward.
    pub fn megabatch(&self) -> &MegabatchPlan {
        &self.mb
    }

    /// The fused plan (shorthand for `megabatch().plan`).
    pub fn plan(&self) -> &SamplePlan {
        &self.mb.plan
    }

    /// The ordered per-part structure fingerprints (the cache key).
    pub fn key(&self) -> &[u64] {
        &self.part_fps
    }

    /// Number of samples packed into this composition.
    pub fn parts(&self) -> usize {
        self.part_fps.len()
    }

    /// Unwrap into the plain [`MegabatchPlan`] (drops the refill metadata).
    pub fn into_plan(self) -> MegabatchPlan {
        self.mb
    }
}

// ---------------------------------------------------------------------------
// Composition cache
// ---------------------------------------------------------------------------

/// Cap on distinct shapes tracked for the batch-shape histogram; beyond it
/// new shapes fold into an overflow bucket so a pathological workload cannot
/// grow the stats map without bound.
const MAX_TRACKED_SHAPES: usize = 128;

/// One batch-shape histogram row: how many batches were requested with the
/// shape whose composition-key hash is `shape`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ShapeCount {
    /// FNV hash of the ordered structure-fingerprint tuple (0 = the
    /// overflow bucket for shapes beyond the tracking cap).
    pub shape: u64,
    /// Batches requested with this shape.
    pub batches: u64,
}

/// One cache slot: the composed megabatch plus its LRU stamp.
struct Entry {
    composed: ComposedMegabatch,
    last_used: u64,
}

struct CacheInner {
    map: HashMap<Vec<u64>, Entry>,
    clock: u64,
    /// Batch-shape histogram: key hash → times requested (hit or miss).
    shape_uses: HashMap<u64, u64>,
}

/// Thread-safe LRU cache of [`ComposedMegabatch`]es keyed by the ordered
/// tuple of per-sample structure fingerprints.
///
/// Entries are **checked out** — removed — on a hit, refilled and used by
/// exactly one worker, then published back. Two workers racing on the same
/// shape simply compose twice and the later publish wins; correctness never
/// depends on the cache, only steady-state cost does. Keys are exact
/// (`Vec<u64>` equality), so a cache hit can only pair plans whose
/// *individual* structure fingerprints collide — and refill re-checks entity
/// counts besides.
pub struct CompositionCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CompositionCache {
    /// Cache holding at most `capacity` compositions (at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                clock: 0,
                shape_uses: HashMap::new(),
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The cache key for an ordered batch of plans.
    pub fn key_of(parts: &[&SamplePlan]) -> Vec<u64> {
        parts.iter().map(|p| p.structure_fingerprint()).collect()
    }

    /// Hash a composition key into the single `u64` the shape histogram
    /// reports (FNV over the ordered fingerprints).
    pub fn shape_hash(key: &[u64]) -> u64 {
        let mut fp = Fingerprint::new();
        fp.usize(key.len());
        for &k in key {
            fp.u64(k);
        }
        fp.finish()
    }

    /// Take the composition for `key` out of the cache (exclusive use);
    /// `None` on a miss. Either way the request is counted in the hit/miss
    /// totals and the shape histogram.
    pub fn checkout(&self, key: &[u64]) -> Option<ComposedMegabatch> {
        let mut inner = self.inner.lock().expect("composition cache poisoned");
        let shape = Self::shape_hash(key);
        let tracked = inner.shape_uses.len();
        let slot = if inner.shape_uses.contains_key(&shape) || tracked < MAX_TRACKED_SHAPES {
            shape
        } else {
            0 // overflow bucket
        };
        *inner.shape_uses.entry(slot).or_insert(0) += 1;
        match inner.map.remove(key) {
            Some(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.composed)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Put a composition (back) into the cache under its own key, evicting
    /// the least-recently-used entry when full.
    pub fn publish(&self, composed: ComposedMegabatch) {
        let key = composed.key().to_vec();
        let mut inner = self.inner.lock().expect("composition cache poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            // O(n) LRU scan: capacities are small (tens of shapes) and
            // publish runs once per served batch, off the kernel hot path.
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.map.insert(
            key,
            Entry {
                composed,
                last_used: clock,
            },
        );
    }

    /// Compositions currently resident.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("composition cache poisoned")
            .map
            .len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every resident composition (counters keep their totals).
    pub fn clear(&self) {
        self.inner
            .lock()
            .expect("composition cache poisoned")
            .map
            .clear();
    }

    /// Drop every resident composition whose entity state width differs
    /// from `state_dim` — the model hot-swap hygiene hook. Same-width
    /// compositions survive a swap usefully (structure is
    /// preprocessing-independent and features are refilled per batch), but
    /// a resized model orphans old-width entries: their keys embed the old
    /// width's fingerprints and can never be checked out again, so without
    /// this purge they would squat in the cache until capacity pressure
    /// happens to evict them.
    pub fn retain_width(&self, state_dim: usize) {
        self.inner
            .lock()
            .expect("composition cache poisoned")
            .map
            .retain(|_, e| e.composed.state_dim == state_dim);
    }

    /// Checkout hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Checkout misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Maximum resident compositions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The batch-shape histogram, most-requested shapes first.
    pub fn shape_counts(&self) -> Vec<ShapeCount> {
        let inner = self.inner.lock().expect("composition cache poisoned");
        let mut counts: Vec<ShapeCount> = inner
            .shape_uses
            .iter()
            .map(|(&shape, &batches)| ShapeCount { shape, batches })
            .collect();
        counts.sort_by(|a, b| b.batches.cmp(&a.batches).then(a.shape.cmp(&b.shape)));
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::{build_megabatch, build_plan, PlanConfig, TargetKind};
    use crate::features::FeatureScales;
    use rn_dataset::{generate, GeneratorConfig, Normalizer, Sample};
    use rn_netgraph::topologies;
    use rn_netsim::SimConfig;

    fn toy_samples(n: usize, seed: u64) -> Vec<Sample> {
        let config = GeneratorConfig {
            sim: SimConfig {
                duration_s: 60.0,
                warmup_s: 10.0,
                ..SimConfig::default()
            },
            ..GeneratorConfig::default()
        };
        generate(&topologies::toy5(), &config, seed, n).samples
    }

    fn prep() -> (FeatureScales, Normalizer) {
        (FeatureScales::unit(), Normalizer::fit(&[1e-3, 2e-3], true))
    }

    fn config<'a>(prep: &'a (FeatureScales, Normalizer)) -> PlanConfig<'a> {
        PlanConfig {
            scales: &prep.0,
            normalizer: &prep.1,
            state_dim: 8,
            min_packets: 5,
            target: TargetKind::Delay,
        }
    }

    /// Feature-only mutation: same topology, routing and queue layout, so
    /// the structure fingerprint must not move.
    fn perturb_features(sample: &Sample) -> Sample {
        let mut out = sample.clone();
        for c in &mut out.link_capacities {
            *c *= 1.25;
        }
        for t in &mut out.targets {
            t.mean_delay_s *= 1.5;
        }
        out
    }

    fn assert_plans_bitwise_equal(a: &MegabatchPlan, b: &MegabatchPlan) {
        assert!(a.plan.path_init.approx_eq(&b.plan.path_init, 0.0));
        assert!(a.plan.link_init.approx_eq(&b.plan.link_init, 0.0));
        assert!(a.plan.node_init.approx_eq(&b.plan.node_init, 0.0));
        assert!(a.plan.targets_norm.approx_eq(&b.plan.targets_norm, 0.0));
        assert_eq!(
            a.plan
                .targets_raw
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            b.plan
                .targets_raw
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
        assert_eq!(a.plan.reliable_idx, b.plan.reliable_idx);
        assert_eq!(
            a.sample_mean_weights
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            b.sample_mean_weights
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
        assert_eq!(a.reliable_samples, b.reliable_samples);
        assert_eq!(a.path_ranges, b.path_ranges);
        for (x, y) in [
            (&a.plan.extended_csr, &b.plan.extended_csr),
            (&a.plan.original_csr, &b.plan.original_csr),
        ] {
            assert_eq!(x.kinds, y.kinds);
            assert_eq!(x.offsets, y.offsets);
            assert_eq!(x.ids_flat, y.ids_flat);
            assert_eq!(x.active_offsets, y.active_offsets);
            assert_eq!(x.active_rows_flat, y.active_rows_flat);
            assert_eq!(x.active_ids_flat, y.active_ids_flat);
            assert_eq!(x.shard_bounds, y.shard_bounds);
            assert_eq!(x.num_shards, y.num_shards);
        }
        assert_eq!(a.plan.shards, b.plan.shards);
        assert_eq!(a.plan.pairs, b.plan.pairs);
        assert_eq!(a.plan.node_incidence_paths, b.plan.node_incidence_paths);
        assert_eq!(a.plan.node_incidence_nodes, b.plan.node_incidence_nodes);
    }

    #[test]
    fn compose_equals_fresh_build_megabatch() {
        let samples = toy_samples(3, 91);
        let p = prep();
        let cfg = config(&p);
        let plans: Vec<_> = samples.iter().map(|s| build_plan(s, &cfg)).collect();
        let parts: Vec<&SamplePlan> = plans.iter().collect();
        let fresh = build_megabatch(&parts);
        let composed = ComposedMegabatch::compose(&parts).unwrap();
        assert_plans_bitwise_equal(&fresh, composed.megabatch());
        assert_eq!(composed.parts(), 3);
        assert_eq!(composed.key(), CompositionCache::key_of(&parts).as_slice());
    }

    #[test]
    fn refill_matches_fresh_build_for_new_features() {
        let samples = toy_samples(2, 92);
        let p = prep();
        let cfg = config(&p);
        let plans_a: Vec<_> = samples.iter().map(|s| build_plan(s, &cfg)).collect();
        let perturbed: Vec<Sample> = samples.iter().map(perturb_features).collect();
        let plans_b: Vec<_> = perturbed.iter().map(|s| build_plan(s, &cfg)).collect();
        let parts_a: Vec<&SamplePlan> = plans_a.iter().collect();
        let parts_b: Vec<&SamplePlan> = plans_b.iter().collect();
        assert_eq!(
            CompositionCache::key_of(&parts_a),
            CompositionCache::key_of(&parts_b),
            "feature-only mutation must keep the structure key"
        );

        let mut composed = ComposedMegabatch::compose(&parts_a).unwrap();
        composed.refill_features(&parts_b);
        let fresh_b = build_megabatch(&parts_b);
        assert_plans_bitwise_equal(&fresh_b, composed.megabatch());
        // And refilling back reproduces the original batch too.
        composed.refill_features(&parts_a);
        assert_plans_bitwise_equal(&build_megabatch(&parts_a), composed.megabatch());
    }

    #[test]
    #[should_panic(expected = "entity counts diverge")]
    fn refill_rejects_structure_mismatch() {
        let samples = toy_samples(2, 93);
        let p = prep();
        let cfg = config(&p);
        let plans: Vec<_> = samples.iter().map(|s| build_plan(s, &cfg)).collect();
        let parts: Vec<&SamplePlan> = plans.iter().collect();
        let mut composed = ComposedMegabatch::compose(&parts).unwrap();
        // A part whose entity counts diverge from the cached structure.
        let mut bad_plan = plans[0].clone();
        bad_plan.num_nodes += 1;
        composed.refill_features(&[&bad_plan, &plans[1]]);
    }

    #[test]
    fn structure_fingerprint_tracks_structure_not_features() {
        let samples = toy_samples(2, 95);
        let p = prep();
        let cfg = config(&p);
        let plan = build_plan(&samples[0], &cfg);
        let same = build_plan(&samples[0], &cfg);
        assert_eq!(plan.structure_fingerprint(), same.structure_fingerprint());
        // Feature-only change: fingerprint unchanged.
        let perturbed = build_plan(&perturb_features(&samples[0]), &cfg);
        assert_eq!(
            plan.structure_fingerprint(),
            perturbed.structure_fingerprint()
        );
        // The full (content) fingerprint does move with the features...
        assert_ne!(plan.fingerprint(), perturbed.fingerprint());
        // ...and a state-width change moves the structure fingerprint.
        let mut wide_cfg = config(&p);
        wide_cfg.state_dim = 16;
        let wide = build_plan(&samples[0], &wide_cfg);
        assert_ne!(plan.structure_fingerprint(), wide.structure_fingerprint());
        // Clones share the memoized value.
        let cloned = plan.clone();
        assert_eq!(plan.structure_fingerprint(), cloned.structure_fingerprint());
    }

    #[test]
    fn cache_checkout_publish_counts_and_evicts() {
        let samples = toy_samples(2, 96);
        let p = prep();
        let cfg = config(&p);
        let plans: Vec<_> = samples.iter().map(|s| build_plan(s, &cfg)).collect();
        let parts: Vec<&SamplePlan> = plans.iter().collect();
        let cache = CompositionCache::new(2);
        let key = CompositionCache::key_of(&parts);

        assert!(cache.checkout(&key).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.publish(ComposedMegabatch::compose(&parts).unwrap());
        assert_eq!(cache.len(), 1);

        let composed = cache.checkout(&key).expect("resident composition");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 0, "checkout removes the entry");
        cache.publish(composed);
        assert_eq!(cache.len(), 1);

        // Distinct shapes key separately; LRU eviction kicks in at capacity.
        // (Same-topology toy5 samples share routing and therefore structure,
        // so a genuinely different shape needs a different state width.)
        let mut wide_cfg = config(&p);
        wide_cfg.state_dim = 16;
        let wide = build_plan(&samples[0], &wide_cfg);
        let single: Vec<&SamplePlan> = vec![&plans[0]];
        let single_wide: Vec<&SamplePlan> = vec![&wide];
        cache.publish(ComposedMegabatch::compose(&single).unwrap());
        cache.publish(ComposedMegabatch::compose(&single_wide).unwrap());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1, "capacity-2 cache evicts the LRU");

        // Shape histogram saw both requested shapes.
        let shapes = cache.shape_counts();
        assert!(!shapes.is_empty());
        assert_eq!(shapes.iter().map(|s| s.batches).sum::<u64>(), 2);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 1, "clear keeps counter totals");
    }

    #[test]
    fn retain_width_purges_only_other_widths() {
        let samples = toy_samples(1, 98);
        let p = prep();
        let cfg = config(&p);
        let mut wide_cfg = config(&p);
        wide_cfg.state_dim = 16;
        let narrow = build_plan(&samples[0], &cfg);
        let wide = build_plan(&samples[0], &wide_cfg);
        let cache = CompositionCache::new(4);
        cache.publish(ComposedMegabatch::compose(&[&narrow]).unwrap());
        cache.publish(ComposedMegabatch::compose(&[&wide]).unwrap());
        assert_eq!(cache.len(), 2);

        // The hot-swap hygiene hook: only the matching width survives.
        cache.retain_width(16);
        assert_eq!(cache.len(), 1);
        let wide_key = CompositionCache::key_of(&[&wide]);
        let narrow_key = CompositionCache::key_of(&[&narrow]);
        assert!(cache.checkout(&wide_key).is_some(), "survivor is keyable");
        assert!(cache.checkout(&narrow_key).is_none(), "stale width purged");
    }

    #[test]
    fn single_part_composition_stays_unsharded_by_default() {
        let samples = toy_samples(1, 97);
        let p = prep();
        let cfg = config(&p);
        let plan = build_plan(&samples[0], &cfg);
        // intra_shards == 1 (the unset-env default): fully legacy.
        let composed = ComposedMegabatch::compose_with(&[&plan], 1).unwrap();
        assert!(composed.plan().shards.is_none());
        assert_eq!(composed.plan().extended_csr.num_shards, 0);
    }

    #[test]
    fn single_part_intra_sharding_splits_dense_work_only() {
        let samples = toy_samples(1, 97);
        let p = prep();
        let cfg = config(&p);
        let plan = build_plan(&samples[0], &cfg);
        let composed = ComposedMegabatch::compose_with(&[&plan], 4).unwrap();
        let mb = composed.plan();
        let shards = mb.shards.as_ref().expect("intra-sharded plan");
        // Message passing: one shard spanning the whole sample — the exact
        // legacy schedule.
        assert_eq!(shards.path_bounds, vec![0, mb.n_paths]);
        assert_eq!(shards.link_bounds, vec![0, mb.num_links]);
        assert_eq!(shards.node_bounds, vec![0, mb.num_nodes]);
        assert_eq!(mb.extended_csr.num_shards, 1);
        assert_eq!(mb.original_csr.num_shards, 1);
        // Dense work: four balanced row blocks per entity space.
        for (bounds, total) in [
            (shards.dense_path().expect("dense path"), mb.n_paths),
            (shards.dense_link().expect("dense link"), mb.num_links),
            (shards.dense_node().expect("dense node"), mb.num_nodes),
        ] {
            assert_eq!(bounds.len(), 5);
            assert_eq!(bounds[0], 0);
            assert_eq!(*bounds.last().unwrap(), total);
            assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
        }
        // Structure aside, the sharded composition carries the exact same
        // features as the legacy one.
        let legacy = ComposedMegabatch::compose_with(&[&plan], 1).unwrap();
        assert!(composed
            .plan()
            .path_init
            .approx_eq(&legacy.plan().path_init, 0.0));
        assert!(composed
            .plan()
            .targets_norm
            .approx_eq(&legacy.plan().targets_norm, 0.0));
        assert_eq!(composed.plan().reliable_idx, legacy.plan().reliable_idx);
    }

    #[test]
    fn intra_shards_env_parsing_is_centralized() {
        // The one place RN_INTRA_SHARDS is interpreted; the parser is pure
        // so tests never mutate process-global env state.
        assert_eq!(INTRA_SHARDS_ENV, "RN_INTRA_SHARDS");
        assert_eq!(parse_intra_shards(None), 1, "unset -> disabled");
        assert_eq!(parse_intra_shards(Some("4")), 4);
        assert_eq!(parse_intra_shards(Some(" 8 ")), 8, "whitespace tolerated");
        assert_eq!(parse_intra_shards(Some("1")), 1, "1 means disabled");
        assert_eq!(parse_intra_shards(Some("0")), 1, "0 ignored");
        assert_eq!(parse_intra_shards(Some("lots")), 1, "garbage ignored");
        assert_eq!(parse_intra_shards(Some("")), 1);
        assert_eq!(parse_intra_shards(Some("-2")), 1);
        // The live lookup agrees with the parser on the ambient env.
        let ambient = std::env::var(INTRA_SHARDS_ENV).ok();
        assert_eq!(env_intra_shards(), parse_intra_shards(ambient.as_deref()));
    }
}
