//! Model hyper-parameters.

use serde::{Deserialize, Serialize};

/// How the node entity aggregates path information (extended model only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeUpdate {
    /// Aggregate the path-RNN hidden states *at the node's positions* in each
    /// path sequence — symmetric with RouteNet's link update. Default.
    PositionalMessages,
    /// Aggregate the *final* path states of all traversing paths — the
    /// paper's literal wording ("element-wise summation of all the path
    /// states associated to the node"). Compared against the default in
    /// ablation E5.
    FinalPathStateSum,
}

/// Hyper-parameters shared by both models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Dimensionality of every entity state (paths, links, nodes).
    pub state_dim: usize,
    /// Number of message-passing iterations `T`.
    pub mp_iterations: usize,
    /// Hidden width of the readout MLP (two hidden layers of this width).
    pub readout_hidden: usize,
    /// Node aggregation scheme (ignored by the original model).
    pub node_update: NodeUpdate,
    /// Seed for weight initialization.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            state_dim: 16,
            mp_iterations: 6,
            readout_hidden: 32,
            node_update: NodeUpdate::PositionalMessages,
            seed: 0,
        }
    }
}

impl ModelConfig {
    /// Validate invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.state_dim < 2 {
            return Err("state_dim must be at least 2 (features occupy leading columns)".into());
        }
        if self.mp_iterations == 0 {
            return Err("need at least one message-passing iteration".into());
        }
        if self.readout_hidden == 0 {
            return Err("readout hidden width must be positive".into());
        }
        Ok(())
    }

    /// The configuration of the paper-scale model (state 32, T = 8).
    pub fn paper_scale() -> Self {
        Self {
            state_dim: 32,
            mp_iterations: 8,
            readout_hidden: 64,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        ModelConfig::default().validate().unwrap();
        ModelConfig::paper_scale().validate().unwrap();
    }

    #[test]
    fn degenerate_configs_rejected() {
        let c = ModelConfig {
            state_dim: 1,
            ..ModelConfig::default()
        };
        assert!(c.validate().is_err());
        let c = ModelConfig {
            mp_iterations: 0,
            ..ModelConfig::default()
        };
        assert!(c.validate().is_err());
        let c = ModelConfig {
            readout_hidden: 0,
            ..ModelConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let c = ModelConfig {
            node_update: NodeUpdate::FinalPathStateSum,
            ..ModelConfig::default()
        };
        let back: ModelConfig = serde_json::from_str(&serde_json::to_string(&c).unwrap()).unwrap();
        assert_eq!(c, back);
    }
}
