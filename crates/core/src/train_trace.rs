//! Per-epoch stage breakdown of the training loop, emitted as a JSONL
//! stream.
//!
//! When tracing is on (`RN_TRACE=1`, see [`rn_trace::enabled`]) the
//! trainer times five stages of every epoch — [`STAGES`]: composition
//! claiming (inline compose + prefetch-lane wait), the fused forward, the
//! backward sweep, the optimizer step, and validation — and appends one
//! [`EpochRecord`] JSON line per epoch to the trace output file, plus one
//! final [`RunSummary`] line with cumulative stage totals and the
//! process-global backward op-kind attribution from
//! [`rn_autograd::trace`]. With tracing off nothing is timed, written, or
//! allocated.
//!
//! The output path is resolved in override order: the
//! `RN_TRACE_TRAIN_OUT` environment knob, then
//! [`TrainConfig::trace_out`](crate::trainer::TrainConfig::trace_out),
//! then `train_metrics.jsonl` in the working directory.
//!
//! Tracing never perturbs training: it only reads clocks and bumps
//! atomics, so models and gradients are bitwise identical with tracing on
//! or off (pinned by `tests/trace_equivalence.rs` at the workspace root).

use crate::trainer::TrainConfig;
use rn_trace::{StageRecorder, StageStats};
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::sync::Mutex;

/// Trainer stage names, recording-index order.
pub const STAGES: &[&str] = &["compose_wait", "forward", "backward", "optimizer", "eval"];
/// Claiming a batch's compositions: waiting on the prefetch lane plus any
/// inline (cold-start) compose. Near-zero from epoch 2 on — structure
/// reuse is total.
pub const COMPOSE_WAIT: usize = 0;
/// Fused forward pass + loss evaluation, one span per megabatch shard
/// (per sample on the legacy path).
pub const FORWARD: usize = 1;
/// Reverse sweep over the tape, one span per megabatch shard (per sample
/// on the legacy path).
pub const BACKWARD: usize = 2;
/// Gradient clipping + Adam step, one span per optimizer step.
pub const OPTIMIZER: usize = 3;
/// The whole validation pass of an epoch, one span per epoch.
pub const EVAL: usize = 4;

/// One stage's statistics inside an [`EpochRecord`] — the serializable
/// face of an [`rn_trace::StageStats`]. Percentiles follow the workspace's
/// inclusive nearest-rank / bucket-upper-bound convention; `total_ms` and
/// `mean_ms` are exact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageLine {
    /// Stage name (see [`STAGES`], or [`rn_autograd::trace::OP_KINDS`] in
    /// a summary's `op_kinds`).
    pub name: String,
    /// Spans recorded in the window.
    pub count: u64,
    /// Exact total time, milliseconds.
    pub total_ms: f64,
    /// Exact mean span duration, milliseconds.
    pub mean_ms: f64,
    /// Median span duration (ms, bucket upper bound).
    pub p50_ms: f64,
    /// 95th-percentile span duration (ms, bucket upper bound).
    pub p95_ms: f64,
    /// 99th-percentile span duration (ms, bucket upper bound).
    pub p99_ms: f64,
    /// Maximum span duration, milliseconds (exact).
    pub max_ms: f64,
}

impl From<StageStats> for StageLine {
    fn from(s: StageStats) -> Self {
        Self {
            name: s.name.to_string(),
            count: s.count,
            total_ms: s.total_ms,
            mean_ms: s.mean_ms,
            p50_ms: s.p50_ms,
            p95_ms: s.p95_ms,
            p99_ms: s.p99_ms,
            max_ms: s.max_ms,
        }
    }
}

/// One per-epoch line of the `train_metrics.jsonl` stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Mean training loss of the epoch (`None` when no labelled sample
    /// produced a finite loss — JSON has no NaN).
    pub train_loss: Option<f64>,
    /// Mean validation loss (`None` without a validation set or when not
    /// finite).
    pub val_loss: Option<f64>,
    /// Stage breakdown of this epoch, [`STAGES`] order.
    pub stages: Vec<StageLine>,
}

/// Cumulative totals for one stage across the whole run (percentiles are
/// per-epoch data — see the [`EpochRecord`] lines).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageTotal {
    /// Stage name ([`STAGES`] order).
    pub name: String,
    /// Spans recorded across all epochs.
    pub count: u64,
    /// Exact total time across all epochs, milliseconds.
    pub total_ms: f64,
}

/// The final line of the `train_metrics.jsonl` stream: run-level stage
/// totals plus backward op-kind attribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSummary {
    /// Always `true` — distinguishes this line from [`EpochRecord`]s when
    /// scanning the stream.
    pub summary: bool,
    /// Epochs the run actually executed (`TrainingHistory::stopped_at`).
    pub epochs: usize,
    /// Cumulative per-stage totals, [`STAGES`] order.
    pub stages: Vec<StageTotal>,
    /// Backward tape time by op kind ([`rn_autograd::trace::OP_KINDS`]
    /// order), accumulated since this run reset the process-global
    /// recorder. Percentiles here are per-op spans over the whole run.
    pub op_kinds: Vec<StageLine>,
}

/// Environment knob naming the trainer's trace output file (overrides
/// [`TrainConfig::trace_out`](crate::trainer::TrainConfig::trace_out)).
pub const TRACE_OUT_ENV: &str = "RN_TRACE_TRAIN_OUT";

/// Default trace output path when neither the env knob nor the config
/// field names one.
pub const DEFAULT_TRACE_OUT: &str = "train_metrics.jsonl";

struct Sink {
    writer: BufWriter<File>,
    totals: Vec<(u64, f64)>, // (count, total_ms) per stage
    epochs: usize,
}

/// Per-training-run trace state: a stage recorder the epoch loop records
/// into, and (when tracing is on) the JSONL sink it drains into once per
/// epoch. Constructed by the trainer; one instance per `train_*` call, so
/// concurrent trainings in one process don't interleave stage histograms
/// (the backward op-kind recorder is process-global and *would* mix).
pub struct TrainTrace {
    recorder: StageRecorder,
    sink: Option<Mutex<Sink>>,
}

impl TrainTrace {
    /// Set up tracing for one training run. With tracing off this is a
    /// recorder whose spans are inert; with it on, the output file is
    /// created (truncating a previous run's) and the process-global
    /// backward op-kind recorder is reset so the final summary attributes
    /// only this run. An unwritable path warns and disables emission
    /// rather than failing the run.
    pub fn new(config: &TrainConfig) -> Self {
        let recorder = StageRecorder::new(STAGES);
        let sink = rn_trace::enabled().then(|| {
            let path = std::env::var(TRACE_OUT_ENV)
                .ok()
                .filter(|p| !p.trim().is_empty())
                .or_else(|| config.trace_out.clone())
                .unwrap_or_else(|| DEFAULT_TRACE_OUT.to_string());
            rn_autograd::trace::reset_op_trace();
            match File::create(&path) {
                Ok(f) => Some(Mutex::new(Sink {
                    writer: BufWriter::new(f),
                    totals: vec![(0, 0.0); STAGES.len()],
                    epochs: 0,
                })),
                Err(e) => {
                    eprintln!("[trace] cannot create {path}: {e}; train trace disabled");
                    None
                }
            }
        });
        Self {
            recorder,
            sink: sink.flatten(),
        }
    }

    /// The stage recorder the epoch loop (and its worker closures) record
    /// into.
    pub fn recorder(&self) -> &StageRecorder {
        &self.recorder
    }

    /// Drain the epoch's stage histograms into one JSONL line and reset
    /// them for the next epoch. No-op while tracing is off.
    pub fn emit_epoch(&self, epoch: usize, train_loss: f64, val_loss: Option<f64>) {
        let Some(sink) = &self.sink else { return };
        let snap = self.recorder.snapshot();
        self.recorder.reset();
        let record = EpochRecord {
            epoch,
            train_loss: Some(train_loss).filter(|l| l.is_finite()),
            val_loss: val_loss.filter(|l| l.is_finite()),
            stages: snap.iter().cloned().map(StageLine::from).collect(),
        };
        let mut sink = sink
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        sink.epochs = sink.epochs.max(epoch + 1);
        for (acc, s) in sink.totals.iter_mut().zip(&snap) {
            acc.0 += s.count;
            acc.1 += s.total_ms;
        }
        if let Ok(line) = serde_json::to_string(&record) {
            let _ = writeln!(sink.writer, "{line}");
            let _ = sink.writer.flush(); // keep the tail readable mid-run
        }
    }

    /// Write the final [`RunSummary`] line. No-op while tracing is off.
    pub fn finish(&self) {
        let Some(sink) = &self.sink else { return };
        let mut sink = sink
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let summary = RunSummary {
            summary: true,
            epochs: sink.epochs,
            stages: STAGES
                .iter()
                .zip(&sink.totals)
                .map(|(name, &(count, total_ms))| StageTotal {
                    name: (*name).to_string(),
                    count,
                    total_ms,
                })
                .collect(),
            op_kinds: rn_autograd::trace::op_snapshot()
                .into_iter()
                .map(StageLine::from)
                .collect(),
        };
        if let Ok(line) = serde_json::to_string(&summary) {
            let _ = writeln!(sink.writer, "{line}");
            let _ = sink.writer.flush();
        }
    }
}
