//! The original and extended RouteNet models.

use crate::config::{ModelConfig, NodeUpdate};
use crate::entities::{
    build_megabatch, build_plan, CompiledSteps, EntityKind, MegabatchPlan, PlanConfig, PlanShards,
    SamplePlan, StepPlan, TargetKind,
};
use crate::features::FeatureScales;
use rn_autograd::{Graph, IndexInput, ShardSplit, Var};
use rn_dataset::{Dataset, Normalizer, Sample};
use rn_nn::{Activation, BoundGruCell, BoundMlp, GruCell, Layer, Mlp};
use rn_tensor::{Matrix, Prng};
use serde::{Deserialize, Serialize};

/// Common interface of both RouteNet variants: bindable layers plus a
/// plan-driven forward pass producing one normalized prediction per path.
pub trait PathPredictor: Layer + Clone + Send + Sync {
    /// Short identifier used in reports ("original" / "extended").
    fn name(&self) -> &'static str;

    /// The hyper-parameters.
    fn config(&self) -> &ModelConfig;

    /// The preprocessing state (feature scales + target normalizer).
    fn preprocessing(&self) -> (&FeatureScales, &Normalizer);

    /// Fit feature scales and the target normalizer on the training set.
    /// Must be called before training; stored with the model thereafter.
    fn fit_preprocessing(&mut self, train: &Dataset, min_packets: u64);

    /// Replace the target normalizer (used when training on a different
    /// target, e.g. jitter, after `fit_preprocessing` fitted delay).
    fn set_normalizer(&mut self, normalizer: Normalizer);

    /// Forward pass on the tape: returns the `n_paths x 1` normalized
    /// prediction node. Uses the fused hot-path ops; accepts single-sample
    /// plans and block-diagonal megabatch plans alike.
    fn forward(&self, g: &mut Graph, bound: &Self::Bound, plan: &SamplePlan) -> Var;

    /// The pre-fusion op-by-op forward pass. Numerically equivalent to
    /// [`PathPredictor::forward`] (the golden-equivalence tests pin this
    /// down); kept as the reference implementation and for the
    /// before/after benchmark.
    fn forward_unfused(&self, g: &mut Graph, bound: &Self::Bound, plan: &SamplePlan) -> Var;

    /// Build the message-passing plan for one sample using this model's
    /// preprocessing state.
    fn plan(&self, sample: &Sample) -> SamplePlan {
        let (scales, normalizer) = self.preprocessing();
        let cfg = PlanConfig::new(self.config(), scales, normalizer);
        build_plan(sample, &cfg)
    }

    /// Plan with an explicit target kind (delay or jitter).
    fn plan_for_target(&self, sample: &Sample, target: TargetKind) -> SamplePlan {
        let (scales, normalizer) = self.preprocessing();
        let mut cfg = PlanConfig::new(self.config(), scales, normalizer);
        cfg.target = target;
        build_plan(sample, &cfg)
    }

    /// Inference: predicted raw (denormalized) targets for every path.
    fn predict(&self, plan: &SamplePlan) -> Vec<f64> {
        let mut g = Graph::new();
        self.predict_with(&mut g, plan)
    }

    /// Inference on a caller-provided (pooled) tape. The tape is reset
    /// first, so a worker can reuse one tape across a stream of samples
    /// without reallocating. Runs in the tape's inference mode: GRU
    /// activations are recycled as soon as each step's value exists, so the
    /// working set stays cache-sized even for megabatches (values are
    /// bitwise identical to a training-mode forward).
    fn predict_with(&self, g: &mut Graph, plan: &SamplePlan) -> Vec<f64> {
        g.reset();
        g.set_inference_mode(true);
        let bound = self.bind(g);
        let pred = self.forward(g, &bound, plan);
        let (_, normalizer) = self.preprocessing();
        let out = g
            .value(pred)
            .as_slice()
            .iter()
            .map(|&v| normalizer.denormalize(v as f64))
            .collect();
        g.set_inference_mode(false);
        out
    }

    /// Batched inference: packs `plans` into one block-diagonal megabatch,
    /// runs a single forward pass (one parameter bind amortized over the
    /// batch, B-fold taller matmuls), and splits the predictions back per
    /// sample. Output `[i]` equals `self.predict(&plans[i])` to f32
    /// round-off.
    fn predict_batch(&self, plans: &[SamplePlan]) -> Vec<Vec<f64>> {
        let mut g = Graph::new();
        self.predict_batch_with(&mut g, plans)
    }

    /// Batched inference on a caller-provided (pooled) tape. Megabatch
    /// buffers are large enough that allocator reuse matters: a worker
    /// holding one tape across a stream of batches runs allocation-free.
    fn predict_batch_with(&self, g: &mut Graph, plans: &[SamplePlan]) -> Vec<Vec<f64>> {
        let parts: Vec<&SamplePlan> = plans.iter().collect();
        self.predict_batch_refs_with(g, &parts)
    }

    /// Batched inference over borrowed plans. The serving layer holds plans
    /// behind `Arc`s in a shared cache, so batches are assembled as slices
    /// of references rather than contiguous owned plans; results are
    /// identical to [`PathPredictor::predict_batch`] element for element.
    fn predict_batch_refs(&self, plans: &[&SamplePlan]) -> Vec<Vec<f64>> {
        let mut g = Graph::new();
        self.predict_batch_refs_with(&mut g, plans)
    }

    /// [`PathPredictor::predict_batch_refs`] on a caller-provided (pooled)
    /// tape — the steady-state serving hot path: one bind per batch, fused
    /// block-diagonal forward, allocation-free once the pool is warm.
    fn predict_batch_refs_with(&self, g: &mut Graph, plans: &[&SamplePlan]) -> Vec<Vec<f64>> {
        if plans.is_empty() {
            return Vec::new();
        }
        if plans.len() == 1 {
            return vec![self.predict_with(g, plans[0])];
        }
        let mb = build_megabatch(plans);
        self.predict_megabatch_with(g, &mb)
    }

    /// Batched inference over an **already composed** megabatch — the entry
    /// point the composition layer (`crate::compose`) feeds: a serving
    /// worker that checked a cached [`crate::compose::ComposedMegabatch`]
    /// out of the composition cache and refilled its features runs this
    /// instead of re-planning, with bitwise-identical results to
    /// [`PathPredictor::predict_batch_refs_with`] over the same parts.
    fn predict_megabatch_with(&self, g: &mut Graph, mb: &MegabatchPlan) -> Vec<Vec<f64>> {
        g.reset();
        g.set_inference_mode(true);
        let bound = self.bind(g);
        let pred = self.forward(g, &bound, &mb.plan);
        let (_, normalizer) = self.preprocessing();
        let values = g.value(pred).as_slice();
        let out = mb
            .path_ranges
            .iter()
            .map(|&(start, end)| {
                values[start..end]
                    .iter()
                    .map(|&v| normalizer.denormalize(v as f64))
                    .collect()
            })
            .collect();
        g.set_inference_mode(false);
        out
    }
}

// ---------------------------------------------------------------------------
// Shared message-passing machinery
// ---------------------------------------------------------------------------

/// Run one fused path-RNN sweep over precompiled CSR steps, accumulating
/// per-entity message sums.
///
/// Three tape nodes per sequence position (`gather_rows`, `gru_step_rows`,
/// `segment_acc_rows`) instead of the ~20 the unfused sweep records — this is the
/// training hot path. Returns `(final_path_state, link_message_sum,
/// node_message_sum, queue_message_sum)`; the node accumulator is `None`
/// when `collect_node_messages` is false (original model, or the
/// FinalPathStateSum ablation), and the queue accumulator is `None` unless
/// `queue_state` is supplied (QoS plans only — legacy sweeps record exactly
/// the same tape ops as before the queue entity existed).
#[allow(clippy::too_many_arguments)]
fn path_sweep(
    g: &mut Graph,
    gru_path: &BoundGruCell,
    csr: &CompiledSteps,
    mut path_state: Var,
    link_state: Var,
    node_state: Option<Var>,
    queue_state: Option<Var>,
    num_links: usize,
    num_nodes: usize,
    num_queues: usize,
    collect_node_messages: bool,
    shards: Option<&PlanShards>,
) -> (Var, Var, Option<Var>, Option<Var>) {
    let state_dim = g.value(link_state).cols();
    let mut link_acc = g.constant_with(num_links, state_dim, |_| {});
    let mut node_acc = if collect_node_messages {
        Some(g.constant_with(num_nodes, state_dim, |_| {}))
    } else {
        None
    };
    let mut queue_acc = if queue_state.is_some() {
        Some(g.constant_with(num_queues, state_dim, |_| {}))
    } else {
        None
    };
    let gru_vars = gru_path.vars();
    // Zero-copy mode: every step binds Arc-backed views of the compiled CSR
    // buffers instead of pooled copies, so per-step index traffic collapses
    // to refcount bumps. The copying branch is the legacy bitwise path.
    let zero_copy = g.zero_copy();
    for s in 0..csr.len() {
        if csr.active[s] == 0 {
            continue;
        }
        // Row compaction: gather states for the *active* rows only, advance
        // only those rows through the GRU, and scatter only their messages.
        // Padded rows never touch a kernel.
        let (rows, ids): (IndexInput<'_>, IndexInput<'_>) = if zero_copy {
            (
                csr.shared_active_rows(s).into(),
                csr.shared_active_ids(s).into(),
            )
        } else {
            (csr.active_rows(s).into(), csr.active_ids(s).into())
        };
        let states = match csr.kinds[s] {
            EntityKind::Link => link_state,
            EntityKind::Node => node_state.expect("node step requires node states"),
            EntityKind::Queue => queue_state.expect("queue step requires queue states"),
        };
        // Megabatch plans carry per-sample shard bounds: the fused ops then
        // record shard descriptors, so this step's work can fan out across
        // a worker pool (forward and backward) with bitwise-identical
        // results, and the backward reduces parameter gradients in the
        // canonical per-shard order.
        let split = shards.map(|sh| {
            if zero_copy {
                ShardSplit {
                    active: csr.shared_step_shard_bounds(s).into(),
                    dense: sh.shared_path_bounds().into(),
                    entity: sh.shared_entity_bounds(csr.kinds[s]).into(),
                }
            } else {
                ShardSplit::borrowed(
                    csr.step_shard_bounds(s),
                    &sh.path_bounds,
                    sh.entity_bounds(csr.kinds[s]),
                )
            }
        });
        let x = g.gather_rows_sharded(states, ids.clone(), split.clone());
        path_state = g.gru_step_rows_sharded(&gru_vars, path_state, x, rows.clone(), split.clone());
        // The post-step hidden state is the message to this position's entity.
        match csr.kinds[s] {
            EntityKind::Link => {
                link_acc = g.segment_acc_rows_sharded(link_acc, path_state, rows, ids, split)
            }
            EntityKind::Node => {
                if let Some(acc) = node_acc {
                    node_acc = Some(g.segment_acc_rows_sharded(acc, path_state, rows, ids, split));
                }
            }
            EntityKind::Queue => {
                if let Some(acc) = queue_acc {
                    queue_acc = Some(g.segment_acc_rows_sharded(acc, path_state, rows, ids, split));
                }
            }
        }
    }
    (path_state, link_acc, node_acc, queue_acc)
}

/// The pre-fusion sweep, op by op — the numerical reference for
/// [`path_sweep`] and the "before" side of the training-step benchmark.
#[allow(clippy::too_many_arguments)]
fn path_sweep_unfused(
    g: &mut Graph,
    gru_path: &BoundGruCell,
    steps: &[StepPlan],
    mut path_state: Var,
    link_state: Var,
    node_state: Option<Var>,
    queue_state: Option<Var>,
    num_links: usize,
    num_nodes: usize,
    num_queues: usize,
    collect_node_messages: bool,
) -> (Var, Var, Option<Var>, Option<Var>) {
    let mut link_acc = g.constant(Matrix::zeros(num_links, g.value(link_state).cols()));
    let mut node_acc = if collect_node_messages {
        Some(g.constant(Matrix::zeros(num_nodes, g.value(link_state).cols())))
    } else {
        None
    };
    let mut queue_acc = queue_state
        .is_some()
        .then(|| g.constant(Matrix::zeros(num_queues, g.value(link_state).cols())));
    for step in steps {
        if step.active == 0 {
            continue;
        }
        let states = match step.kind {
            EntityKind::Link => link_state,
            EntityKind::Node => node_state.expect("node step requires node states"),
            EntityKind::Queue => queue_state.expect("queue step requires queue states"),
        };
        let x_raw = g.gather_rows(states, &step.ids);
        let x = g.mask_rows(x_raw, &step.mask);
        path_state = gru_path.step_masked(g, path_state, x, &step.mask);
        // The post-step hidden state is the message to this position's entity.
        let msg = g.mask_rows(path_state, &step.mask);
        match step.kind {
            EntityKind::Link => {
                let contribution = g.segment_sum(msg, &step.ids, num_links);
                link_acc = g.add(link_acc, contribution);
            }
            EntityKind::Node => {
                if let Some(acc) = node_acc {
                    let contribution = g.segment_sum(msg, &step.ids, num_nodes);
                    node_acc = Some(g.add(acc, contribution));
                }
            }
            EntityKind::Queue => {
                if let Some(acc) = queue_acc {
                    let contribution = g.segment_sum(msg, &step.ids, num_queues);
                    queue_acc = Some(g.add(acc, contribution));
                }
            }
        }
    }
    (path_state, link_acc, node_acc, queue_acc)
}

// ---------------------------------------------------------------------------
// Original RouteNet
// ---------------------------------------------------------------------------

/// The original RouteNet: link and path entities only. Node features (queue
/// sizes) are invisible to this model — exactly the limitation the paper
/// demonstrates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OriginalRouteNet {
    config: ModelConfig,
    scales: FeatureScales,
    normalizer: Normalizer,
    gru_path: GruCell,
    gru_link: GruCell,
    readout: Mlp,
}

/// Tape bindings for [`OriginalRouteNet`].
#[derive(Debug, Clone)]
pub struct BoundOriginal {
    gru_path: BoundGruCell,
    gru_link: BoundGruCell,
    readout: BoundMlp,
}

impl OriginalRouteNet {
    /// Fresh model with Xavier-initialized weights.
    pub fn new(config: ModelConfig) -> Self {
        config.validate().expect("invalid model config");
        let d = config.state_dim;
        let h = config.readout_hidden;
        let mut rng = Prng::new(config.seed);
        Self {
            gru_path: GruCell::new(&mut rng, d, d),
            gru_link: GruCell::new(&mut rng, d, d),
            readout: Mlp::new(
                &mut rng,
                &[d, h, h, 1],
                Activation::Selu,
                Activation::Identity,
            ),
            config,
            scales: FeatureScales::unit(),
            normalizer: Normalizer::identity(),
        }
    }
}

impl Layer for OriginalRouteNet {
    type Bound = BoundOriginal;

    fn bind(&self, g: &mut Graph) -> BoundOriginal {
        BoundOriginal {
            gru_path: self.gru_path.bind(g),
            gru_link: self.gru_link.bind(g),
            readout: self.readout.bind(g),
        }
    }

    fn params(&self) -> Vec<&Matrix> {
        let mut p = self.gru_path.params();
        p.extend(self.gru_link.params());
        p.extend(self.readout.params());
        p
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        let mut p = self.gru_path.params_mut();
        p.extend(self.gru_link.params_mut());
        p.extend(self.readout.params_mut());
        p
    }

    fn bound_vars(bound: &BoundOriginal) -> Vec<Var> {
        let mut v = GruCell::bound_vars(&bound.gru_path);
        v.extend(GruCell::bound_vars(&bound.gru_link));
        v.extend(Mlp::bound_vars(&bound.readout));
        v
    }
}

impl PathPredictor for OriginalRouteNet {
    fn name(&self) -> &'static str {
        "original"
    }

    fn config(&self) -> &ModelConfig {
        &self.config
    }

    fn preprocessing(&self) -> (&FeatureScales, &Normalizer) {
        (&self.scales, &self.normalizer)
    }

    fn fit_preprocessing(&mut self, train: &Dataset, min_packets: u64) {
        self.scales = FeatureScales::fit(train);
        let delays = train.all_delays(min_packets);
        let positive: Vec<f64> = delays.into_iter().filter(|&d| d > 0.0).collect();
        assert!(
            !positive.is_empty(),
            "training set has no positive delay labels"
        );
        self.normalizer = Normalizer::fit(&positive, true);
    }

    fn set_normalizer(&mut self, normalizer: Normalizer) {
        self.normalizer = normalizer;
    }

    fn forward(&self, g: &mut Graph, bound: &BoundOriginal, plan: &SamplePlan) -> Var {
        // Pooled copies: the plan may be a cached composition shared behind
        // an Arc, so the tape takes its own (recycled) buffers; bits match
        // `constant(clone())` exactly.
        let mut path_state = g.constant_copy(&plan.path_init);
        let mut link_state = g.constant_copy(&plan.link_init);
        // Dense row partitions for the per-entity GRU update and the
        // readout: the work the per-sample shards leave sequential fans
        // across the same worker gang (None on single-sample plans, which
        // stay on the legacy bitwise path).
        let zero_copy = g.zero_copy();
        let dense_link: Option<IndexInput<'_>> = plan.shards.as_ref().and_then(|s| {
            if zero_copy {
                s.shared_dense_link().map(IndexInput::from)
            } else {
                s.dense_link().map(IndexInput::from)
            }
        });
        let dense_path: Option<IndexInput<'_>> = plan.shards.as_ref().and_then(|s| {
            if zero_copy {
                s.shared_dense_path().map(IndexInput::from)
            } else {
                s.dense_path().map(IndexInput::from)
            }
        });
        for _ in 0..self.config.mp_iterations {
            let (new_path, link_acc, _, _) = path_sweep(
                g,
                &bound.gru_path,
                &plan.original_csr,
                path_state,
                link_state,
                None,
                None,
                plan.num_links,
                plan.num_nodes,
                0,
                false,
                plan.shards.as_ref(),
            );
            path_state = new_path;
            link_state =
                bound
                    .gru_link
                    .step_fused_sharded(g, link_state, link_acc, dense_link.clone());
        }
        bound.readout.forward_sharded(g, path_state, dense_path)
    }

    fn forward_unfused(&self, g: &mut Graph, bound: &BoundOriginal, plan: &SamplePlan) -> Var {
        let mut path_state = g.constant(plan.path_init.clone());
        let mut link_state = g.constant(plan.link_init.clone());
        for _ in 0..self.config.mp_iterations {
            let (new_path, link_acc, _, _) = path_sweep_unfused(
                g,
                &bound.gru_path,
                &plan.original_steps,
                path_state,
                link_state,
                None,
                None,
                plan.num_links,
                plan.num_nodes,
                0,
                false,
            );
            path_state = new_path;
            link_state = bound.gru_link.step(g, link_state, link_acc);
        }
        bound.readout.forward(g, path_state)
    }
}

// ---------------------------------------------------------------------------
// Extended RouteNet
// ---------------------------------------------------------------------------

/// The extended RouteNet of the paper: adds the node entity (`RNN_N`) and
/// interleaves node states into the path sequences.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtendedRouteNet {
    config: ModelConfig,
    scales: FeatureScales,
    normalizer: Normalizer,
    gru_path: GruCell,
    gru_link: GruCell,
    gru_node: GruCell,
    readout: Mlp,
}

/// Tape bindings for [`ExtendedRouteNet`].
#[derive(Debug, Clone)]
pub struct BoundExtended {
    gru_path: BoundGruCell,
    gru_link: BoundGruCell,
    gru_node: BoundGruCell,
    readout: BoundMlp,
}

impl ExtendedRouteNet {
    /// Fresh model with Xavier-initialized weights.
    pub fn new(config: ModelConfig) -> Self {
        config.validate().expect("invalid model config");
        let d = config.state_dim;
        let h = config.readout_hidden;
        let mut rng = Prng::new(config.seed);
        Self {
            gru_path: GruCell::new(&mut rng, d, d),
            gru_link: GruCell::new(&mut rng, d, d),
            gru_node: GruCell::new(&mut rng, d, d),
            readout: Mlp::new(
                &mut rng,
                &[d, h, h, 1],
                Activation::Selu,
                Activation::Identity,
            ),
            config,
            scales: FeatureScales::unit(),
            normalizer: Normalizer::identity(),
        }
    }
}

impl Layer for ExtendedRouteNet {
    type Bound = BoundExtended;

    fn bind(&self, g: &mut Graph) -> BoundExtended {
        BoundExtended {
            gru_path: self.gru_path.bind(g),
            gru_link: self.gru_link.bind(g),
            gru_node: self.gru_node.bind(g),
            readout: self.readout.bind(g),
        }
    }

    fn params(&self) -> Vec<&Matrix> {
        let mut p = self.gru_path.params();
        p.extend(self.gru_link.params());
        p.extend(self.gru_node.params());
        p.extend(self.readout.params());
        p
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        let mut p = self.gru_path.params_mut();
        p.extend(self.gru_link.params_mut());
        p.extend(self.gru_node.params_mut());
        p.extend(self.readout.params_mut());
        p
    }

    fn bound_vars(bound: &BoundExtended) -> Vec<Var> {
        let mut v = GruCell::bound_vars(&bound.gru_path);
        v.extend(GruCell::bound_vars(&bound.gru_link));
        v.extend(GruCell::bound_vars(&bound.gru_node));
        v.extend(Mlp::bound_vars(&bound.readout));
        v
    }
}

impl PathPredictor for ExtendedRouteNet {
    fn name(&self) -> &'static str {
        "extended"
    }

    fn config(&self) -> &ModelConfig {
        &self.config
    }

    fn preprocessing(&self) -> (&FeatureScales, &Normalizer) {
        (&self.scales, &self.normalizer)
    }

    fn fit_preprocessing(&mut self, train: &Dataset, min_packets: u64) {
        self.scales = FeatureScales::fit(train);
        let delays = train.all_delays(min_packets);
        let positive: Vec<f64> = delays.into_iter().filter(|&d| d > 0.0).collect();
        assert!(
            !positive.is_empty(),
            "training set has no positive delay labels"
        );
        self.normalizer = Normalizer::fit(&positive, true);
    }

    fn set_normalizer(&mut self, normalizer: Normalizer) {
        self.normalizer = normalizer;
    }

    fn forward(&self, g: &mut Graph, bound: &BoundExtended, plan: &SamplePlan) -> Var {
        // Pooled copies — see `OriginalRouteNet::forward`.
        let mut path_state = g.constant_copy(&plan.path_init);
        let mut link_state = g.constant_copy(&plan.link_init);
        let mut node_state = g.constant_copy(&plan.node_init);
        let positional = self.config.node_update == NodeUpdate::PositionalMessages;
        // Dense row partitions — see `OriginalRouteNet::forward`.
        let zero_copy = g.zero_copy();
        let dense_link: Option<IndexInput<'_>> = plan.shards.as_ref().and_then(|s| {
            if zero_copy {
                s.shared_dense_link().map(IndexInput::from)
            } else {
                s.dense_link().map(IndexInput::from)
            }
        });
        let dense_node: Option<IndexInput<'_>> = plan.shards.as_ref().and_then(|s| {
            if zero_copy {
                s.shared_dense_node().map(IndexInput::from)
            } else {
                s.dense_node().map(IndexInput::from)
            }
        });
        let dense_path: Option<IndexInput<'_>> = plan.shards.as_ref().and_then(|s| {
            if zero_copy {
                s.shared_dense_path().map(IndexInput::from)
            } else {
                s.dense_path().map(IndexInput::from)
            }
        });
        for _ in 0..self.config.mp_iterations {
            let (new_path, link_acc, node_acc, _) = path_sweep(
                g,
                &bound.gru_path,
                &plan.extended_csr,
                path_state,
                link_state,
                Some(node_state),
                None,
                plan.num_links,
                plan.num_nodes,
                0,
                positional,
                plan.shards.as_ref(),
            );
            path_state = new_path;
            let node_input = if positional {
                node_acc.expect("positional sweep collects node messages")
            } else {
                // Paper wording: element-wise sum of the (final) path states
                // of all paths traversing the node.
                let gathered = g.gather_rows(path_state, &plan.node_incidence_paths);
                g.segment_sum(gathered, &plan.node_incidence_nodes, plan.num_nodes)
            };
            link_state =
                bound
                    .gru_link
                    .step_fused_sharded(g, link_state, link_acc, dense_link.clone());
            node_state =
                bound
                    .gru_node
                    .step_fused_sharded(g, node_state, node_input, dense_node.clone());
        }
        bound.readout.forward_sharded(g, path_state, dense_path)
    }

    fn forward_unfused(&self, g: &mut Graph, bound: &BoundExtended, plan: &SamplePlan) -> Var {
        let mut path_state = g.constant(plan.path_init.clone());
        let mut link_state = g.constant(plan.link_init.clone());
        let mut node_state = g.constant(plan.node_init.clone());
        let positional = self.config.node_update == NodeUpdate::PositionalMessages;
        for _ in 0..self.config.mp_iterations {
            let (new_path, link_acc, node_acc, _) = path_sweep_unfused(
                g,
                &bound.gru_path,
                &plan.extended_steps,
                path_state,
                link_state,
                Some(node_state),
                None,
                plan.num_links,
                plan.num_nodes,
                0,
                positional,
            );
            path_state = new_path;
            let node_input = if positional {
                node_acc.expect("positional sweep collects node messages")
            } else {
                let gathered = g.gather_rows(path_state, &plan.node_incidence_paths);
                g.segment_sum(gathered, &plan.node_incidence_nodes, plan.num_nodes)
            };
            link_state = bound.gru_link.step(g, link_state, link_acc);
            node_state = bound.gru_node.step(g, node_state, node_input);
        }
        bound.readout.forward(g, path_state)
    }
}

// ---------------------------------------------------------------------------
// QoS RouteNet (queue entity)
// ---------------------------------------------------------------------------

/// The QoS-aware RouteNet: adds a per-(link, class) **queue entity**
/// (`RNN_Q`) on top of the extended model, so the message passing sees the
/// scheduler configuration (policy shares, class ranks) of every output
/// port. On QoS plans the path sequence is 3-periodic (node, queue, link per
/// hop); on legacy and single-class-FIFO plans `num_queues == 0`, no queue
/// op is recorded, and the forward/backward tapes are **bitwise identical**
/// to [`ExtendedRouteNet`] at the same seed — the shared parameters are
/// drawn in the same `Prng` order and the queue GRU only afterwards.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QosRouteNet {
    config: ModelConfig,
    scales: FeatureScales,
    normalizer: Normalizer,
    gru_path: GruCell,
    gru_link: GruCell,
    gru_node: GruCell,
    readout: Mlp,
    gru_queue: GruCell,
}

/// Tape bindings for [`QosRouteNet`].
#[derive(Debug, Clone)]
pub struct BoundQos {
    gru_path: BoundGruCell,
    gru_link: BoundGruCell,
    gru_node: BoundGruCell,
    readout: BoundMlp,
    gru_queue: BoundGruCell,
}

impl QosRouteNet {
    /// Fresh model with Xavier-initialized weights. The path/link/node GRUs
    /// and the readout consume the seed stream in exactly
    /// [`ExtendedRouteNet::new`]'s order, then the queue GRU draws from
    /// whatever is left: at equal seed the shared parameters are bitwise
    /// equal, which is what makes the FIFO golden-equivalence tests exact.
    pub fn new(config: ModelConfig) -> Self {
        config.validate().expect("invalid model config");
        let d = config.state_dim;
        let h = config.readout_hidden;
        let mut rng = Prng::new(config.seed);
        Self {
            gru_path: GruCell::new(&mut rng, d, d),
            gru_link: GruCell::new(&mut rng, d, d),
            gru_node: GruCell::new(&mut rng, d, d),
            readout: Mlp::new(
                &mut rng,
                &[d, h, h, 1],
                Activation::Selu,
                Activation::Identity,
            ),
            gru_queue: GruCell::new(&mut rng, d, d),
            config,
            scales: FeatureScales::unit(),
            normalizer: Normalizer::identity(),
        }
    }
}

impl Layer for QosRouteNet {
    type Bound = BoundQos;

    fn bind(&self, g: &mut Graph) -> BoundQos {
        // Queue GRU bound last: on FIFO plans the tape prefix (params and
        // compute ops alike) matches ExtendedRouteNet node for node.
        BoundQos {
            gru_path: self.gru_path.bind(g),
            gru_link: self.gru_link.bind(g),
            gru_node: self.gru_node.bind(g),
            readout: self.readout.bind(g),
            gru_queue: self.gru_queue.bind(g),
        }
    }

    fn params(&self) -> Vec<&Matrix> {
        let mut p = self.gru_path.params();
        p.extend(self.gru_link.params());
        p.extend(self.gru_node.params());
        p.extend(self.readout.params());
        p.extend(self.gru_queue.params());
        p
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        let mut p = self.gru_path.params_mut();
        p.extend(self.gru_link.params_mut());
        p.extend(self.gru_node.params_mut());
        p.extend(self.readout.params_mut());
        p.extend(self.gru_queue.params_mut());
        p
    }

    fn bound_vars(bound: &BoundQos) -> Vec<Var> {
        let mut v = GruCell::bound_vars(&bound.gru_path);
        v.extend(GruCell::bound_vars(&bound.gru_link));
        v.extend(GruCell::bound_vars(&bound.gru_node));
        v.extend(Mlp::bound_vars(&bound.readout));
        v.extend(GruCell::bound_vars(&bound.gru_queue));
        v
    }
}

impl PathPredictor for QosRouteNet {
    fn name(&self) -> &'static str {
        "qos"
    }

    fn config(&self) -> &ModelConfig {
        &self.config
    }

    fn preprocessing(&self) -> (&FeatureScales, &Normalizer) {
        (&self.scales, &self.normalizer)
    }

    fn fit_preprocessing(&mut self, train: &Dataset, min_packets: u64) {
        self.scales = FeatureScales::fit(train);
        let delays = train.all_delays(min_packets);
        let positive: Vec<f64> = delays.into_iter().filter(|&d| d > 0.0).collect();
        assert!(
            !positive.is_empty(),
            "training set has no positive delay labels"
        );
        self.normalizer = Normalizer::fit(&positive, true);
    }

    fn set_normalizer(&mut self, normalizer: Normalizer) {
        self.normalizer = normalizer;
    }

    fn forward(&self, g: &mut Graph, bound: &BoundQos, plan: &SamplePlan) -> Var {
        // Pooled copies — see `OriginalRouteNet::forward`.
        let mut path_state = g.constant_copy(&plan.path_init);
        let mut link_state = g.constant_copy(&plan.link_init);
        let mut node_state = g.constant_copy(&plan.node_init);
        // Queue states exist only on QoS plans: when `num_queues == 0` no
        // queue op of any kind is recorded, keeping the tape bitwise equal
        // to the extended model's.
        let mut queue_state = (plan.num_queues > 0).then(|| g.constant_copy(&plan.queue_init));
        let positional = self.config.node_update == NodeUpdate::PositionalMessages;
        // Dense row partitions — see `OriginalRouteNet::forward`.
        let zero_copy = g.zero_copy();
        let dense_link: Option<IndexInput<'_>> = plan.shards.as_ref().and_then(|s| {
            if zero_copy {
                s.shared_dense_link().map(IndexInput::from)
            } else {
                s.dense_link().map(IndexInput::from)
            }
        });
        let dense_node: Option<IndexInput<'_>> = plan.shards.as_ref().and_then(|s| {
            if zero_copy {
                s.shared_dense_node().map(IndexInput::from)
            } else {
                s.dense_node().map(IndexInput::from)
            }
        });
        let dense_queue: Option<IndexInput<'_>> = plan.shards.as_ref().and_then(|s| {
            if zero_copy {
                s.shared_dense_queue().map(IndexInput::from)
            } else {
                s.dense_queue().map(IndexInput::from)
            }
        });
        let dense_path: Option<IndexInput<'_>> = plan.shards.as_ref().and_then(|s| {
            if zero_copy {
                s.shared_dense_path().map(IndexInput::from)
            } else {
                s.dense_path().map(IndexInput::from)
            }
        });
        for _ in 0..self.config.mp_iterations {
            let (new_path, link_acc, node_acc, queue_acc) = path_sweep(
                g,
                &bound.gru_path,
                &plan.extended_csr,
                path_state,
                link_state,
                Some(node_state),
                queue_state,
                plan.num_links,
                plan.num_nodes,
                plan.num_queues,
                positional,
                plan.shards.as_ref(),
            );
            path_state = new_path;
            let node_input = if positional {
                node_acc.expect("positional sweep collects node messages")
            } else {
                let gathered = g.gather_rows(path_state, &plan.node_incidence_paths);
                g.segment_sum(gathered, &plan.node_incidence_nodes, plan.num_nodes)
            };
            link_state =
                bound
                    .gru_link
                    .step_fused_sharded(g, link_state, link_acc, dense_link.clone());
            node_state =
                bound
                    .gru_node
                    .step_fused_sharded(g, node_state, node_input, dense_node.clone());
            if let (Some(qs), Some(qa)) = (queue_state, queue_acc) {
                queue_state = Some(bound.gru_queue.step_fused_sharded(
                    g,
                    qs,
                    qa,
                    dense_queue.clone(),
                ));
            }
        }
        bound.readout.forward_sharded(g, path_state, dense_path)
    }

    fn forward_unfused(&self, g: &mut Graph, bound: &BoundQos, plan: &SamplePlan) -> Var {
        let mut path_state = g.constant(plan.path_init.clone());
        let mut link_state = g.constant(plan.link_init.clone());
        let mut node_state = g.constant(plan.node_init.clone());
        let mut queue_state = (plan.num_queues > 0).then(|| g.constant(plan.queue_init.clone()));
        let positional = self.config.node_update == NodeUpdate::PositionalMessages;
        for _ in 0..self.config.mp_iterations {
            let (new_path, link_acc, node_acc, queue_acc) = path_sweep_unfused(
                g,
                &bound.gru_path,
                &plan.extended_steps,
                path_state,
                link_state,
                Some(node_state),
                queue_state,
                plan.num_links,
                plan.num_nodes,
                plan.num_queues,
                positional,
            );
            path_state = new_path;
            let node_input = if positional {
                node_acc.expect("positional sweep collects node messages")
            } else {
                let gathered = g.gather_rows(path_state, &plan.node_incidence_paths);
                g.segment_sum(gathered, &plan.node_incidence_nodes, plan.num_nodes)
            };
            link_state = bound.gru_link.step(g, link_state, link_acc);
            node_state = bound.gru_node.step(g, node_state, node_input);
            if let (Some(qs), Some(qa)) = (queue_state, queue_acc) {
                queue_state = Some(bound.gru_queue.step(g, qs, qa));
            }
        }
        bound.readout.forward(g, path_state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_dataset::{generate, GeneratorConfig};
    use rn_netgraph::topologies;
    use rn_netsim::SimConfig;

    fn toy_dataset(n: usize) -> Dataset {
        let config = GeneratorConfig {
            sim: SimConfig {
                duration_s: 60.0,
                warmup_s: 10.0,
                ..SimConfig::default()
            },
            ..GeneratorConfig::default()
        };
        generate(&topologies::toy5(), &config, 41, n)
    }

    fn small_config() -> ModelConfig {
        ModelConfig {
            state_dim: 8,
            mp_iterations: 2,
            readout_hidden: 8,
            ..ModelConfig::default()
        }
    }

    #[test]
    fn both_models_produce_one_prediction_per_path() {
        let ds = toy_dataset(1);
        let mut original = OriginalRouteNet::new(small_config());
        let mut extended = ExtendedRouteNet::new(small_config());
        original.fit_preprocessing(&ds, 5);
        extended.fit_preprocessing(&ds, 5);

        let plan_o = original.plan(&ds.samples[0]);
        let plan_e = extended.plan(&ds.samples[0]);
        assert_eq!(original.predict(&plan_o).len(), 20);
        assert_eq!(extended.predict(&plan_e).len(), 20);
    }

    #[test]
    fn predictions_are_finite_and_positive() {
        let ds = toy_dataset(1);
        let mut model = ExtendedRouteNet::new(small_config());
        model.fit_preprocessing(&ds, 5);
        let plan = model.plan(&ds.samples[0]);
        for p in model.predict(&plan) {
            assert!(p.is_finite() && p > 0.0, "prediction {p}");
        }
    }

    #[test]
    fn extended_model_reacts_to_queue_sizes_original_does_not() {
        // Flip every node's queue profile; the extended model's output must
        // change, the original's must not (it cannot see node features).
        let ds = toy_dataset(1);
        let mut sample_b = ds.samples[0].clone();
        sample_b.queue_capacities = vec![1; 5];

        let mut original = OriginalRouteNet::new(small_config());
        let mut extended = ExtendedRouteNet::new(small_config());
        original.fit_preprocessing(&ds, 5);
        extended.fit_preprocessing(&ds, 5);

        let o_a = original.predict(&original.plan(&ds.samples[0]));
        let o_b = original.predict(&original.plan(&sample_b));
        let e_a = extended.predict(&extended.plan(&ds.samples[0]));
        let e_b = extended.predict(&extended.plan(&sample_b));

        let diff = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>()
        };
        assert!(
            diff(&o_a, &o_b) < 1e-9,
            "original model must ignore queue sizes"
        );
        assert!(
            diff(&e_a, &e_b) > 1e-6,
            "extended model must react to queue sizes"
        );
    }

    #[test]
    fn node_update_variants_differ() {
        let ds = toy_dataset(1);
        let mut positional = ExtendedRouteNet::new(small_config());
        let mut final_sum = ExtendedRouteNet::new(ModelConfig {
            node_update: NodeUpdate::FinalPathStateSum,
            ..small_config()
        });
        positional.fit_preprocessing(&ds, 5);
        final_sum.fit_preprocessing(&ds, 5);
        let pp = positional.predict(&positional.plan(&ds.samples[0]));
        let pf = final_sum.predict(&final_sum.plan(&ds.samples[0]));
        let total_diff: f64 = pp.iter().zip(&pf).map(|(a, b)| (a - b).abs()).sum();
        assert!(total_diff > 1e-9, "ablation variants should not coincide");
    }

    #[test]
    fn forward_gradients_reach_every_parameter_extended() {
        let ds = toy_dataset(1);
        let mut model = ExtendedRouteNet::new(small_config());
        model.fit_preprocessing(&ds, 5);
        let plan = model.plan(&ds.samples[0]);
        let mut g = Graph::new();
        let bound = model.bind(&mut g);
        let pred = model.forward(&mut g, &bound, &plan);
        let reliable = g.gather_rows(pred, &plan.reliable_idx);
        let target = g.constant(plan.reliable_targets_norm());
        let loss = g.mse(reliable, target);
        g.backward(loss);
        let grads = model.grads(&g, &bound);
        let nonzero = grads.iter().filter(|m| m.max_abs() > 0.0).count();
        // All kernels should receive gradient; some biases may be zero by
        // symmetry but the vast majority must be live.
        assert!(
            nonzero >= grads.len() - 2,
            "only {nonzero}/{} parameter tensors received gradient",
            grads.len()
        );
    }

    #[test]
    fn forward_gradients_reach_every_parameter_original() {
        let ds = toy_dataset(1);
        let mut model = OriginalRouteNet::new(small_config());
        model.fit_preprocessing(&ds, 5);
        let plan = model.plan(&ds.samples[0]);
        let mut g = Graph::new();
        let bound = model.bind(&mut g);
        let pred = model.forward(&mut g, &bound, &plan);
        let reliable = g.gather_rows(pred, &plan.reliable_idx);
        let target = g.constant(plan.reliable_targets_norm());
        let loss = g.mse(reliable, target);
        g.backward(loss);
        let grads = model.grads(&g, &bound);
        let nonzero = grads.iter().filter(|m| m.max_abs() > 0.0).count();
        assert!(
            nonzero >= grads.len() - 2,
            "only {nonzero}/{} live grads",
            grads.len()
        );
    }

    #[test]
    fn fused_forward_matches_unfused_reference() {
        let ds = toy_dataset(1);
        for node_update in [
            NodeUpdate::PositionalMessages,
            NodeUpdate::FinalPathStateSum,
        ] {
            let mut model = ExtendedRouteNet::new(ModelConfig {
                node_update,
                ..small_config()
            });
            model.fit_preprocessing(&ds, 5);
            let plan = model.plan(&ds.samples[0]);
            let mut g = Graph::new();
            let bound = model.bind(&mut g);
            let fused = model.forward(&mut g, &bound, &plan);
            let unfused = model.forward_unfused(&mut g, &bound, &plan);
            assert!(
                g.value(fused).approx_eq(g.value(unfused), 1e-5),
                "fused/unfused diverged for {node_update:?}"
            );
        }
        let mut orig = OriginalRouteNet::new(small_config());
        orig.fit_preprocessing(&ds, 5);
        let plan = orig.plan(&ds.samples[0]);
        let mut g = Graph::new();
        let bound = orig.bind(&mut g);
        let fused = orig.forward(&mut g, &bound, &plan);
        let unfused = orig.forward_unfused(&mut g, &bound, &plan);
        assert!(g.value(fused).approx_eq(g.value(unfused), 1e-5));
    }

    #[test]
    fn predict_batch_matches_per_sample_predict() {
        let ds = toy_dataset(3);
        let mut model = ExtendedRouteNet::new(small_config());
        model.fit_preprocessing(&ds, 5);
        let plans: Vec<SamplePlan> = ds.samples.iter().map(|s| model.plan(s)).collect();
        let batched = model.predict_batch(&plans);
        assert_eq!(batched.len(), plans.len());
        for (b, plan) in plans.iter().enumerate() {
            let single = model.predict(plan);
            assert_eq!(batched[b].len(), single.len());
            for (x, y) in batched[b].iter().zip(&single) {
                let denom = y.abs().max(1e-12);
                assert!(
                    ((x - y).abs() / denom) < 1e-5,
                    "sample {b}: batched {x} vs single {y}"
                );
            }
        }
    }

    #[test]
    fn predict_batch_of_nothing_returns_nothing() {
        let ds = toy_dataset(1);
        let mut model = ExtendedRouteNet::new(small_config());
        model.fit_preprocessing(&ds, 5);
        assert!(model.predict_batch(&[]).is_empty());
        assert!(model.predict_batch_refs(&[]).is_empty());
    }

    #[test]
    fn predict_with_reuses_one_tape_across_samples() {
        let ds = toy_dataset(2);
        let mut model = ExtendedRouteNet::new(small_config());
        model.fit_preprocessing(&ds, 5);
        let plan_a = model.plan(&ds.samples[0]);
        let plan_b = model.plan(&ds.samples[1]);
        let mut g = Graph::new();
        let first = model.predict_with(&mut g, &plan_a);
        let second = model.predict_with(&mut g, &plan_b);
        assert_eq!(
            first,
            model.predict(&plan_a),
            "pooled tape must not change results"
        );
        assert_eq!(second, model.predict(&plan_b));
    }

    #[test]
    fn forward_is_deterministic() {
        let ds = toy_dataset(1);
        let mut model = ExtendedRouteNet::new(small_config());
        model.fit_preprocessing(&ds, 5);
        let plan = model.plan(&ds.samples[0]);
        let a = model.predict(&plan);
        let b = model.predict(&plan);
        assert_eq!(a, b);
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let ds = toy_dataset(1);
        let mut model = ExtendedRouteNet::new(small_config());
        model.fit_preprocessing(&ds, 5);
        let plan = model.plan(&ds.samples[0]);
        let json = serde_json::to_string(&model).unwrap();
        let back: ExtendedRouteNet = serde_json::from_str(&json).unwrap();
        assert_eq!(model.predict(&plan), back.predict(&plan));
    }

    #[test]
    fn jitter_target_plans_use_jitter_labels() {
        use crate::entities::TargetKind;
        let ds = toy_dataset(1);
        let mut model = ExtendedRouteNet::new(small_config());
        model.fit_preprocessing(&ds, 5);
        let delay_plan = model.plan_for_target(&ds.samples[0], TargetKind::Delay);
        let jitter_plan = model.plan_for_target(&ds.samples[0], TargetKind::Jitter);
        for (row, t) in ds.samples[0].targets.iter().enumerate() {
            assert_eq!(delay_plan.targets_raw[row], t.mean_delay_s);
            assert_eq!(jitter_plan.targets_raw[row], t.jitter_s);
        }
        // The model still produces one prediction per path on jitter plans.
        assert_eq!(model.predict(&jitter_plan).len(), jitter_plan.n_paths);
    }

    #[test]
    fn param_counts_scale_with_config() {
        let small = ExtendedRouteNet::new(small_config());
        let big = ExtendedRouteNet::new(ModelConfig {
            state_dim: 16,
            ..small_config()
        });
        assert!(big.param_count() > small.param_count());
        // Extended has one more GRU than original at equal config.
        let orig = OriginalRouteNet::new(small_config());
        assert!(small.param_count() > orig.param_count());
        // And QoS one more than extended (the queue GRU).
        let qos = QosRouteNet::new(small_config());
        assert!(qos.param_count() > small.param_count());
    }

    fn qos_dataset(n: usize) -> Dataset {
        let config = GeneratorConfig {
            sim: SimConfig {
                duration_s: 30.0,
                warmup_s: 5.0,
                ..SimConfig::default()
            },
            qos: Some(rn_dataset::QosGenConfig::two_class_mix()),
            ..GeneratorConfig::default()
        };
        generate(&topologies::toy5(), &config, 43, n)
    }

    #[test]
    fn qos_model_predicts_one_value_per_path_on_qos_plans() {
        let ds = qos_dataset(1);
        let mut model = QosRouteNet::new(small_config());
        model.fit_preprocessing(&ds, 5);
        let plan = model.plan(&ds.samples[0]);
        assert!(
            plan.num_queues > 0,
            "QoS sample must produce queue entities"
        );
        let preds = model.predict(&plan);
        assert_eq!(preds.len(), plan.n_paths);
        for p in preds {
            assert!(p.is_finite() && p > 0.0, "prediction {p}");
        }
    }

    #[test]
    fn qos_model_fused_forward_matches_unfused_reference() {
        let ds = qos_dataset(1);
        let mut model = QosRouteNet::new(small_config());
        model.fit_preprocessing(&ds, 5);
        let plan = model.plan(&ds.samples[0]);
        let mut g = Graph::new();
        let bound = model.bind(&mut g);
        let fused = model.forward(&mut g, &bound, &plan);
        let unfused = model.forward_unfused(&mut g, &bound, &plan);
        assert!(
            g.value(fused).approx_eq(g.value(unfused), 1e-5),
            "fused/unfused diverged on a QoS plan"
        );
    }

    #[test]
    fn qos_model_reacts_to_scheduling_policy() {
        // Same traffic, same routing — only the scheduler changes. The queue
        // entity is the only channel through which the model can see that.
        let ds = qos_dataset(1);
        let mut sample_b = ds.samples[0].clone();
        let qos = sample_b.qos.as_mut().expect("QoS sample");
        let n = qos.num_classes();
        qos.policy = rn_netsim::SchedulingPolicy::Wfq {
            weights: (0..n).map(|c| 1.0 + 9.0 * c as f64).collect(),
        };

        let mut model = QosRouteNet::new(small_config());
        model.fit_preprocessing(&ds, 5);
        let a = model.predict(&model.plan(&ds.samples[0]));
        let b = model.predict(&model.plan(&sample_b));
        let diff: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-9, "QoS model must react to the scheduling policy");
    }

    #[test]
    fn qos_model_gradients_reach_the_queue_gru() {
        let ds = qos_dataset(1);
        let mut model = QosRouteNet::new(small_config());
        model.fit_preprocessing(&ds, 5);
        let plan = model.plan(&ds.samples[0]);
        let mut g = Graph::new();
        let bound = model.bind(&mut g);
        let pred = model.forward(&mut g, &bound, &plan);
        let reliable = g.gather_rows(pred, &plan.reliable_idx);
        let target = g.constant(plan.reliable_targets_norm());
        let loss = g.mse(reliable, target);
        g.backward(loss);
        let grads = model.grads(&g, &bound);
        let nonzero = grads.iter().filter(|m| m.max_abs() > 0.0).count();
        assert!(
            nonzero >= grads.len() - 2,
            "only {nonzero}/{} parameter tensors received gradient",
            grads.len()
        );
        // The queue GRU specifically (the last 6 tensors) must be live.
        let queue_grads = &grads[grads.len() - 6..];
        assert!(
            queue_grads.iter().any(|m| m.max_abs() > 0.0),
            "queue GRU received no gradient on a QoS plan"
        );
    }

    #[test]
    fn qos_model_is_bitwise_extended_on_legacy_plans() {
        // Same seed => shared parameters are drawn identically; a legacy
        // plan records no queue ops => predictions are bitwise equal.
        let ds = toy_dataset(1);
        let mut qos = QosRouteNet::new(small_config());
        let mut ext = ExtendedRouteNet::new(small_config());
        qos.fit_preprocessing(&ds, 5);
        ext.fit_preprocessing(&ds, 5);
        let plan_q = qos.plan(&ds.samples[0]);
        let plan_e = ext.plan(&ds.samples[0]);
        assert_eq!(plan_q.num_queues, 0);
        assert_eq!(qos.predict(&plan_q), ext.predict(&plan_e));
    }

    #[test]
    fn qos_model_serde_round_trip_preserves_predictions() {
        let ds = qos_dataset(1);
        let mut model = QosRouteNet::new(small_config());
        model.fit_preprocessing(&ds, 5);
        let plan = model.plan(&ds.samples[0]);
        let json = serde_json::to_string(&model).unwrap();
        let back: QosRouteNet = serde_json::from_str(&json).unwrap();
        assert_eq!(model.predict(&plan), back.predict(&plan));
    }

    #[test]
    fn qos_predict_batch_matches_per_sample_predict() {
        let ds = qos_dataset(3);
        let mut model = QosRouteNet::new(small_config());
        model.fit_preprocessing(&ds, 5);
        let plans: Vec<SamplePlan> = ds.samples.iter().map(|s| model.plan(s)).collect();
        let batched = model.predict_batch(&plans);
        assert_eq!(batched.len(), plans.len());
        for (b, plan) in plans.iter().enumerate() {
            let single = model.predict(plan);
            assert_eq!(batched[b].len(), single.len());
            for (x, y) in batched[b].iter().zip(&single) {
                let denom = y.abs().max(1e-12);
                assert!(
                    ((x - y).abs() / denom) < 1e-5,
                    "sample {b}: batched {x} vs single {y}"
                );
            }
        }
    }
}
