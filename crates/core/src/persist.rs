//! Model persistence: trained models round-trip through JSON, carrying their
//! hyper-parameters, weights, feature scales and target normalizer.
//!
//! Saves are **atomic** (see [`rn_dataset::io::atomic_write`]): the document
//! is written to a temporary sibling file, fsynced, and renamed into place,
//! so a crash mid-write — or a reader racing a hot-swap writer — never
//! observes a torn file. The serving layer's model registry relies on this
//! to reload safely while requests are in flight.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fs::File;
use std::io::BufReader;
use std::path::Path;

/// Save any serializable model (or experiment artifact) as JSON, atomically:
/// written to a temp file in the target directory, fsynced, then renamed
/// into place.
pub fn save_model<T: Serialize>(value: &T, path: &Path) -> Result<(), String> {
    rn_dataset::io::atomic_write(path, |w| {
        serde_json::to_writer(w, value).map_err(|e| format!("serialize {}: {e}", path.display()))
    })
}

/// Load a model saved by [`save_model`].
pub fn load_model<T: DeserializeOwned>(path: &Path) -> Result<T, String> {
    let file = File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    serde_json::from_reader(BufReader::new(file))
        .map_err(|e| format!("parse {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::model::{ExtendedRouteNet, OriginalRouteNet, PathPredictor};
    use rn_dataset::{generate, GeneratorConfig};
    use rn_netgraph::topologies;
    use rn_netsim::SimConfig;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rn_persist_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn trained_model_round_trips_with_preprocessing() {
        let gen_config = GeneratorConfig {
            sim: SimConfig {
                duration_s: 60.0,
                warmup_s: 10.0,
                ..SimConfig::default()
            },
            ..GeneratorConfig::default()
        };
        let ds = generate(&topologies::toy5(), &gen_config, 61, 2);
        let mut model = ExtendedRouteNet::new(ModelConfig {
            state_dim: 8,
            mp_iterations: 1,
            readout_hidden: 8,
            ..ModelConfig::default()
        });
        model.fit_preprocessing(&ds, 5);
        let plan = model.plan(&ds.samples[0]);
        let before = model.predict(&plan);

        let path = tmp("extended.json");
        save_model(&model, &path).unwrap();
        let loaded: ExtendedRouteNet = load_model(&path).unwrap();
        std::fs::remove_file(&path).ok();

        // The loaded model re-plans with its own (persisted) preprocessing.
        let plan2 = loaded.plan(&ds.samples[0]);
        assert_eq!(loaded.predict(&plan2), before);
    }

    #[test]
    fn original_model_round_trips() {
        let model = OriginalRouteNet::new(ModelConfig {
            state_dim: 8,
            mp_iterations: 1,
            readout_hidden: 8,
            ..ModelConfig::default()
        });
        let path = tmp("original.json");
        save_model(&model, &path).unwrap();
        let loaded: OriginalRouteNet = load_model(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.config(), model.config());
    }

    #[test]
    fn save_leaves_no_temp_file_behind() {
        let model = OriginalRouteNet::new(ModelConfig {
            state_dim: 8,
            mp_iterations: 1,
            readout_hidden: 8,
            ..ModelConfig::default()
        });
        let path = tmp("atomic.json");
        save_model(&model, &path).unwrap();
        // Overwriting an existing file goes through the same atomic path.
        save_model(&model, &path).unwrap();
        let _: OriginalRouteNet = load_model(&path).unwrap();
        // No scratch files left next to the target.
        let stem = path.file_name().unwrap().to_string_lossy().into_owned();
        let leftovers: Vec<String> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with(&stem) && n.contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_into_missing_directory_errors_cleanly() {
        let model = ModelConfig::default();
        let err = save_model(&model, Path::new("/no/such/dir/model.json")).unwrap_err();
        assert!(err.contains("create"), "{err}");
    }

    #[test]
    fn load_errors_are_descriptive() {
        let err = load_model::<ModelConfig>(Path::new("/no/such/file.json")).unwrap_err();
        assert!(err.contains("open"), "{err}");
        let path = tmp("garbage.json");
        std::fs::write(&path, "not json").unwrap();
        let err = load_model::<ModelConfig>(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.contains("parse"), "{err}");
    }
}
