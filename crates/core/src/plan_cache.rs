//! Scenario fingerprints and the compiled-plan cache.
//!
//! Planning a sample — feature extraction, step construction, CSR
//! compilation — costs real time per request, and an inference service sees
//! the *same* scenarios over and over (what-if analysis re-queries a handful
//! of topologies under varying assumptions). The [`PlanCache`] memoizes
//! compiled [`SamplePlan`]s behind a cheap content fingerprint so repeated
//! scenarios skip feature extraction and step compilation entirely.
//!
//! ## What a fingerprint covers
//!
//! A fingerprint identifies the scenario **as the forward pass sees it**:
//! topology size, routing (the exact node/link sequence of every path),
//! traffic rates, link capacities, queue configuration, and the
//! preprocessing state (feature scales, normalizer, state width). It
//! deliberately **excludes the ground-truth labels**: two samples that
//! differ only in simulated targets produce identical predictions, so they
//! share one cache entry. Consequently the `targets_*`/`reliable_idx`
//! fields of a cached plan belong to whichever sample populated the entry —
//! fine for serving, wrong for evaluation. Evaluation code keeps building
//! its own plans.
//!
//! ## Trust model
//!
//! FNV-1a is fast and stable but **not collision-resistant**: an adversary
//! who can submit arbitrary scenarios could craft a key collision and
//! poison another client's cache entry (hits are served by key alone, with
//! no content re-check). Accidental collisions are a non-issue at cache
//! scale (~n²/2⁶⁴), so this is safe inside a trust boundary — which is how
//! the TCP frontend is deployed (unauthenticated, trusted clients). Put an
//! authenticating proxy in front before exposing it further.

use crate::entities::{build_plan, PlanConfig, SamplePlan, TargetKind};
use rn_dataset::Sample;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Incremental FNV-1a (64-bit): tiny, dependency-free, stable across runs
/// and platforms — cache keys may be exchanged over the wire by serving
/// clients, so a process-seeded hasher (`DefaultHasher`) would not do.
#[derive(Debug, Clone)]
pub struct Fingerprint(u64);

impl Fingerprint {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self(Self::OFFSET)
    }

    /// Fold raw bytes into the state.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Fold one `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Fold one `usize`.
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Fold an `f64` by bit pattern.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Fold a slice of `f32`s by bit pattern.
    pub fn f32s(&mut self, vs: &[f32]) -> &mut Self {
        for v in vs {
            self.bytes(&v.to_bits().to_le_bytes());
        }
        self
    }

    /// Fold a slice of indices.
    pub fn usizes(&mut self, vs: &[usize]) -> &mut Self {
        for &v in vs {
            self.u64(v as u64);
        }
        self
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

/// Fingerprint of a raw [`Sample`] under a given plan configuration —
/// computable without building the plan, which is the whole point: the cache
/// key costs one pass over the sample's routing and features.
pub fn sample_fingerprint(sample: &Sample, config: &PlanConfig) -> u64 {
    let mut fp = Fingerprint::new();
    // Preprocessing state: a model with different scales/normalizer/width
    // compiles a different plan from the same sample.
    fp.usize(config.state_dim)
        .u64(config.min_packets)
        .u64(match config.target {
            TargetKind::Delay => 0,
            TargetKind::Jitter => 1,
        })
        .f64(config.scales.rate_scale)
        .f64(config.scales.capacity_scale)
        .f64(config.scales.queue_scale)
        .u64(config.normalizer.log_space as u64)
        .f64(config.normalizer.mean)
        .f64(config.normalizer.std);
    // Topology-scale features.
    fp.usize(sample.queue_capacities.len())
        .usizes(&sample.queue_capacities)
        .usize(sample.link_capacities.len());
    for &c in &sample.link_capacities {
        fp.f64(c);
    }
    // Routing and traffic, in path order (the row order of the plan).
    for (src, dst, path) in sample.routing.iter_paths() {
        fp.usize(src)
            .usize(dst)
            .usizes(&path.nodes)
            .usizes(&path.links)
            .f64(sample.traffic.rate(src, dst));
    }
    // QoS dimension: the scheduling policy, class profiles and per-path
    // classes change the compiled plan (queue entities, the 3-periodic
    // schedule, queue features) and must re-key it. Legacy samples fold
    // nothing here, so their fingerprints are exactly what they were before
    // the QoS dimension existed. Serialization is the canonical encoding —
    // derive-ordered fields, shortest-round-trip floats — so equal specs
    // fold equal bytes.
    if let Some(qos) = &sample.qos {
        let encoded = serde_json::to_string(qos).expect("QoS spec serializes");
        fp.usize(encoded.len()).bytes(encoded.as_bytes());
    }
    fp.finish()
}

impl SamplePlan {
    /// Content fingerprint of the compiled plan: everything the forward pass
    /// reads — entity counts, initial states (traffic/capacity/queue
    /// features), and the full message-passing schedule. Ground-truth
    /// targets and reliability masks are deliberately excluded (see the
    /// module docs): plans that predict identically fingerprint identically.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.usize(self.n_paths)
            .usize(self.num_links)
            .usize(self.num_nodes)
            .usize(self.num_queues);
        for &(s, d) in &self.pairs {
            fp.usize(s).usize(d);
        }
        fp.f32s(self.path_init.as_slice())
            .f32s(self.link_init.as_slice())
            .f32s(self.node_init.as_slice())
            .f32s(self.queue_init.as_slice());
        for csr in [&self.extended_csr, &self.original_csr] {
            fp.usize(csr.len())
                .usizes(&csr.offsets)
                .usizes(&csr.ids_flat)
                .usizes(&csr.active_offsets)
                .usizes(&csr.active_rows_flat)
                .usizes(&csr.active_ids_flat);
        }
        fp.usizes(&self.node_incidence_paths)
            .usizes(&self.node_incidence_nodes);
        fp.finish()
    }

    /// Fingerprint of the plan's **structure** alone: entity counts, state
    /// width, routing pairs, the full compiled step schedules and the
    /// path↔node incidences — everything that determines the shape-dependent
    /// half of a megabatch composition (`crate::compose`), and nothing that
    /// doesn't. Feature values (initial-state matrices), targets and
    /// reliability are deliberately excluded: two plans that differ only in
    /// traffic/capacity/queue features or labels share one composed
    /// structure. Memoized on first use; clones share the cached value.
    pub fn structure_fingerprint(&self) -> u64 {
        *self.structure_fp.get_or_init(|| {
            let mut fp = Fingerprint::new();
            fp.usize(self.path_init.cols()) // state width shapes every buffer
                .usize(self.n_paths)
                .usize(self.num_links)
                .usize(self.num_nodes)
                .usize(self.num_queues);
            for &(s, d) in &self.pairs {
                fp.usize(s).usize(d);
            }
            for csr in [&self.extended_csr, &self.original_csr] {
                fp.usize(csr.len())
                    .usizes(&csr.offsets)
                    .usizes(&csr.ids_flat)
                    .usizes(&csr.active_offsets)
                    .usizes(&csr.active_rows_flat)
                    .usizes(&csr.active_ids_flat);
                for &kind in &csr.kinds {
                    fp.u64(match kind {
                        crate::entities::EntityKind::Link => 0,
                        crate::entities::EntityKind::Node => 1,
                        crate::entities::EntityKind::Queue => 2,
                    });
                }
            }
            fp.usizes(&self.node_incidence_paths)
                .usizes(&self.node_incidence_nodes);
            fp.finish()
        })
    }
}

/// One cache slot: the shared plan plus its LRU stamp.
struct Entry {
    plan: Arc<SamplePlan>,
    last_used: u64,
}

/// Interior state guarded by one mutex (lookups are short; planning happens
/// outside the lock).
struct Inner {
    map: HashMap<u64, Entry>,
    clock: u64,
}

/// Thread-safe LRU cache of compiled plans keyed by scenario fingerprint.
///
/// Shared by every serving worker: plans come out as `Arc`s, so a cached
/// plan can sit in several in-flight megabatches while being evicted
/// concurrently. Hit/miss/eviction counters feed the service metrics.
pub struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    /// Cache holding at most `capacity` plans (at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look up a plan by fingerprint, refreshing its LRU stamp.
    pub fn get(&self, key: u64) -> Option<Arc<SamplePlan>> {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.plan))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or replace) a plan under `key`, evicting the least-recently
    /// used entry when full. Returns the shared handle.
    pub fn insert(&self, key: u64, plan: SamplePlan) -> Arc<SamplePlan> {
        let plan = Arc::new(plan);
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            // O(n) LRU scan: capacities are small (hundreds of scenarios),
            // and insert only runs on misses, which the cache exists to
            // make rare.
            if let Some(&victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                inner.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.map.insert(
            key,
            Entry {
                plan: Arc::clone(&plan),
                last_used: clock,
            },
        );
        plan
    }

    /// Fingerprint `sample`, returning the cached plan on a hit or building,
    /// inserting and returning it on a miss. Returns `(plan, fingerprint)`.
    ///
    /// Concurrent misses on the same key may both build; the later insert
    /// wins. Plans are deterministic functions of `(sample, config)`, so the
    /// race is benign.
    pub fn get_or_build(&self, sample: &Sample, config: &PlanConfig) -> (Arc<SamplePlan>, u64) {
        let key = sample_fingerprint(sample, config);
        if let Some(plan) = self.get(key) {
            return (plan, key);
        }
        let plan = self.insert(key, build_plan(sample, config));
        (plan, key)
    }

    /// Drop every resident plan (counters keep their totals). The serving
    /// layer calls this on model hot-swap: resident plans were compiled
    /// under the old model's preprocessing and must not answer
    /// by-fingerprint queries under the new one. Outstanding `Arc`s stay
    /// valid for whatever batch already holds them.
    pub fn clear(&self) {
        self.inner.lock().expect("plan cache poisoned").map.clear();
    }

    /// Cached plans currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan cache poisoned").map.len()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Maximum resident plans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureScales;
    use rn_dataset::{generate, GeneratorConfig, Normalizer};
    use rn_netgraph::topologies;
    use rn_netsim::SimConfig;

    fn toy_samples(n: usize) -> Vec<Sample> {
        let config = GeneratorConfig {
            sim: SimConfig {
                duration_s: 60.0,
                warmup_s: 10.0,
                ..SimConfig::default()
            },
            ..GeneratorConfig::default()
        };
        generate(&topologies::toy5(), &config, 77, n).samples
    }

    fn prep() -> (FeatureScales, Normalizer) {
        (FeatureScales::unit(), Normalizer::fit(&[1e-3, 2e-3], true))
    }

    fn config<'a>(prep: &'a (FeatureScales, Normalizer)) -> PlanConfig<'a> {
        PlanConfig {
            scales: &prep.0,
            normalizer: &prep.1,
            state_dim: 8,
            min_packets: 5,
            target: TargetKind::Delay,
        }
    }

    #[test]
    fn sample_fingerprint_is_stable_and_content_sensitive() {
        let samples = toy_samples(2);
        let p = prep();
        let cfg = config(&p);
        let a = sample_fingerprint(&samples[0], &cfg);
        assert_eq!(a, sample_fingerprint(&samples[0], &cfg), "deterministic");
        assert_ne!(
            a,
            sample_fingerprint(&samples[1], &cfg),
            "different traffic must fingerprint differently"
        );
        // Config changes re-key the scenario too.
        let mut wide = config(&p);
        wide.state_dim = 16;
        assert_ne!(a, sample_fingerprint(&samples[0], &wide));
        // Targets do NOT participate: a label-only change keeps the key.
        let mut relabeled = samples[0].clone();
        for t in &mut relabeled.targets {
            t.mean_delay_s *= 2.0;
        }
        assert_eq!(a, sample_fingerprint(&relabeled, &cfg));
    }

    #[test]
    fn plan_fingerprint_matches_scenario_identity() {
        let samples = toy_samples(2);
        let p = prep();
        let cfg = config(&p);
        let plan_a1 = build_plan(&samples[0], &cfg);
        let plan_a2 = build_plan(&samples[0], &cfg);
        let plan_b = build_plan(&samples[1], &cfg);
        assert_eq!(plan_a1.fingerprint(), plan_a2.fingerprint());
        assert_ne!(plan_a1.fingerprint(), plan_b.fingerprint());
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let samples = toy_samples(2);
        let p = prep();
        let cfg = config(&p);
        let cache = PlanCache::new(8);
        let (plan_first, key) = cache.get_or_build(&samples[0], &cfg);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let (plan_again, key_again) = cache.get_or_build(&samples[0], &cfg);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(key, key_again);
        assert!(
            Arc::ptr_eq(&plan_first, &plan_again),
            "hit must return the cached plan"
        );
        cache.get_or_build(&samples[1], &cfg);
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let samples = toy_samples(3);
        let p = prep();
        let cfg = config(&p);
        let cache = PlanCache::new(2);
        let (_, k0) = cache.get_or_build(&samples[0], &cfg);
        let (_, k1) = cache.get_or_build(&samples[1], &cfg);
        // Touch k0 so k1 becomes the LRU victim.
        assert!(cache.get(k0).is_some());
        cache.get_or_build(&samples[2], &cfg);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(k0).is_some(), "recently used entry survives");
        assert!(cache.get(k1).is_none(), "LRU entry evicted");
    }

    #[test]
    fn lru_order_survives_interleaved_hits_misses_and_flushes() {
        // Synthetic keys over one toy plan: the cache's LRU bookkeeping is
        // key-based, so plan content is irrelevant here.
        let samples = toy_samples(1);
        let p = prep();
        let cfg = config(&p);
        let plan = build_plan(&samples[0], &cfg);
        let cache = PlanCache::new(3);

        // Fill: 1, 2, 3 (LRU order: 1 oldest).
        for key in [1u64, 2, 3] {
            cache.insert(key, plan.clone());
        }
        // Interleave hits to rotate the LRU order to: 2 oldest, then 1, 3.
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        assert!(cache.get(9).is_none(), "unknown key must miss");
        // Insert over capacity: 2 (the LRU victim) must go.
        cache.insert(4, plan.clone());
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(2).is_none(), "LRU entry 2 must be evicted");
        assert!(cache.get(1).is_some() && cache.get(3).is_some());
        assert!(cache.get(4).is_some());

        // Re-inserting a resident key refreshes it without eviction.
        cache.insert(1, plan.clone());
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 1, "replacement must not evict");
        // Now 3 is oldest (1 and 4 were touched more recently).
        cache.insert(5, plan.clone());
        assert!(cache.get(3).is_none(), "entry 3 was the LRU victim");
        assert_eq!(cache.evictions(), 2);

        // Swap-flush (model hot-swap): everything goes, counters persist.
        let (hits_before, misses_before) = (cache.hits(), cache.misses());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), hits_before, "clear must keep hit totals");
        assert_eq!(cache.misses(), misses_before);
        assert!(cache.get(1).is_none(), "flushed entries miss");
        assert_eq!(cache.misses(), misses_before + 1);

        // The LRU clock survives the flush: refill and evict again.
        for key in [6u64, 7, 8] {
            cache.insert(key, plan.clone());
        }
        assert!(cache.get(6).is_some());
        cache.insert(9, plan.clone());
        assert!(cache.get(7).is_none(), "post-flush LRU order must hold");
        assert!(cache.get(6).is_some() && cache.get(8).is_some());
    }

    #[test]
    fn hit_miss_counters_are_exact_over_mixed_sequences() {
        let samples = toy_samples(2);
        let p = prep();
        let cfg = config(&p);
        let cache = PlanCache::new(2);
        let plan = build_plan(&samples[0], &cfg);

        // 3 misses via get, 2 inserts, then a deterministic hit/miss mix.
        assert!(cache.get(100).is_none());
        assert!(cache.get(101).is_none());
        assert!(cache.get(102).is_none());
        cache.insert(100, plan.clone());
        cache.insert(101, plan.clone());
        for _ in 0..4 {
            assert!(cache.get(100).is_some());
        }
        assert!(cache.get(101).is_some());
        assert!(cache.get(200).is_none());
        assert_eq!(cache.hits(), 5);
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.evictions(), 0);

        // get_or_build counts exactly one miss then pure hits.
        let (_, key) = cache.get_or_build(&samples[1], &cfg);
        assert_eq!(cache.misses(), 5, "first get_or_build misses once");
        assert_eq!(cache.evictions(), 1, "capacity-2 cache evicts the LRU");
        let (_, key_again) = cache.get_or_build(&samples[1], &cfg);
        assert_eq!(key, key_again);
        assert_eq!(cache.hits(), 6);
        assert_eq!(cache.misses(), 5);
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let samples = toy_samples(2);
        let p = prep();
        let cfg = config(&p);
        let cache = PlanCache::new(4);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for sample in &samples {
                        let (plan, _) = cache.get_or_build(sample, &cfg);
                        assert_eq!(plan.n_paths, sample.num_paths());
                    }
                });
            }
        });
        assert_eq!(cache.len(), 2);
        assert!(cache.hits() + cache.misses() == 8);
        assert!(cache.misses() >= 2, "each distinct scenario misses once");
    }
}
