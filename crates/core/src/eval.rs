//! Evaluation: relative-error distributions — the paper's Figure 2 artifact.

use crate::entities::SamplePlan;
use crate::model::PathPredictor;
use rayon::prelude::*;
use rn_dataset::Dataset;
use rn_tensor::stats::{EmpiricalCdf, Summary};
use serde::{Deserialize, Serialize};

/// The evaluation record of one (model, dataset) pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalReport {
    /// Model identifier ("original" / "extended" / baseline name).
    pub model: String,
    /// Dataset/topology identifier (e.g. "geant2", "nsfnet").
    pub dataset: String,
    /// Signed relative errors `(pred − true) / true` over all reliable paths
    /// of all samples — the quantity whose CDF the paper plots.
    pub rel_errors: Vec<f64>,
    /// Mean absolute error in seconds.
    pub mae_s: f64,
    /// Root-mean-square error in seconds.
    pub rmse_s: f64,
    /// Summary of |relative error|.
    pub abs_rel_summary: Summary,
}

impl EvalReport {
    /// Build a report from aligned prediction/target vectors.
    pub fn from_predictions(
        model: impl Into<String>,
        dataset: impl Into<String>,
        predictions: &[f64],
        targets: &[f64],
    ) -> Self {
        assert_eq!(
            predictions.len(),
            targets.len(),
            "prediction/target length mismatch"
        );
        // Empty input yields an empty report (zero paths, zeroed summary):
        // evaluating an empty dataset — e.g. after reliability filtering —
        // is a legitimate no-op, not a crash.
        if predictions.is_empty() {
            return Self {
                model: model.into(),
                dataset: dataset.into(),
                rel_errors: Vec::new(),
                mae_s: 0.0,
                rmse_s: 0.0,
                abs_rel_summary: Summary::of(&[]),
            };
        }
        let mut rel = Vec::with_capacity(predictions.len());
        let mut abs_sum = 0.0;
        let mut sq_sum = 0.0;
        for (&p, &t) in predictions.iter().zip(targets) {
            assert!(
                t > 0.0,
                "targets must be positive (filtered upstream), got {t}"
            );
            rel.push((p - t) / t);
            abs_sum += (p - t).abs();
            sq_sum += (p - t) * (p - t);
        }
        let n = predictions.len() as f64;
        let abs_rel: Vec<f64> = rel.iter().map(|e| e.abs()).collect();
        Self {
            model: model.into(),
            dataset: dataset.into(),
            rel_errors: rel,
            mae_s: abs_sum / n,
            rmse_s: (sq_sum / n).sqrt(),
            abs_rel_summary: Summary::of(&abs_rel),
        }
    }

    /// Number of evaluated paths.
    pub fn num_paths(&self) -> usize {
        self.rel_errors.len()
    }

    /// Empirical CDF of the signed relative error (the Figure 2 curve).
    pub fn cdf(&self) -> EmpiricalCdf {
        EmpiricalCdf::new(&self.rel_errors)
    }

    /// `(x, F(x))` series of the signed relative-error CDF at the given xs.
    pub fn cdf_series_at(&self, xs: &[f64]) -> Vec<(f64, f64)> {
        self.cdf().series_at(xs)
    }

    /// Median of |relative error| — the headline accuracy number.
    pub fn median_abs_rel(&self) -> f64 {
        self.abs_rel_summary.median
    }

    /// One-line human-readable summary.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<9} on {:<7}: paths {:>7}, median|rel| {:>6.3}, p90|rel| {:>6.3}, p95|rel| {:>6.3}, MAE {:.4}s, RMSE {:.4}s",
            self.model,
            self.dataset,
            self.num_paths(),
            self.abs_rel_summary.median,
            self.abs_rel_summary.p90,
            self.abs_rel_summary.p95,
            self.mae_s,
            self.rmse_s
        )
    }
}

/// Path-row budget per fused evaluation pass. Megabatching pays off by
/// amortizing binds and fattening matmuls, but the tape keeps every step's
/// activations resident, so packs that outgrow the cache lose more than
/// they gain. Chunks are packed greedily until they would exceed this many
/// path rows: small samples (toy topologies) batch up by the dozen, while
/// GEANT2-sized samples run close to singly.
const EVAL_PATH_BUDGET: usize = 512;

/// Greedy size-aware chunking: consecutive plans packed while the path-row
/// budget holds (every chunk gets at least one plan).
fn eval_chunks(plans: &[SamplePlan]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut start = 0;
    while start < plans.len() {
        let mut end = start + 1;
        let mut paths = plans[start].n_paths;
        while end < plans.len() && paths + plans[end].n_paths <= EVAL_PATH_BUDGET {
            paths += plans[end].n_paths;
            end += 1;
        }
        ranges.push((start, end));
        start = end;
    }
    ranges
}

/// Evaluate a trained model over a dataset: plan every sample (in parallel),
/// predict in fused megabatches packed by `eval_chunks` (greedy, up to
/// `EVAL_PATH_BUDGET` path rows each), collect reliable paths, compute the
/// relative-error report.
pub fn evaluate<M: PathPredictor>(
    model: &M,
    dataset: &Dataset,
    dataset_name: &str,
    min_packets: u64,
) -> EvalReport {
    let plans: Vec<SamplePlan> = dataset
        .samples
        .par_iter()
        .map(|sample| {
            let mut plan = model.plan(sample);
            // Respect the caller's reliability threshold even if it differs
            // from the model's default plan config.
            plan.reliable_idx = sample
                .targets
                .iter()
                .enumerate()
                .filter(|(_, t)| t.is_reliable(min_packets) && t.mean_delay_s > 0.0)
                .map(|(i, _)| i)
                .collect();
            plan.reliable_shared = std::sync::OnceLock::new();
            plan
        })
        .collect();
    let pairs = collect_predictions(model, &plans);
    let (preds, targets): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
    EvalReport::from_predictions(model.name(), dataset_name, &preds, &targets)
}

/// Evaluate raw `(prediction, target)` pairs from a non-learned baseline.
pub fn evaluate_baseline(name: &str, dataset_name: &str, pairs: &[(f64, f64)]) -> EvalReport {
    let (preds, targets): (Vec<f64>, Vec<f64>) = pairs.iter().copied().unzip();
    EvalReport::from_predictions(name, dataset_name, &preds, &targets)
}

/// Plan-level prediction collection — exposed for harnesses that already
/// built plans (avoids re-planning in ablation sweeps). Runs the fused
/// megabatch inference path: workers pack size-aware chunks (see
/// `eval_chunks`) into block-diagonal forward passes on pooled tapes;
/// each chunk flows through the composition layer (`build_megabatch` is
/// compose + extract + assemble). One-shot evaluation has no recurring
/// batch shapes to cache, so no `CompositionCache` sits here — the trainer
/// owns that reuse for its fixed batches and validation chunks.
pub fn collect_predictions<M: PathPredictor>(model: &M, plans: &[SamplePlan]) -> Vec<(f64, f64)> {
    let tape_pool = rn_autograd::TapePool::new();
    eval_chunks(plans)
        .par_iter()
        .flat_map_iter(|&(start, end)| {
            let chunk = &plans[start..end];
            let mut tape = tape_pool.acquire();
            let batch_preds = model.predict_batch_with(&mut tape, chunk);
            tape_pool.release(tape);
            chunk
                .iter()
                .zip(batch_preds)
                .flat_map(|(plan, preds)| {
                    plan.reliable_idx
                        .iter()
                        .map(|&i| (preds[i], plan.targets_raw[i]))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Per-sample (unfused) prediction collection — the legacy path, kept for
/// comparison and for harnesses that need one tape per sample.
pub fn collect_predictions_per_sample<M: PathPredictor>(
    model: &M,
    plans: &[SamplePlan],
) -> Vec<(f64, f64)> {
    plans
        .par_iter()
        .flat_map_iter(|plan| {
            let preds = model.predict(plan);
            plan.reliable_idx
                .iter()
                .map(|&i| (preds[i], plan.targets_raw[i]))
                .collect::<Vec<_>>()
                .into_iter()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_give_zero_errors() {
        let t = [0.1, 0.2, 0.3];
        let r = EvalReport::from_predictions("m", "d", &t, &t);
        assert_eq!(r.mae_s, 0.0);
        assert_eq!(r.rmse_s, 0.0);
        assert!(r.rel_errors.iter().all(|&e| e == 0.0));
        assert_eq!(r.median_abs_rel(), 0.0);
    }

    #[test]
    fn signed_errors_keep_direction() {
        let r = EvalReport::from_predictions("m", "d", &[0.2, 0.05], &[0.1, 0.1]);
        assert!(
            (r.rel_errors[0] - 1.0).abs() < 1e-12,
            "overprediction is +100%"
        );
        assert!(
            (r.rel_errors[1] + 0.5).abs() < 1e-12,
            "underprediction is -50%"
        );
    }

    #[test]
    fn cdf_series_is_monotone() {
        let preds = [0.11, 0.19, 0.33, 0.09, 0.52];
        let targets = [0.1, 0.2, 0.3, 0.1, 0.5];
        let r = EvalReport::from_predictions("m", "d", &preds, &targets);
        let xs: Vec<f64> = (-10..=10).map(|i| i as f64 / 10.0).collect();
        let series = r.cdf_series_at(&xs);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn better_model_has_smaller_median() {
        let targets = [0.1, 0.2, 0.3, 0.4];
        let good: Vec<f64> = targets.iter().map(|t| t * 1.05).collect();
        let bad: Vec<f64> = targets.iter().map(|t| t * 1.8).collect();
        let rg = EvalReport::from_predictions("good", "d", &good, &targets);
        let rb = EvalReport::from_predictions("bad", "d", &bad, &targets);
        assert!(rg.median_abs_rel() < rb.median_abs_rel());
    }

    #[test]
    fn summary_line_mentions_model_and_dataset() {
        let r = EvalReport::from_predictions("extended", "nsfnet", &[0.1], &[0.1]);
        let line = r.summary_line();
        assert!(line.contains("extended") && line.contains("nsfnet"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_rejected() {
        let _ = EvalReport::from_predictions("m", "d", &[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn empty_input_yields_empty_report() {
        let r = EvalReport::from_predictions("m", "d", &[], &[]);
        assert_eq!(r.num_paths(), 0);
        assert_eq!(r.mae_s, 0.0);
        assert_eq!(r.rmse_s, 0.0);
        assert_eq!(r.median_abs_rel(), 0.0);
        assert!(r.summary_line().contains('m'));
    }

    #[test]
    fn evaluate_handles_empty_dataset() {
        use crate::config::ModelConfig;
        use crate::model::ExtendedRouteNet;
        let topo = rn_netgraph::topologies::toy5();
        let ds = rn_dataset::Dataset {
            topology: topo,
            samples: Vec::new(),
        };
        let model = ExtendedRouteNet::new(ModelConfig {
            state_dim: 8,
            mp_iterations: 1,
            readout_hidden: 8,
            ..ModelConfig::default()
        });
        let report = evaluate(&model, &ds, "empty", 5);
        assert_eq!(report.num_paths(), 0);
    }
}
