//! Minibatch training with data-parallel gradients.
//!
//! Each training step picks a minibatch of sample graphs. By default the
//! batch is packed into block-diagonal **megabatches**
//! ([`crate::entities::build_megabatch`]): each worker runs ONE fused
//! forward/backward over several samples at once — one parameter `bind()`
//! amortized over the pack, `B`-fold taller (cache-friendlier) matmuls, and
//! an order of magnitude fewer tape nodes. Workers draw reusable tapes from
//! a [`TapePool`], so the steady-state loop is allocation-free.
//!
//! ## Batch scheduler and structure reuse
//!
//! Megabatch **membership is fixed once** from the seeded shuffle; later
//! epochs only permute the order batches are visited in. That means every
//! megabatch's composed structure ([`crate::compose::ComposedMegabatch`]) is
//! built exactly once — lazily on first visit, with the *next* batch
//! composed ahead of time on the worker pool's background lane while the
//! current batch runs — and epochs ≥ 2 do **zero** structure work per step:
//! the steady-state loop binds straight against cached compositions.
//! Validation chunks are composed once up front and reused every epoch.
//!
//! The loss of a megabatch is weighted per row so its gradient equals the
//! mean of per-sample mean losses — the exact semantics of the legacy
//! per-sample path, which remains available via
//! [`TrainConfig::use_megabatch`] `= false` (samples then run on their own
//! tapes, in parallel with rayon, like the original TensorFlow RouteNet;
//! that path keeps its per-epoch membership reshuffle).

use crate::compose::ComposedMegabatch;
use crate::entities::{MegabatchPlan, SamplePlan};
use crate::model::PathPredictor;
use crate::train_trace::{self, TrainTrace};
use rayon::prelude::*;
use rayon::WorkerPool;
use rn_autograd::{Graph, TapePool};
use rn_dataset::Dataset;
use rn_nn::loss::Loss;
use rn_nn::{clip_global_norm, Adam, Optimizer};
use rn_tensor::{Matrix, Prng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Training hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Sample graphs per optimizer step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
    /// Regression loss.
    pub loss: Loss,
    /// Minimum delivered packets for a path label to be trained on.
    pub min_packets: u64,
    /// Shuffling seed.
    pub seed: u64,
    /// Stop early when validation loss fails to improve for this many epochs
    /// (`None` disables; requires a validation set).
    pub patience: Option<usize>,
    /// Halve the learning rate at the start of these (0-based) epochs — a
    /// simple step schedule that stabilizes the late phase of training.
    pub lr_halve_epochs: Vec<usize>,
    /// Print one progress line per epoch to stderr.
    pub verbose: bool,
    /// Run batches as fused block-diagonal megabatches (the fast default).
    /// `false` restores the per-sample-tape path.
    pub use_megabatch: bool,
    /// Samples per megabatch shard; a batch is split into
    /// `ceil(batch_size / megabatch_size)` shards processed in parallel.
    /// Fixed shard boundaries keep training seed-deterministic regardless
    /// of worker count.
    pub megabatch_size: usize,
    /// Worker threads for the sharded forward/backward *inside* one
    /// megabatch: the block-diagonal plan's per-sample shards fan out to a
    /// persistent worker pool, and gradients are reduced in a fixed
    /// per-sample order, so results are **bitwise identical** for any value
    /// here (1 runs everything inline). This lever composes with
    /// `megabatch_size`: megabatches parallelize across the batch, shards
    /// parallelize within each megabatch.
    pub backward_shards: usize,
    /// Stream megabatch composition instead of caching it: each batch's
    /// composed megabatch slices are built one visit ahead on the worker
    /// pool's background lane, consumed, and **dropped** — nothing is
    /// retained across epochs, so peak memory is bounded by two batches'
    /// compositions (current + prefetched) instead of the whole epoch's.
    /// Validation chunks stream the same way. The default (`false`) caches
    /// every composition after the cold first epoch, which is faster in
    /// steady state but holds CSR + feature buffers for the entire training
    /// set — prohibitive for giant (ISP-scale) topologies. Composition is a
    /// pure function of the plans, and slices are consumed in the same
    /// fixed order either way, so trained models are **bitwise identical**
    /// with streaming on or off (pinned by `tests/composed_equivalence.rs`).
    pub stream_compose: bool,
    /// Where the per-epoch stage-breakdown JSONL stream goes when tracing
    /// is on (`RN_TRACE=1`); see [`crate::train_trace`]. `None` falls back
    /// to the `RN_TRACE_TRAIN_OUT` env knob, then `train_metrics.jsonl`.
    /// Ignored (nothing is written) while tracing is off, so this field is
    /// wire-optional for configs saved before it existed.
    pub trace_out: Option<String>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 20,
            batch_size: 8,
            learning_rate: 1e-3,
            grad_clip: 5.0,
            loss: Loss::Mse,
            min_packets: 10,
            seed: 0,
            patience: None,
            lr_halve_epochs: Vec::new(),
            verbose: false,
            use_megabatch: true,
            megabatch_size: 4,
            backward_shards: 1,
            stream_compose: false,
            trace_out: None,
        }
    }
}

impl TrainConfig {
    /// The env var overriding [`TrainConfig::backward_shards`] — the single
    /// knob CI uses to inject extra shard-worker configurations. Read it
    /// through [`TrainConfig::env_backward_shards`] (tests, benches) or
    /// [`TrainConfig::from_env`] (training entry points); ad-hoc
    /// `std::env::var` reads of this name are how the knob drifts.
    pub const BACKWARD_SHARDS_ENV: &'static str = "RN_BACKWARD_SHARDS";

    /// The env var overriding [`TrainConfig::stream_compose`] — the
    /// memory-bounded composition mode for giant-topology training. Read it
    /// through [`TrainConfig::env_stream_compose`] or
    /// [`TrainConfig::from_env`].
    pub const STREAM_COMPOSE_ENV: &'static str = "RN_STREAM_COMPOSE";

    /// Every training-side environment knob, as `(name, what it overrides)`
    /// pairs — the **single source of truth** the README's "Configuration"
    /// table is checked against (`readme_documents_every_env_knob` test).
    /// Add a row here whenever a new `RN_*` training env is introduced and
    /// the README table, the parser and the docs stay in lockstep.
    pub const ENV_DOCS: &'static [(&'static str, &'static str)] = &[
        (
            Self::BACKWARD_SHARDS_ENV,
            "worker threads for the sharded (megabatch-internal) forward/backward; \
             overrides TrainConfig::backward_shards, bitwise-identical at any value",
        ),
        (
            Self::STREAM_COMPOSE_ENV,
            "1/true/on streams megabatch composition (build one batch ahead, consume, drop) \
             instead of caching every composition across epochs; overrides \
             TrainConfig::stream_compose. Bounds training memory to two batches' compositions \
             — for giant topologies — at the cost of recomposing every epoch. Trained models \
             are bitwise identical either way",
        ),
        (
            crate::compose::INTRA_SHARDS_ENV,
            "intra-sample dense shard count for single-sample compositions (giant topologies): \
             N > 1 fans the link/node GRU updates and the readout MLP out over N balanced row \
             blocks while message passing keeps the legacy single-shard schedule; bitwise \
             identical at any value, disabled when unset",
        ),
        (
            rn_autograd::ZERO_COPY_ENV,
            "tape index mode, on by default: steps against a cached composition record \
             Arc-backed views of the composition's index buffers instead of copying every \
             row/segment list into the tape pool (0/false/off restores the copying mode). \
             Gradients and trained models are bitwise identical either way; \
             Graph::index_words_copied counts what each mode actually copies",
        ),
        (
            "RN_TRACE",
            "master observability switch (read by rn_trace, honored workspace-wide): 1/true/on \
             records stage-level span timing in the trainer, the serve request lifecycle and \
             the autograd backward walk; anything else keeps tracing off at one atomic load \
             per potential span. Never changes results — predictions and gradients are \
             bitwise identical either way",
        ),
        (
            crate::train_trace::TRACE_OUT_ENV,
            "path of the trainer's per-epoch stage-breakdown JSONL stream (requires RN_TRACE=1); \
             overrides TrainConfig::trace_out, defaults to train_metrics.jsonl",
        ),
        (
            "RN_TRACE_SERVE_OUT",
            "path the serve quickstart example and rn_loadgen write the final MetricsSnapshot \
             (with per-stage latency breakdown) to as one JSON line (requires RN_TRACE=1); \
             defaults to serve_metrics.jsonl",
        ),
        (
            "RN_QOS_VALIDATION_OUT",
            "path the QoS validation harness (tests/model_vs_simulator.rs, \
             trained_qos_model_tracks_per_class_delays) writes its JSON report to — per-class \
             model/simulator/theory delays plus relative errors; unset skips the write",
        ),
    ];

    /// The `RN_BACKWARD_SHARDS` override, if set to a positive integer.
    /// Malformed or non-positive values are ignored (`None`), never a panic:
    /// CI environments outlive the code that validates them.
    pub fn env_backward_shards() -> Option<usize> {
        Self::parse_backward_shards(std::env::var(Self::BACKWARD_SHARDS_ENV).ok().as_deref())
    }

    /// Interpret a raw `RN_BACKWARD_SHARDS` value: positive integers apply
    /// (surrounding whitespace tolerated), everything else is ignored. Pure
    /// and unit-testable — the tests exercise this instead of mutating
    /// process-global env state under a multi-threaded test harness.
    pub fn parse_backward_shards(raw: Option<&str>) -> Option<usize> {
        raw?.trim().parse::<usize>().ok().filter(|&n| n > 0)
    }

    /// The `RN_STREAM_COMPOSE` override, if set to a recognized boolean.
    pub fn env_stream_compose() -> Option<bool> {
        Self::parse_stream_compose(std::env::var(Self::STREAM_COMPOSE_ENV).ok().as_deref())
    }

    /// Interpret a raw `RN_STREAM_COMPOSE` value: `1`/`true`/`on` enable,
    /// `0`/`false`/`off` disable (case-insensitive, surrounding whitespace
    /// tolerated), anything else is ignored. Pure and unit-testable, like
    /// [`TrainConfig::parse_backward_shards`].
    pub fn parse_stream_compose(raw: Option<&str>) -> Option<bool> {
        match raw?.trim().to_ascii_lowercase().as_str() {
            "1" | "true" | "on" => Some(true),
            "0" | "false" | "off" => Some(false),
            _ => None,
        }
    }

    /// [`TrainConfig::default`] with every recognized env override applied.
    pub fn from_env() -> Self {
        Self::default().with_env_overrides()
    }

    /// Apply env overrides (`RN_BACKWARD_SHARDS`, `RN_STREAM_COMPOSE`,
    /// `RN_TRACE_TRAIN_OUT`) on
    /// top of an explicitly constructed config. (`RN_TRACE` itself is read
    /// lazily by `rn_trace`, not stored here.)
    pub fn with_env_overrides(mut self) -> Self {
        if let Some(shards) = Self::env_backward_shards() {
            self.backward_shards = shards;
        }
        if let Some(stream) = Self::env_stream_compose() {
            self.stream_compose = stream;
        }
        if let Some(path) = std::env::var(crate::train_trace::TRACE_OUT_ENV)
            .ok()
            .filter(|p| !p.trim().is_empty())
        {
            self.trace_out = Some(path);
        }
        self
    }
}

/// Per-epoch loss record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingHistory {
    /// Mean training loss per epoch (normalized-target space).
    pub train_loss: Vec<f64>,
    /// Mean validation loss per epoch (empty without a validation set).
    pub val_loss: Vec<f64>,
    /// Epoch index training stopped at (== `epochs` unless early-stopped).
    pub stopped_at: usize,
}

impl TrainingHistory {
    /// Final training loss.
    pub fn final_train_loss(&self) -> f64 {
        *self.train_loss.last().expect("at least one epoch")
    }

    /// Best validation loss, if validation ran.
    pub fn best_val_loss(&self) -> Option<f64> {
        self.val_loss
            .iter()
            .copied()
            .fold(None, |best, v| match best {
                None => Some(v),
                Some(b) => Some(b.min(v)),
            })
    }
}

/// Gather the reliable prediction rows for the loss, honoring the tape's
/// zero-copy mode: an `Arc`-backed view of `reliable_idx` when on, the
/// legacy pooled copy when off (bitwise-identical either way).
fn gather_reliable(g: &mut Graph, pred: rn_autograd::Var, plan: &SamplePlan) -> rn_autograd::Var {
    if g.zero_copy() {
        g.gather_rows_sharded(pred, plan.reliable_idx_shared().into(), None)
    } else {
        g.gather_rows(pred, &plan.reliable_idx)
    }
}

/// Forward + loss on one plan; returns `(loss, grads)` or `None` when the
/// plan has no reliable labels. The legacy per-sample gradient path.
fn sample_gradients<M: PathPredictor>(
    model: &M,
    plan: &SamplePlan,
    loss: Loss,
    stages: &rn_trace::StageRecorder,
) -> Option<(f64, Vec<Matrix>)> {
    if plan.reliable_idx.is_empty() {
        return None;
    }
    let mut g = Graph::new();
    let fwd = stages.span(train_trace::FORWARD);
    let bound = model.bind(&mut g);
    let pred = model.forward(&mut g, &bound, plan);
    let reliable = gather_reliable(&mut g, pred, plan);
    let target = g.constant(plan.reliable_targets_norm());
    let loss_node = loss.apply(&mut g, reliable, target);
    let loss_value = g.value(loss_node).get(0, 0) as f64;
    fwd.finish();
    let bwd = stages.span(train_trace::BACKWARD);
    g.backward(loss_node);
    bwd.finish();
    Some((loss_value, model.grads(&g, &bound)))
}

/// Loss only (no backward) — used for validation.
fn sample_loss<M: PathPredictor>(model: &M, plan: &SamplePlan, loss: Loss) -> Option<f64> {
    if plan.reliable_idx.is_empty() {
        return None;
    }
    let mut g = Graph::new();
    let bound = model.bind(&mut g);
    let pred = model.forward(&mut g, &bound, plan);
    let reliable = gather_reliable(&mut g, pred, plan);
    let target = g.constant(plan.reliable_targets_norm());
    let loss_node = loss.apply(&mut g, reliable, target);
    Some(g.value(loss_node).get(0, 0) as f64)
}

/// One fused forward/backward over a **pre-composed** megabatch shard on a
/// pooled tape.
///
/// Returns `(sum_of_per_sample_mean_losses, samples_with_labels, grads)`;
/// the gradients are of `sum_s mean_loss_s / scale`, so with
/// `scale = reliable samples in the whole batch` the shard gradients of one
/// batch simply add up to the batch-mean gradient.
fn megabatch_gradients<M: PathPredictor>(
    model: &M,
    mb: &MegabatchPlan,
    loss: Loss,
    scale: usize,
    g: &mut Graph,
    stages: &rn_trace::StageRecorder,
) -> Option<(f64, usize, Vec<Matrix>)> {
    if mb.plan.reliable_idx.is_empty() {
        return None;
    }
    g.reset();
    let fwd = stages.span(train_trace::FORWARD);
    let bound = model.bind(g);
    let pred = model.forward(g, &bound, &mb.plan);
    let reliable = gather_reliable(g, pred, &mb.plan);
    let target = g.constant(mb.plan.reliable_targets_norm());
    let weights = Matrix::column_vector(
        &mb.sample_mean_weights
            .iter()
            .map(|w| w / scale as f32)
            .collect::<Vec<f32>>(),
    );
    let loss_node = loss.apply_weighted(g, reliable, target, &weights);
    // The weighted node evaluates to (sum of per-sample means) / scale.
    let sum_of_means = g.value(loss_node).get(0, 0) as f64 * scale as f64;
    fwd.finish();
    let bwd = stages.span(train_trace::BACKWARD);
    g.backward(loss_node);
    bwd.finish();
    Some((sum_of_means, mb.reliable_samples, model.grads(g, &bound)))
}

/// Validation loss of a pre-composed megabatch chunk:
/// `(sum_of_per_sample_means, count)`.
fn megabatch_loss<M: PathPredictor>(
    model: &M,
    mb: &MegabatchPlan,
    loss: Loss,
    g: &mut Graph,
) -> (f64, usize) {
    if mb.plan.reliable_idx.is_empty() {
        return (0.0, 0);
    }
    g.reset();
    let bound = model.bind(g);
    let pred = model.forward(g, &bound, &mb.plan);
    let reliable = gather_reliable(g, pred, &mb.plan);
    let target = g.constant(mb.plan.reliable_targets_norm());
    let weights = Matrix::column_vector(&mb.sample_mean_weights);
    let loss_node = loss.apply_weighted(g, reliable, target, &weights);
    (g.value(loss_node).get(0, 0) as f64, mb.reliable_samples)
}

/// Train `model` on `train_set`, optionally tracking `val_set`.
///
/// Fits preprocessing (feature scales, target normalizer) on the training set
/// first, then precomputes every sample's message-passing plan once and
/// reuses it across epochs.
pub fn train<M: PathPredictor>(
    model: &mut M,
    train_set: &Dataset,
    val_set: Option<&Dataset>,
    config: &TrainConfig,
) -> TrainingHistory {
    assert!(!train_set.is_empty(), "train: empty training set");
    model.fit_preprocessing(train_set, config.min_packets);
    let immutable: &M = model;
    let plans: Vec<SamplePlan> = train_set
        .samples
        .par_iter()
        .map(|s| immutable.plan(s))
        .collect();
    let val_plans: Vec<SamplePlan> = val_set
        .map(|ds| ds.samples.par_iter().map(|s| immutable.plan(s)).collect())
        .unwrap_or_default();
    train_on_plans_with_val(model, &plans, &val_plans, config)
}

/// Train on prebuilt plans, no validation. Preprocessing (scales and
/// normalizer) must already be set on the model — this is the entry point
/// for non-default targets such as jitter.
pub fn train_on_plans<M: PathPredictor>(
    model: &mut M,
    plans: &[SamplePlan],
    config: &TrainConfig,
) -> TrainingHistory {
    train_on_plans_with_val(model, plans, &[], config)
}

/// Train on prebuilt plans with an optional prebuilt validation set.
pub fn train_on_plans_with_val<M: PathPredictor>(
    model: &mut M,
    plans: &[SamplePlan],
    val_plans: &[SamplePlan],
    config: &TrainConfig,
) -> TrainingHistory {
    assert!(!plans.is_empty(), "train: empty training set");
    assert!(
        config.epochs > 0 && config.batch_size > 0,
        "train: degenerate config"
    );

    assert!(
        config.megabatch_size > 0,
        "train: megabatch_size must be positive"
    );

    // Stage-level tracing (RN_TRACE=1): every span below is inert — one
    // relaxed atomic load, no clock read — while tracing is off, and
    // recording never perturbs the math (bitwise-identical models either
    // way; see crate::train_trace).
    let trace = TrainTrace::new(config);
    let stages = trace.recorder();
    let mut optimizer = Adam::new(config.learning_rate);
    let mut rng = Prng::new(config.seed);
    let mut history = TrainingHistory {
        train_loss: Vec::new(),
        val_loss: Vec::new(),
        stopped_at: 0,
    };
    let mut best_val = f64::INFINITY;
    let mut bad_epochs = 0usize;
    // Best-validation weight snapshot (patience mode only). Early stopping
    // fires `patience` epochs *after* the best epoch by construction — the
    // trigger is that many non-improving epochs — so without a snapshot the
    // returned model carries the last (worse) epoch's weights. Snapshot at
    // every improvement, restore before returning; when the final epoch is
    // itself the best, the restore rewrites identical values.
    let mut best_weights: Option<Vec<Matrix>> = None;
    // Reusable tapes shared by whichever workers process shards; buffers
    // survive across batches and epochs.
    let tape_pool = TapePool::new();
    // The worker pool serves two roles on the megabatch path: its gang runs
    // the intra-megabatch sharded kernels (engaged on tapes only when
    // backward_shards > 1), and its background lane is where the prefetch
    // stage composes upcoming megabatches while the gang is busy.
    //
    // Intra-megabatch shard gang: each checked-out tape fans the fused ops'
    // per-sample shards across these workers. Gradients are identical at
    // any worker count (ordered per-shard reduction), so this is purely a
    // throughput lever. With the gang enabled, megabatches are processed
    // sequentially — intra-batch parallelism *replaces* inter-batch
    // parallelism. Running both at once would only make every rayon worker
    // queue on the gang's one-job-at-a-time publisher gate; picking one
    // axis keeps the cores busy without contention. Chunk results are
    // folded in the same order either way, so the choice cannot change a
    // bit of the gradients.
    let worker_pool: Option<Arc<WorkerPool>> = config
        .use_megabatch
        .then(|| Arc::new(WorkerPool::new(config.backward_shards)));
    let gang: Option<Arc<WorkerPool>> = worker_pool
        .as_ref()
        .filter(|_| config.backward_shards > 1)
        .cloned();
    let sharded_tape = |pool: &TapePool| {
        let mut tape = pool.acquire();
        tape.set_worker_pool(gang.clone());
        tape
    };

    // ---- Batch scheduler (megabatch path) --------------------------------
    // Megabatch membership is fixed ONCE from the seeded shuffle; epochs
    // >= 2 only permute the order batches are visited in. Fixed membership
    // is what makes structure reuse total: each batch's composed megabatch
    // (structure + features, both static across epochs here) is built once
    // and replayed verbatim, so the steady-state loop runs zero per-step
    // `build_megabatch` work.
    let (batches, batch_labelled): (Vec<Vec<usize>>, Vec<usize>) = if config.use_megabatch {
        let mut order: Vec<usize> = (0..plans.len()).collect();
        rng.shuffle(&mut order);
        let batches: Vec<Vec<usize>> = order
            .chunks(config.batch_size)
            .map(<[usize]>::to_vec)
            .collect();
        // Samples with labels per batch — the fixed gradient scale.
        let labelled = batches
            .iter()
            .map(|batch| {
                batch
                    .iter()
                    .filter(|&&i| !plans[i].reliable_idx.is_empty())
                    .count()
            })
            .collect();
        (batches, labelled)
    } else {
        (Vec::new(), Vec::new())
    };
    // One composed megabatch per shard of each batch, built lazily on the
    // first visit and cached for every later epoch. In streaming mode
    // (`config.stream_compose`) this cache stays empty: each batch's
    // compositions are claimed from the prefetch lane (or built inline),
    // consumed, and dropped, so resident composition memory is bounded by
    // two batches — the whole point for giant topologies.
    let mut composed: Vec<Option<Vec<ComposedMegabatch>>> = batches.iter().map(|_| None).collect();
    let compose_batch = |batch: &[usize]| -> Vec<ComposedMegabatch> {
        batch
            .chunks(config.megabatch_size)
            .map(|shard| {
                let parts: Vec<&SamplePlan> = shard.iter().map(|&i| &plans[i]).collect();
                ComposedMegabatch::compose(&parts).expect("train: uniform-width non-empty shard")
            })
            .collect()
    };
    let compose_val_chunk = |chunk: &[SamplePlan]| -> ComposedMegabatch {
        let parts: Vec<&SamplePlan> = chunk.iter().collect();
        ComposedMegabatch::compose(&parts).expect("train: uniform-width val chunk")
    };
    // Validation chunks are composed once up front and reused every epoch —
    // unless streaming, where they are recomposed (and dropped) per epoch.
    let val_composed: Vec<ComposedMegabatch> = if config.use_megabatch && !config.stream_compose {
        val_plans
            .chunks(config.megabatch_size)
            .map(compose_val_chunk)
            .collect()
    } else {
        Vec::new()
    };

    for epoch in 0..config.epochs {
        if config.lr_halve_epochs.contains(&epoch) {
            let lr = optimizer.learning_rate() * 0.5;
            optimizer.set_learning_rate(lr);
            if config.verbose {
                eprintln!(
                    "[{}] epoch {:>3}: learning rate halved to {lr:.2e}",
                    model.name(),
                    epoch + 1
                );
            }
        }

        let mut epoch_loss_sum = 0.0;
        let mut epoch_loss_count = 0usize;
        if config.use_megabatch {
            // Visit order: the first epoch follows membership order (the
            // seeded shuffle above — identical batching to the pre-scheduler
            // trainer); later epochs permute which batch is visited when.
            let mut visit: Vec<usize> = (0..batches.len()).collect();
            if epoch > 0 {
                rng.shuffle(&mut visit);
            }
            // Double-buffered prefetch: while the current batch runs on the
            // gang, the pool's background lane composes the next batch that
            // has no cached structure yet. Only the cold first epoch ever
            // has compose work to hide; the handle drains within the epoch.
            let mut pending: Option<(usize, rayon::Prefetch<'_, Vec<ComposedMegabatch>>)> = None;
            for (vi, &bi) in visit.iter().enumerate() {
                let labelled = batch_labelled[bi];
                if labelled == 0 {
                    continue;
                }
                // Claim this batch's compositions: from the prefetch lane
                // when it ran ahead, inline otherwise (cold start). The
                // compose_wait span covers both the lane join and any
                // inline compose — near-zero from epoch 2 on when caching,
                // the per-batch compose cost when streaming. In streaming
                // mode the claim is held locally and dropped at the end of
                // this iteration instead of parked in `composed`.
                let streamed: Option<Vec<ComposedMegabatch>> = {
                    let _compose_span = stages.span(train_trace::COMPOSE_WAIT);
                    if config.stream_compose {
                        Some(match pending.take() {
                            // The lane is always aimed at the next labelled
                            // batch in visit order, so a pending handle is
                            // this batch's — but claim defensively.
                            Some((pi, task)) if pi == bi => task.join(),
                            Some((_, task)) => {
                                drop(task.join());
                                compose_batch(&batches[bi])
                            }
                            None => compose_batch(&batches[bi]),
                        })
                    } else {
                        if composed[bi].is_none() {
                            if let Some((pi, task)) = pending.take() {
                                composed[pi] = Some(task.join());
                            }
                        }
                        if composed[bi].is_none() {
                            composed[bi] = Some(compose_batch(&batches[bi]));
                        }
                        None
                    }
                };
                // Aim the background lane at the next batch needing compose
                // work: the next uncomposed one when caching, the immediate
                // labelled successor when streaming (nothing is retained,
                // so every upcoming batch needs it).
                if pending.is_none() {
                    if let Some(pool) = worker_pool.as_deref() {
                        let next = visit[vi + 1..].iter().copied().find(|&b| {
                            batch_labelled[b] > 0
                                && (config.stream_compose || composed[b].is_none())
                        });
                        if let Some(nb) = next {
                            let compose_batch = &compose_batch;
                            let batches = &batches;
                            // SAFETY: the Prefetch handle is joined (or
                            // dropped, which blocks) strictly within this
                            // epoch's scope, and is never leaked — the
                            // borrowed plans/batches outlive it.
                            let task = unsafe { pool.submit(move || compose_batch(&batches[nb])) };
                            pending = Some((nb, task));
                        }
                    }
                }

                let snapshot: &M = model;
                let comps = streamed
                    .as_ref()
                    .or(composed[bi].as_ref())
                    .expect("composed above");
                let run_shard = |c: &ComposedMegabatch| {
                    let mut tape = sharded_tape(&tape_pool);
                    let out = megabatch_gradients(
                        snapshot,
                        c.megabatch(),
                        config.loss,
                        labelled,
                        &mut tape,
                        stages,
                    );
                    tape_pool.release(tape);
                    out
                };
                let results: Vec<(f64, usize, Vec<Matrix>)> = if gang.is_some() {
                    comps.iter().filter_map(run_shard).collect()
                } else {
                    comps.par_iter().filter_map(run_shard).collect()
                };
                let mut loss_sum = 0.0;
                let mut count = 0usize;
                let mut grads: Option<Vec<Matrix>> = None;
                for (sum_of_means, samples, shard_grads) in results {
                    loss_sum += sum_of_means;
                    count += samples;
                    match &mut grads {
                        None => grads = Some(shard_grads),
                        Some(acc) => {
                            for (a, g) in acc.iter_mut().zip(&shard_grads) {
                                a.add_assign(g);
                            }
                        }
                    }
                }
                // Shard gradients are already scaled by 1/labelled; their
                // sum is the batch-mean gradient.
                let Some(mut grads) = grads else { continue };
                epoch_loss_sum += loss_sum;
                epoch_loss_count += count;
                let _opt_span = stages.span(train_trace::OPTIMIZER);
                clip_global_norm(&mut grads, config.grad_clip);
                optimizer.step(&mut model.params_mut(), &grads);
            }
        } else {
            // Legacy per-sample path: membership reshuffles every epoch,
            // exactly as the original TensorFlow RouteNet trained.
            let mut order: Vec<usize> = (0..plans.len()).collect();
            rng.shuffle(&mut order);
            for batch in order.chunks(config.batch_size) {
                let snapshot: &M = model;
                let results: Vec<(f64, Vec<Matrix>)> = batch
                    .par_iter()
                    .filter_map(|&i| sample_gradients(snapshot, &plans[i], config.loss, stages))
                    .collect();
                if results.is_empty() {
                    continue;
                }
                let count = results.len();
                let mut loss_sum = 0.0;
                let mut grads: Option<Vec<Matrix>> = None;
                for (loss_value, sample_grads) in results {
                    loss_sum += loss_value;
                    match &mut grads {
                        None => grads = Some(sample_grads),
                        Some(acc) => {
                            for (a, g) in acc.iter_mut().zip(&sample_grads) {
                                a.add_assign(g);
                            }
                        }
                    }
                }
                let mut grads = grads.expect("non-empty batch");
                let scale = 1.0 / count as f32;
                for g in &mut grads {
                    g.map_inplace(|v| v * scale);
                }
                epoch_loss_sum += loss_sum;
                epoch_loss_count += count;
                let _opt_span = stages.span(train_trace::OPTIMIZER);
                clip_global_norm(&mut grads, config.grad_clip);
                optimizer.step(&mut model.params_mut(), &grads);
            }
        }
        let train_loss = if epoch_loss_count > 0 {
            epoch_loss_sum / epoch_loss_count as f64
        } else {
            f64::NAN
        };
        history.train_loss.push(train_loss);
        history.stopped_at = epoch + 1;

        let mut val_msg = String::new();
        let mut early_stop = false;
        if !val_plans.is_empty() {
            let _eval_span = stages.span(train_trace::EVAL);
            let snapshot: &M = model;
            let run_val_chunk = |c: &ComposedMegabatch| {
                let mut tape = sharded_tape(&tape_pool);
                let out = megabatch_loss(snapshot, c.megabatch(), config.loss, &mut tape);
                tape_pool.release(tape);
                out
            };
            let (sum, count) = if config.use_megabatch && config.stream_compose {
                // Streaming: compose each validation chunk, evaluate it,
                // drop it — resident memory is one chunk per evaluating
                // thread instead of the whole validation set.
                if gang.is_some() {
                    val_plans
                        .chunks(config.megabatch_size)
                        .map(|chunk| run_val_chunk(&compose_val_chunk(chunk)))
                        .fold((0.0, 0), |a, b| (a.0 + b.0, a.1 + b.1))
                } else {
                    val_plans
                        .par_chunks(config.megabatch_size)
                        .map(|chunk| run_val_chunk(&compose_val_chunk(chunk)))
                        .reduce(|| (0.0, 0), |a, b| (a.0 + b.0, a.1 + b.1))
                }
            } else if config.use_megabatch && gang.is_some() {
                // Same axis choice as training: the gang parallelizes inside
                // each chunk, so chunks run one after another.
                val_composed
                    .iter()
                    .map(run_val_chunk)
                    .fold((0.0, 0), |a, b| (a.0 + b.0, a.1 + b.1))
            } else if config.use_megabatch {
                val_composed
                    .par_iter()
                    .map(run_val_chunk)
                    .reduce(|| (0.0, 0), |a, b| (a.0 + b.0, a.1 + b.1))
            } else {
                val_plans
                    .par_iter()
                    .filter_map(|p| sample_loss(snapshot, p, config.loss))
                    .map(|l| (l, 1usize))
                    .reduce(|| (0.0, 0), |a, b| (a.0 + b.0, a.1 + b.1))
            };
            let val = if count > 0 {
                sum / count as f64
            } else {
                f64::NAN
            };
            history.val_loss.push(val);
            val_msg = format!(", val {val:.5}");

            if let Some(patience) = config.patience {
                if val < best_val - 1e-9 {
                    best_val = val;
                    bad_epochs = 0;
                    best_weights = Some(model.params().into_iter().cloned().collect());
                } else {
                    bad_epochs += 1;
                    if bad_epochs > patience {
                        if config.verbose {
                            eprintln!(
                                "[{}] early stop at epoch {} (no val improvement for {} epochs)",
                                model.name(),
                                epoch + 1,
                                patience
                            );
                        }
                        // Deferred so the epoch still emits its trace line.
                        early_stop = true;
                    }
                }
            }
        }
        if config.verbose {
            eprintln!(
                "[{}] epoch {:>3}: train {train_loss:.5}{val_msg}",
                model.name(),
                epoch + 1
            );
        }
        trace.emit_epoch(epoch, train_loss, history.val_loss.last().copied());
        if early_stop {
            break;
        }
    }
    // Patience tracking snapshotted the best-validation weights — hand
    // those back, not wherever the last epoch happened to land
    // (`tests: early_stopping_returns_best_validation_weights`).
    if let Some(best) = best_weights {
        for (param, saved) in model.params_mut().into_iter().zip(&best) {
            *param = saved.clone();
        }
    }
    trace.finish();
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::model::{ExtendedRouteNet, OriginalRouteNet};
    use rn_dataset::{generate, GeneratorConfig};
    use rn_netgraph::topologies;
    use rn_netsim::SimConfig;

    fn toy_dataset(n: usize, seed: u64) -> Dataset {
        let config = GeneratorConfig {
            sim: SimConfig {
                duration_s: 120.0,
                warmup_s: 20.0,
                ..SimConfig::default()
            },
            ..GeneratorConfig::default()
        };
        generate(&topologies::toy5(), &config, seed, n)
    }

    fn quick_train_config(epochs: usize) -> TrainConfig {
        TrainConfig {
            epochs,
            batch_size: 4,
            learning_rate: 2e-3,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn training_reduces_loss_extended() {
        let ds = toy_dataset(8, 51);
        let mut model = ExtendedRouteNet::new(ModelConfig {
            state_dim: 8,
            mp_iterations: 2,
            readout_hidden: 8,
            ..ModelConfig::default()
        });
        let history = train(&mut model, &ds, None, &quick_train_config(8));
        let first = history.train_loss[0];
        let last = history.final_train_loss();
        assert!(last < first, "loss did not drop: {first} -> {last}");
        assert_eq!(history.stopped_at, 8);
    }

    #[test]
    fn training_reduces_loss_original() {
        let ds = toy_dataset(8, 52);
        let mut model = OriginalRouteNet::new(ModelConfig {
            state_dim: 8,
            mp_iterations: 2,
            readout_hidden: 8,
            ..ModelConfig::default()
        });
        let history = train(&mut model, &ds, None, &quick_train_config(8));
        assert!(history.final_train_loss() < history.train_loss[0]);
    }

    #[test]
    fn validation_is_tracked_and_early_stopping_fires() {
        let train_ds = toy_dataset(6, 53);
        let val_ds = toy_dataset(3, 54);
        let mut model = ExtendedRouteNet::new(ModelConfig {
            state_dim: 8,
            mp_iterations: 1,
            readout_hidden: 8,
            ..ModelConfig::default()
        });
        let mut config = quick_train_config(50);
        config.patience = Some(2);
        let history = train(&mut model, &train_ds, Some(&val_ds), &config);
        assert_eq!(history.val_loss.len(), history.train_loss.len());
        assert!(history.stopped_at <= 50);
        assert!(history.best_val_loss().is_some());
    }

    #[test]
    fn early_stopping_returns_best_validation_weights() {
        // Early stopping fires `patience` epochs after the best epoch, so
        // the returned model must carry the best epoch's snapshot, not the
        // last epoch's weights. Pin it by retraining to exactly the best
        // epoch: the seeded schedule is a prefix-deterministic function of
        // the config, so a run truncated at the best epoch reproduces the
        // snapshot bit for bit.
        let train_ds = toy_dataset(6, 53);
        let val_ds = toy_dataset(3, 54);
        let make_model = || {
            ExtendedRouteNet::new(ModelConfig {
                state_dim: 8,
                mp_iterations: 1,
                readout_hidden: 8,
                ..ModelConfig::default()
            })
        };
        let run = |epochs: usize, patience: Option<usize>| {
            let mut model = make_model();
            let config = TrainConfig {
                patience,
                // Deliberately hot: validation must regress so the best
                // epoch lands strictly before the stop.
                learning_rate: 3e-2,
                ..quick_train_config(60)
            };
            let config = TrainConfig { epochs, ..config };
            let history = train(&mut model, &train_ds, Some(&val_ds), &config);
            (history, model)
        };
        let (history, stopped) = run(60, Some(1));
        assert!(history.stopped_at < 60, "early stop must fire");
        let best = history.best_val_loss().expect("validated");
        let best_epoch = history
            .val_loss
            .iter()
            .position(|&v| v == best)
            .expect("best epoch recorded");
        assert!(
            best_epoch + 1 < history.stopped_at,
            "stop fires after the best epoch (patience non-improving epochs later)"
        );

        // Truncated run: same schedule prefix, ends exactly at the best
        // epoch — its final weights ARE the snapshot.
        let (trunc_history, best_model) = run(best_epoch + 1, None);
        assert_eq!(
            trunc_history.val_loss.last().copied(),
            Some(best),
            "truncated run reproduces the best validation loss"
        );
        let plan = stopped.plan(&train_ds.samples[0]);
        assert_eq!(
            stopped.predict(&plan),
            best_model.predict(&plan),
            "early-stopped model must return the best-epoch weights"
        );
    }

    #[test]
    fn training_is_seed_deterministic() {
        let ds = toy_dataset(4, 55);
        let make = || {
            let mut model = ExtendedRouteNet::new(ModelConfig {
                state_dim: 8,
                mp_iterations: 1,
                readout_hidden: 8,
                seed: 3,
                ..ModelConfig::default()
            });
            let h = train(&mut model, &ds, None, &quick_train_config(3));
            (h.final_train_loss(), model)
        };
        let (loss_a, model_a) = make();
        let (loss_b, model_b) = make();
        assert_eq!(loss_a, loss_b);
        let plan = model_a.plan(&ds.samples[0]);
        assert_eq!(model_a.predict(&plan), model_b.predict(&plan));
    }

    #[test]
    fn legacy_per_sample_path_still_trains() {
        let ds = toy_dataset(8, 56);
        let mut model = ExtendedRouteNet::new(ModelConfig {
            state_dim: 8,
            mp_iterations: 2,
            readout_hidden: 8,
            ..ModelConfig::default()
        });
        let mut config = quick_train_config(6);
        config.use_megabatch = false;
        let history = train(&mut model, &ds, None, &config);
        assert!(history.final_train_loss() < history.train_loss[0]);
    }

    #[test]
    fn megabatch_and_per_sample_training_agree_closely() {
        // Same seed, same data: the first-epoch loss (computed before the
        // paths can drift apart) must agree to float accumulation error, and
        // final losses must stay in the same ballpark.
        let ds = toy_dataset(8, 57);
        let make = |use_megabatch: bool| {
            let mut model = ExtendedRouteNet::new(ModelConfig {
                state_dim: 8,
                mp_iterations: 2,
                readout_hidden: 8,
                seed: 5,
                ..ModelConfig::default()
            });
            let mut config = quick_train_config(4);
            config.use_megabatch = use_megabatch;

            train(&mut model, &ds, None, &config)
        };
        let mega = make(true);
        let legacy = make(false);
        let rel = (mega.train_loss[0] - legacy.train_loss[0]).abs()
            / legacy.train_loss[0].abs().max(1e-12);
        assert!(
            rel < 1e-3,
            "first-epoch losses diverged: mega {} vs legacy {}",
            mega.train_loss[0],
            legacy.train_loss[0]
        );
        assert!(mega.final_train_loss() < mega.train_loss[0]);
    }

    #[test]
    fn megabatch_sharding_is_deterministic() {
        let ds = toy_dataset(6, 58);
        let make = |megabatch_size: usize| {
            let mut model = ExtendedRouteNet::new(ModelConfig {
                state_dim: 8,
                mp_iterations: 1,
                readout_hidden: 8,
                seed: 4,
                ..ModelConfig::default()
            });
            let mut config = quick_train_config(2);
            config.megabatch_size = megabatch_size;
            train(&mut model, &ds, None, &config);
            model
        };
        // Same shard size twice -> bitwise identical models.
        let a = make(3);
        let b = make(3);
        let plan = a.plan(&ds.samples[0]);
        assert_eq!(a.predict(&plan), b.predict(&plan));
    }

    #[test]
    fn env_override_is_centralized_and_validated() {
        // The one place RN_BACKWARD_SHARDS is interpreted. The parser is
        // pure, so it tests without `set_var` (mutating process-global env
        // under the multi-threaded test harness races other threads'
        // getenv calls).
        assert_eq!(TrainConfig::BACKWARD_SHARDS_ENV, "RN_BACKWARD_SHARDS");
        assert_eq!(TrainConfig::parse_backward_shards(None), None, "unset");
        assert_eq!(TrainConfig::parse_backward_shards(Some("4")), Some(4));
        assert_eq!(
            TrainConfig::parse_backward_shards(Some(" 8 ")),
            Some(8),
            "whitespace tolerated"
        );
        assert_eq!(
            TrainConfig::parse_backward_shards(Some("0")),
            None,
            "non-positive ignored"
        );
        assert_eq!(
            TrainConfig::parse_backward_shards(Some("lots")),
            None,
            "garbage ignored"
        );
        assert_eq!(TrainConfig::parse_backward_shards(Some("")), None);
        assert_eq!(TrainConfig::parse_backward_shards(Some("-2")), None);

        // RN_STREAM_COMPOSE: recognized booleans apply, anything else is
        // ignored.
        assert_eq!(TrainConfig::STREAM_COMPOSE_ENV, "RN_STREAM_COMPOSE");
        assert_eq!(TrainConfig::parse_stream_compose(None), None, "unset");
        assert_eq!(TrainConfig::parse_stream_compose(Some("1")), Some(true));
        assert_eq!(TrainConfig::parse_stream_compose(Some("true")), Some(true));
        assert_eq!(TrainConfig::parse_stream_compose(Some(" ON ")), Some(true));
        assert_eq!(TrainConfig::parse_stream_compose(Some("0")), Some(false));
        assert_eq!(
            TrainConfig::parse_stream_compose(Some("off")),
            Some(false),
            "explicit off wins over an explicit config"
        );
        assert_eq!(
            TrainConfig::parse_stream_compose(Some("yes")),
            None,
            "unrecognized ignored"
        );
        let ambient_stream = std::env::var(TrainConfig::STREAM_COMPOSE_ENV).ok();
        assert_eq!(
            TrainConfig::env_stream_compose(),
            TrainConfig::parse_stream_compose(ambient_stream.as_deref())
        );
        assert_eq!(
            TrainConfig::from_env().stream_compose,
            TrainConfig::env_stream_compose().unwrap_or(TrainConfig::default().stream_compose)
        );

        // The live lookup and the override plumbing agree with the parser
        // on whatever the ambient environment actually holds.
        let ambient = std::env::var(TrainConfig::BACKWARD_SHARDS_ENV).ok();
        let expected = TrainConfig::parse_backward_shards(ambient.as_deref());
        assert_eq!(TrainConfig::env_backward_shards(), expected);
        assert_eq!(
            TrainConfig::from_env().backward_shards,
            expected.unwrap_or(TrainConfig::default().backward_shards)
        );
        let explicit = TrainConfig {
            backward_shards: 2,
            ..TrainConfig::default()
        }
        .with_env_overrides();
        assert_eq!(
            explicit.backward_shards,
            expected.unwrap_or(2),
            "env wins over explicit when set"
        );
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_set_is_rejected() {
        let ds = Dataset {
            topology: topologies::toy5(),
            samples: vec![],
        };
        let mut model = OriginalRouteNet::new(ModelConfig::default());
        train(&mut model, &ds, None, &TrainConfig::default());
    }
}
