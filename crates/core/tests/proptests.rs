//! Property-based invariants of the RouteNet models: structural soundness of
//! plans and predictions on random networks, scenarios and configurations.

use proptest::prelude::*;
use rn_dataset::{generate_sample, Dataset, GeneratorConfig, Normalizer};
use rn_netgraph::generators;
use rn_netsim::SimConfig;
use rn_tensor::Prng;
use routenet::entities::{build_plan, PlanConfig};
use routenet::model::PathPredictor;
use routenet::{ExtendedRouteNet, FeatureScales, ModelConfig, NodeUpdate, OriginalRouteNet};

fn quick_gen() -> GeneratorConfig {
    GeneratorConfig {
        sim: SimConfig {
            duration_s: 30.0,
            warmup_s: 5.0,
            ..SimConfig::default()
        },
        ..GeneratorConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn plans_are_structurally_sound_on_random_networks(
        seed in any::<u64>(),
        n in 3usize..8,
    ) {
        let mut rng = Prng::new(seed);
        let topo = generators::erdos_renyi_connected(n, 0.3, 1e4, &mut rng).unwrap();
        let sample = generate_sample(&topo, &quick_gen(), seed, 0);
        let scales = FeatureScales::unit();
        let normalizer = Normalizer::identity();
        let config = PlanConfig {
            scales: &scales,
            normalizer: &normalizer,
            state_dim: 6,
            min_packets: 1,
            target: routenet::entities::TargetKind::Delay,
        };
        let plan = build_plan(&sample, &config);
        prop_assert_eq!(plan.n_paths, n * (n - 1));
        // Every active position's entity id is in range for its kind.
        for step in plan.extended_steps.iter() {
            for (row, &id) in step.ids.iter().enumerate() {
                if step.mask.get(row, 0) > 0.0 {
                    match step.kind {
                        routenet::EntityKind::Link => prop_assert!(id < plan.num_links),
                        routenet::EntityKind::Node => prop_assert!(id < plan.num_nodes),
                        routenet::EntityKind::Queue => prop_assert!(id < plan.num_queues),
                    }
                }
            }
        }
        // Node incidences reference valid rows/nodes.
        for (&p, &nd) in plan.node_incidence_paths.iter().zip(&plan.node_incidence_nodes) {
            prop_assert!(p < plan.n_paths);
            prop_assert!(nd < plan.num_nodes);
        }
    }

    #[test]
    fn predictions_are_finite_positive_for_any_config(
        seed in any::<u64>(),
        state_dim in 2usize..12,
        mp_iterations in 1usize..4,
        positional in any::<bool>(),
    ) {
        let mut rng = Prng::new(seed);
        let topo = generators::erdos_renyi_connected(5, 0.3, 1e4, &mut rng).unwrap();
        let sample = generate_sample(&topo, &quick_gen(), seed, 1);
        let ds = Dataset { topology: topo, samples: vec![sample] };

        let config = ModelConfig {
            state_dim,
            mp_iterations,
            readout_hidden: 2 * state_dim,
            node_update: if positional {
                NodeUpdate::PositionalMessages
            } else {
                NodeUpdate::FinalPathStateSum
            },
            seed,
        };
        let mut model = ExtendedRouteNet::new(config);
        model.fit_preprocessing(&ds, 1);
        let plan = model.plan(&ds.samples[0]);
        for p in model.predict(&plan) {
            prop_assert!(p.is_finite() && p > 0.0, "prediction {p}");
        }
    }

    #[test]
    fn original_model_is_node_feature_invariant(
        seed in any::<u64>(),
        new_cap in 1usize..64,
    ) {
        let mut rng = Prng::new(seed);
        let topo = generators::erdos_renyi_connected(5, 0.3, 1e4, &mut rng).unwrap();
        let sample = generate_sample(&topo, &quick_gen(), seed, 2);
        let ds = Dataset { topology: topo, samples: vec![sample.clone()] };
        let mut model = OriginalRouteNet::new(ModelConfig {
            state_dim: 6,
            mp_iterations: 2,
            readout_hidden: 8,
            seed,
            ..ModelConfig::default()
        });
        model.fit_preprocessing(&ds, 1);
        let base = model.predict(&model.plan(&sample));
        let mut mutated = sample;
        mutated.queue_capacities = vec![new_cap; mutated.queue_capacities.len()];
        let after = model.predict(&model.plan(&mutated));
        prop_assert_eq!(base, after, "original RouteNet must ignore queue capacities");
    }

    #[test]
    fn untrained_models_are_weight_seed_sensitive(seed in 0u64..100) {
        // Different weight seeds must give different functions (sanity check
        // that seeding actually reaches the initializers).
        let mut rng = Prng::new(seed);
        let topo = generators::erdos_renyi_connected(4, 0.4, 1e4, &mut rng).unwrap();
        let sample = generate_sample(&topo, &quick_gen(), seed, 3);
        let ds = Dataset { topology: topo, samples: vec![sample] };
        let mk = |weight_seed: u64| {
            let mut m = ExtendedRouteNet::new(ModelConfig {
                state_dim: 6,
                mp_iterations: 1,
                readout_hidden: 8,
                seed: weight_seed,
                ..ModelConfig::default()
            });
            m.fit_preprocessing(&ds, 1);
            m.predict(&m.plan(&ds.samples[0]))
        };
        let a = mk(seed);
        let b = mk(seed + 1);
        prop_assert_ne!(a, b);
    }

    #[test]
    fn megabatch_shard_partitions_are_sound_on_arbitrary_batches(
        seed in any::<u64>(),
        sizes in proptest::collection::vec(3usize..7, 1..5),
    ) {
        // Ragged batches: every sample comes from a *different* random
        // topology, so path counts, sequence lengths and entity counts all
        // differ (short samples have empty shard ranges in late steps).
        let scales = FeatureScales::unit();
        let normalizer = Normalizer::identity();
        let config = PlanConfig {
            scales: &scales,
            normalizer: &normalizer,
            state_dim: 6,
            min_packets: 1,
            target: routenet::entities::TargetKind::Delay,
        };
        let plans: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let mut rng = Prng::new(seed.wrapping_add(i as u64));
                let topo = generators::erdos_renyi_connected(n, 0.4, 1e4, &mut rng).unwrap();
                let sample = generate_sample(&topo, &quick_gen(), seed.wrapping_add(i as u64), 0);
                routenet::entities::build_plan(&sample, &config)
            })
            .collect();
        let parts: Vec<&routenet::SamplePlan> = plans.iter().collect();
        let mb = routenet::entities::build_megabatch(&parts);

        if parts.len() == 1 {
            // 1-sample batches stay unsharded (legacy bitwise path).
            prop_assert!(mb.plan.shards.is_none());
            return;
        }
        let shards = mb.plan.shards.as_ref().expect("multi-sample batch shards");
        prop_assert_eq!(shards.len(), parts.len());
        // Bounds are complete partitions of each entity space.
        let mut expect_path = vec![0usize];
        let mut expect_link = vec![0usize];
        let mut expect_node = vec![0usize];
        for p in &plans {
            expect_path.push(expect_path.last().unwrap() + p.n_paths);
            expect_link.push(expect_link.last().unwrap() + p.num_links);
            expect_node.push(expect_node.last().unwrap() + p.num_nodes);
        }
        prop_assert_eq!(&shards.path_bounds, &expect_path);
        prop_assert_eq!(&shards.link_bounds, &expect_link);
        prop_assert_eq!(&shards.node_bounds, &expect_node);

        for csr in [&mb.plan.extended_csr, &mb.plan.original_csr] {
            prop_assert_eq!(csr.num_shards, parts.len());
            for s in 0..csr.len() {
                let bounds = csr.step_shard_bounds(s);
                let active = csr.active_rows(s);
                let ids = csr.active_ids(s);
                // Disjoint + complete: ascending bounds spanning the list.
                prop_assert_eq!(bounds[0], 0);
                prop_assert_eq!(*bounds.last().unwrap(), active.len());
                prop_assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
                for b in 0..parts.len() {
                    let (lo, hi) = (bounds[b], bounds[b + 1]);
                    // Sample boundaries respected: shard b's path rows stay
                    // in its path range, and its entity ids in its block of
                    // the (kind-dependent) entity space.
                    let entity = match csr.kinds[s] {
                        routenet::EntityKind::Link => &shards.link_bounds,
                        routenet::EntityKind::Node => &shards.node_bounds,
                        routenet::EntityKind::Queue => &shards.queue_bounds,
                    };
                    for k in lo..hi {
                        prop_assert!(active[k] >= shards.path_bounds[b]);
                        prop_assert!(active[k] < shards.path_bounds[b + 1]);
                        prop_assert!(ids[k] >= entity[b] && ids[k] < entity[b + 1]);
                    }
                }
            }
        }
    }

    #[test]
    fn dense_shard_partitions_cover_every_row_exactly_once_on_ragged_batches(
        seed in any::<u64>(),
        sizes in proptest::collection::vec(3usize..7, 2..6),
    ) {
        // Mirror of the CSR shard-partition proptest for the DENSE row
        // partitions (readout MLP rows, link/node GRU rows): balanced
        // contiguous blocks that cover each entity space exactly once, no
        // matter how ragged the batch is. Contiguity + exact cover is what
        // makes `row_blocks_mut` hand each worker a disjoint slice.
        let scales = FeatureScales::unit();
        let normalizer = Normalizer::identity();
        let config = PlanConfig {
            scales: &scales,
            normalizer: &normalizer,
            state_dim: 6,
            min_packets: 1,
            target: routenet::entities::TargetKind::Delay,
        };
        let plans: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let mut rng = Prng::new(seed.wrapping_add(i as u64));
                let topo = generators::erdos_renyi_connected(n, 0.4, 1e4, &mut rng).unwrap();
                let sample = generate_sample(&topo, &quick_gen(), seed.wrapping_add(i as u64), 0);
                routenet::entities::build_plan(&sample, &config)
            })
            .collect();
        let parts: Vec<&routenet::SamplePlan> = plans.iter().collect();
        let mb = routenet::entities::build_megabatch(&parts);
        let shards = mb.plan.shards.as_ref().expect("multi-sample batch shards");

        for (bounds, total) in [
            (&shards.dense_path_bounds, mb.plan.n_paths),
            (&shards.dense_link_bounds, mb.plan.num_links),
            (&shards.dense_node_bounds, mb.plan.num_nodes),
        ] {
            // B + 1 ascending entries spanning 0..total.
            prop_assert_eq!(bounds.len(), parts.len() + 1);
            prop_assert_eq!(bounds[0], 0);
            prop_assert_eq!(*bounds.last().unwrap(), total);
            prop_assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
            // Exact cover: every row is claimed by exactly one block.
            let mut claimed = vec![0u32; total];
            for w in bounds.windows(2) {
                for c in &mut claimed[w[0]..w[1]] {
                    *c += 1;
                }
            }
            prop_assert!(claimed.iter().all(|&c| c == 1), "row claimed != once");
            // Balance: block sizes differ by at most one row.
            let sizes: Vec<usize> = bounds.windows(2).map(|w| w[1] - w[0]).collect();
            let (min, max) = (
                sizes.iter().min().copied().unwrap_or(0),
                sizes.iter().max().copied().unwrap_or(0),
            );
            prop_assert!(max - min <= 1, "unbalanced dense blocks: {sizes:?}");
        }
    }

    #[test]
    fn structure_fingerprint_collisions_imply_identical_compiled_structure(
        seed in any::<u64>(),
        n in 3usize..7,
        rate_scale in 1.01f64..3.0,
    ) {
        // The composition cache trusts equal structure fingerprints to mean
        // equal compiled structure. Build a family of plans — same sample,
        // a feature-perturbed twin, a second sample on the same topology
        // and one from a different topology — and check the implication on
        // every pair. The feature twin also pins the non-vacuous direction:
        // its fingerprint MUST collide with the original's.
        let scales = FeatureScales::unit();
        let normalizer = Normalizer::identity();
        let config = PlanConfig {
            scales: &scales,
            normalizer: &normalizer,
            state_dim: 6,
            min_packets: 1,
            target: routenet::entities::TargetKind::Delay,
        };
        let mut rng = Prng::new(seed);
        let topo = generators::erdos_renyi_connected(n, 0.35, 1e4, &mut rng).unwrap();
        let sample = generate_sample(&topo, &quick_gen(), seed, 0);
        let mut feature_twin = sample.clone();
        for c in &mut feature_twin.link_capacities {
            *c *= rate_scale;
        }
        for t in &mut feature_twin.targets {
            t.mean_delay_s *= rate_scale;
        }
        let sibling = generate_sample(&topo, &quick_gen(), seed.wrapping_add(9), 1);
        let mut rng2 = Prng::new(seed.wrapping_add(1));
        let other_topo = generators::erdos_renyi_connected(n + 1, 0.35, 1e4, &mut rng2).unwrap();
        let foreign = generate_sample(&other_topo, &quick_gen(), seed, 2);

        let plans: Vec<routenet::SamplePlan> = [&sample, &feature_twin, &sibling, &foreign]
            .into_iter()
            .map(|s| build_plan(s, &config))
            .collect();
        prop_assert_eq!(
            plans[0].structure_fingerprint(),
            plans[1].structure_fingerprint(),
            "feature-only twins must share a structure fingerprint"
        );
        for (i, a) in plans.iter().enumerate() {
            for b in plans.iter().skip(i + 1) {
                if a.structure_fingerprint() != b.structure_fingerprint() {
                    continue;
                }
                // Collision => every structural field is identical.
                prop_assert_eq!(a.n_paths, b.n_paths);
                prop_assert_eq!(a.num_links, b.num_links);
                prop_assert_eq!(a.num_nodes, b.num_nodes);
                prop_assert_eq!(&a.pairs, &b.pairs);
                prop_assert_eq!(&a.node_incidence_paths, &b.node_incidence_paths);
                prop_assert_eq!(&a.node_incidence_nodes, &b.node_incidence_nodes);
                for (x, y) in [
                    (&a.extended_csr, &b.extended_csr),
                    (&a.original_csr, &b.original_csr),
                ] {
                    prop_assert_eq!(&x.kinds, &y.kinds);
                    prop_assert_eq!(&x.active, &y.active);
                    prop_assert_eq!(&x.offsets, &y.offsets);
                    prop_assert_eq!(&x.ids_flat, &y.ids_flat);
                    prop_assert_eq!(&x.active_offsets, &y.active_offsets);
                    prop_assert_eq!(&x.active_rows_flat, &y.active_rows_flat);
                    prop_assert_eq!(&x.active_ids_flat, &y.active_ids_flat);
                }
                // And composing from either yields one identical structure.
                let mb_a = routenet::entities::build_megabatch(&[a, a]);
                let mb_b = routenet::entities::build_megabatch(&[b, b]);
                prop_assert_eq!(
                    &mb_a.plan.extended_csr.ids_flat,
                    &mb_b.plan.extended_csr.ids_flat
                );
                prop_assert_eq!(
                    &mb_a.plan.extended_csr.shard_bounds,
                    &mb_b.plan.extended_csr.shard_bounds
                );
            }
        }
    }

    #[test]
    fn sharded_megabatch_forward_matches_unsharded_per_sample(
        seed in any::<u64>(),
        batch in 2usize..5,
    ) {
        // The sharded fused forward over a block-diagonal plan must agree
        // with per-sample prediction (and be deterministic under reuse).
        let mut rng = Prng::new(seed);
        let topo = generators::erdos_renyi_connected(5, 0.4, 1e4, &mut rng).unwrap();
        let samples: Vec<_> = (0..batch as u64)
            .map(|i| generate_sample(&topo, &quick_gen(), seed.wrapping_add(i), i))
            .collect();
        let ds = Dataset { topology: topo, samples };
        let mut model = ExtendedRouteNet::new(ModelConfig {
            state_dim: 6,
            mp_iterations: 2,
            readout_hidden: 8,
            seed: 1,
            ..ModelConfig::default()
        });
        model.fit_preprocessing(&ds, 1);
        let plans: Vec<_> = ds.samples.iter().map(|s| model.plan(s)).collect();
        let batched = model.predict_batch(&plans);
        for (b, plan) in plans.iter().enumerate() {
            let single = model.predict(plan);
            prop_assert_eq!(batched[b].len(), single.len());
            for (x, y) in batched[b].iter().zip(&single) {
                let denom = y.abs().max(1e-12);
                prop_assert!(((x - y).abs() / denom) < 1e-5,
                    "sample {}: batched {} vs single {}", b, x, y);
            }
        }
    }
}
