//! Property-based invariants of the RouteNet models: structural soundness of
//! plans and predictions on random networks, scenarios and configurations.

use proptest::prelude::*;
use rn_dataset::{generate_sample, Dataset, GeneratorConfig, Normalizer};
use rn_netgraph::generators;
use rn_netsim::SimConfig;
use rn_tensor::Prng;
use routenet::entities::{build_plan, PlanConfig};
use routenet::model::PathPredictor;
use routenet::{ExtendedRouteNet, FeatureScales, ModelConfig, NodeUpdate, OriginalRouteNet};

fn quick_gen() -> GeneratorConfig {
    GeneratorConfig {
        sim: SimConfig {
            duration_s: 30.0,
            warmup_s: 5.0,
            ..SimConfig::default()
        },
        ..GeneratorConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn plans_are_structurally_sound_on_random_networks(
        seed in any::<u64>(),
        n in 3usize..8,
    ) {
        let mut rng = Prng::new(seed);
        let topo = generators::erdos_renyi_connected(n, 0.3, 1e4, &mut rng);
        let sample = generate_sample(&topo, &quick_gen(), seed, 0);
        let scales = FeatureScales::unit();
        let normalizer = Normalizer::identity();
        let config = PlanConfig {
            scales: &scales,
            normalizer: &normalizer,
            state_dim: 6,
            min_packets: 1,
            target: routenet::entities::TargetKind::Delay,
        };
        let plan = build_plan(&sample, &config);
        prop_assert_eq!(plan.n_paths, n * (n - 1));
        // Every active position's entity id is in range for its kind.
        for step in plan.extended_steps.iter() {
            for (row, &id) in step.ids.iter().enumerate() {
                if step.mask.get(row, 0) > 0.0 {
                    match step.kind {
                        routenet::EntityKind::Link => prop_assert!(id < plan.num_links),
                        routenet::EntityKind::Node => prop_assert!(id < plan.num_nodes),
                    }
                }
            }
        }
        // Node incidences reference valid rows/nodes.
        for (&p, &nd) in plan.node_incidence_paths.iter().zip(&plan.node_incidence_nodes) {
            prop_assert!(p < plan.n_paths);
            prop_assert!(nd < plan.num_nodes);
        }
    }

    #[test]
    fn predictions_are_finite_positive_for_any_config(
        seed in any::<u64>(),
        state_dim in 2usize..12,
        mp_iterations in 1usize..4,
        positional in any::<bool>(),
    ) {
        let mut rng = Prng::new(seed);
        let topo = generators::erdos_renyi_connected(5, 0.3, 1e4, &mut rng);
        let sample = generate_sample(&topo, &quick_gen(), seed, 1);
        let ds = Dataset { topology: topo, samples: vec![sample] };

        let config = ModelConfig {
            state_dim,
            mp_iterations,
            readout_hidden: 2 * state_dim,
            node_update: if positional {
                NodeUpdate::PositionalMessages
            } else {
                NodeUpdate::FinalPathStateSum
            },
            seed,
        };
        let mut model = ExtendedRouteNet::new(config);
        model.fit_preprocessing(&ds, 1);
        let plan = model.plan(&ds.samples[0]);
        for p in model.predict(&plan) {
            prop_assert!(p.is_finite() && p > 0.0, "prediction {p}");
        }
    }

    #[test]
    fn original_model_is_node_feature_invariant(
        seed in any::<u64>(),
        new_cap in 1usize..64,
    ) {
        let mut rng = Prng::new(seed);
        let topo = generators::erdos_renyi_connected(5, 0.3, 1e4, &mut rng);
        let sample = generate_sample(&topo, &quick_gen(), seed, 2);
        let ds = Dataset { topology: topo, samples: vec![sample.clone()] };
        let mut model = OriginalRouteNet::new(ModelConfig {
            state_dim: 6,
            mp_iterations: 2,
            readout_hidden: 8,
            seed,
            ..ModelConfig::default()
        });
        model.fit_preprocessing(&ds, 1);
        let base = model.predict(&model.plan(&sample));
        let mut mutated = sample;
        mutated.queue_capacities = vec![new_cap; mutated.queue_capacities.len()];
        let after = model.predict(&model.plan(&mutated));
        prop_assert_eq!(base, after, "original RouteNet must ignore queue capacities");
    }

    #[test]
    fn untrained_models_are_weight_seed_sensitive(seed in 0u64..100) {
        // Different weight seeds must give different functions (sanity check
        // that seeding actually reaches the initializers).
        let mut rng = Prng::new(seed);
        let topo = generators::erdos_renyi_connected(4, 0.4, 1e4, &mut rng);
        let sample = generate_sample(&topo, &quick_gen(), seed, 3);
        let ds = Dataset { topology: topo, samples: vec![sample] };
        let mk = |weight_seed: u64| {
            let mut m = ExtendedRouteNet::new(ModelConfig {
                state_dim: 6,
                mp_iterations: 1,
                readout_hidden: 8,
                seed: weight_seed,
                ..ModelConfig::default()
            });
            m.fit_preprocessing(&ds, 1);
            m.predict(&m.plan(&ds.samples[0]))
        };
        let a = mk(seed);
        let b = mk(seed + 1);
        prop_assert_ne!(a, b);
    }
}
