//! The traditional queueing-theory delay predictor (baseline E6).
//!
//! Models every output port as an independent M/M/1/K queue whose offered load
//! is the sum of the traffic-matrix rates routed over the link, and predicts a
//! path's delay as the sum of per-hop sojourn times plus propagation. This is
//! the textbook "decomposition" approach the paper's introduction dismisses as
//! inaccurate for complex scenarios — the point of the experiment is to
//! quantify that claim against the learned models.

use crate::Mm1k;
use rn_netgraph::{Routing, Topology, TrafficMatrix};
use serde::{Deserialize, Serialize};

/// Per-path delay predictions from per-hop M/M/1/K decomposition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PathDelayPredictor {
    /// Mean packet size in bits (to convert bps rates into packet rates).
    pub mean_packet_bits: f64,
}

impl PathDelayPredictor {
    /// A predictor assuming the given mean packet size.
    pub fn new(mean_packet_bits: f64) -> Self {
        assert!(mean_packet_bits > 0.0, "mean packet size must be positive");
        Self { mean_packet_bits }
    }

    /// Predict the mean end-to-end delay (seconds) of every routed pair.
    ///
    /// `queue_capacity_pkts[n]` is the *waiting-room* size at node `n` (same
    /// convention as the simulator); each hop is modeled as M/M/1/K with
    /// system capacity `K = waiting + 1`.
    ///
    /// Returns `(src, dst, predicted_delay_s)` in routing iteration order.
    pub fn predict(
        &self,
        topo: &Topology,
        routing: &Routing,
        traffic: &TrafficMatrix,
        queue_capacity_pkts: &[usize],
    ) -> Vec<(usize, usize, f64)> {
        assert_eq!(
            queue_capacity_pkts.len(),
            topo.num_nodes(),
            "one queue capacity per node"
        );
        let loads = traffic.link_loads(topo, routing);
        // Per-link mean sojourn time.
        let sojourn: Vec<f64> = (0..topo.num_links())
            .map(|l| {
                let link = topo.link(l);
                let mu = link.capacity_bps / self.mean_packet_bits;
                let lambda = loads[l] / self.mean_packet_bits;
                if lambda <= 0.0 {
                    // Idle link: delay is pure transmission time.
                    return 1.0 / mu;
                }
                let k = queue_capacity_pkts[link.src] as u32 + 1;
                Mm1k::new(lambda, mu, k).mean_sojourn_s()
            })
            .collect();
        routing
            .iter_paths()
            .map(|(s, d, path)| {
                let delay: f64 = path
                    .links
                    .iter()
                    .map(|&l| sojourn[l] + topo.link(l).prop_delay_s)
                    .sum();
                (s, d, delay)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_netgraph::topologies;
    use rn_tensor::Prng;

    #[test]
    fn idle_network_predicts_pure_transmission() {
        let topo = topologies::toy5();
        let routing = Routing::shortest_paths(&topo);
        let tm = TrafficMatrix::zeros(5);
        let pred = PathDelayPredictor::new(1_000.0);
        let out = pred.predict(&topo, &routing, &tm, &[8; 5]);
        // 10 kbps links, 1000-bit packets: 0.1 s per hop.
        for (s, d, delay) in out {
            let hops = routing.path(s, d).unwrap().hop_count() as f64;
            assert!((delay - 0.1 * hops).abs() < 1e-9, "{s}->{d}: {delay}");
        }
    }

    #[test]
    fn loaded_links_predict_longer_delays() {
        let topo = topologies::nsfnet_default();
        let routing = Routing::shortest_paths(&topo);
        let mut rng = Prng::new(1);
        let light = TrafficMatrix::with_target_utilization(&topo, &routing, &mut rng, 0.2);
        let heavy = TrafficMatrix::with_target_utilization(&topo, &routing, &mut rng, 0.9);
        let pred = PathDelayPredictor::new(1_000.0);
        let caps = vec![16; 14];
        let dl: f64 = pred
            .predict(&topo, &routing, &light, &caps)
            .iter()
            .map(|x| x.2)
            .sum();
        let dh: f64 = pred
            .predict(&topo, &routing, &heavy, &caps)
            .iter()
            .map(|x| x.2)
            .sum();
        assert!(dh > dl, "heavier load must predict more delay");
    }

    #[test]
    fn tiny_buffers_predict_smaller_delays_under_load() {
        // Counter-intuitive but correct: tiny buffers mean accepted packets
        // wait less (the rest are lost) — exactly the trade-off the extended
        // RouteNet has to capture.
        let topo = topologies::toy5();
        let routing = Routing::shortest_paths(&topo);
        let mut rng = Prng::new(2);
        let tm = TrafficMatrix::with_target_utilization(&topo, &routing, &mut rng, 0.95);
        let pred = PathDelayPredictor::new(1_000.0);
        let d_tiny: f64 = pred
            .predict(&topo, &routing, &tm, &[1; 5])
            .iter()
            .map(|x| x.2)
            .sum();
        let d_std: f64 = pred
            .predict(&topo, &routing, &tm, &[32; 5])
            .iter()
            .map(|x| x.2)
            .sum();
        assert!(d_tiny < d_std);
    }

    #[test]
    fn prediction_covers_every_routed_pair() {
        let topo = topologies::geant2_default();
        let routing = Routing::shortest_paths(&topo);
        let tm = TrafficMatrix::uniform_random(24, &mut Prng::new(3), 10.0, 100.0);
        let out = PathDelayPredictor::new(1_000.0).predict(&topo, &routing, &tm, &[32; 24]);
        assert_eq!(out.len(), 24 * 23);
        assert!(out.iter().all(|&(_, _, d)| d.is_finite() && d > 0.0));
    }
}
