//! Weighted-share delay approximation for WFQ/DRR-scheduled M/M/1 ports.
//!
//! Exact per-class delays under weighted fair queueing have no closed form;
//! the standard engineering approximation treats class `c` as its own M/M/1
//! whose server runs at an *effective rate*: the class's guaranteed share of
//! the link plus its share of whatever capacity the other classes leave
//! unused (GPS with work-conserving spare redistribution):
//!
//! ```text
//! mu_c = w_c * mu + (1 - w_c) * (mu - lambda_total)
//!      = mu - (1 - w_c) * lambda_total
//! T_c  = 1 / (mu_c - lambda_c)
//! ```
//!
//! with `w_c` the class's *normalized* weight. Two exact boundary anchors
//! (pinned by the unit tests):
//!
//! - a single class (`w = 1`) recovers the plain M/M/1 sojourn
//!   `1/(mu - lambda)`;
//! - weights equal to the classes' load shares (so the normalized weights
//!   sum to 1 across classes by construction and each class is provisioned
//!   exactly its load fraction) give *every* class the pooled FIFO sojourn
//!   `1/(mu - lambda_total)` — weighted fairness with load-proportional
//!   weights is FIFO in the mean.
//!
//! DRR maps onto the same approximation with weights proportional to the
//! per-class quanta.

/// Per-class delay approximation for one WFQ (or DRR) scheduled port.
#[derive(Debug, Clone)]
pub struct WfqApprox {
    lambdas: Vec<f64>,
    mu: f64,
    /// Normalized weights (sum 1).
    shares: Vec<f64>,
}

impl WfqApprox {
    /// A WFQ-scheduled M/M/1 port: per-class Poisson arrival rates
    /// `lambdas`, service rate `mu` (packets/second), and positive per-class
    /// `weights` (any scale — only ratios matter; DRR quanta work directly).
    pub fn new(lambdas: Vec<f64>, mu: f64, weights: &[f64]) -> Self {
        assert!(!lambdas.is_empty(), "need at least one class");
        assert_eq!(lambdas.len(), weights.len(), "one weight per class");
        assert!(
            lambdas.iter().all(|l| l.is_finite() && *l >= 0.0),
            "arrival rates must be non-negative"
        );
        assert!(mu.is_finite() && mu > 0.0, "service rate must be positive");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "weights must be positive"
        );
        let wsum: f64 = weights.iter().sum();
        let shares = weights.iter().map(|w| w / wsum).collect();
        Self {
            lambdas,
            mu,
            shares,
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.lambdas.len()
    }

    /// Total offered utilization.
    pub fn total_utilization(&self) -> f64 {
        self.lambdas.iter().sum::<f64>() / self.mu
    }

    /// Class `c`'s normalized weight share.
    pub fn share(&self, c: usize) -> f64 {
        self.shares[c]
    }

    /// The effective service rate class `c` experiences: its guaranteed
    /// share plus its share of the capacity other classes leave spare.
    pub fn effective_rate(&self, c: usize) -> f64 {
        let lambda_total: f64 = self.lambdas.iter().sum();
        self.mu - (1.0 - self.shares[c]) * lambda_total
    }

    /// True when class `c`'s effective server outpaces its arrivals.
    pub fn is_stable(&self, c: usize) -> bool {
        self.effective_rate(c) > self.lambdas[c]
    }

    /// Approximate mean sojourn of class `c` in seconds; infinite when the
    /// class is (approximately) unstable at its weight.
    pub fn mean_sojourn_s(&self, c: usize) -> f64 {
        let rate = self.effective_rate(c);
        if rate <= self.lambdas[c] {
            return f64::INFINITY;
        }
        1.0 / (rate - self.lambdas[c])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mm1::Mm1;

    const MU: f64 = 10.0;

    #[test]
    fn single_class_is_exact_mm1() {
        // Satellite boundary case: one class with weight 1.
        for lambda in [0.1, 4.0, 9.0] {
            let w = WfqApprox::new(vec![lambda], MU, &[1.0]);
            let mm1 = Mm1::new(lambda, MU).mean_sojourn_s();
            assert!(
                (w.mean_sojourn_s(0) - mm1).abs() < 1e-12,
                "{} vs {}",
                w.mean_sojourn_s(0),
                mm1
            );
        }
    }

    #[test]
    fn load_proportional_weights_recover_fifo_for_every_class() {
        // Satellite boundary case: weights equal to the load shares (they
        // sum to 1) give each class the pooled FIFO M/M/1 sojourn.
        let lambdas = vec![1.0, 3.0, 4.0];
        let total: f64 = lambdas.iter().sum();
        let weights: Vec<f64> = lambdas.iter().map(|l| l / total).collect();
        assert!((weights.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let w = WfqApprox::new(lambdas, MU, &weights);
        let fifo = Mm1::new(total, MU).mean_sojourn_s();
        for c in 0..3 {
            assert!(
                (w.mean_sojourn_s(c) - fifo).abs() < 1e-12,
                "class {c}: {} vs FIFO {fifo}",
                w.mean_sojourn_s(c)
            );
        }
    }

    #[test]
    fn light_traffic_limit_is_pure_service_time() {
        // rho -> 0: sojourn tends to 1/mu regardless of weights.
        let w = WfqApprox::new(vec![1e-9, 1e-9], MU, &[5.0, 1.0]);
        for c in 0..2 {
            assert!((w.mean_sojourn_s(c) - 1.0 / MU).abs() < 1e-9);
        }
    }

    #[test]
    fn heavy_traffic_starves_the_underweighted_class() {
        // rho -> 1 with a 9:1 weight split and symmetric load: the light
        // class diverges long before the heavy one.
        let lam = 4.9; // total rho 0.98
        let w = WfqApprox::new(vec![lam, lam], MU, &[9.0, 1.0]);
        assert!(w.mean_sojourn_s(0).is_finite());
        assert!(
            !w.is_stable(1) || w.mean_sojourn_s(1) > 10.0 * w.mean_sojourn_s(0),
            "underweighted class must be (near-)starved: {} vs {}",
            w.mean_sojourn_s(1),
            w.mean_sojourn_s(0)
        );
    }

    #[test]
    fn heavier_weight_means_lower_delay() {
        let w = WfqApprox::new(vec![3.0, 3.0], MU, &[3.0, 1.0]);
        assert!(w.mean_sojourn_s(0) < w.mean_sojourn_s(1));
        // And both bracket the FIFO pooled delay.
        let fifo = Mm1::new(6.0, MU).mean_sojourn_s();
        assert!(w.mean_sojourn_s(0) < fifo && fifo < w.mean_sojourn_s(1));
    }

    #[test]
    fn weight_scale_invariance() {
        // Only ratios matter: [2,1] and [200,100] are the same policy.
        let a = WfqApprox::new(vec![2.0, 4.0], MU, &[2.0, 1.0]);
        let b = WfqApprox::new(vec![2.0, 4.0], MU, &[200.0, 100.0]);
        for c in 0..2 {
            assert!((a.mean_sojourn_s(c) - b.mean_sojourn_s(c)).abs() < 1e-12);
        }
    }
}
