//! The M/M/1 queue: Poisson arrivals, exponential service, one server,
//! infinite waiting room.

use serde::{Deserialize, Serialize};

/// An M/M/1 queue with arrival rate `lambda` and service rate `mu`
/// (customers per second).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mm1 {
    /// Arrival rate λ (customers/second).
    pub lambda: f64,
    /// Service rate μ (customers/second).
    pub mu: f64,
}

impl Mm1 {
    /// Construct; panics on non-positive rates.
    pub fn new(lambda: f64, mu: f64) -> Self {
        assert!(lambda > 0.0 && mu > 0.0, "M/M/1 rates must be positive");
        Self { lambda, mu }
    }

    /// Utilization ρ = λ/μ.
    pub fn utilization(&self) -> f64 {
        self.lambda / self.mu
    }

    /// True when the queue is stable (ρ < 1); the steady-state formulas below
    /// are meaningful only then.
    pub fn is_stable(&self) -> bool {
        self.utilization() < 1.0
    }

    /// Mean number of customers in the system, L = ρ/(1−ρ).
    pub fn mean_customers(&self) -> f64 {
        assert!(
            self.is_stable(),
            "M/M/1 is unstable at rho = {}",
            self.utilization()
        );
        let rho = self.utilization();
        rho / (1.0 - rho)
    }

    /// Mean time in system (waiting + service), W = 1/(μ−λ).
    pub fn mean_sojourn_s(&self) -> f64 {
        assert!(
            self.is_stable(),
            "M/M/1 is unstable at rho = {}",
            self.utilization()
        );
        1.0 / (self.mu - self.lambda)
    }

    /// Mean waiting time (excluding service), Wq = ρ/(μ−λ).
    pub fn mean_wait_s(&self) -> f64 {
        self.utilization() * self.mean_sojourn_s()
    }

    /// Steady-state probability of exactly `n` customers, p_n = (1−ρ)ρⁿ.
    pub fn prob_n(&self, n: u32) -> f64 {
        assert!(
            self.is_stable(),
            "M/M/1 is unstable at rho = {}",
            self.utilization()
        );
        let rho = self.utilization();
        (1.0 - rho) * rho.powi(n as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_loaded_queue() {
        let q = Mm1::new(5.0, 10.0);
        assert_eq!(q.utilization(), 0.5);
        assert!(q.is_stable());
        assert!((q.mean_customers() - 1.0).abs() < 1e-12);
        assert!((q.mean_sojourn_s() - 0.2).abs() < 1e-12);
        assert!((q.mean_wait_s() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn littles_law_holds() {
        for (l, m) in [(1.0, 3.0), (2.0, 5.0), (7.0, 8.0)] {
            let q = Mm1::new(l, m);
            // L = λW
            assert!((q.mean_customers() - l * q.mean_sojourn_s()).abs() < 1e-9);
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let q = Mm1::new(3.0, 4.0);
        let total: f64 = (0..200).map(|n| q.prob_n(n)).sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sojourn_diverges_near_saturation() {
        let near = Mm1::new(9.99, 10.0);
        let far = Mm1::new(5.0, 10.0);
        assert!(near.mean_sojourn_s() > 50.0 * far.mean_sojourn_s());
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn unstable_queue_panics_on_stationary_quantities() {
        Mm1::new(10.0, 5.0).mean_customers();
    }
}
