//! M/M/1 priority queues: exact mean delays under strict priority, in both
//! the non-preemptive and preemptive-resume disciplines.
//!
//! Classes are indexed `0..K` with **class 0 the highest priority** (matching
//! `rn_netsim`'s ToS convention). All classes share one exponential server of
//! rate `mu` packets/second; class `k` arrives Poisson at `lambdas[k]`.
//!
//! Notation: `rho_k = lambda_k / mu` and `sigma_k = rho_0 + … + rho_k` (the
//! utilization of class `k` and above in priority). The classic results
//! (Cobham; see Kleinrock vol. II):
//!
//! - **Non-preemptive** waiting time of class `k`:
//!   `W_k = R / ((1 − sigma_{k−1})(1 − sigma_k))` with mean residual service
//!   `R = sigma_K / mu` (exponential service), sojourn `T_k = W_k + 1/mu`.
//! - **Preemptive-resume** sojourn:
//!   `T_k = (1/mu)/(1 − sigma_{k−1}) + (sigma_k/mu)/((1 − sigma_{k−1})(1 − sigma_k))`.
//!
//! Both degenerate to the plain M/M/1 sojourn `1/(mu − lambda)` for a single
//! class, and class `k` is stable iff `sigma_k < 1` (saturated classes report
//! infinite delays rather than panicking — scenario sweeps hit the boundary).

/// An M/M/1 queue serving `K` strict-priority classes.
#[derive(Debug, Clone)]
pub struct Mm1Priority {
    lambdas: Vec<f64>,
    mu: f64,
}

impl Mm1Priority {
    /// A priority queue with per-class arrival rates `lambdas` (class 0 =
    /// highest priority) and shared service rate `mu`, all in packets/second.
    pub fn new(lambdas: Vec<f64>, mu: f64) -> Self {
        assert!(!lambdas.is_empty(), "need at least one class");
        assert!(
            lambdas.iter().all(|l| l.is_finite() && *l >= 0.0),
            "arrival rates must be non-negative"
        );
        assert!(mu.is_finite() && mu > 0.0, "service rate must be positive");
        Self { lambdas, mu }
    }

    /// Number of priority classes.
    pub fn num_classes(&self) -> usize {
        self.lambdas.len()
    }

    /// Utilization of class `k` alone.
    pub fn rho(&self, k: usize) -> f64 {
        self.lambdas[k] / self.mu
    }

    /// Cumulative utilization of classes `0..=k` — the traffic that outranks
    /// or ties class `k`.
    pub fn sigma(&self, k: usize) -> f64 {
        self.lambdas[..=k].iter().sum::<f64>() / self.mu
    }

    /// Total utilization across all classes.
    pub fn total_utilization(&self) -> f64 {
        self.sigma(self.num_classes() - 1)
    }

    /// True when class `k` is stable (`sigma_k < 1`). Lower-priority classes
    /// can be unstable while higher ones are fine.
    pub fn is_stable(&self, k: usize) -> bool {
        self.sigma(k) < 1.0
    }

    /// `sigma_{k-1}`, with the empty sum for the top class.
    fn sigma_above(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            self.sigma(k - 1)
        }
    }

    /// Mean waiting time (queueing only) of class `k` under non-preemptive
    /// priority. Infinite when class `k` is saturated.
    pub fn nonpreemptive_wait_s(&self, k: usize) -> f64 {
        let (sa, sk) = (self.sigma_above(k), self.sigma(k));
        if sa >= 1.0 || sk >= 1.0 {
            return f64::INFINITY;
        }
        // Mean residual service seen on arrival: sum_i rho_i * E[S^2]/(2 E[S])
        // = sigma_K / mu for exponential service.
        let residual = self.total_utilization() / self.mu;
        residual / ((1.0 - sa) * (1.0 - sk))
    }

    /// Mean sojourn (waiting + service) of class `k` under non-preemptive
    /// priority.
    pub fn nonpreemptive_sojourn_s(&self, k: usize) -> f64 {
        self.nonpreemptive_wait_s(k) + 1.0 / self.mu
    }

    /// Mean sojourn of class `k` under preemptive-resume priority. Class `k`
    /// is entirely blind to lower classes; the top class sees a pure M/M/1.
    pub fn preemptive_sojourn_s(&self, k: usize) -> f64 {
        let (sa, sk) = (self.sigma_above(k), self.sigma(k));
        if sa >= 1.0 || sk >= 1.0 {
            return f64::INFINITY;
        }
        (1.0 / self.mu) / (1.0 - sa) + (sk / self.mu) / ((1.0 - sa) * (1.0 - sk))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mm1::Mm1;

    const MU: f64 = 10.0;

    #[test]
    fn single_class_degenerates_to_mm1_exactly() {
        // Satellite boundary case: one class under either discipline IS the
        // plain M/M/1.
        for lambda in [0.5, 3.0, 7.0, 9.5] {
            let p = Mm1Priority::new(vec![lambda], MU);
            let mm1 = Mm1::new(lambda, MU).mean_sojourn_s();
            assert!(
                (p.nonpreemptive_sojourn_s(0) - mm1).abs() < 1e-12,
                "non-preemptive {} vs M/M/1 {}",
                p.nonpreemptive_sojourn_s(0),
                mm1
            );
            assert!(
                (p.preemptive_sojourn_s(0) - mm1).abs() < 1e-12,
                "preemptive {} vs M/M/1 {}",
                p.preemptive_sojourn_s(0),
                mm1
            );
        }
    }

    #[test]
    fn light_traffic_limit_is_pure_service_time() {
        // rho -> 0: no queueing, every class's sojourn tends to 1/mu.
        let p = Mm1Priority::new(vec![1e-9, 1e-9, 1e-9], MU);
        for k in 0..3 {
            assert!((p.nonpreemptive_sojourn_s(k) - 1.0 / MU).abs() < 1e-9);
            assert!((p.preemptive_sojourn_s(k) - 1.0 / MU).abs() < 1e-9);
        }
    }

    #[test]
    fn heavy_traffic_blows_up_the_low_class_only() {
        // rho -> 1: the bottom class diverges; under preemption the top
        // class still sees exactly its own M/M/1.
        let lam0 = 2.0;
        for total in [0.99, 0.999, 0.9999] {
            let lam1 = total * MU - lam0;
            let p = Mm1Priority::new(vec![lam0, lam1], MU);
            let low = p.nonpreemptive_sojourn_s(1);
            assert!(
                low > 1.0 / (1.0 - total) / MU * 0.5,
                "low class must diverge as rho->1, got {low} at rho {total}"
            );
            let top = p.preemptive_sojourn_s(0);
            let mm1_top = Mm1::new(lam0, MU).mean_sojourn_s();
            assert!(
                (top - mm1_top).abs() < 1e-12,
                "preemptive top class is blind to the rest: {top} vs {mm1_top}"
            );
            // Non-preemptive top class pays at most one residual service on
            // top of its own M/M/1-like delay — bounded as rho -> 1.
            assert!(p.nonpreemptive_sojourn_s(0) < 10.0 / MU);
        }
    }

    #[test]
    fn saturated_classes_report_infinity() {
        let p = Mm1Priority::new(vec![4.0, 8.0], MU); // sigma_1 = 1.2
        assert!(p.is_stable(0));
        assert!(!p.is_stable(1));
        assert!(p.nonpreemptive_sojourn_s(1).is_infinite());
        assert!(p.preemptive_sojourn_s(1).is_infinite());
        assert!(p.nonpreemptive_sojourn_s(0).is_finite());
    }

    #[test]
    fn priority_ordering_holds_at_every_load() {
        let p = Mm1Priority::new(vec![2.0, 3.0, 4.0], MU);
        assert!(p.nonpreemptive_sojourn_s(0) < p.nonpreemptive_sojourn_s(1));
        assert!(p.nonpreemptive_sojourn_s(1) < p.nonpreemptive_sojourn_s(2));
        assert!(p.preemptive_sojourn_s(0) < p.preemptive_sojourn_s(1));
        assert!(p.preemptive_sojourn_s(1) < p.preemptive_sojourn_s(2));
    }

    #[test]
    fn preemption_helps_the_top_and_hurts_the_bottom() {
        let p = Mm1Priority::new(vec![3.0, 5.0], MU);
        assert!(
            p.preemptive_sojourn_s(0) < p.nonpreemptive_sojourn_s(0),
            "top class gains from preempting"
        );
        assert!(
            p.preemptive_sojourn_s(1) >= p.nonpreemptive_sojourn_s(1),
            "bottom class loses service continuity"
        );
    }

    #[test]
    fn classwide_conservation_of_work() {
        // The weighted average waiting time across classes must equal the
        // FIFO M/M/1 wait (work conservation — scheduling redistributes
        // waiting, it cannot destroy it). Holds for non-preemptive priority
        // with exponential service.
        let lambdas = [2.0, 3.0, 4.0];
        let p = Mm1Priority::new(lambdas.to_vec(), MU);
        let total: f64 = lambdas.iter().sum();
        let fifo_wait = Mm1::new(total, MU).mean_wait_s();
        let avg_wait: f64 = (0..3)
            .map(|k| lambdas[k] / total * p.nonpreemptive_wait_s(k))
            .sum();
        assert!(
            (avg_wait - fifo_wait).abs() / fifo_wait < 1e-9,
            "work conservation: {avg_wait} vs FIFO {fifo_wait}"
        );
    }
}
