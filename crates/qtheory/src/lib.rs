//! # rn-qtheory
//!
//! Closed-form queueing-theory results, serving two roles:
//!
//! 1. **Validation oracle** — `rn-netsim`'s test suite checks the simulator
//!    against M/M/1 and M/M/1/K formulas on single-queue scenarios.
//! 2. **Baseline predictor** — the paper's introduction claims traditional
//!    queueing-theory models "often fail to provide accurate models for
//!    complex real-world scenarios"; [`PathDelayPredictor`] is that
//!    traditional model (per-hop M/M/1/K with offered loads from the traffic
//!    matrix), compared against both RouteNets in experiment E6.
//!
//! The QoS extension adds per-class oracles for scheduled ports:
//! [`Mm1Priority`] (strict priority, non-preemptive and preemptive-resume)
//! and [`WfqApprox`] (weighted-share effective-rate approximation for
//! WFQ/DRR). The queue-entity model's per-class delay predictions are
//! validated against these the same way the seed validated FIFO against
//! M/M/1/K.

pub mod mm1;
pub mod mm1k;
pub mod predictor;
pub mod priority;
pub mod wfq;

pub use mm1::Mm1;
pub use mm1k::Mm1k;
pub use predictor::PathDelayPredictor;
pub use priority::Mm1Priority;
pub use wfq::WfqApprox;
