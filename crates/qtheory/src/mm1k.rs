//! The M/M/1/K queue: one server, at most `K` customers in the *system*
//! (waiting room of `K − 1` plus the customer in service). Finite buffers make
//! the queue lossy — the phenomenon the extended RouteNet must learn.

use serde::{Deserialize, Serialize};

/// An M/M/1/K queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mm1k {
    /// Arrival rate λ (customers/second).
    pub lambda: f64,
    /// Service rate μ (customers/second).
    pub mu: f64,
    /// System capacity K (waiting + in service), K ≥ 1.
    pub k: u32,
}

impl Mm1k {
    /// Construct; panics on non-positive rates or `k == 0`.
    pub fn new(lambda: f64, mu: f64, k: u32) -> Self {
        assert!(lambda > 0.0 && mu > 0.0, "M/M/1/K rates must be positive");
        assert!(k >= 1, "M/M/1/K needs capacity for at least the server");
        Self { lambda, mu, k }
    }

    /// Offered utilization ρ = λ/μ (may exceed 1; the queue stays stable
    /// because excess arrivals are blocked).
    pub fn rho(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Steady-state probability of `n` customers in the system (`n ≤ K`).
    pub fn prob_n(&self, n: u32) -> f64 {
        assert!(n <= self.k, "prob_n: n={n} exceeds K={}", self.k);
        let rho = self.rho();
        let k = self.k as i32;
        if (rho - 1.0).abs() < 1e-12 {
            // ρ = 1 limit: uniform over 0..=K.
            1.0 / (k as f64 + 1.0)
        } else {
            (1.0 - rho) * rho.powi(n as i32) / (1.0 - rho.powi(k + 1))
        }
    }

    /// Blocking probability: the chance an arriving customer finds the system
    /// full and is lost (PASTA: equals p_K).
    pub fn blocking_probability(&self) -> f64 {
        self.prob_n(self.k)
    }

    /// Mean number of customers in the system.
    pub fn mean_customers(&self) -> f64 {
        let rho = self.rho();
        let k = self.k as i32;
        if (rho - 1.0).abs() < 1e-12 {
            return self.k as f64 / 2.0;
        }
        // L = ρ(1 − (K+1)ρ^K + Kρ^(K+1)) / ((1−ρ)(1−ρ^(K+1)))
        rho * (1.0 - (k as f64 + 1.0) * rho.powi(k) + k as f64 * rho.powi(k + 1))
            / ((1.0 - rho) * (1.0 - rho.powi(k + 1)))
    }

    /// Effective (accepted) arrival rate λ(1 − p_K).
    pub fn effective_lambda(&self) -> f64 {
        self.lambda * (1.0 - self.blocking_probability())
    }

    /// Mean time in system for *accepted* customers, via Little's law:
    /// W = L / λ_eff.
    pub fn mean_sojourn_s(&self) -> f64 {
        self.mean_customers() / self.effective_lambda()
    }

    /// Throughput in customers per second (equals λ_eff in steady state).
    pub fn throughput(&self) -> f64 {
        self.effective_lambda()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_sum_to_one() {
        for (l, m, k) in [(2.0, 4.0, 3u32), (4.0, 4.0, 5), (8.0, 4.0, 2)] {
            let q = Mm1k::new(l, m, k);
            let total: f64 = (0..=k).map(|n| q.prob_n(n)).sum();
            assert!((total - 1.0).abs() < 1e-9, "λ={l} μ={m} K={k}: sum {total}");
        }
    }

    #[test]
    fn blocking_grows_with_load_and_shrinks_with_buffer() {
        let low = Mm1k::new(2.0, 10.0, 3).blocking_probability();
        let high = Mm1k::new(9.0, 10.0, 3).blocking_probability();
        assert!(high > low);
        let small_buf = Mm1k::new(9.0, 10.0, 2).blocking_probability();
        let big_buf = Mm1k::new(9.0, 10.0, 20).blocking_probability();
        assert!(small_buf > big_buf);
    }

    #[test]
    fn approaches_mm1_for_large_k() {
        use crate::Mm1;
        let lossy = Mm1k::new(5.0, 10.0, 60);
        let lossless = Mm1::new(5.0, 10.0);
        assert!((lossy.mean_customers() - lossless.mean_customers()).abs() < 1e-6);
        assert!((lossy.mean_sojourn_s() - lossless.mean_sojourn_s()).abs() < 1e-6);
        assert!(lossy.blocking_probability() < 1e-12);
    }

    #[test]
    fn rho_equal_one_limit_is_uniform() {
        let q = Mm1k::new(4.0, 4.0, 4);
        for n in 0..=4 {
            assert!((q.prob_n(n) - 0.2).abs() < 1e-9);
        }
        assert!((q.mean_customers() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn overloaded_queue_saturates_throughput() {
        let q = Mm1k::new(100.0, 10.0, 2);
        assert!(q.throughput() < 10.0, "throughput can never exceed μ");
        assert!(
            q.throughput() > 9.0,
            "overloaded server should stay almost busy"
        );
        assert!(q.blocking_probability() > 0.85);
    }

    #[test]
    fn k1_is_pure_loss_system() {
        // K=1: no waiting room (Erlang-B with one server): p_block = ρ/(1+ρ)
        let q = Mm1k::new(5.0, 10.0, 1);
        let rho: f64 = 0.5;
        assert!((q.blocking_probability() - rho / (1.0 + rho)).abs() < 1e-9);
        // Accepted customers never wait: sojourn = service time.
        assert!((q.mean_sojourn_s() - 0.1).abs() < 1e-9);
    }
}
