//! Standalone serving daemon: start the JSONL-over-TCP frontend on a model.
//!
//! ```sh
//! # Demo model (random weights, preprocessing fitted on generated data):
//! rn_serve --listen 127.0.0.1:9977 --topology nsfnet
//!
//! # A trained model saved with routenet::persist::save_model:
//! rn_serve --listen 127.0.0.1:9977 --topology nsfnet --model extended.json
//! ```
//!
//! Prints one JSON line with the bound address, then serves until killed.
//! See `rn_loadgen` for a measurement client and README's "Serving" section
//! for the protocol.

use rn_serve::loadgen::demo_scenarios;
use rn_serve::{ServeConfig, Service, TcpServer};
use routenet::model::PathPredictor;
use routenet::{ExtendedRouteNet, ModelConfig};
use std::process::ExitCode;
use std::time::Duration;

fn arg(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("[serve] error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let listen = arg("--listen").unwrap_or_else(|| "127.0.0.1:9977".into());
    let topology = arg("--topology").unwrap_or_else(|| "nsfnet".into());
    let fit_samples: usize = arg("--samples").and_then(|v| v.parse().ok()).unwrap_or(4);
    let state_dim: usize = arg("--state-dim")
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let mp_iters: usize = arg("--mp-iters").and_then(|v| v.parse().ok()).unwrap_or(4);

    // Env first (the RN_SERVE_* knobs of ServeConfig::ENV_DOCS), explicit
    // CLI flags override.
    let mut config = ServeConfig::from_env();
    if let Some(w) = arg("--workers").and_then(|v| v.parse().ok()) {
        config.workers = w;
    }
    if let Some(b) = arg("--max-batch").and_then(|v| v.parse().ok()) {
        config.max_batch = b;
    }
    if let Some(us) = arg("--deadline-us").and_then(|v| v.parse().ok()) {
        config.flush_deadline = Duration::from_micros(us);
    }
    if let Some(ms) = arg("--request-deadline-ms").and_then(|v| v.parse::<u64>().ok()) {
        config.default_deadline = (ms > 0).then(|| Duration::from_millis(ms));
    }
    if !config.chaos.is_none() {
        // Chaos is for test/CI runs; make it impossible to enable in a
        // production deployment without noticing.
        eprintln!(
            "[serve] WARNING: chaos injection active: {:?}",
            config.chaos
        );
    }

    let model: ExtendedRouteNet = match arg("--model") {
        Some(path) => routenet::persist::load_model(std::path::Path::new(&path))
            .map_err(|e| format!("load --model {path}: {e}"))?,
        None => {
            // Demo mode: random weights, real preprocessing. Predictions are
            // untrained — this exists to exercise the serving path.
            eprintln!(
                "[serve] no --model given; fitting a demo model on generated {topology} data"
            );
            let (_, samples) = demo_scenarios(&topology, fit_samples, 60.0, 2019)?;
            let ds = rn_dataset::Dataset {
                topology: match topology.as_str() {
                    "geant2" => rn_netgraph::topologies::geant2_default(),
                    "toy5" => rn_netgraph::topologies::toy5(),
                    _ => rn_netgraph::topologies::nsfnet_default(),
                },
                samples,
            };
            let mut m = ExtendedRouteNet::new(ModelConfig {
                state_dim,
                mp_iterations: mp_iters,
                readout_hidden: 2 * state_dim,
                ..ModelConfig::default()
            });
            m.fit_preprocessing(&ds, 5);
            m
        }
    };

    let service = Service::start(model, config);
    let server = TcpServer::bind(service.handle(), listen.as_str())
        .map_err(|e| format!("bind {listen}: {e}"))?;
    println!(
        "{{\"listening\":\"{}\",\"model\":\"extended\"}}",
        server.local_addr()
    );
    // Serve forever; the daemon is stopped by killing the process.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
