//! Load generator CLI: drive a running `rn_serve` frontend and print a
//! throughput/latency report as JSON.
//!
//! ```sh
//! rn_loadgen --addr 127.0.0.1:9977 --topology nsfnet \
//!            --clients 4 --requests 64 --mode cached \
//!            --deadline-ms 250 --retries 3 --backoff-ms 5
//! ```
//!
//! `--mode naive` re-sends the full scenario JSON on every request (the
//! pre-serving usage pattern); `--mode cached` registers scenarios once and
//! then queries by fingerprint. Scenario generation is seed-deterministic,
//! so pointing this at a server started on the same topology works without
//! shipping files around.
//!
//! An unreachable server, a bad flag, or a failed client thread exits
//! nonzero with a one-line summary on stderr — never a panic/backtrace —
//! so shell pipelines and the examples' quickstart can branch on `$?`.

use rn_serve::loadgen::{demo_scenarios, run_loadgen, Client, LoadMode, LoadgenConfig};
use rn_serve::{Request, Response};
use std::process::ExitCode;

fn arg(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("[loadgen] error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let defaults = LoadgenConfig::new(arg("--addr").unwrap_or_else(|| "127.0.0.1:9977".into()));
    let config = LoadgenConfig {
        clients: arg("--clients").and_then(|v| v.parse().ok()).unwrap_or(4),
        requests_per_client: arg("--requests").and_then(|v| v.parse().ok()).unwrap_or(32),
        mode: LoadMode::parse(&arg("--mode").unwrap_or_else(|| "cached".into()))?,
        deadline_ms: arg("--deadline-ms")
            .and_then(|v| v.parse().ok())
            .filter(|&ms: &u64| ms > 0),
        max_retries: arg("--retries")
            .and_then(|v| v.parse().ok())
            .unwrap_or(defaults.max_retries),
        backoff_base_ms: arg("--backoff-ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(defaults.backoff_base_ms),
        ..defaults
    };
    let topology = arg("--topology").unwrap_or_else(|| "nsfnet".into());
    let scenarios: usize = arg("--scenarios").and_then(|v| v.parse().ok()).unwrap_or(4);
    let sim_s: f64 = arg("--sim-duration")
        .and_then(|v| v.parse().ok())
        .unwrap_or(60.0);
    let seed: u64 = arg("--seed").and_then(|v| v.parse().ok()).unwrap_or(2019);

    eprintln!("[loadgen] generating {scenarios} {topology} scenarios ...");
    let (_, samples) = demo_scenarios(&topology, scenarios, sim_s, seed)?;
    eprintln!(
        "[loadgen] {} clients x {} requests ({:?}) against {}",
        config.clients, config.requests_per_client, config.mode, config.addr
    );
    let report = run_loadgen(&config, &samples)
        .map_err(|e| format!("{e} (is rn_serve running at {}?)", config.addr))?;
    println!(
        "{}",
        serde_json::to_string(&report).map_err(|e| format!("serialize report: {e}"))?
    );
    if report.rejected > 0 || report.retries > 0 || report.gave_up > 0 {
        eprintln!(
            "[loadgen] overload: {} rejects ({:.1}% of attempts), {} retries, \
             {} gave up, {} deadline-expired",
            report.rejected,
            report.reject_rate * 100.0,
            report.retries,
            report.gave_up,
            report.deadline_exceeded,
        );
    }

    // End-of-run server-side cache summary: how much planning the plan
    // cache absorbed and how many dynamic batches rode a cached megabatch
    // composition instead of a fresh `build_megabatch`.
    match Client::connect(&config.addr).and_then(|mut c| {
        c.round_trip(&Request::Metrics)
            .map_err(std::io::Error::other)
    }) {
        Ok(Response::Metrics { snapshot }) => {
            eprintln!(
                "[loadgen] server caches: plan hit rate {:.3} ({}/{} lookups), \
                 composition hit rate {:.3} ({}/{} batches), {} distinct batch shapes",
                snapshot.cache_hit_rate,
                snapshot.cache_hits,
                snapshot.cache_hits + snapshot.cache_misses,
                snapshot.compose_hit_rate,
                snapshot.compose_hits,
                snapshot.compose_hits + snapshot.compose_misses,
                snapshot.batch_shapes.len(),
            );
            if let Some(top) = snapshot.batch_shapes.first() {
                eprintln!(
                    "[loadgen] hottest batch shape {:#018x}: {} batches",
                    top.shape, top.batches
                );
            }
            eprintln!(
                "[loadgen] server: {} workers, model v{}, up {:.1}s",
                snapshot.workers, snapshot.model_version, snapshot.uptime_s
            );
            // Request-lifecycle breakdown, present when the server runs
            // with RN_TRACE=1: where a request's latency actually goes.
            for s in &snapshot.stage_latency {
                eprintln!(
                    "[loadgen] stage {:>14}: n {:>6}  p50 {:>8.3}ms  p95 {:>8.3}ms  \
                     p99 {:>8.3}ms  mean {:>8.3}ms  total {:>10.1}ms",
                    s.name, s.count, s.p50_ms, s.p95_ms, s.p99_ms, s.mean_ms, s.total_ms
                );
            }
            // And mirror the snapshot to a JSONL file for dashboards/CI
            // artifacts when this side runs traced too.
            if rn_trace::enabled() {
                let path = std::env::var("RN_TRACE_SERVE_OUT")
                    .ok()
                    .filter(|p| !p.trim().is_empty())
                    .unwrap_or_else(|| "serve_metrics.jsonl".into());
                match serde_json::to_string(&snapshot) {
                    Ok(line) => match std::fs::write(&path, line + "\n") {
                        Ok(()) => eprintln!("[loadgen] metrics snapshot written to {path}"),
                        Err(e) => eprintln!("[loadgen] cannot write {path}: {e}"),
                    },
                    Err(e) => eprintln!("[loadgen] serialize snapshot: {e}"),
                }
            }
        }
        Ok(other) => eprintln!("[loadgen] unexpected metrics response: {other:?}"),
        Err(e) => eprintln!("[loadgen] metrics fetch failed: {e}"),
    }
    // A run where every request failed is a failed run, even though the
    // report printed — quickstart scripts branch on the exit code.
    if report.requests == 0 {
        return Err("no request succeeded".into());
    }
    Ok(())
}
