//! # rn-serve
//!
//! A concurrent inference service over the megabatch engine: the missing
//! layer between "a fast `predict_batch`" and "serves heavy interactive
//! what-if traffic".
//!
//! ## Architecture
//!
//! ```text
//!             ┌────────────┐   ┌──────────────────────────────┐
//!  clients ──▶│ TCP (JSONL)│──▶│ admission queue              │
//!   (or the   └────────────┘   │  ├ dynamic batcher: flush on │
//!    in-proc  ┌────────────┐   │  │  max_batch / path budget /│
//!    handle) ─▶ ServeHandle│──▶│  │  deadline                 │
//!             └────────────┘   └──┼───────────────────────────┘
//!                                 ▼
//!                     worker shard pool (TapePool-backed tapes)
//!                                 │  one fused block-diagonal
//!                                 ▼  forward per batch
//!            ┌─────────────┐  ┌───────────────┐  ┌─────────────┐
//!            │ PlanCache   │  │ ModelRegistry │  │ ServeMetrics│
//!            │ (fingerprint│  │ (atomic hot-  │  │ (latency /  │
//!            │  → plan LRU)│  │  swap)        │  │  occupancy) │
//!            └─────────────┘  └───────────────┘  └─────────────┘
//! ```
//!
//! - [`service`] — admission queue, dynamic batching, the worker pool, and
//!   the in-process [`ServeHandle`] API.
//! - [`server`] — the JSONL-over-TCP frontend (`Register` / `Predict` /
//!   `Cached` / `Metrics`).
//! - [`registry`] — versioned model slot with atomic hot-swap.
//! - [`metrics`] — throughput, latency percentiles, batch occupancy, cache
//!   hit rate.
//! - [`loadgen`] — the measurement client driving the serving benchmark.
//!
//! Serving results are bitwise identical to direct
//! [`routenet::PathPredictor::predict_batch`] calls regardless of how the
//! dynamic batcher groups requests — see the crate's stress tests.

pub mod loadgen;
pub mod metrics;
pub mod registry;
pub mod server;
pub mod service;

pub use loadgen::{run_loadgen, LoadMode, LoadgenConfig, LoadgenReport};
pub use metrics::{nearest_rank, MetricsSnapshot, ServeMetrics};
pub use registry::ModelRegistry;
pub use server::{Request, Response, TcpServer};
pub use service::{ServeConfig, ServeError, ServeHandle, Service};
