//! # rn-serve
//!
//! A concurrent inference service over the megabatch engine: the missing
//! layer between "a fast `predict_batch`" and "serves heavy interactive
//! what-if traffic".
//!
//! ## Architecture
//!
//! ```text
//!             ┌────────────┐   ┌──────────────────────────────┐
//!  clients ──▶│ TCP (JSONL)│──▶│ admission queue              │
//!   (or the   └────────────┘   │  ├ dynamic batcher: flush on │
//!    in-proc  ┌────────────┐   │  │  max_batch / path budget /│
//!    handle) ─▶ ServeHandle│──▶│  │  deadline                 │
//!             └────────────┘   └──┼───────────────────────────┘
//!                                 ▼
//!                     worker shard pool (TapePool-backed tapes)
//!                                 │  one fused block-diagonal
//!                                 ▼  forward per batch
//!            ┌─────────────┐  ┌───────────────┐  ┌─────────────┐
//!            │ PlanCache   │  │ ModelRegistry │  │ ServeMetrics│
//!            │ (fingerprint│  │ (atomic hot-  │  │ (latency /  │
//!            │  → plan LRU)│  │  swap)        │  │  occupancy) │
//!            └─────────────┘  └───────────────┘  └─────────────┘
//! ```
//!
//! - [`service`] — admission queue, dynamic batching, the worker pool, and
//!   the in-process [`ServeHandle`] API.
//! - [`server`] — the JSONL-over-TCP frontend (`Register` / `Predict` /
//!   `Cached` / `Metrics`).
//! - [`registry`] — versioned model slot with atomic hot-swap.
//! - [`metrics`] — throughput, latency percentiles, batch occupancy, cache
//!   hit rate.
//! - [`loadgen`] — the measurement client driving the serving benchmark.
//! - [`fault`] — deterministic chaos injection (worker panics/kills, batch
//!   latency, connection drops) behind `RN_SERVE_CHAOS_*` knobs.
//!
//! Serving results are bitwise identical to direct
//! [`routenet::PathPredictor::predict_batch`] calls regardless of how the
//! dynamic batcher groups requests — see the crate's stress tests.
//!
//! ## Fault tolerance
//!
//! Workers are *supervised*: batch execution runs under `catch_unwind` (a
//! panicking batch answers its requests with errors instead of aborting the
//! process), panics escaping a batch respawn the worker loop, and every
//! lock acquisition recovers from poison instead of cascading. Requests
//! carry optional deadlines; a full admission queue sheds load with a
//! structured `Overloaded {retry_after_ms}` reply. `tests/serve_faults.rs`
//! drives all of it through injected chaos.

pub mod fault;
pub mod loadgen;
pub mod metrics;
pub mod registry;
pub mod server;
pub mod service;
mod sync;

pub use fault::{ChaosPlan, FaultInjector};
pub use loadgen::{run_loadgen, LoadMode, LoadgenConfig, LoadgenReport};
pub use metrics::{nearest_rank, MetricsSnapshot, ServeMetrics};
pub use registry::ModelRegistry;
pub use server::{Request, Response, TcpServer};
pub use service::{ServeConfig, ServeError, ServeHandle, Service};
