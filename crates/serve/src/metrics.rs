//! Service observability: lock-free counters, a geometric latency histogram,
//! and a batch-occupancy histogram, snapshotted into one serializable
//! record.
//!
//! Everything on the request hot path is an atomic increment; the only lock
//! is taken by [`ServeMetrics::snapshot`], which readers call at human
//! frequency.

use routenet::compose::ShapeCount;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of geometric latency buckets. Bucket `i` covers latencies up to
/// `LOW_US * GROWTH^i` microseconds; with 64 buckets at 1.5x growth the top
/// bucket sits far above any plausible request latency.
const BUCKETS: usize = 64;
const LOW_US: f64 = 10.0;
const GROWTH: f64 = 1.5;

/// Zero-based index of the **inclusive nearest-rank** percentile element
/// among `n` sorted samples: the smallest index `i` such that at least `p`
/// percent of the samples are `<= sample[i]` (the rank is `max(1,
/// ceil(p/100 · n))`, the comparison **inclusive** of `sample[i]` itself).
/// `None` when there are no samples.
///
/// The convention, spelled out at the boundaries (pinned by the
/// `nearest_rank_boundary_convention_*` tests):
///
/// - `p = 0` is the **minimum** (the rank clamps up to 1, never "no
///   element" — an exclusive reading would have no answer at p0);
/// - `p = 100` is the **maximum** (never one past the end);
/// - ties round **down**: `p = 50` of an even count is the *lower* median
///   (index `n/2 - 1`), not an interpolated midpoint — every reported
///   percentile is a value that actually occurred;
/// - 1 sample is every percentile; `p > 100` clamps to the maximum.
///
/// This is the single definition every latency percentile in the workspace
/// goes through — the histogram's bucket walk ([`LatencyHistogram`]), the
/// snapshot fields ([`MetricsSnapshot::latency_p50_ms`] and friends), the
/// exact client-side summaries (`rn_serve::loadgen`), and every
/// `rn_trace` stage histogram (this function now *delegates to*
/// [`rn_trace::nearest_rank`], the canonical home) — so the degenerate
/// cases agree everywhere (0 samples: callers report 0.0).
pub fn nearest_rank(n: usize, p: f64) -> Option<usize> {
    rn_trace::nearest_rank(n, p)
}

/// Geometric-bucket latency histogram with atomic counters.
///
/// Percentiles are read back as the upper bound of the bucket holding the
/// requested rank: an over-estimate by at most one growth factor (50%),
/// which is plenty for service dashboards. Benchmarks that need exact
/// percentiles record client-side samples instead.
pub struct LatencyHistogram {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    fn bucket_of(us: f64) -> usize {
        if us <= LOW_US {
            return 0;
        }
        let idx = (us / LOW_US).log(GROWTH).ceil() as usize;
        idx.min(BUCKETS - 1)
    }

    /// Upper latency bound (µs) of bucket `i`.
    fn bucket_upper_us(i: usize) -> f64 {
        LOW_US * GROWTH.powi(i as i32)
    }

    /// Record one latency.
    pub fn record(&self, latency: Duration) {
        let ns = latency.as_nanos() as u64;
        let us = ns as f64 / 1_000.0;
        self.counts[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Estimated latency (ms) at percentile `p` (0..100): the upper bound of
    /// the bucket containing the rank. 0.0 when nothing was recorded.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        let total = self.count();
        let Some(rank_idx) = nearest_rank(total as usize, p) else {
            return 0.0;
        };
        let rank = rank_idx as u64 + 1;
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_upper_us(i) / 1_000.0;
            }
        }
        self.max_ms()
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_ns.load(Ordering::Relaxed) as f64 / n as f64 / 1e6
    }

    /// Maximum recorded latency in milliseconds.
    pub fn max_ms(&self) -> f64 {
        self.max_ns.load(Ordering::Relaxed) as f64 / 1e6
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Histogram of dynamic-batch sizes (occupancy), bucket per exact size.
pub struct BatchHistogram {
    counts: Vec<AtomicU64>,
    batches: AtomicU64,
    requests: AtomicU64,
    path_rows: AtomicU64,
}

impl BatchHistogram {
    /// Histogram for batches of up to `max_batch` requests.
    pub fn new(max_batch: usize) -> Self {
        Self {
            counts: (0..max_batch.max(1)).map(|_| AtomicU64::new(0)).collect(),
            batches: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            path_rows: AtomicU64::new(0),
        }
    }

    /// Record one flushed batch of `size` requests covering `paths` rows.
    pub fn record(&self, size: usize, paths: usize) {
        let idx = size.clamp(1, self.counts.len()) - 1;
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.requests.fetch_add(size as u64, Ordering::Relaxed);
        self.path_rows.fetch_add(paths as u64, Ordering::Relaxed);
    }

    /// Flushed batches.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Mean requests per batch (the occupancy the dynamic batcher achieved).
    pub fn mean_occupancy(&self) -> f64 {
        let b = self.batches();
        if b == 0 {
            return 0.0;
        }
        self.requests.load(Ordering::Relaxed) as f64 / b as f64
    }

    /// Mean path rows per batch.
    pub fn mean_paths(&self) -> f64 {
        let b = self.batches();
        if b == 0 {
            return 0.0;
        }
        self.path_rows.load(Ordering::Relaxed) as f64 / b as f64
    }

    /// Counts per batch size, `[0] == batches of one request`.
    pub fn counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

/// Request-lifecycle stage names and indices for the serve-side
/// [`rn_trace::StageRecorder`]. The five stages are an **exact
/// decomposition** of the end-to-end latency histogram: for every
/// completed request, `queue_wait + batch_assembly + compose + forward +
/// reply` equals the `enqueue → response recorded` duration to the
/// nanosecond (each boundary instant closes one stage and opens the
/// next), so stage sums reconcile against `latency` totals with no gap
/// term. Pinned by `crates/serve/tests/trace.rs`.
pub mod stage {
    /// Stage names, recording-index order.
    pub const NAMES: &[&str] = &[
        "queue_wait",
        "batch_assembly",
        "compose",
        "forward",
        "reply",
    ];
    /// Enqueue → the dynamic batcher drains the request into a batch.
    pub const QUEUE_WAIT: usize = 0;
    /// Drain → composition starts: deadline partitioning, model snapshot,
    /// plan-ref assembly, tape checkout (and any chaos delay injected
    /// before the batch region).
    pub const BATCH_ASSEMBLY: usize = 1;
    /// Composition-cache checkout + feature refill, or a fresh
    /// block-diagonal compose (zero-length for singleton batches, which
    /// skip composition).
    pub const COMPOSE: usize = 2;
    /// The model forward pass over the (mega)batch.
    pub const FORWARD: usize = 3;
    /// Forward done → per-request latency recorded (result splitting and
    /// bookkeeping; the actual channel send is after the clock stops,
    /// matching what the end-to-end histogram measures).
    pub const REPLY: usize = 4;
}

/// Slots in the recent-completion ring. With [`RECENT_SLOT_S`]-second slots
/// the sliding window spans `RECENT_SLOTS * RECENT_SLOT_S` = 16 seconds —
/// long enough to smooth batch-sized completion bursts, short enough that a
/// throughput collapse moves the backoff hint within seconds instead of
/// being averaged away by hours of uptime.
const RECENT_SLOTS: usize = 8;
/// Seconds covered by one recent-completion slot.
const RECENT_SLOT_S: u64 = 2;

/// Lock-free sliding-window event counter: a ring of atomic slots, each
/// packing `(slot epoch << 32) | count`. Recording CASes the slot for the
/// current epoch — bumping the count on an epoch match, claiming the slot
/// with count 1 when a stale epoch is found — so a slot left over from a
/// previous ring lap can never leak old counts into the current window.
/// Reads sum every slot whose epoch is still inside the window.
///
/// All methods take the current time explicitly (seconds since service
/// start), which keeps the arithmetic pure and unit-testable: tests drive a
/// synthetic clock instead of sleeping through real slot boundaries.
struct RecentRate {
    slots: [AtomicU64; RECENT_SLOTS],
}

impl RecentRate {
    fn new() -> Self {
        Self {
            slots: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn epoch_of(now_s: f64) -> u64 {
        (now_s.max(0.0) as u64) / RECENT_SLOT_S
    }

    /// Count one event at time `now_s`.
    fn note(&self, now_s: f64) {
        let epoch = Self::epoch_of(now_s);
        let slot = &self.slots[(epoch as usize) % RECENT_SLOTS];
        let tagged = epoch << 32;
        let mut current = slot.load(Ordering::Relaxed);
        loop {
            let next = if current >> 32 == epoch {
                // Same epoch: bump the packed count (the low half cannot
                // realistically saturate — 2^32 events in 2 seconds).
                current + 1
            } else {
                // Stale epoch from a previous lap: claim the slot afresh.
                tagged | 1
            };
            match slot.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Events inside the window ending at `now_s`.
    fn window_count(&self, now_s: f64) -> u64 {
        let epoch = Self::epoch_of(now_s);
        let oldest = epoch.saturating_sub(RECENT_SLOTS as u64 - 1);
        self.slots
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .filter(|packed| (oldest..=epoch).contains(&(packed >> 32)))
            .map(|packed| packed & 0xffff_ffff)
            .sum()
    }

    /// Events per second over the window ending at `now_s`. The divisor is
    /// the real span covered: the full ring once the service has been up
    /// that long, the (shorter) uptime before that — a cold service is not
    /// penalized for the empty slots it has not lived through yet.
    fn rate(&self, now_s: f64) -> f64 {
        let span = (RECENT_SLOTS as u64 * RECENT_SLOT_S) as f64;
        let window_s = now_s.clamp(RECENT_SLOT_S as f64, span);
        self.window_count(now_s) as f64 / window_s
    }
}

/// All service counters, owned by the service and shared with every worker
/// and frontend.
pub struct ServeMetrics {
    /// Requests admitted to the queue.
    pub submitted: AtomicU64,
    /// Requests answered (successfully predicted).
    pub completed: AtomicU64,
    /// Requests refused at admission (queue full / shutting down).
    pub rejected: AtomicU64,
    /// Requests that failed inside the worker.
    pub errors: AtomicU64,
    /// Batches that panicked inside a worker's supervised region (each one
    /// answered its requests with `WorkerPanic` errors — no reply lost).
    pub worker_panics: AtomicU64,
    /// Worker-loop respawns: panics that escaped the batch region and were
    /// caught by the thread's supervisor wrapper.
    pub worker_restarts: AtomicU64,
    /// Requests dropped because their deadline expired while they queued
    /// (answered `DeadlineExceeded` before any forward-pass work).
    pub deadline_expired: AtomicU64,
    /// TCP connections dropped by chaos injection (frontend-side).
    pub conn_drops: AtomicU64,
    /// Model hot-swaps performed.
    pub swaps: AtomicU64,
    /// End-to-end request latency (enqueue → response ready).
    pub latency: LatencyHistogram,
    /// Dynamic-batch occupancy.
    pub batches: BatchHistogram,
    /// Per-stage request-lifecycle timing (see [`stage`]). Only populated
    /// while `RN_TRACE=1` — recording is a no-op behind a relaxed atomic
    /// load otherwise.
    pub stages: rn_trace::StageRecorder,
    /// Completions inside the last [`RECENT_SLOTS`]·[`RECENT_SLOT_S`]
    /// seconds — the drain-rate source for [`Self::retry_after_ms_hint`].
    /// Fed by [`Self::note_completion`] alongside `completed`.
    recent: RecentRate,
    started: Instant,
}

impl ServeMetrics {
    /// Fresh metrics for a service with the given batch ceiling.
    pub fn new(max_batch: usize) -> Self {
        Self {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            worker_restarts: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            conn_drops: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            batches: BatchHistogram::new(max_batch),
            stages: rn_trace::StageRecorder::new(stage::NAMES),
            recent: RecentRate::new(),
            started: Instant::now(),
        }
    }

    /// Count one answered request: the lifetime `completed` total plus the
    /// sliding recent-rate window behind the overload backoff hint. Workers
    /// call this instead of bumping `completed` directly so the two counters
    /// cannot drift.
    pub fn note_completion(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.recent.note(self.uptime_s());
    }

    /// Seconds since the service started.
    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Backoff hint handed to shed clients in `Overloaded {retry_after_ms}`:
    /// the time a full queue of `queue_depth` requests needs to drain at the
    /// service's **recent** completion rate (a 16-second sliding window, not
    /// the lifetime average — hours of fast uptime must not talk clients
    /// into hammering a service that collapsed seconds ago), floored at 1 ms
    /// (a retry-storm hint of 0 would defeat the point) and capped at 1 s
    /// (the estimate is coarse; holding clients off longer than a second on
    /// its authority would be overconfident). Before any request has ever
    /// completed there is no rate to extrapolate — a flat 25 ms covers
    /// warmup. A service that *has* completed requests but finished none in
    /// the recent window is not draining at all: shed clients get the full
    /// 1 s cap.
    pub fn retry_after_ms_hint(&self, queue_depth: usize) -> u64 {
        self.retry_after_ms_hint_at(queue_depth, self.uptime_s())
    }

    /// [`Self::retry_after_ms_hint`] at an explicit uptime — the pure,
    /// clock-free form the unit tests drive with a synthetic timeline.
    pub fn retry_after_ms_hint_at(&self, queue_depth: usize, now_s: f64) -> u64 {
        if self.completed.load(Ordering::Relaxed) == 0 {
            return 25;
        }
        let rate = self.recent.rate(now_s);
        if rate <= 0.0 {
            // Lifetime completions but a dead recent window: nothing is
            // draining, so claim the whole cap.
            return 1_000;
        }
        let drain_s = queue_depth as f64 / rate;
        (drain_s * 1_000.0).ceil().clamp(1.0, 1_000.0) as u64
    }

    /// Snapshot every counter into a serializable record. Cache statistics,
    /// the model version, and the worker count are injected by the service,
    /// which owns them.
    pub fn snapshot(
        &self,
        caches: CacheStats,
        model_version: u64,
        queue_depth: usize,
        workers: usize,
    ) -> MetricsSnapshot {
        let CacheStats {
            plan_hits: cache_hits,
            plan_misses: cache_misses,
            plan_len: cache_len,
            compose_hits,
            compose_misses,
            compose_len,
            batch_shapes,
        } = caches;
        let completed = self.completed.load(Ordering::Relaxed);
        let uptime = self.uptime_s();
        let lookups = cache_hits + cache_misses;
        let compose_lookups = compose_hits + compose_misses;
        MetricsSnapshot {
            uptime_s: uptime,
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            conn_drops: self.conn_drops.load(Ordering::Relaxed),
            throughput_rps: if uptime > 0.0 {
                completed as f64 / uptime
            } else {
                0.0
            },
            latency_p50_ms: self.latency.percentile_ms(50.0),
            latency_p95_ms: self.latency.percentile_ms(95.0),
            latency_p99_ms: self.latency.percentile_ms(99.0),
            latency_mean_ms: self.latency.mean_ms(),
            latency_max_ms: self.latency.max_ms(),
            batches: self.batches.batches(),
            mean_batch_occupancy: self.batches.mean_occupancy(),
            mean_batch_paths: self.batches.mean_paths(),
            batch_size_counts: self.batches.counts(),
            cache_hits,
            cache_misses,
            cache_hit_rate: if lookups > 0 {
                cache_hits as f64 / lookups as f64
            } else {
                0.0
            },
            cache_len: cache_len as u64,
            compose_hits,
            compose_misses,
            compose_hit_rate: if compose_lookups > 0 {
                compose_hits as f64 / compose_lookups as f64
            } else {
                0.0
            },
            compose_len: compose_len as u64,
            batch_shapes,
            model_version,
            model_swaps: self.swaps.load(Ordering::Relaxed),
            queue_depth: queue_depth as u64,
            workers: workers as u64,
            stage_latency: if rn_trace::enabled() {
                self.stages
                    .snapshot()
                    .into_iter()
                    .map(StageLatency::from)
                    .collect()
            } else {
                Vec::new()
            },
        }
    }
}

/// Cache statistics the service injects into a [`MetricsSnapshot`]: the
/// plan cache (scenario fingerprint → compiled plan) and the composition
/// cache (ordered structure fingerprints → composed megabatch), plus the
/// batch-shape histogram the composition cache maintains.
#[derive(Debug, Clone, Default)]
pub struct CacheStats {
    /// Plan-cache hits.
    pub plan_hits: u64,
    /// Plan-cache misses.
    pub plan_misses: u64,
    /// Plans resident.
    pub plan_len: usize,
    /// Composition-cache hits (multi-request batches that skipped planning).
    pub compose_hits: u64,
    /// Composition-cache misses (batches that composed fresh).
    pub compose_misses: u64,
    /// Compositions resident.
    pub compose_len: usize,
    /// Batch-shape histogram, most-requested shapes first.
    pub batch_shapes: Vec<ShapeCount>,
}

/// A point-in-time copy of the service metrics (JSON-serializable; returned
/// by the in-process API and the TCP `Metrics` request).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Seconds since service start.
    pub uptime_s: f64,
    /// Requests admitted.
    pub submitted: u64,
    /// Requests answered.
    pub completed: u64,
    /// Requests refused at admission.
    pub rejected: u64,
    /// Requests failed in workers.
    pub errors: u64,
    /// Batches that panicked inside a worker's supervised region (their
    /// requests were answered with `WorkerPanic` errors, never dropped).
    pub worker_panics: u64,
    /// Worker-loop respawns performed by the per-thread supervisor.
    pub worker_restarts: u64,
    /// Requests answered `DeadlineExceeded` because they expired in queue.
    pub deadline_expired: u64,
    /// TCP connections dropped by chaos injection.
    pub conn_drops: u64,
    /// Completed requests per second of uptime.
    pub throughput_rps: f64,
    /// Median end-to-end latency (ms, bucket upper bound). Percentiles use
    /// the **inclusive nearest-rank** convention of [`nearest_rank`]: the
    /// smallest recorded value with cumulative proportion ≥ p/100, so p50 of
    /// an even count is the lower median, p0 would be the minimum and p100
    /// the maximum — never an interpolated value.
    pub latency_p50_ms: f64,
    /// 95th-percentile latency (ms, inclusive nearest-rank — see
    /// [`MetricsSnapshot::latency_p50_ms`]).
    pub latency_p95_ms: f64,
    /// 99th-percentile latency (ms, inclusive nearest-rank — see
    /// [`MetricsSnapshot::latency_p50_ms`]).
    pub latency_p99_ms: f64,
    /// Mean latency (ms, exact).
    pub latency_mean_ms: f64,
    /// Worst latency (ms, exact).
    pub latency_max_ms: f64,
    /// Dynamic batches flushed.
    pub batches: u64,
    /// Mean requests per batch.
    pub mean_batch_occupancy: f64,
    /// Mean path rows per batch.
    pub mean_batch_paths: f64,
    /// Batches by exact size (`[0]` = singleton batches).
    pub batch_size_counts: Vec<u64>,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses.
    pub cache_misses: u64,
    /// Hits over lookups.
    pub cache_hit_rate: f64,
    /// Plans resident in the cache.
    pub cache_len: u64,
    /// Composition-cache hits: multi-request batches whose block-diagonal
    /// structure was already composed (workers skipped `build_megabatch`
    /// planning and only refilled features).
    pub compose_hits: u64,
    /// Composition-cache misses: batches that composed their structure fresh.
    pub compose_misses: u64,
    /// Composition hits over lookups.
    pub compose_hit_rate: f64,
    /// Compositions resident in the cache.
    pub compose_len: u64,
    /// Batch-shape histogram: how often each distinct ordered batch shape
    /// (hashed composition key) was requested, most frequent first.
    pub batch_shapes: Vec<ShapeCount>,
    /// Version of the model serving right now (bumps on hot-swap).
    pub model_version: u64,
    /// Hot-swaps performed.
    pub model_swaps: u64,
    /// Requests waiting in the queue at snapshot time.
    pub queue_depth: u64,
    /// Worker threads the service was configured with.
    pub workers: u64,
    /// Per-stage request-lifecycle latency breakdown (see [`stage`] for
    /// the decomposition). Empty unless tracing is on (`RN_TRACE=1`).
    pub stage_latency: Vec<StageLatency>,
}

/// One request-lifecycle stage's latency statistics inside a
/// [`MetricsSnapshot`] — the serializable face of an
/// [`rn_trace::StageStats`]. Percentiles follow the same inclusive
/// nearest-rank / bucket-upper-bound convention as the end-to-end
/// `latency_*` fields; `total_ms` and `mean_ms` are exact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageLatency {
    /// Stage name (one of [`stage::NAMES`]).
    pub name: String,
    /// Spans recorded (one per request for every stage — batch-level work
    /// is attributed to each request that rode the batch).
    pub count: u64,
    /// Exact total time spent in this stage, milliseconds.
    pub total_ms: f64,
    /// Exact mean span duration, milliseconds.
    pub mean_ms: f64,
    /// Median span duration (ms, bucket upper bound).
    pub p50_ms: f64,
    /// 95th-percentile span duration (ms, bucket upper bound).
    pub p95_ms: f64,
    /// 99th-percentile span duration (ms, bucket upper bound).
    pub p99_ms: f64,
    /// Maximum span duration, milliseconds (exact).
    pub max_ms: f64,
}

impl From<rn_trace::StageStats> for StageLatency {
    fn from(s: rn_trace::StageStats) -> Self {
        Self {
            name: s.name.to_string(),
            count: s.count,
            total_ms: s.total_ms,
            mean_ms: s.mean_ms,
            p50_ms: s.p50_ms,
            p95_ms: s.p95_ms,
            p99_ms: s.p99_ms,
            max_ms: s.max_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_percentiles_are_ordered_and_bracket_samples() {
        let h = LatencyHistogram::new();
        for ms in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 100] {
            h.record(Duration::from_millis(ms));
        }
        let p50 = h.percentile_ms(50.0);
        let p95 = h.percentile_ms(95.0);
        let p99 = h.percentile_ms(99.0);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(
            (5.0..=9.0).contains(&p50),
            "median of 1..9,100 ms ≈ 5ms: {p50}"
        );
        assert!(p99 >= 100.0, "tail must reach the outlier: {p99}");
        assert!((h.mean_ms() - 14.5).abs() < 0.5, "{}", h.mean_ms());
        assert_eq!(h.count(), 10);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = LatencyHistogram::new();
        for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(h.percentile_ms(p), 0.0, "p{p} of nothing must be 0");
        }
        assert_eq!(h.mean_ms(), 0.0);
        assert_eq!(h.max_ms(), 0.0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_millis(3));
        let p50 = h.percentile_ms(50.0);
        for p in [0.0, 1.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(h.percentile_ms(p), p50, "one sample answers every p");
        }
        // Bucket upper bound: an over-estimate of at most one growth step.
        assert!((3.0..=4.6).contains(&p50), "{p50}");
    }

    #[test]
    fn nearest_rank_definition_pins_the_degenerate_cases() {
        assert_eq!(nearest_rank(0, 50.0), None);
        assert_eq!(nearest_rank(0, 99.0), None);
        // One sample: every percentile is index 0.
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(nearest_rank(1, p), Some(0));
        }
        // Classic nearest-rank table for n = 10.
        assert_eq!(nearest_rank(10, 0.0), Some(0));
        assert_eq!(nearest_rank(10, 10.0), Some(0));
        assert_eq!(nearest_rank(10, 50.0), Some(4));
        assert_eq!(nearest_rank(10, 95.0), Some(9));
        assert_eq!(nearest_rank(10, 99.0), Some(9));
        assert_eq!(nearest_rank(10, 100.0), Some(9));
        // Ranks never exceed the sample count (p > 100 clamps).
        assert_eq!(nearest_rank(4, 150.0), Some(3));
    }

    #[test]
    fn nearest_rank_boundary_convention_on_one_and_two_samples() {
        // The inclusive nearest-rank convention at its extremes: p0 is the
        // minimum (rank clamps up to 1), p100 is the maximum (never one
        // past the end), and ties round DOWN (p50 of two samples is the
        // lower median). These are exactly the cases where an exclusive
        // reading would disagree.
        assert_eq!(nearest_rank(1, 0.0), Some(0), "p0 of one sample");
        assert_eq!(nearest_rank(1, 100.0), Some(0), "p100 of one sample");
        assert_eq!(nearest_rank(2, 0.0), Some(0), "p0 of two = minimum");
        assert_eq!(nearest_rank(2, 50.0), Some(0), "p50 of two = lower median");
        assert_eq!(nearest_rank(2, 100.0), Some(1), "p100 of two = maximum");
        // Just past a rank boundary the index steps up (inclusive ≥, not >).
        assert_eq!(nearest_rank(2, 50.1), Some(1));
    }

    #[test]
    fn nearest_rank_boundary_convention_through_the_consumers() {
        use crate::loadgen::LatencySummary;
        // Two exact client-side samples: the shared helper's lower-median
        // and maximum conventions must surface unchanged.
        let mut two = [Duration::from_millis(2), Duration::from_millis(10)];
        let s = LatencySummary::of(&mut two);
        assert_eq!(s.p50_ms, 2.0, "p50 of two samples is the LOWER median");
        assert_eq!(s.max_ms, 10.0);
        // The histogram consumer: p100's bucket is the maximum's bucket,
        // p0's the minimum's (upper bounds, so compare bucket ordering).
        let h = LatencyHistogram::new();
        h.record(Duration::from_millis(2));
        h.record(Duration::from_millis(10));
        assert!(h.percentile_ms(0.0) <= h.percentile_ms(100.0));
        assert_eq!(h.percentile_ms(50.0), h.percentile_ms(0.0), "lower median");
        assert!(h.percentile_ms(100.0) >= 10.0);
    }

    #[test]
    fn loadgen_summary_uses_the_shared_helper_for_degenerates() {
        use crate::loadgen::LatencySummary;
        let empty = LatencySummary::of(&mut []);
        assert_eq!(
            (empty.p50_ms, empty.p99_ms, empty.max_ms),
            (0.0, 0.0, 0.0),
            "no samples: all zeros"
        );
        let mut one = [Duration::from_millis(7)];
        let s = LatencySummary::of(&mut one);
        assert_eq!(s.p50_ms, 7.0);
        assert_eq!(s.p90_ms, 7.0);
        assert_eq!(s.p95_ms, 7.0);
        assert_eq!(s.p99_ms, 7.0);
        assert_eq!(s.mean_ms, 7.0);
        assert_eq!(s.max_ms, 7.0);
    }

    #[test]
    fn latency_histogram_top_bucket_clamps_overflow() {
        let h = LatencyHistogram::new();
        // The top bucket's upper bound is LOW_US * GROWTH^63 µs ≈ 14 days;
        // record something far beyond it (63 years) and something inside.
        h.record(Duration::from_secs(2_000_000_000));
        h.record(Duration::from_millis(1));
        assert_eq!(h.count(), 2, "overflow must still be counted");
        // max/sum/mean are exact regardless of bucket clamping.
        assert!((h.max_ms() - 2e12).abs() < 1.0);
        assert!((h.mean_ms() - (2e12 + 1.0) / 2.0).abs() < 1.0);
        // The percentile walk terminates in the (clamped) top bucket with a
        // finite over-estimate, never a panic or an unbounded value.
        let p100 = h.percentile_ms(100.0);
        assert!(p100.is_finite() && p100 > 0.0);
        let top_upper_ms = LOW_US * GROWTH.powi((BUCKETS - 1) as i32) / 1_000.0;
        assert_eq!(p100, top_upper_ms, "overflow clamps into the top bucket");
    }

    #[test]
    fn latency_histogram_concurrent_records_are_consistent() {
        let h = LatencyHistogram::new();
        let threads = 8u64;
        let per = 2_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..per {
                        h.record(Duration::from_micros(1 + (t * per + i) % 5_000));
                    }
                });
            }
        });
        assert_eq!(h.count(), threads * per, "no recorded sample may be lost");
        // Bucket counts and the scalar total must agree exactly.
        let bucket_total: u64 = h.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        assert_eq!(bucket_total, h.count());
        // The exact sum matches an independent computation of the inputs.
        let expect_us: u64 = (0..threads * per).map(|k| 1 + k % 5_000).sum();
        assert_eq!(h.sum_ns.load(Ordering::Relaxed), expect_us * 1_000);
        assert!(h.mean_ms() > 0.0 && h.max_ms() >= h.mean_ms());
    }

    #[test]
    fn latency_histogram_percentiles_monotonic_p0_to_p100() {
        let h = LatencyHistogram::new();
        for us in [3u64, 40, 400, 4_000, 40_000, 400_000] {
            h.record(Duration::from_micros(us));
        }
        let ps: Vec<f64> = [0.0, 50.0, 99.0, 100.0]
            .iter()
            .map(|&p| h.percentile_ms(p))
            .collect();
        for w in ps.windows(2) {
            assert!(w[0] <= w[1], "p0..p100 must be non-decreasing: {ps:?}");
        }
        // p0 sits in the floor bucket (3µs <= 10µs floor), p100 brackets
        // the maximum within one growth factor.
        assert_eq!(ps[0], LOW_US / 1_000.0);
        assert!(ps[3] >= 400.0 && ps[3] <= 400.0 * GROWTH);
    }

    #[test]
    fn batch_histogram_tracks_occupancy() {
        let b = BatchHistogram::new(4);
        b.record(1, 20);
        b.record(4, 80);
        b.record(3, 60);
        assert_eq!(b.batches(), 3);
        assert!((b.mean_occupancy() - 8.0 / 3.0).abs() < 1e-9);
        assert!((b.mean_paths() - 160.0 / 3.0).abs() < 1e-9);
        assert_eq!(b.counts(), vec![1, 0, 1, 1]);
        // Oversized batches clamp into the top bucket instead of panicking.
        b.record(9, 10);
        assert_eq!(b.counts()[3], 2);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let m = ServeMetrics::new(8);
        m.submitted.fetch_add(3, Ordering::Relaxed);
        m.completed.fetch_add(3, Ordering::Relaxed);
        m.latency.record(Duration::from_micros(250));
        m.batches.record(3, 42);
        let snap = m.snapshot(
            CacheStats {
                plan_hits: 5,
                plan_misses: 1,
                plan_len: 2,
                compose_hits: 3,
                compose_misses: 1,
                compose_len: 1,
                batch_shapes: vec![ShapeCount {
                    shape: 0xfeed,
                    batches: 4,
                }],
            },
            7,
            0,
            2,
        );
        assert_eq!(snap.completed, 3);
        assert_eq!(snap.model_version, 7);
        assert!((snap.cache_hit_rate - 5.0 / 6.0).abs() < 1e-12);
        assert!((snap.compose_hit_rate - 0.75).abs() < 1e-12);
        assert_eq!(snap.compose_len, 1);
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.completed, snap.completed);
        assert_eq!(back.batch_size_counts, snap.batch_size_counts);
        assert_eq!(back.compose_hits, 3);
        assert_eq!(back.batch_shapes.len(), 1);
        assert_eq!(back.batch_shapes[0].shape, 0xfeed);
        assert_eq!(back.batch_shapes[0].batches, 4);
    }

    #[test]
    fn retry_after_hint_is_bounded_and_rate_based() {
        let m = ServeMetrics::new(4);
        // No completions yet: flat warmup hint.
        assert_eq!(m.retry_after_ms_hint_at(100, 0.5), 25);

        // 100 completions noted at t=100s: the window spans the full ring
        // (16 s), so the recent rate is 100/16 = 6.25/s. Two queued requests
        // drain in 320 ms.
        for _ in 0..100 {
            m.completed.fetch_add(1, Ordering::Relaxed);
            m.recent.note(100.0);
        }
        assert_eq!(m.retry_after_ms_hint_at(2, 100.0), 320);
        // A single queued request stays above the 1 ms floor, and a huge
        // queue caps at one second.
        assert!(m.retry_after_ms_hint_at(1, 100.0) >= 1);
        assert_eq!(m.retry_after_ms_hint_at(usize::MAX / 2, 100.0), 1000);

        // Long after the burst the ring has lapped: lifetime completions
        // exist but the recent window is empty, so the hint claims the full
        // cap instead of extrapolating a stale lifetime average.
        let later = 100.0 + (RECENT_SLOTS as u64 * RECENT_SLOT_S) as f64 + 1.0;
        assert_eq!(m.retry_after_ms_hint_at(5, later), 1000);

        // Fresh completions revive the rate immediately: 40 in the window is
        // 2.5/s, so one queued request drains in 400 ms.
        for _ in 0..40 {
            m.recent.note(later);
        }
        assert_eq!(m.retry_after_ms_hint_at(1, later), 400);
    }

    #[test]
    fn recent_rate_window_tracks_only_fresh_slots() {
        let r = RecentRate::new();
        assert_eq!(r.window_count(10.0), 0);
        // Three completions spread over two adjacent slots.
        r.note(10.0);
        r.note(10.5);
        r.note(12.1);
        assert_eq!(r.window_count(12.1), 3);
        // Still inside the 16 s window from the other end.
        assert_eq!(r.window_count(10.0 + 15.9), 3);
        // Outside the window: slots are stale and excluded even though the
        // ring cells still physically hold the old packed counts.
        assert_eq!(r.window_count(10.0 + 40.0), 0);
        // Writing into a lapped slot resets its count instead of
        // accumulating onto the stale value.
        r.note(10.0 + 40.0);
        assert_eq!(r.window_count(10.0 + 40.0), 1);
        // Rate divides by the full ring span once uptime exceeds it.
        let span = (RECENT_SLOTS as u64 * RECENT_SLOT_S) as f64;
        let rate = r.rate(10.0 + 40.0);
        assert!((rate - 1.0 / span).abs() < 1e-12, "{rate}");
        // A cold service divides by its (shorter) uptime instead, floored at
        // one slot so a t=0 note cannot divide by zero.
        let cold = RecentRate::new();
        cold.note(1.0);
        assert!((cold.rate(1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn snapshot_carries_fault_counters() {
        let m = ServeMetrics::new(4);
        m.worker_panics.fetch_add(2, Ordering::Relaxed);
        m.worker_restarts.fetch_add(1, Ordering::Relaxed);
        m.deadline_expired.fetch_add(3, Ordering::Relaxed);
        m.conn_drops.fetch_add(4, Ordering::Relaxed);
        let snap = m.snapshot(CacheStats::default(), 1, 0, 1);
        assert_eq!(
            (
                snap.worker_panics,
                snap.worker_restarts,
                snap.deadline_expired,
                snap.conn_drops
            ),
            (2, 1, 3, 4)
        );
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.worker_panics, 2);
        assert_eq!(back.conn_drops, 4);
    }

    #[test]
    fn snapshot_carries_workers_and_gated_stage_latency() {
        let m = ServeMetrics::new(4);
        rn_trace::set_enabled(true);
        m.stages
            .record(stage::QUEUE_WAIT, Duration::from_micros(80));
        m.stages.record(stage::FORWARD, Duration::from_micros(900));
        let snap = m.snapshot(CacheStats::default(), 1, 0, 3);
        rn_trace::set_enabled(false);
        assert_eq!(snap.workers, 3);
        assert_eq!(snap.stage_latency.len(), stage::NAMES.len());
        assert_eq!(snap.stage_latency[stage::QUEUE_WAIT].name, "queue_wait");
        assert_eq!(snap.stage_latency[stage::QUEUE_WAIT].count, 1);
        assert_eq!(snap.stage_latency[stage::FORWARD].count, 1);
        assert!((snap.stage_latency[stage::FORWARD].total_ms - 0.9).abs() < 1e-9);
        // Round-trips through the JSONL wire format.
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.workers, 3);
        assert_eq!(back.stage_latency.len(), stage::NAMES.len());
        assert_eq!(back.stage_latency[stage::FORWARD].count, 1);
        // With tracing off the breakdown is suppressed entirely.
        let off = m.snapshot(CacheStats::default(), 1, 0, 3);
        assert!(off.stage_latency.is_empty());
    }

    #[test]
    fn empty_cache_stats_read_zero_rates() {
        let m = ServeMetrics::new(4);
        let snap = m.snapshot(CacheStats::default(), 1, 0, 1);
        assert_eq!(snap.cache_hit_rate, 0.0);
        assert_eq!(snap.compose_hit_rate, 0.0);
        assert!(snap.batch_shapes.is_empty());
    }
}
