//! Load generator: drives a running TCP frontend and measures end-to-end
//! throughput and latency from the client side (exact percentiles, unlike
//! the server's bucketed histogram).
//!
//! Two client behaviors bracket the serving design space:
//!
//! - [`LoadMode::Naive`] — the pre-serving usage pattern: one connection,
//!   one request in flight, the **full scenario JSON** serialized, shipped,
//!   re-parsed and re-planned on every query.
//! - [`LoadMode::Cached`] — the intended pattern: each client registers its
//!   scenarios once, then streams tiny fingerprint queries that hit the
//!   server's plan cache and ride shared dynamic batches.
//!
//! The serving benchmark reports the throughput ratio between the two.

use crate::server::{fingerprint_to_hex, Request, Response};
use rn_dataset::{generate, GeneratorConfig, Sample};
use rn_netgraph::{topologies, Topology};
use rn_netsim::SimConfig;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Client behavior (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Full scenario JSON per request, no registration.
    Naive,
    /// Register once, then query by fingerprint.
    Cached,
}

impl LoadMode {
    /// Parse from a CLI flag value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "naive" => Ok(Self::Naive),
            "cached" => Ok(Self::Cached),
            other => Err(format!("unknown mode `{other}` (naive|cached)")),
        }
    }
}

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:9977`.
    pub addr: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests per client.
    pub requests_per_client: usize,
    /// Client behavior.
    pub mode: LoadMode,
}

/// Exact client-side latency summary (milliseconds).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Median.
    pub p50_ms: f64,
    /// 90th percentile.
    pub p90_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Mean.
    pub mean_ms: f64,
    /// Maximum.
    pub max_ms: f64,
}

impl LatencySummary {
    /// Exact percentiles over the recorded samples (zeros when empty).
    pub fn of(latencies: &mut [Duration]) -> Self {
        if latencies.is_empty() {
            return Self {
                p50_ms: 0.0,
                p90_ms: 0.0,
                p95_ms: 0.0,
                p99_ms: 0.0,
                mean_ms: 0.0,
                max_ms: 0.0,
            };
        }
        latencies.sort();
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let at = |p: f64| {
            let idx = crate::metrics::nearest_rank(latencies.len(), p).expect("non-empty");
            ms(latencies[idx])
        };
        let sum: f64 = latencies.iter().map(|&d| ms(d)).sum();
        Self {
            p50_ms: at(50.0),
            p90_ms: at(90.0),
            p95_ms: at(95.0),
            p99_ms: at(99.0),
            mean_ms: sum / latencies.len() as f64,
            max_ms: ms(*latencies.last().expect("non-empty")),
        }
    }
}

/// One load-generation run's results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadgenReport {
    /// Successful requests.
    pub requests: u64,
    /// Failed requests (protocol errors / server errors).
    pub errors: u64,
    /// Wall-clock seconds for the whole run.
    pub wall_s: f64,
    /// Successful requests per wall-clock second.
    pub rps: f64,
    /// Exact client-side latency percentiles.
    pub latency: LatencySummary,
}

/// Generate `count` scenarios on a canonical topology — the shared workload
/// of the loadgen binary, the serving benchmark and the examples (same seed
/// → same scenarios on both sides of a socket).
pub fn demo_scenarios(
    topology: &str,
    count: usize,
    sim_duration_s: f64,
    seed: u64,
) -> Result<(Topology, Vec<Sample>), String> {
    let topo = match topology {
        "nsfnet" => topologies::nsfnet_default(),
        "geant2" => topologies::geant2_default(),
        "toy5" => topologies::toy5(),
        other => return Err(format!("unknown topology `{other}` (nsfnet|geant2|toy5)")),
    };
    let config = GeneratorConfig {
        sim: SimConfig {
            duration_s: sim_duration_s,
            warmup_s: sim_duration_s * 0.1,
            ..SimConfig::default()
        },
        ..GeneratorConfig::default()
    };
    let ds = generate(&topo, &config, seed, count);
    Ok((ds.topology, ds.samples))
}

/// A connected protocol client: line-delimited JSON over one TCP stream.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a serving frontend.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let read_half = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    /// Send one pre-rendered request line and read the response line.
    pub fn round_trip_line(&mut self, line: &str) -> Result<Response, String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("send: {e}"))?;
        self.writer.flush().map_err(|e| format!("flush: {e}"))?;
        let mut response = String::new();
        self.reader
            .read_line(&mut response)
            .map_err(|e| format!("recv: {e}"))?;
        if response.is_empty() {
            return Err("server closed the connection".into());
        }
        serde_json::from_str(&response).map_err(|e| format!("bad response: {e}"))
    }

    /// Serialize and send one request.
    pub fn round_trip(&mut self, request: &Request) -> Result<Response, String> {
        let line = serde_json::to_string(request).map_err(|e| format!("serialize: {e}"))?;
        self.round_trip_line(&line)
    }

    /// Register a scenario; returns its fingerprint (hex).
    pub fn register(&mut self, sample: &Sample) -> Result<String, String> {
        match self.round_trip(&Request::Register {
            sample: sample.clone(),
        })? {
            Response::Registered { plan, .. } => Ok(plan),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }
}

/// Per-client work loop; returns (latencies of successful requests, errors).
fn run_client(
    config: &LoadgenConfig,
    scenarios: &[Sample],
    client_idx: usize,
) -> Result<(Vec<Duration>, u64), String> {
    let mut client = Client::connect(&config.addr).map_err(|e| format!("connect: {e}"))?;
    // Pre-render the request lines. Naive clients still pay full-sample
    // serialization *per request* below — that is the cost being measured —
    // while cached clients register once and reuse a ~40-byte line.
    let naive_requests: Vec<Request> = scenarios
        .iter()
        .map(|s| Request::Predict { sample: s.clone() })
        .collect();
    let cached_lines: Vec<String> = if config.mode == LoadMode::Cached {
        scenarios
            .iter()
            .map(|s| {
                let fp = client.register(s)?;
                serde_json::to_string(&Request::Cached { plan: fp })
                    .map_err(|e| format!("serialize: {e}"))
            })
            .collect::<Result<_, String>>()?
    } else {
        Vec::new()
    };

    let mut latencies = Vec::with_capacity(config.requests_per_client);
    let mut errors = 0u64;
    for i in 0..config.requests_per_client {
        let pick = (client_idx + i) % scenarios.len();
        let t0 = Instant::now();
        let response = match config.mode {
            LoadMode::Naive => {
                let line = serde_json::to_string(&naive_requests[pick])
                    .map_err(|e| format!("serialize: {e}"))?;
                client.round_trip_line(&line)
            }
            LoadMode::Cached => client.round_trip_line(&cached_lines[pick]),
        };
        match response {
            Ok(Response::Delays { delays_s, .. }) if !delays_s.is_empty() => {
                latencies.push(t0.elapsed());
            }
            Ok(_) | Err(_) => errors += 1,
        }
    }
    Ok((latencies, errors))
}

/// Run the workload against a serving frontend.
pub fn run_loadgen(config: &LoadgenConfig, scenarios: &[Sample]) -> Result<LoadgenReport, String> {
    assert!(!scenarios.is_empty(), "loadgen needs at least one scenario");
    let clients = config.clients.max(1);
    let t0 = Instant::now();
    let mut all_latencies: Vec<Duration> = Vec::new();
    let mut errors = 0u64;
    let results: Vec<Result<(Vec<Duration>, u64), String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|idx| s.spawn(move || run_client(config, scenarios, idx)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen client panicked"))
            .collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();
    for r in results {
        let (lat, errs) = r?;
        all_latencies.extend(lat);
        errors += errs;
    }
    let requests = all_latencies.len() as u64;
    Ok(LoadgenReport {
        requests,
        errors,
        wall_s,
        rps: if wall_s > 0.0 {
            requests as f64 / wall_s
        } else {
            0.0
        },
        latency: LatencySummary::of(&mut all_latencies),
    })
}

/// Render a fingerprint the way `Cached` requests expect it — re-exported
/// here so binaries depending only on `loadgen` don't reach into `server`.
pub fn plan_ref(fp: u64) -> String {
    fingerprint_to_hex(fp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_percentiles_are_exact() {
        let mut lats: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let s = LatencySummary::of(&mut lats);
        assert_eq!(s.p50_ms, 50.0);
        assert_eq!(s.p90_ms, 90.0);
        assert_eq!(s.p95_ms, 95.0);
        assert_eq!(s.p99_ms, 99.0);
        assert_eq!(s.max_ms, 100.0);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
    }

    #[test]
    fn demo_scenarios_are_seed_deterministic() {
        let (_, a) = demo_scenarios("toy5", 2, 30.0, 9).unwrap();
        let (_, b) = demo_scenarios("toy5", 2, 30.0, 9).unwrap();
        assert_eq!(a.len(), 2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.targets, y.targets);
        }
        assert!(demo_scenarios("nope", 1, 30.0, 9).is_err());
    }
}
