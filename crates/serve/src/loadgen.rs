//! Load generator: drives a running TCP frontend and measures end-to-end
//! throughput and latency from the client side (exact percentiles, unlike
//! the server's bucketed histogram).
//!
//! Two client behaviors bracket the serving design space:
//!
//! - [`LoadMode::Naive`] — the pre-serving usage pattern: one connection,
//!   one request in flight, the **full scenario JSON** serialized, shipped,
//!   re-parsed and re-planned on every query.
//! - [`LoadMode::Cached`] — the intended pattern: each client registers its
//!   scenarios once, then streams tiny fingerprint queries that hit the
//!   server's plan cache and ride shared dynamic batches.
//!
//! The serving benchmark reports the throughput ratio between the two.
//!
//! Clients are overload-aware: a structured `Overloaded {retry_after_ms}`
//! reply triggers a bounded retry with jittered exponential backoff (never
//! less than the server's hint), and the report separates *rejections*
//! (admission backpressure), *retries* (backoff attempts), *give-ups*
//! (retry budget exhausted) and *deadline timeouts* from hard errors — so
//! `BENCH_serving.json` records how the service behaves past saturation,
//! not just below it.

use crate::fault::splitmix64;
use crate::server::{fingerprint_to_hex, Request, Response};
use rn_dataset::{generate, GeneratorConfig, Sample};
use rn_netgraph::{topologies, Topology};
use rn_netsim::SimConfig;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Client behavior (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Full scenario JSON per request, no registration.
    Naive,
    /// Register once, then query by fingerprint.
    Cached,
}

impl LoadMode {
    /// Parse from a CLI flag value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "naive" => Ok(Self::Naive),
            "cached" => Ok(Self::Cached),
            other => Err(format!("unknown mode `{other}` (naive|cached)")),
        }
    }
}

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:9977`.
    pub addr: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests per client.
    pub requests_per_client: usize,
    /// Client behavior.
    pub mode: LoadMode,
    /// Per-request deadline (milliseconds) sent with every prediction;
    /// `None` sends none (the server's default applies).
    pub deadline_ms: Option<u64>,
    /// Retries per request after an `Overloaded`/`DeadlineExceeded` reply or
    /// a transport error (0 = shed requests fail immediately).
    pub max_retries: u32,
    /// Base backoff before the first retry (milliseconds); doubles per
    /// attempt, is never less than the server's `retry_after_ms` hint, and
    /// carries ±50% deterministic jitter so synchronized clients do not
    /// re-stampede the queue in lockstep.
    pub backoff_base_ms: u64,
    /// Seed of the backoff jitter (per-client streams are derived from it).
    pub seed: u64,
}

impl LoadgenConfig {
    /// Baseline parameters against `addr`: 4 closed-loop cached-mode
    /// clients, 64 requests each, 3 retries on a 5 ms backoff base, no
    /// deadline.
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            clients: 4,
            requests_per_client: 64,
            mode: LoadMode::Cached,
            deadline_ms: None,
            max_retries: 3,
            backoff_base_ms: 5,
            seed: 0xC0DE_2019,
        }
    }
}

/// Exact client-side latency summary (milliseconds).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Median.
    pub p50_ms: f64,
    /// 90th percentile.
    pub p90_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Mean.
    pub mean_ms: f64,
    /// Maximum.
    pub max_ms: f64,
}

impl LatencySummary {
    /// Exact percentiles over the recorded samples (zeros when empty).
    pub fn of(latencies: &mut [Duration]) -> Self {
        if latencies.is_empty() {
            return Self {
                p50_ms: 0.0,
                p90_ms: 0.0,
                p95_ms: 0.0,
                p99_ms: 0.0,
                mean_ms: 0.0,
                max_ms: 0.0,
            };
        }
        latencies.sort();
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let at = |p: f64| {
            let idx = crate::metrics::nearest_rank(latencies.len(), p).expect("non-empty");
            ms(latencies[idx])
        };
        let sum: f64 = latencies.iter().map(|&d| ms(d)).sum();
        Self {
            p50_ms: at(50.0),
            p90_ms: at(90.0),
            p95_ms: at(95.0),
            p99_ms: at(99.0),
            mean_ms: sum / latencies.len() as f64,
            max_ms: ms(*latencies.last().expect("non-empty")),
        }
    }
}

/// One load-generation run's results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadgenReport {
    /// Successful requests.
    pub requests: u64,
    /// Failed requests (protocol errors / server errors / retry budgets
    /// exhausted).
    pub errors: u64,
    /// Wire attempts, including retries (`attempts - retries` = distinct
    /// requests that reached the wire at least once).
    pub attempts: u64,
    /// `Overloaded` replies received (admission-queue backpressure).
    pub rejected: u64,
    /// Backoff retries performed after a reject/timeout/transport error.
    pub retries: u64,
    /// Requests abandoned after exhausting the retry budget.
    pub gave_up: u64,
    /// `DeadlineExceeded` replies received.
    pub deadline_exceeded: u64,
    /// `Overloaded` replies per wire attempt.
    pub reject_rate: f64,
    /// Retries per wire attempt.
    pub retry_rate: f64,
    /// `DeadlineExceeded` replies per wire attempt.
    pub timeout_rate: f64,
    /// Wall-clock seconds for the whole run.
    pub wall_s: f64,
    /// Successful requests per wall-clock second.
    pub rps: f64,
    /// Exact client-side latency percentiles. Under overload these include
    /// backoff waits — the latency a *client* observes, not the server-side
    /// queue-to-reply time.
    pub latency: LatencySummary,
}

/// Generate `count` scenarios on a canonical topology — the shared workload
/// of the loadgen binary, the serving benchmark and the examples (same seed
/// → same scenarios on both sides of a socket).
pub fn demo_scenarios(
    topology: &str,
    count: usize,
    sim_duration_s: f64,
    seed: u64,
) -> Result<(Topology, Vec<Sample>), String> {
    let topo = match topology {
        "nsfnet" => topologies::nsfnet_default(),
        "geant2" => topologies::geant2_default(),
        "toy5" => topologies::toy5(),
        other => return Err(format!("unknown topology `{other}` (nsfnet|geant2|toy5)")),
    };
    let config = GeneratorConfig {
        sim: SimConfig {
            duration_s: sim_duration_s,
            warmup_s: sim_duration_s * 0.1,
            ..SimConfig::default()
        },
        ..GeneratorConfig::default()
    };
    let ds = generate(&topo, &config, seed, count);
    Ok((ds.topology, ds.samples))
}

/// A connected protocol client: line-delimited JSON over one TCP stream.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a serving frontend.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let read_half = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    /// Send one pre-rendered request line and read the response line.
    pub fn round_trip_line(&mut self, line: &str) -> Result<Response, String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("send: {e}"))?;
        self.writer.flush().map_err(|e| format!("flush: {e}"))?;
        let mut response = String::new();
        self.reader
            .read_line(&mut response)
            .map_err(|e| format!("recv: {e}"))?;
        if response.is_empty() {
            return Err("server closed the connection".into());
        }
        serde_json::from_str(&response).map_err(|e| format!("bad response: {e}"))
    }

    /// Send raw bytes as-is (caller includes the trailing newline) and read
    /// the response line. Lets fault tests push non-UTF-8 garbage at the
    /// frontend and assert it still answers.
    pub fn round_trip_bytes(&mut self, bytes: &[u8]) -> Result<Response, String> {
        self.writer
            .write_all(bytes)
            .map_err(|e| format!("send: {e}"))?;
        self.writer.flush().map_err(|e| format!("flush: {e}"))?;
        let mut response = String::new();
        self.reader
            .read_line(&mut response)
            .map_err(|e| format!("recv: {e}"))?;
        if response.is_empty() {
            return Err("server closed the connection".into());
        }
        serde_json::from_str(&response).map_err(|e| format!("bad response: {e}"))
    }

    /// Send one request line without waiting for the reply. Fault tests use
    /// this to model a client that disconnects mid-flight.
    pub fn round_trip_line_fire_and_forget(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("send: {e}"))?;
        self.writer.flush().map_err(|e| format!("flush: {e}"))
    }

    /// Serialize and send one request.
    pub fn round_trip(&mut self, request: &Request) -> Result<Response, String> {
        let line = serde_json::to_string(request).map_err(|e| format!("serialize: {e}"))?;
        self.round_trip_line(&line)
    }

    /// Register a scenario; returns its fingerprint (hex).
    pub fn register(&mut self, sample: &Sample) -> Result<String, String> {
        match self.round_trip(&Request::Register {
            sample: sample.clone(),
        })? {
            Response::Registered { plan, .. } => Ok(plan),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }
}

/// What one client thread observed.
#[derive(Debug, Default)]
struct ClientStats {
    latencies: Vec<Duration>,
    errors: u64,
    attempts: u64,
    rejected: u64,
    retries: u64,
    gave_up: u64,
    deadline_exceeded: u64,
}

/// Deterministically jittered backoff before retry `attempt` (0-based):
/// `base * 2^attempt`, never below the server's `retry_after_ms` hint,
/// scaled by a ±50% factor drawn from the client's seed stream, capped at
/// 2 s so a pathological hint cannot park a client forever.
fn backoff_delay(base_ms: u64, attempt: u32, retry_after_ms: u64, jitter_key: u64) -> Duration {
    let exp = base_ms.saturating_mul(1u64 << attempt.min(10));
    let wait_ms = exp.max(retry_after_ms).max(1);
    let u = splitmix64(jitter_key) as f64 / (u64::MAX as f64 + 1.0);
    Duration::from_secs_f64((wait_ms as f64 * (0.5 + u) / 1_000.0).min(2.0))
}

/// Per-client work loop. Transport errors reconnect (plan fingerprints live
/// in the server-side shared cache, so a fresh connection keeps using them);
/// `Overloaded`/`DeadlineExceeded` replies back off and retry within the
/// configured budget.
fn run_client(
    config: &LoadgenConfig,
    scenarios: &[Sample],
    client_idx: usize,
) -> Result<ClientStats, String> {
    let mut client = Client::connect(&config.addr).map_err(|e| format!("connect: {e}"))?;
    // Pre-render the request lines. Naive clients still pay full-sample
    // serialization *per request* below — that is the cost being measured —
    // while cached clients register once and reuse a ~40-byte line.
    let naive_requests: Vec<Request> = scenarios
        .iter()
        .map(|s| Request::Predict {
            sample: s.clone(),
            deadline_ms: config.deadline_ms,
        })
        .collect();
    let cached_lines: Vec<String> = if config.mode == LoadMode::Cached {
        scenarios
            .iter()
            .map(|s| {
                let fp = client.register(s)?;
                serde_json::to_string(&Request::Cached {
                    plan: fp,
                    deadline_ms: config.deadline_ms,
                })
                .map_err(|e| format!("serialize: {e}"))
            })
            .collect::<Result<_, String>>()?
    } else {
        Vec::new()
    };

    let mut stats = ClientStats {
        latencies: Vec::with_capacity(config.requests_per_client),
        ..ClientStats::default()
    };
    let jitter_base = splitmix64(config.seed ^ ((client_idx as u64) << 32));
    for i in 0..config.requests_per_client {
        let pick = (client_idx + i) % scenarios.len();
        let line = match config.mode {
            LoadMode::Naive => serde_json::to_string(&naive_requests[pick])
                .map_err(|e| format!("serialize: {e}"))?,
            LoadMode::Cached => cached_lines[pick].clone(),
        };
        let t0 = Instant::now();
        let mut attempt: u32 = 0;
        loop {
            stats.attempts += 1;
            // A reply we must back off from (or a transport failure) yields
            // `Some(hint)`; everything else settles the request.
            let retry_hint: Option<u64> = match client.round_trip_line(&line) {
                Ok(Response::Delays { delays_s, .. }) if !delays_s.is_empty() => {
                    stats.latencies.push(t0.elapsed());
                    break;
                }
                Ok(Response::Overloaded { retry_after_ms }) => {
                    stats.rejected += 1;
                    Some(retry_after_ms)
                }
                Ok(Response::DeadlineExceeded) => {
                    stats.deadline_exceeded += 1;
                    Some(0)
                }
                Ok(_) => {
                    stats.errors += 1;
                    break;
                }
                Err(_) => {
                    // Transport failure (server dropped the connection —
                    // chaos does this on purpose): reconnect and treat the
                    // attempt like a shed request. Reconnect failure ends
                    // the client with a clean error, not a panic.
                    client =
                        Client::connect(&config.addr).map_err(|e| format!("reconnect: {e}"))?;
                    Some(0)
                }
            };
            let Some(hint) = retry_hint else { break };
            if attempt >= config.max_retries {
                stats.gave_up += 1;
                stats.errors += 1;
                break;
            }
            stats.retries += 1;
            std::thread::sleep(backoff_delay(
                config.backoff_base_ms,
                attempt,
                hint,
                jitter_base ^ ((i as u64) << 8) ^ attempt as u64,
            ));
            attempt += 1;
        }
    }
    Ok(stats)
}

/// Run the workload against a serving frontend. Errors (unreachable server,
/// a failed client thread) come back as `Err`, never a panic — the loadgen
/// binary turns them into a nonzero exit with a readable summary.
pub fn run_loadgen(config: &LoadgenConfig, scenarios: &[Sample]) -> Result<LoadgenReport, String> {
    if scenarios.is_empty() {
        return Err("loadgen needs at least one scenario".into());
    }
    let clients = config.clients.max(1);
    let t0 = Instant::now();
    let results: Vec<Result<ClientStats, String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|idx| s.spawn(move || run_client(config, scenarios, idx)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("loadgen client thread panicked".into()))
            })
            .collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let mut all_latencies: Vec<Duration> = Vec::new();
    let mut total = ClientStats::default();
    for r in results {
        let stats = r?;
        all_latencies.extend(stats.latencies);
        total.errors += stats.errors;
        total.attempts += stats.attempts;
        total.rejected += stats.rejected;
        total.retries += stats.retries;
        total.gave_up += stats.gave_up;
        total.deadline_exceeded += stats.deadline_exceeded;
    }
    let requests = all_latencies.len() as u64;
    let per_attempt = |n: u64| {
        if total.attempts > 0 {
            n as f64 / total.attempts as f64
        } else {
            0.0
        }
    };
    Ok(LoadgenReport {
        requests,
        errors: total.errors,
        attempts: total.attempts,
        rejected: total.rejected,
        retries: total.retries,
        gave_up: total.gave_up,
        deadline_exceeded: total.deadline_exceeded,
        reject_rate: per_attempt(total.rejected),
        retry_rate: per_attempt(total.retries),
        timeout_rate: per_attempt(total.deadline_exceeded),
        wall_s,
        rps: if wall_s > 0.0 {
            requests as f64 / wall_s
        } else {
            0.0
        },
        latency: LatencySummary::of(&mut all_latencies),
    })
}

/// Render a fingerprint the way `Cached` requests expect it — re-exported
/// here so binaries depending only on `loadgen` don't reach into `server`.
pub fn plan_ref(fp: u64) -> String {
    fingerprint_to_hex(fp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_percentiles_are_exact() {
        let mut lats: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let s = LatencySummary::of(&mut lats);
        assert_eq!(s.p50_ms, 50.0);
        assert_eq!(s.p90_ms, 90.0);
        assert_eq!(s.p95_ms, 95.0);
        assert_eq!(s.p99_ms, 99.0);
        assert_eq!(s.max_ms, 100.0);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_honors_the_server_hint() {
        let a = backoff_delay(5, 0, 0, 42);
        let b = backoff_delay(5, 0, 0, 42);
        assert_eq!(a, b, "same jitter key, same delay");
        // ±50% band around the exponential base.
        assert!(a >= Duration::from_secs_f64(0.0025) && a <= Duration::from_millis(10));
        // The server's hint is a floor...
        assert!(backoff_delay(5, 0, 100, 42) >= Duration::from_millis(50));
        // ...and everything caps at 2 s, even absurd hints or attempts.
        assert!(backoff_delay(5, 30, u64::MAX, 42) <= Duration::from_secs(2));
        // Zero-base config still waits a nonzero beat.
        assert!(backoff_delay(0, 0, 0, 42) > Duration::ZERO);
    }

    #[test]
    fn degenerate_loadgen_inputs_error_instead_of_panicking() {
        // No scenarios: a clean Err (the binary turns this into exit 1).
        // The unreachable-server path is covered in tests/serve_faults.rs
        // against a loopback port that refuses immediately.
        let config = LoadgenConfig::new("127.0.0.1:1");
        assert!(run_loadgen(&config, &[]).is_err());
    }

    #[test]
    fn demo_scenarios_are_seed_deterministic() {
        let (_, a) = demo_scenarios("toy5", 2, 30.0, 9).unwrap();
        let (_, b) = demo_scenarios("toy5", 2, 30.0, 9).unwrap();
        assert_eq!(a.len(), 2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.targets, y.targets);
        }
        assert!(demo_scenarios("nope", 1, 30.0, 9).is_err());
    }
}
