//! JSONL-over-TCP frontend.
//!
//! One request per line, one response per line — `std::net` only, so any
//! language with a socket and a JSON library is a client. Requests are
//! externally tagged:
//!
//! ```text
//! {"Register": {"sample": {…}}}   → {"Registered": {"plan": "<hex>", "paths": N}}
//! {"Predict":  {"sample": {…}}}   → {"Delays": {"plan": "<hex>", "delays_s": […]}}
//! {"Cached":   {"plan": "<hex>"}} → {"Delays": …} | {"Error": …}
//! "Metrics"                        → {"Metrics": {"snapshot": {…}}}
//! "Ping"                           → "Pong"
//! ```
//!
//! `Predict` and `Cached` optionally carry `"deadline_ms": N` — a request
//! that expires in queue is answered `"DeadlineExceeded"` without forward
//! work. A request shed at admission gets `{"Overloaded": {"retry_after_ms":
//! N}}`; clients should back off at least that long before retrying.
//!
//! **Every** request line gets exactly one response line as long as the
//! connection lives: malformed JSON, invalid UTF-8 and unknown request
//! shapes are answered with a structured `{"Error": …}` line and the
//! connection stays usable — a buggy (or adversarial) client wedges only
//! itself.
//!
//! `Register` compiles a scenario into the shared plan cache and returns its
//! fingerprint; `Cached` predicts by fingerprint alone — the steady-state
//! what-if loop sends a ~40-byte line instead of re-shipping (and the server
//! re-parsing and re-planning) a multi-hundred-kilobyte scenario on every
//! query. Fingerprints travel as fixed-width hex strings because JSON
//! numbers cannot carry a full `u64` exactly.
//!
//! The frontend is unauthenticated and meant to run inside a trust
//! boundary: clients share one plan cache keyed by a non-cryptographic
//! fingerprint (see `routenet::plan_cache`'s trust-model notes), so put an
//! authenticating proxy in front before exposing it to untrusted networks.

use crate::service::{ServeError, ServeHandle};
use crate::MetricsSnapshot;
use rn_dataset::Sample;
use routenet::model::PathPredictor;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A client request line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// Compile a scenario into the plan cache; answer its fingerprint.
    Register {
        /// The scenario (topology-shaped routing/traffic/queue state).
        sample: Sample,
    },
    /// Plan (through the cache) and predict a full scenario.
    Predict {
        /// The scenario to predict.
        sample: Sample,
        /// Optional deadline budget in milliseconds, measured from
        /// admission; omitted (or `null`) falls back to the server's
        /// configured default.
        deadline_ms: Option<u64>,
    },
    /// Predict a scenario previously registered, by fingerprint.
    Cached {
        /// Hex fingerprint from `Registered`/`Delays`.
        plan: String,
        /// Optional deadline budget in milliseconds (see
        /// [`Request::Predict`]).
        deadline_ms: Option<u64>,
    },
    /// Fetch the service metrics snapshot.
    Metrics,
    /// Liveness probe.
    Ping,
}

/// A server response line.
// `Metrics` dwarfs the other variants, but responses are built, serialized
// and dropped one at a time — boxing the snapshot would only complicate the
// wire type for a short-lived value.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// Scenario compiled and cached.
    Registered {
        /// Hex fingerprint to use with `Cached`.
        plan: String,
        /// Paths (= delays per prediction) in the scenario.
        paths: usize,
    },
    /// Per-path delay predictions in seconds.
    Delays {
        /// Hex fingerprint of the scenario that was predicted.
        plan: String,
        /// One mean-delay prediction per path, in path order.
        delays_s: Vec<f64>,
    },
    /// Service metrics.
    Metrics {
        /// The point-in-time snapshot.
        snapshot: MetricsSnapshot,
    },
    /// Liveness answer.
    Pong,
    /// Load shed at admission: the queue is full. Back off at least
    /// `retry_after_ms` (plus jitter) before retrying.
    Overloaded {
        /// Server-estimated queue drain time in milliseconds.
        retry_after_ms: u64,
    },
    /// The request's deadline passed while it queued; it was answered
    /// without spending forward-pass work and may be retried with a larger
    /// budget.
    DeadlineExceeded,
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

/// Render a fingerprint as the wire format (fixed-width hex).
pub fn fingerprint_to_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

/// Parse the wire format back into a fingerprint.
pub fn fingerprint_from_hex(s: &str) -> Result<u64, String> {
    u64::from_str_radix(s.trim(), 16).map_err(|e| format!("bad plan fingerprint `{s}`: {e}"))
}

/// Compute the response for one request line. Exposed so tests (and exotic
/// frontends) can drive the protocol without a socket.
pub fn respond_line<M: PathPredictor>(handle: &ServeHandle<M>, line: &str) -> Response {
    let request: Request = match serde_json::from_str(line) {
        Ok(r) => r,
        Err(e) => {
            return Response::Error {
                message: format!("bad request: {e}"),
            }
        }
    };
    match request {
        Request::Ping => Response::Pong,
        Request::Metrics => Response::Metrics {
            snapshot: handle.metrics(),
        },
        Request::Register { sample } => {
            let (plan, fp) = handle.plan_sample(&sample);
            Response::Registered {
                plan: fingerprint_to_hex(fp),
                paths: plan.n_paths,
            }
        }
        Request::Predict {
            sample,
            deadline_ms,
        } => {
            let budget = deadline_ms.map(std::time::Duration::from_millis);
            match handle.predict_sample_with_deadline(&sample, budget) {
                Ok((delays_s, fp)) => Response::Delays {
                    plan: fingerprint_to_hex(fp),
                    delays_s,
                },
                Err(e) => error_response(e),
            }
        }
        Request::Cached { plan, deadline_ms } => match fingerprint_from_hex(&plan) {
            Err(message) => Response::Error { message },
            Ok(fp) => {
                let budget = deadline_ms.map(std::time::Duration::from_millis);
                match handle.predict_cached_with_deadline(fp, budget) {
                    Ok(delays_s) => Response::Delays {
                        plan: fingerprint_to_hex(fp),
                        delays_s,
                    },
                    Err(e @ ServeError::UnknownPlan(_)) => Response::Error {
                        message: format!("{e}; re-send the scenario with Register"),
                    },
                    Err(e) => error_response(e),
                }
            }
        },
    }
}

/// Map a [`ServeError`] to its wire shape: backpressure and deadline
/// outcomes get structured variants clients can branch on; everything else
/// is a generic `Error` line.
fn error_response(e: ServeError) -> Response {
    match e {
        ServeError::Overloaded { retry_after_ms } => Response::Overloaded { retry_after_ms },
        ServeError::DeadlineExceeded => Response::DeadlineExceeded,
        other => Response::Error {
            message: other.to_string(),
        },
    }
}

/// A listening TCP frontend bound to a [`ServeHandle`].
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl TcpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// accepting connections, one thread per connection.
    pub fn bind<M, A>(handle: ServeHandle<M>, addr: A) -> std::io::Result<Self>
    where
        M: PathPredictor + 'static,
        A: ToSocketAddrs,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("rn-serve-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_accept.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let handle = handle.clone();
                    // Connection threads live as long as their client keeps
                    // the socket open; they end on EOF or write failure.
                    std::thread::Builder::new()
                        .name("rn-serve-conn".into())
                        .spawn(move || serve_connection(handle, stream))
                        .ok();
                }
            })
            .expect("spawn accept thread");
        Ok(Self {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting new connections and join the accept thread. Existing
    /// connections drain naturally when their clients hang up.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        TcpStream::connect(self.addr).ok();
        // An accept thread found dead is tolerated, not propagated — the
        // frontend is being torn down either way.
        if let Some(t) = self.accept_thread.take() {
            t.join().ok();
        }
    }
}

/// Serve one client connection: read request lines, write response lines.
///
/// The read loop is byte-oriented (`read_until`), not `lines()`: a frame
/// that is not valid UTF-8 must be *answered* with a structured error, not
/// treated as a connection-fatal I/O error — only EOF and real transport
/// errors end the connection. Chaos connection-drop injection (when
/// configured) severs the connection right before a reply is written, the
/// worst client-visible moment.
fn serve_connection<M: PathPredictor>(handle: ServeHandle<M>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut raw = Vec::new();
    loop {
        raw.clear();
        match reader.read_until(b'\n', &mut raw) {
            Ok(0) | Err(_) => break, // EOF or transport error
            Ok(_) => {}
        }
        let response = match std::str::from_utf8(&raw) {
            Ok(line) if line.trim().is_empty() => continue,
            Ok(line) => respond_line(&handle, line),
            Err(e) => Response::Error {
                message: format!("bad request: invalid UTF-8 in request line: {e}"),
            },
        };
        if let Some(chaos) = handle.chaos() {
            if chaos.should_drop_connection() {
                handle
                    .raw_metrics()
                    .conn_drops
                    .fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
        let json = match serde_json::to_string(&response) {
            Ok(j) => j,
            Err(_) => "{\"Error\":{\"message\":\"response serialization failed\"}}".to_string(),
        };
        if writeln!(writer, "{json}")
            .and_then(|_| writer.flush())
            .is_err()
        {
            break;
        }
    }
}
