//! JSONL-over-TCP frontend.
//!
//! One request per line, one response per line — `std::net` only, so any
//! language with a socket and a JSON library is a client. Requests are
//! externally tagged:
//!
//! ```text
//! {"Register": {"sample": {…}}}   → {"Registered": {"plan": "<hex>", "paths": N}}
//! {"Predict":  {"sample": {…}}}   → {"Delays": {"plan": "<hex>", "delays_s": […]}}
//! {"Cached":   {"plan": "<hex>"}} → {"Delays": …} | {"Error": …}
//! "Metrics"                        → {"Metrics": {"snapshot": {…}}}
//! "Ping"                           → "Pong"
//! ```
//!
//! `Register` compiles a scenario into the shared plan cache and returns its
//! fingerprint; `Cached` predicts by fingerprint alone — the steady-state
//! what-if loop sends a ~40-byte line instead of re-shipping (and the server
//! re-parsing and re-planning) a multi-hundred-kilobyte scenario on every
//! query. Fingerprints travel as fixed-width hex strings because JSON
//! numbers cannot carry a full `u64` exactly.
//!
//! The frontend is unauthenticated and meant to run inside a trust
//! boundary: clients share one plan cache keyed by a non-cryptographic
//! fingerprint (see `routenet::plan_cache`'s trust-model notes), so put an
//! authenticating proxy in front before exposing it to untrusted networks.

use crate::service::{ServeError, ServeHandle};
use crate::MetricsSnapshot;
use rn_dataset::Sample;
use routenet::model::PathPredictor;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A client request line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// Compile a scenario into the plan cache; answer its fingerprint.
    Register {
        /// The scenario (topology-shaped routing/traffic/queue state).
        sample: Sample,
    },
    /// Plan (through the cache) and predict a full scenario.
    Predict {
        /// The scenario to predict.
        sample: Sample,
    },
    /// Predict a scenario previously registered, by fingerprint.
    Cached {
        /// Hex fingerprint from `Registered`/`Delays`.
        plan: String,
    },
    /// Fetch the service metrics snapshot.
    Metrics,
    /// Liveness probe.
    Ping,
}

/// A server response line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// Scenario compiled and cached.
    Registered {
        /// Hex fingerprint to use with `Cached`.
        plan: String,
        /// Paths (= delays per prediction) in the scenario.
        paths: usize,
    },
    /// Per-path delay predictions in seconds.
    Delays {
        /// Hex fingerprint of the scenario that was predicted.
        plan: String,
        /// One mean-delay prediction per path, in path order.
        delays_s: Vec<f64>,
    },
    /// Service metrics.
    Metrics {
        /// The point-in-time snapshot.
        snapshot: MetricsSnapshot,
    },
    /// Liveness answer.
    Pong,
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

/// Render a fingerprint as the wire format (fixed-width hex).
pub fn fingerprint_to_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

/// Parse the wire format back into a fingerprint.
pub fn fingerprint_from_hex(s: &str) -> Result<u64, String> {
    u64::from_str_radix(s.trim(), 16).map_err(|e| format!("bad plan fingerprint `{s}`: {e}"))
}

/// Compute the response for one request line. Exposed so tests (and exotic
/// frontends) can drive the protocol without a socket.
pub fn respond_line<M: PathPredictor>(handle: &ServeHandle<M>, line: &str) -> Response {
    let request: Request = match serde_json::from_str(line) {
        Ok(r) => r,
        Err(e) => {
            return Response::Error {
                message: format!("bad request: {e}"),
            }
        }
    };
    match request {
        Request::Ping => Response::Pong,
        Request::Metrics => Response::Metrics {
            snapshot: handle.metrics(),
        },
        Request::Register { sample } => {
            let (plan, fp) = handle.plan_sample(&sample);
            Response::Registered {
                plan: fingerprint_to_hex(fp),
                paths: plan.n_paths,
            }
        }
        Request::Predict { sample } => match handle.predict_sample(&sample) {
            Ok((delays_s, fp)) => Response::Delays {
                plan: fingerprint_to_hex(fp),
                delays_s,
            },
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        Request::Cached { plan } => match fingerprint_from_hex(&plan) {
            Err(message) => Response::Error { message },
            Ok(fp) => match handle.predict_cached(fp) {
                Ok(delays_s) => Response::Delays {
                    plan: fingerprint_to_hex(fp),
                    delays_s,
                },
                Err(e @ ServeError::UnknownPlan(_)) => Response::Error {
                    message: format!("{e}; re-send the scenario with Register"),
                },
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            },
        },
    }
}

/// A listening TCP frontend bound to a [`ServeHandle`].
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl TcpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// accepting connections, one thread per connection.
    pub fn bind<M, A>(handle: ServeHandle<M>, addr: A) -> std::io::Result<Self>
    where
        M: PathPredictor + 'static,
        A: ToSocketAddrs,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("rn-serve-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_accept.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let handle = handle.clone();
                    // Connection threads live as long as their client keeps
                    // the socket open; they end on EOF or write failure.
                    std::thread::Builder::new()
                        .name("rn-serve-conn".into())
                        .spawn(move || serve_connection(handle, stream))
                        .ok();
                }
            })
            .expect("spawn accept thread");
        Ok(Self {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting new connections and join the accept thread. Existing
    /// connections drain naturally when their clients hang up.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        TcpStream::connect(self.addr).ok();
        if let Some(t) = self.accept_thread.take() {
            t.join().expect("accept thread panicked");
        }
    }
}

/// Serve one client connection: read request lines, write response lines.
fn serve_connection<M: PathPredictor>(handle: ServeHandle<M>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = respond_line(&handle, &line);
        let json = match serde_json::to_string(&response) {
            Ok(j) => j,
            Err(_) => "{\"Error\":{\"message\":\"response serialization failed\"}}".to_string(),
        };
        if writeln!(writer, "{json}")
            .and_then(|_| writer.flush())
            .is_err()
        {
            break;
        }
    }
}
