//! Versioned model registry with atomic hot-swap.
//!
//! Workers take an `Arc` snapshot per batch, so a swap never tears a batch:
//! every request in one megabatch is answered by exactly one model version.
//! Swaps build on [`routenet::persist`]'s atomic save/load — a file being
//! replaced on disk is either the old or the new model, never a torn one.

use crate::sync::{read_recover, write_recover};
use routenet::persist;
use serde::de::DeserializeOwned;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Shared, swappable model slot.
pub struct ModelRegistry<M> {
    slot: RwLock<Arc<M>>,
    version: AtomicU64,
}

impl<M> ModelRegistry<M> {
    /// Registry serving `model` as version 1.
    pub fn new(model: M) -> Self {
        Self {
            slot: RwLock::new(Arc::new(model)),
            version: AtomicU64::new(1),
        }
    }

    /// The current model and its version. The `Arc` keeps the snapshot alive
    /// for as long as a batch needs it, independent of later swaps.
    pub fn snapshot(&self) -> (Arc<M>, u64) {
        // Poison recovery, not propagation: the slot only ever holds a whole
        // `Arc`, so a panic elsewhere can never leave it half-written.
        let guard = read_recover(&self.slot);
        // Version is read under the lock so the pair is consistent.
        let version = self.version.load(Ordering::Acquire);
        (Arc::clone(&guard), version)
    }

    /// Currently served version (1-based; bumps on every swap).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Atomically replace the served model; returns the new version.
    /// In-flight batches keep predicting with the snapshot they took.
    pub fn swap(&self, model: M) -> u64 {
        let mut guard = write_recover(&self.slot);
        *guard = Arc::new(model);
        self.version.fetch_add(1, Ordering::AcqRel) + 1
    }
}

impl<M: DeserializeOwned> ModelRegistry<M> {
    /// Load a model from a JSON file (see [`persist::load_model`]) and swap
    /// it in; returns the new version.
    pub fn load_and_swap(&self, path: &Path) -> Result<u64, String> {
        let model: M = persist::load_model(path)?;
        Ok(self.swap(model))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_bumps_version_and_replaces_snapshot() {
        let reg = ModelRegistry::new(10usize);
        let (m1, v1) = reg.snapshot();
        assert_eq!((*m1, v1), (10, 1));
        assert_eq!(reg.swap(20), 2);
        let (m2, v2) = reg.snapshot();
        assert_eq!((*m2, v2), (20, 2));
        // The old snapshot stays alive and unchanged.
        assert_eq!(*m1, 10);
    }

    #[test]
    fn concurrent_readers_see_a_consistent_pair() {
        let reg = Arc::new(ModelRegistry::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let reg = Arc::clone(&reg);
                s.spawn(move || {
                    for _ in 0..500 {
                        let (m, v) = reg.snapshot();
                        // Models are swapped in as their version number, so a
                        // consistent pair must satisfy `*m + 1 == v`... except
                        // the initial model 0 at version 1.
                        assert_eq!(*m + 1, v, "torn snapshot");
                    }
                });
            }
            for ver in 1..50u64 {
                reg.swap(ver);
            }
        });
        assert_eq!(reg.version(), 50);
    }
}
