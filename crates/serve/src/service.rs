//! The concurrent inference service: admission queue, dynamic batcher,
//! worker shard pool — with worker supervision, per-request deadlines and
//! measured (not assumed) overload behavior.
//!
//! ## Request path
//!
//! 1. A caller submits a compiled plan (usually an `Arc` out of the shared
//!    [`PlanCache`]) through a [`ServeHandle`]; admission control rejects
//!    when the queue is at capacity with a structured
//!    [`ServeError::Overloaded`] carrying a drain-time `retry_after_ms`
//!    hint. A request may carry a **deadline**; one that expires while
//!    queued is answered [`ServeError::DeadlineExceeded`] *before* any
//!    forward-pass work is spent on it.
//! 2. Workers assemble **dynamic batches**: a batch flushes when it reaches
//!    [`ServeConfig::max_batch`] requests (or would exceed
//!    [`ServeConfig::max_batch_paths`] path rows — megabatches that outgrow
//!    the cache cost more than they save), when the oldest queued request
//!    has waited [`ServeConfig::flush_deadline`], or at shutdown — whichever
//!    comes first. A zero deadline means "flush as soon as a worker is
//!    free", which batches exactly the backlog that accumulated while
//!    workers were busy (occupancy rises with load, idle latency stays
//!    minimal).
//! 3. Each worker owns a pooled tape from a shared [`TapePool`] for the
//!    duration of a batch and runs one fused block-diagonal forward
//!    ([`PathPredictor::predict_batch_refs_with`]); steady-state serving is
//!    allocation-free. Results are split per request and delivered through
//!    per-request channels.
//!
//! ## Supervision
//!
//! Partial failure is the normal case for a long-running service, so a
//! worker panic is an *event*, never an abort:
//!
//! - batch execution runs under `catch_unwind`; a panicking batch (a model
//!   bug, a poisoned kernel, injected chaos) is converted into per-request
//!   [`ServeError::WorkerPanic`] replies and counted in
//!   [`ServeMetrics::worker_panics`] — no reply is ever lost;
//! - a panic that escapes the batch region kills only one worker-loop
//!   iteration: the supervisor wrapper around every worker thread catches
//!   it, bumps [`ServeMetrics::worker_restarts`] and re-enters the loop, so
//!   the pool heals itself;
//! - queue/registry locks are acquired with poison *recovery*
//!   (`PoisonError::into_inner`), never poison propagation — a panic while
//!   holding a lock degrades one request instead of cascading into every
//!   thread that touches the lock afterwards.
//!
//! The [`crate::fault`] module injects exactly these failures on demand
//! (`RN_SERVE_CHAOS_*` knobs); `tests/serve_faults.rs` proves the service
//! keeps answering — bitwise identically for surviving requests — through
//! panics, kills, overload and disconnects.
//!
//! Predictions are **bitwise identical** to calling
//! [`PathPredictor::predict_batch`] directly: the fused kernels accumulate
//! every output element in the same order regardless of where a sample's
//! rows land inside a megabatch, so batch composition cannot perturb
//! results. The stress tests pin this down.

use crate::fault::{ChaosPlan, FaultInjector, CHAOS_WORKER_KILL};
use crate::metrics::{stage, CacheStats, MetricsSnapshot, ServeMetrics};
use crate::registry::ModelRegistry;
use crate::sync::{lock_recover, wait_recover, wait_timeout_recover};
use rn_autograd::{TapePool, WorkerPool};
use rn_dataset::Sample;
use routenet::compose::{ComposedMegabatch, CompositionCache};
use routenet::entities::PlanConfig;
use routenet::model::PathPredictor;
use routenet::plan_cache::{sample_fingerprint, PlanCache};
use routenet::SamplePlan;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each running fused batches on its own pooled tape.
    pub workers: usize,
    /// Requests per dynamic batch, at most.
    pub max_batch: usize,
    /// Path-row budget per batch: packing stops before exceeding it (the
    /// same cache-residency reasoning as evaluation's chunking).
    pub max_batch_paths: usize,
    /// How long the oldest queued request may wait for co-batchers before
    /// the batch flushes anyway. `Duration::ZERO` flushes whenever a worker
    /// is free.
    pub flush_deadline: Duration,
    /// Admission-queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Compiled plans kept in the shared [`PlanCache`].
    pub plan_cache_capacity: usize,
    /// Composed megabatch structures kept in the shared
    /// [`CompositionCache`]. The serving workload is many scenarios over a
    /// fixed small set of graph shapes, so recurring multi-request batch
    /// shapes check a ready composition out, refill its features and skip
    /// `build_megabatch` planning entirely. Results are bitwise identical
    /// either way.
    pub compose_cache_capacity: usize,
    /// Worker threads for **intra-batch sharding**: when a worker flushes a
    /// multi-request batch and the queue behind it is empty (shallow load —
    /// no co-workers to keep busy), the fused block-diagonal forward fans
    /// its per-sample shards out to this many threads instead of leaving
    /// them idle. `1` disables the gang. Results are bitwise identical
    /// either way; this only trades idle cores for latency at low load.
    pub intra_batch_shards: usize,
    /// Default per-request deadline applied to submissions that do not
    /// carry their own (`None` = requests wait as long as they must). A
    /// request whose deadline passes while it queues is answered
    /// [`ServeError::DeadlineExceeded`] without spending forward-pass work.
    pub default_deadline: Option<Duration>,
    /// Chaos-injection plan (see [`crate::fault`]); empty in production.
    pub chaos: ChaosPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            max_batch: 8,
            max_batch_paths: 512,
            flush_deadline: Duration::ZERO,
            queue_capacity: 1024,
            plan_cache_capacity: 256,
            compose_cache_capacity: 32,
            intra_batch_shards: 1,
            default_deadline: None,
            chaos: ChaosPlan::none(),
        }
    }
}

impl ServeConfig {
    /// Every serving-side environment knob, as `(name, what it overrides)`
    /// pairs — the **single source of truth** the README's "Configuration"
    /// table is checked against (`readme_documents_every_env_knob` test in
    /// this crate). [`ServeConfig::with_env_overrides`] recognizes exactly
    /// these names; add a row here when introducing a new one and the
    /// parser, the docs and the README cannot drift apart.
    pub const ENV_DOCS: &'static [(&'static str, &'static str)] = &[
        (
            "RN_SERVE_WORKERS",
            "serving worker threads (ServeConfig::workers)",
        ),
        (
            "RN_SERVE_MAX_BATCH",
            "requests per dynamic batch, at most (ServeConfig::max_batch)",
        ),
        (
            "RN_SERVE_MAX_BATCH_PATHS",
            "path-row budget per dynamic batch (ServeConfig::max_batch_paths)",
        ),
        (
            "RN_SERVE_DEADLINE_US",
            "microseconds the oldest queued request may wait for co-batchers \
             (ServeConfig::flush_deadline; 0 flushes whenever a worker is free)",
        ),
        (
            "RN_SERVE_QUEUE_CAPACITY",
            "admission-queue depth before load shedding (ServeConfig::queue_capacity)",
        ),
        (
            "RN_SERVE_PLAN_CACHE",
            "compiled plans kept in the shared plan cache \
             (ServeConfig::plan_cache_capacity)",
        ),
        (
            "RN_SERVE_COMPOSE_CACHE",
            "composed megabatch structures kept for refill \
             (ServeConfig::compose_cache_capacity)",
        ),
        (
            "RN_SERVE_SHARDS",
            "intra-batch shard-gang threads engaged on shallow queues \
             (ServeConfig::intra_batch_shards; 1 disables, results bitwise \
             identical either way)",
        ),
        (
            "RN_SERVE_REQUEST_DEADLINE_MS",
            "default per-request deadline in milliseconds for submissions \
             that carry none (ServeConfig::default_deadline; 0 = wait \
             forever); expired queued requests get DeadlineExceeded before \
             any forward work",
        ),
        (
            "RN_SERVE_CHAOS_PANIC_EVERY",
            "chaos: panic inside every Nth dynamic-batch execution \
             (ServeConfig::chaos.panic_every; 0 disables)",
        ),
        (
            "RN_SERVE_CHAOS_KILL_EVERY",
            "chaos: kill the worker loop on every Nth iteration, exercising \
             supervisor respawn (ServeConfig::chaos.kill_every; 0 disables)",
        ),
        (
            "RN_SERVE_CHAOS_BATCH_DELAY_US",
            "chaos: artificial pre-forward batch latency in microseconds, \
             ±50% seeded jitter (ServeConfig::chaos.batch_delay; 0 disables)",
        ),
        (
            "RN_SERVE_CHAOS_DROP_CONN_EVERY",
            "chaos: drop every Nth TCP connection right before a reply \
             (ServeConfig::chaos.drop_conn_every; 0 disables)",
        ),
        (
            "RN_SERVE_CHAOS_SEED",
            "chaos: seed of the deterministic delay jitter \
             (ServeConfig::chaos.seed)",
        ),
    ];

    /// [`ServeConfig::default`] with every recognized env override applied.
    pub fn from_env() -> Self {
        Self::default().with_env_overrides()
    }

    /// Apply the `RN_SERVE_*` env overrides (the knobs listed in
    /// [`ServeConfig::ENV_DOCS`]) on top of an explicitly constructed
    /// config. Malformed or non-positive values are ignored, never a panic —
    /// deployment environments outlive the code that validates them.
    /// `RN_SERVE_DEADLINE_US` and the chaos/deadline knobs accept 0 (a zero
    /// flush deadline is the "flush when free" mode; zero chaos cadence or
    /// request deadline means "disabled", their defaults).
    pub fn with_env_overrides(self) -> Self {
        self.with_overrides_from(|name| std::env::var(name).ok())
    }

    /// The testable core of [`ServeConfig::with_env_overrides`]: resolve
    /// knob values through `lookup` instead of the process environment.
    /// Tests feed a pure lookup covering every [`ServeConfig::ENV_DOCS`]
    /// name and assert each one moves its field — so a knob renamed in this
    /// parser without updating `ENV_DOCS` (or vice versa) fails the build
    /// rather than silently going dead.
    pub fn with_overrides_from(mut self, lookup: impl Fn(&str) -> Option<String>) -> Self {
        let positive = |name: &str| -> Option<usize> {
            lookup(name)?
                .trim()
                .parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
        };
        let u64_knob = |name: &str| -> Option<u64> { lookup(name)?.trim().parse::<u64>().ok() };
        if let Some(v) = positive("RN_SERVE_WORKERS") {
            self.workers = v;
        }
        if let Some(v) = positive("RN_SERVE_MAX_BATCH") {
            self.max_batch = v;
        }
        if let Some(v) = positive("RN_SERVE_MAX_BATCH_PATHS") {
            self.max_batch_paths = v;
        }
        if let Some(us) = u64_knob("RN_SERVE_DEADLINE_US") {
            self.flush_deadline = Duration::from_micros(us);
        }
        if let Some(v) = positive("RN_SERVE_QUEUE_CAPACITY") {
            self.queue_capacity = v;
        }
        if let Some(v) = positive("RN_SERVE_PLAN_CACHE") {
            self.plan_cache_capacity = v;
        }
        if let Some(v) = positive("RN_SERVE_COMPOSE_CACHE") {
            self.compose_cache_capacity = v;
        }
        if let Some(v) = positive("RN_SERVE_SHARDS") {
            self.intra_batch_shards = v;
        }
        if let Some(ms) = u64_knob("RN_SERVE_REQUEST_DEADLINE_MS") {
            self.default_deadline = (ms > 0).then(|| Duration::from_millis(ms));
        }
        if let Some(n) = u64_knob("RN_SERVE_CHAOS_PANIC_EVERY") {
            self.chaos.panic_every = n;
        }
        if let Some(n) = u64_knob("RN_SERVE_CHAOS_KILL_EVERY") {
            self.chaos.kill_every = n;
        }
        if let Some(us) = u64_knob("RN_SERVE_CHAOS_BATCH_DELAY_US") {
            self.chaos.batch_delay = Duration::from_micros(us);
        }
        if let Some(n) = u64_knob("RN_SERVE_CHAOS_DROP_CONN_EVERY") {
            self.chaos.drop_conn_every = n;
        }
        if let Some(n) = u64_knob("RN_SERVE_CHAOS_SEED") {
            self.chaos.seed = n;
        }
        self
    }
}

/// Why a request was not answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission queue at capacity — shed load. `retry_after_ms` is the
    /// server's estimate of when the queue will have drained enough to
    /// accept again; clients should back off at least that long (plus
    /// jitter) before retrying.
    Overloaded {
        /// Suggested client backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The request's deadline passed while it waited in the queue; no
    /// forward-pass work was spent on it.
    DeadlineExceeded,
    /// The batch this request rode panicked inside a worker. The worker
    /// survived (or was respawned) and the service keeps serving; the
    /// request itself was not computed and may be retried.
    WorkerPanic,
    /// The service is shutting (or has shut) down.
    Shutdown,
    /// A referenced plan fingerprint is not resident in the cache.
    UnknownPlan(u64),
    /// The submitted plan's state width does not match the model serving
    /// right now (`expected`, `found`) — it was compiled for a different
    /// model generation. Rebuild the plan (e.g. re-`Register` the scenario).
    IncompatiblePlan {
        /// State width of the serving model.
        expected: usize,
        /// State width the plan was compiled with.
        found: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Overloaded { retry_after_ms } => {
                write!(f, "admission queue full; retry after {retry_after_ms} ms")
            }
            Self::DeadlineExceeded => write!(f, "request deadline exceeded while queued"),
            Self::WorkerPanic => write!(
                f,
                "worker panicked while executing this request's batch; \
                 the service recovered and the request may be retried"
            ),
            Self::Shutdown => write!(f, "service is shut down"),
            Self::UnknownPlan(fp) => write!(f, "unknown plan fingerprint {fp:#018x}"),
            Self::IncompatiblePlan { expected, found } => write!(
                f,
                "plan state width {found} does not match the serving model \
                 ({expected}); rebuild the plan for the current model"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

/// One queued prediction request.
struct Job {
    plan: Arc<SamplePlan>,
    respond: mpsc::SyncSender<Result<Vec<f64>, ServeError>>,
    enqueued: Instant,
    /// Absolute point after which the request is not worth answering.
    deadline: Option<Instant>,
}

/// Queue state under the batcher mutex.
struct QueueState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

/// State shared between handles and workers.
struct Inner<M> {
    state: Mutex<QueueState>,
    ready: Condvar,
    config: ServeConfig,
    registry: ModelRegistry<M>,
    metrics: ServeMetrics,
    plans: PlanCache,
    /// Composed megabatch structures for recurring batch shapes (checked
    /// out exclusively per batch, refilled with that batch's features,
    /// published back).
    compositions: CompositionCache,
    tapes: TapePool,
    /// Shared shard gang for shallow-queue batches (see
    /// [`ServeConfig::intra_batch_shards`]); `None` when disabled.
    shard_pool: Option<Arc<WorkerPool>>,
    /// Chaos injector ([`ServeConfig::chaos`]); `None` in production, so
    /// the no-chaos hot path pays one `Option` check per injection point.
    chaos: Option<Arc<FaultInjector>>,
}

/// Cloneable client handle to a running [`Service`]. Dropping handles does
/// not stop the service; [`Service::shutdown`] does.
pub struct ServeHandle<M> {
    inner: Arc<Inner<M>>,
}

impl<M> Clone for ServeHandle<M> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// A running inference service: owns the worker threads.
pub struct Service<M> {
    inner: Arc<Inner<M>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl<M: PathPredictor + 'static> Service<M> {
    /// Start `config.workers` worker threads serving `model`. Each thread
    /// runs the worker loop under a supervisor: a panic that escapes one
    /// loop iteration is caught, counted in
    /// [`MetricsSnapshot::worker_restarts`] and the loop re-entered — the
    /// pool heals itself instead of shrinking until the service starves.
    pub fn start(model: M, config: ServeConfig) -> Self {
        let inner = Arc::new(Inner {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
            metrics: ServeMetrics::new(config.max_batch),
            registry: ModelRegistry::new(model),
            plans: PlanCache::new(config.plan_cache_capacity),
            compositions: CompositionCache::new(config.compose_cache_capacity),
            tapes: TapePool::new(),
            shard_pool: (config.intra_batch_shards > 1)
                .then(|| Arc::new(WorkerPool::new(config.intra_batch_shards))),
            chaos: FaultInjector::from_plan(&config.chaos),
            config,
        });
        let workers = (0..inner.config.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("rn-serve-worker-{i}"))
                    .spawn(move || supervised_worker(&inner))
                    .expect("spawn serve worker")
            })
            .collect();
        Self { inner, workers }
    }

    /// A cloneable client handle.
    pub fn handle(&self) -> ServeHandle<M> {
        ServeHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Stop accepting requests, fail whatever is still queued, and join the
    /// workers. A worker found dead at join time (it panicked at the exact
    /// moment of shutdown) is tolerated, not propagated.
    pub fn shutdown(mut self) {
        {
            let mut st = lock_recover(&self.inner.state);
            st.shutdown = true;
            for job in st.queue.drain(..) {
                self.inner.metrics.errors.fetch_add(1, Ordering::Relaxed);
                job.respond.try_send(Err(ServeError::Shutdown)).ok();
            }
        }
        self.inner.ready.notify_all();
        for w in self.workers.drain(..) {
            w.join().ok();
        }
    }
}

impl<M: PathPredictor> ServeHandle<M> {
    /// Submit a compiled plan and block until its predictions arrive.
    /// Returns one denormalized delay per path, bitwise identical to
    /// `model.predict_batch(&[plan])`. The config's
    /// [`ServeConfig::default_deadline`] applies, if any.
    pub fn predict_plan(&self, plan: Arc<SamplePlan>) -> Result<Vec<f64>, ServeError> {
        self.predict_plan_with_deadline(plan, None)
    }

    /// [`ServeHandle::predict_plan`] with an explicit deadline budget
    /// measured from submission (`None` falls back to the config default).
    /// If the budget expires while the request queues, the batcher answers
    /// [`ServeError::DeadlineExceeded`] without spending forward-pass work.
    pub fn predict_plan_with_deadline(
        &self,
        plan: Arc<SamplePlan>,
        deadline: Option<Duration>,
    ) -> Result<Vec<f64>, ServeError> {
        let rx = self.submit(plan, deadline)?;
        rx.recv().map_err(|_| ServeError::Shutdown)?
    }

    /// Plan a raw sample through the shared plan cache (hit: free; miss:
    /// compile + insert), then predict. Returns `(delays, fingerprint)` so
    /// callers can re-query the scenario by fingerprint alone.
    pub fn predict_sample(&self, sample: &Sample) -> Result<(Vec<f64>, u64), ServeError> {
        self.predict_sample_with_deadline(sample, None)
    }

    /// [`ServeHandle::predict_sample`] with an explicit deadline budget
    /// (`None` falls back to the config default).
    pub fn predict_sample_with_deadline(
        &self,
        sample: &Sample,
        deadline: Option<Duration>,
    ) -> Result<(Vec<f64>, u64), ServeError> {
        let (plan, fp) = self.plan_sample(sample);
        Ok((self.predict_plan_with_deadline(plan, deadline)?, fp))
    }

    /// Predict a scenario already resident in the plan cache.
    pub fn predict_cached(&self, fingerprint: u64) -> Result<Vec<f64>, ServeError> {
        self.predict_cached_with_deadline(fingerprint, None)
    }

    /// [`ServeHandle::predict_cached`] with an explicit deadline budget
    /// (`None` falls back to the config default).
    pub fn predict_cached_with_deadline(
        &self,
        fingerprint: u64,
        deadline: Option<Duration>,
    ) -> Result<Vec<f64>, ServeError> {
        let plan = self
            .inner
            .plans
            .get(fingerprint)
            .ok_or(ServeError::UnknownPlan(fingerprint))?;
        self.predict_plan_with_deadline(plan, deadline)
    }

    /// Compile (or fetch) the plan for `sample` under the **current** model's
    /// preprocessing. The fingerprint covers that preprocessing state (and
    /// hot-swaps flush the cache besides), so a plan can never be served
    /// under a model whose features it was not compiled for.
    pub fn plan_sample(&self, sample: &Sample) -> (Arc<SamplePlan>, u64) {
        let (model, _) = self.inner.registry.snapshot();
        let (scales, normalizer) = model.preprocessing();
        let cfg = PlanConfig::new(model.config(), scales, normalizer);
        self.inner.plans.get_or_build(sample, &cfg)
    }

    /// Fingerprint a sample under the current model without planning it.
    pub fn fingerprint_sample(&self, sample: &Sample) -> u64 {
        let (model, _) = self.inner.registry.snapshot();
        let (scales, normalizer) = model.preprocessing();
        let cfg = PlanConfig::new(model.config(), scales, normalizer);
        sample_fingerprint(sample, &cfg)
    }

    /// Atomically hot-swap the served model; in-flight batches finish on the
    /// version they started with. Returns the new version.
    ///
    /// The plan cache is flushed: resident plans were compiled under the old
    /// model's preprocessing, and `Cached`-by-fingerprint requests would
    /// otherwise keep serving them under the new weights. Clients holding
    /// fingerprints get `UnknownPlan` and re-register (re-keying under the
    /// new preprocessing); in-flight `Arc`s stay valid for their batch.
    pub fn swap_model(&self, model: M) -> u64 {
        let state_dim = model.config().state_dim;
        let version = self.inner.registry.swap(model);
        self.inner.plans.clear();
        // Compositions are preprocessing-independent, so same-width entries
        // stay useful across the swap; entries compiled for a different
        // state width can never be keyed again and are purged.
        self.inner.compositions.retain_width(state_dim);
        self.inner.metrics.swaps.fetch_add(1, Ordering::Relaxed);
        version
    }

    /// Currently served model version.
    pub fn model_version(&self) -> u64 {
        self.inner.registry.version()
    }

    /// Point-in-time service metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        let queue_depth = lock_recover(&self.inner.state).queue.len();
        self.inner.metrics.snapshot(
            CacheStats {
                plan_hits: self.inner.plans.hits(),
                plan_misses: self.inner.plans.misses(),
                plan_len: self.inner.plans.len(),
                compose_hits: self.inner.compositions.hits(),
                compose_misses: self.inner.compositions.misses(),
                compose_len: self.inner.compositions.len(),
                batch_shapes: self.inner.compositions.shape_counts(),
            },
            self.inner.registry.version(),
            queue_depth,
            self.inner.config.workers.max(1),
        )
    }

    /// The service's chaos injector, if one is configured (the TCP frontend
    /// uses it for connection-drop injection).
    pub(crate) fn chaos(&self) -> Option<&Arc<FaultInjector>> {
        self.inner.chaos.as_ref()
    }

    /// The raw shared counters (the TCP frontend counts injected
    /// connection drops here).
    pub(crate) fn raw_metrics(&self) -> &ServeMetrics {
        &self.inner.metrics
    }

    /// Enqueue without waiting for the result; the receiver yields it.
    fn submit(
        &self,
        plan: Arc<SamplePlan>,
        deadline: Option<Duration>,
    ) -> Result<mpsc::Receiver<Result<Vec<f64>, ServeError>>, ServeError> {
        let (tx, rx) = mpsc::sync_channel(1);
        {
            let mut st = lock_recover(&self.inner.state);
            if st.shutdown {
                return Err(ServeError::Shutdown);
            }
            if st.queue.len() >= self.inner.config.queue_capacity {
                self.inner.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded {
                    retry_after_ms: self.inner.metrics.retry_after_ms_hint(st.queue.len()),
                });
            }
            let enqueued = Instant::now();
            let budget = deadline.or(self.inner.config.default_deadline);
            st.queue.push_back(Job {
                plan,
                respond: tx,
                enqueued,
                deadline: budget.map(|d| enqueued + d),
            });
        }
        self.inner.metrics.submitted.fetch_add(1, Ordering::Relaxed);
        self.inner.ready.notify_one();
        Ok(rx)
    }
}

impl<M: PathPredictor> ServeHandle<M> {
    /// Swap in a model loaded from disk (atomic save makes the read safe
    /// against concurrent writers). Flushes the plan cache like
    /// [`ServeHandle::swap_model`]. Returns the new version.
    pub fn load_and_swap(&self, path: &std::path::Path) -> Result<u64, String>
    where
        M: serde::de::DeserializeOwned,
    {
        let version = self.inner.registry.load_and_swap(path)?;
        self.inner.plans.clear();
        // Same hygiene as `swap_model`: stale-width compositions can never
        // be keyed again under the new model.
        let state_dim = self.inner.registry.snapshot().0.config().state_dim;
        self.inner.compositions.retain_width(state_dim);
        self.inner.metrics.swaps.fetch_add(1, Ordering::Relaxed);
        Ok(version)
    }
}

/// Pop the next dynamic batch off the queue. Caller holds the lock and has
/// verified the queue is non-empty.
fn drain_batch(st: &mut QueueState, config: &ServeConfig) -> Vec<Job> {
    let mut batch = Vec::with_capacity(config.max_batch.min(st.queue.len()));
    let mut paths = 0usize;
    while batch.len() < config.max_batch {
        let Some(front) = st.queue.front() else { break };
        let next_paths = front.plan.n_paths;
        // Every batch takes at least one request, however large.
        if !batch.is_empty() && paths + next_paths > config.max_batch_paths {
            break;
        }
        paths += next_paths;
        batch.push(st.queue.pop_front().expect("front checked"));
    }
    batch
}

/// The supervisor wrapper every worker thread runs: re-enter the worker
/// loop after a panic escapes it (a chaos kill, a bug outside the
/// batch-level `catch_unwind`), counting the restart. Only a clean
/// shutdown-driven return ends the thread.
fn supervised_worker<M: PathPredictor>(inner: &Inner<M>) {
    loop {
        match std::panic::catch_unwind(AssertUnwindSafe(|| worker_loop(inner))) {
            Ok(()) => return, // clean shutdown
            Err(_) => {
                inner
                    .metrics
                    .worker_restarts
                    .fetch_add(1, Ordering::Relaxed);
                if lock_recover(&inner.state).shutdown {
                    return;
                }
                // Respawn: re-enter the loop on this thread. Any lock the
                // panicking iteration held is poisoned, and every
                // acquisition in this crate recovers from poison, so the
                // reborn worker picks the queue back up where it stood.
            }
        }
    }
}

/// Worker: wait for a flush condition, drain a batch, run one fused forward
/// on a pooled tape, deliver per-request results. Batch execution runs
/// under `catch_unwind`: a panic answers every request in the batch with
/// [`ServeError::WorkerPanic`] instead of killing the worker.
fn worker_loop<M: PathPredictor>(inner: &Inner<M>) {
    loop {
        // Chaos worker-kill injection point: fires *between* batches, while
        // no job and no lock is held, so a kill can never lose a reply —
        // recovery is the supervisor's respawn alone.
        if let Some(chaos) = &inner.chaos {
            if chaos.should_kill_worker() {
                panic!("{CHAOS_WORKER_KILL}");
            }
        }
        let (batch, backlog) = {
            let mut st = lock_recover(&inner.state);
            loop {
                if st.queue.is_empty() {
                    if st.shutdown {
                        return;
                    }
                    st = wait_recover(&inner.ready, st);
                    continue;
                }
                let full = st.queue.len() >= inner.config.max_batch;
                let deadline = st.queue[0].enqueued + inner.config.flush_deadline;
                let now = Instant::now();
                if full || st.shutdown || now >= deadline {
                    let batch = drain_batch(&mut st, &inner.config);
                    // Requests left behind after this flush: other workers
                    // will pick those up, so the machine is already busy.
                    break (batch, st.queue.len());
                }
                let (next, _timeout) = wait_timeout_recover(&inner.ready, st, deadline - now);
                st = next;
            }
        };
        if batch.is_empty() {
            continue;
        }

        // Requests whose deadline passed while they queued are answered
        // (and counted) *before* any forward-pass work is spent on them.
        let now = Instant::now();
        let (batch, expired): (Vec<Job>, Vec<Job>) = batch
            .into_iter()
            .partition(|job| job.deadline.is_none_or(|d| now < d));
        for job in expired {
            inner
                .metrics
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            job.respond.try_send(Err(ServeError::DeadlineExceeded)).ok();
        }
        if batch.is_empty() {
            continue;
        }

        // One model snapshot per flush: hot-swaps never tear a batch.
        let (model, _version) = inner.registry.snapshot();

        // A plan compiled for a different model generation (its state width
        // differs — e.g. it straddled a hot-swap to a resized model) can
        // neither share the block-diagonal forward nor run under this
        // model's weights. Answer those with a clean error instead of
        // letting shape asserts kill the worker.
        let expected = model.config().state_dim;
        let (group, stale): (Vec<Job>, Vec<Job>) = batch
            .into_iter()
            .partition(|job| job.plan.path_init.cols() == expected);
        for job in stale {
            inner.metrics.errors.fetch_add(1, Ordering::Relaxed);
            job.respond
                .try_send(Err(ServeError::IncompatiblePlan {
                    expected,
                    found: job.plan.path_init.cols(),
                }))
                .ok();
        }
        if group.is_empty() {
            continue;
        }

        // The batch region: everything that can panic on a model/kernel bug
        // (or injected chaos) runs under `catch_unwind`, borrowing `group`
        // so the jobs stay answerable afterwards. No lock is held here, and
        // the pooled tape is acquired and released inside the region — a
        // panic mid-batch drops that tape during unwind (the pool simply
        // re-allocates later) instead of recycling torn scratch state.
        let total_paths: usize = group.iter().map(|j| j.plan.n_paths).sum();
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if let Some(chaos) = &inner.chaos {
                chaos.before_batch();
            }
            let refs: Vec<&SamplePlan> = group.iter().map(|j| j.plan.as_ref()).collect();
            let mut tape = inner.tapes.acquire();
            // Shallow queue: nothing left for co-workers to chew on, so
            // spare cores are free — exploit the batch's intra-megabatch
            // shards instead. Under backlog the inter-batch parallelism
            // already saturates the workers, and the gang would only add
            // contention. Either way the predictions are bitwise identical.
            let shard_here = backlog == 0 && refs.len() > 1;
            tape.set_worker_pool(if shard_here {
                inner.shard_pool.clone()
            } else {
                None
            });
            // Stage-boundary instants (`compose starts` / `forward starts` /
            // `forward done`) ride out of the region so completed requests
            // can be attributed per stage — three clock reads per batch,
            // recorded only while `RN_TRACE=1`.
            let t_compose = Instant::now();
            let (results, t_forward, t_forward_end) = if refs.len() > 1 {
                // Multi-request batches go through the composition cache: a
                // recurring batch shape checks its composed block-diagonal
                // structure out, refills the feature rows for *these*
                // requests and skips `build_megabatch` planning entirely.
                // Misses compose fresh and publish for the next batch with
                // this shape. Bitwise identical to `predict_batch_refs_with`
                // either way.
                let key = CompositionCache::key_of(&refs);
                let composed = match inner.compositions.checkout(&key) {
                    Some(mut cached) => {
                        cached.refill_features(&refs);
                        cached
                    }
                    None => ComposedMegabatch::compose(&refs)
                        .expect("worker batch is non-empty and width-checked"),
                };
                let t_forward = Instant::now();
                let out = model.predict_megabatch_with(&mut tape, composed.megabatch());
                let t_forward_end = Instant::now();
                inner.compositions.publish(composed);
                (out, t_forward, t_forward_end)
            } else {
                // Single-request flushes take the legacy (bitwise-seed)
                // path, exactly as `predict_batch_refs_with` special-cases
                // them.
                let t_forward = Instant::now();
                let out = model.predict_batch_refs_with(&mut tape, &refs);
                (out, t_forward, Instant::now())
            };
            tape.set_worker_pool(None);
            inner.tapes.release(tape);
            (results, t_compose, t_forward, t_forward_end)
        }));

        match outcome {
            Ok((results, t_compose, t_forward, t_forward_end)) => {
                inner.metrics.batches.record(group.len(), total_paths);
                let done = Instant::now();
                let stages = &inner.metrics.stages;
                for (job, delays) in group.into_iter().zip(results) {
                    inner.metrics.latency.record(done - job.enqueued);
                    // The five stages decompose `done - enqueued` exactly:
                    // adjacent stages share their boundary instant (`now` is
                    // the drain instant captured for deadline partitioning),
                    // so the per-request stage sum telescopes to the same
                    // duration the end-to-end histogram records. No-ops
                    // while tracing is off.
                    stages.record(stage::QUEUE_WAIT, now - job.enqueued);
                    stages.record(stage::BATCH_ASSEMBLY, t_compose - now);
                    stages.record(stage::COMPOSE, t_forward - t_compose);
                    stages.record(stage::FORWARD, t_forward_end - t_forward);
                    stages.record(stage::REPLY, done - t_forward_end);
                    inner.metrics.note_completion();
                    // A caller that gave up (dropped the receiver) is not an
                    // error.
                    job.respond.try_send(Ok(delays)).ok();
                }
            }
            Err(_) => {
                // The batch died, the worker did not: every rider gets a
                // clean WorkerPanic reply and the loop keeps serving.
                inner.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                inner
                    .metrics
                    .errors
                    .fetch_add(group.len() as u64, Ordering::Relaxed);
                for job in group {
                    job.respond.try_send(Err(ServeError::WorkerPanic)).ok();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The README "Configuration" table is generated from the `ENV_DOCS`
    /// constants; this test is the generator's enforcement half — a knob
    /// added to code without a README row (or vice versa: a renamed knob
    /// leaving a stale row) fails here, not in a reviewer's memory.
    #[test]
    fn readme_documents_every_env_knob() {
        let readme = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md"));
        let table_start = readme
            .find("## Configuration")
            .expect("README must keep the Configuration section");
        let table = &readme[table_start..];
        for (name, _) in ServeConfig::ENV_DOCS
            .iter()
            .chain(routenet::TrainConfig::ENV_DOCS)
        {
            assert!(
                table.contains(&format!("`{name}`")),
                "env knob {name} (from ENV_DOCS) is missing from README's \
                 Configuration table"
            );
        }
    }

    #[test]
    fn every_documented_knob_actually_moves_its_field() {
        // The real drift guard: feed the parser (through its pure lookup
        // core — no process-env mutation under the multi-threaded harness)
        // a distinct value for every ENV_DOCS name and check every config
        // field moved off its default. A knob renamed in the parser but not
        // in ENV_DOCS (or vice versa) leaves a field at its default and
        // fails here.
        for (name, docs) in ServeConfig::ENV_DOCS {
            assert!(name.starts_with("RN_SERVE_"), "{name}");
            assert!(!docs.is_empty());
        }
        let values: Vec<(usize, String)> = ServeConfig::ENV_DOCS
            .iter()
            .enumerate()
            .map(|(i, _)| (i, format!("{}", 1000 + i)))
            .collect();
        let overridden = ServeConfig::default().with_overrides_from(|name| {
            ServeConfig::ENV_DOCS
                .iter()
                .position(|(n, _)| *n == name)
                .map(|i| values[i].1.clone())
        });
        let defaults = ServeConfig::default();
        let moved = [
            ("RN_SERVE_WORKERS", overridden.workers != defaults.workers),
            (
                "RN_SERVE_MAX_BATCH",
                overridden.max_batch != defaults.max_batch,
            ),
            (
                "RN_SERVE_MAX_BATCH_PATHS",
                overridden.max_batch_paths != defaults.max_batch_paths,
            ),
            (
                "RN_SERVE_DEADLINE_US",
                overridden.flush_deadline != defaults.flush_deadline,
            ),
            (
                "RN_SERVE_QUEUE_CAPACITY",
                overridden.queue_capacity != defaults.queue_capacity,
            ),
            (
                "RN_SERVE_PLAN_CACHE",
                overridden.plan_cache_capacity != defaults.plan_cache_capacity,
            ),
            (
                "RN_SERVE_COMPOSE_CACHE",
                overridden.compose_cache_capacity != defaults.compose_cache_capacity,
            ),
            (
                "RN_SERVE_SHARDS",
                overridden.intra_batch_shards != defaults.intra_batch_shards,
            ),
            (
                "RN_SERVE_REQUEST_DEADLINE_MS",
                overridden.default_deadline != defaults.default_deadline,
            ),
            (
                "RN_SERVE_CHAOS_PANIC_EVERY",
                overridden.chaos.panic_every != defaults.chaos.panic_every,
            ),
            (
                "RN_SERVE_CHAOS_KILL_EVERY",
                overridden.chaos.kill_every != defaults.chaos.kill_every,
            ),
            (
                "RN_SERVE_CHAOS_BATCH_DELAY_US",
                overridden.chaos.batch_delay != defaults.chaos.batch_delay,
            ),
            (
                "RN_SERVE_CHAOS_DROP_CONN_EVERY",
                overridden.chaos.drop_conn_every != defaults.chaos.drop_conn_every,
            ),
            (
                "RN_SERVE_CHAOS_SEED",
                overridden.chaos.seed != defaults.chaos.seed,
            ),
        ];
        assert_eq!(
            moved.len(),
            ServeConfig::ENV_DOCS.len(),
            "new knob: extend this field map, ENV_DOCS and the README table"
        );
        for (name, changed) in moved {
            assert!(
                ServeConfig::ENV_DOCS.iter().any(|(n, _)| *n == name),
                "{name} is parsed but undocumented in ENV_DOCS"
            );
            assert!(changed, "{name} is documented but did not move its field");
        }
    }

    #[test]
    fn from_env_without_overrides_is_default() {
        // In the absence of RN_SERVE_* vars (the test environment), env
        // resolution must reproduce the defaults exactly.
        let clean = std::env::vars().all(|(k, _)| !k.starts_with("RN_SERVE_"));
        if !clean {
            return; // an outer harness set serving knobs; nothing to assert
        }
        let a = ServeConfig::default();
        let b = ServeConfig::from_env();
        assert_eq!(a.workers, b.workers);
        assert_eq!(a.max_batch, b.max_batch);
        assert_eq!(a.max_batch_paths, b.max_batch_paths);
        assert_eq!(a.flush_deadline, b.flush_deadline);
        assert_eq!(a.queue_capacity, b.queue_capacity);
        assert_eq!(a.plan_cache_capacity, b.plan_cache_capacity);
        assert_eq!(a.compose_cache_capacity, b.compose_cache_capacity);
        assert_eq!(a.intra_batch_shards, b.intra_batch_shards);
        assert_eq!(a.default_deadline, b.default_deadline);
        assert_eq!(a.chaos, b.chaos);
        assert!(b.chaos.is_none(), "no chaos unless explicitly enabled");
    }

    #[test]
    fn zero_valued_deadline_and_chaos_knobs_mean_disabled() {
        let cfg = ServeConfig::default().with_overrides_from(|name| {
            matches!(
                name,
                "RN_SERVE_REQUEST_DEADLINE_MS"
                    | "RN_SERVE_CHAOS_PANIC_EVERY"
                    | "RN_SERVE_CHAOS_KILL_EVERY"
                    | "RN_SERVE_CHAOS_BATCH_DELAY_US"
                    | "RN_SERVE_CHAOS_DROP_CONN_EVERY"
            )
            .then(|| "0".to_string())
        });
        assert_eq!(cfg.default_deadline, None);
        assert!(cfg.chaos.is_none());
    }
}
