//! Poison-recovering lock acquisition.
//!
//! A `Mutex`/`RwLock` is *poisoned* when a thread panics while holding it.
//! For the serving data structures (admission queue, model slot) the
//! protected state is always left consistent at panic time — workers never
//! panic mid-mutation of the queue, and the registry only swaps whole
//! `Arc`s — so propagating the poison would turn one recovered worker panic
//! into a cascade that takes down every other worker and client thread.
//! These helpers strip the poison flag and hand back the guard, which is
//! exactly `PoisonError::into_inner`, named once so every lock acquisition
//! in the crate degrades the same way.

use std::sync::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};
use std::time::Duration;

/// Lock a mutex, recovering the guard from a poisoned lock.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Take a read lock, recovering from poison.
pub(crate) fn read_recover<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

/// Take a write lock, recovering from poison.
pub(crate) fn write_recover<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

/// Wait on a condvar, recovering the reacquired guard from poison.
pub(crate) fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(|e| e.into_inner())
}

/// Wait on a condvar with a timeout, recovering the reacquired guard from
/// poison.
pub(crate) fn wait_timeout_recover<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, timeout)
        .unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Poison `m` by panicking a thread while it holds the lock.
    fn poison<T: Send + 'static>(m: &Arc<Mutex<T>>) {
        let m2 = Arc::clone(m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poisoning the mutex on purpose");
        })
        .join();
        assert!(
            m.is_poisoned(),
            "setup: the mutex must actually be poisoned"
        );
    }

    #[test]
    fn poisoned_mutex_recovers_with_state_intact() {
        let m = Arc::new(Mutex::new(41));
        poison(&m);
        let mut g = lock_recover(&m);
        assert_eq!(*g, 41, "state survives the poisoning panic");
        *g += 1;
        drop(g);
        assert_eq!(*lock_recover(&m), 42, "the recovered lock keeps working");
    }

    #[test]
    fn poisoned_rwlock_recovers_for_readers_and_writers() {
        let l = Arc::new(RwLock::new(7));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write().unwrap();
            panic!("poisoning the rwlock on purpose");
        })
        .join();
        assert_eq!(*read_recover(&l), 7);
        *write_recover(&l) = 8;
        assert_eq!(*read_recover(&l), 8);
    }

    #[test]
    fn poisoned_condvar_wait_recovers() {
        // A waiter parked on a mutex that gets poisoned *while it waits*
        // must get its guard back when notified instead of propagating the
        // panic out of `Condvar::wait`.
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = lock_recover(m);
            while !*done {
                let (next, _) = wait_timeout_recover(cv, done, Duration::from_millis(50));
                done = next;
            }
        });
        // Give the waiter a moment to park, then poison the very mutex it
        // is waiting on.
        std::thread::sleep(Duration::from_millis(20));
        let pair3 = Arc::clone(&pair);
        let _ = std::thread::spawn(move || {
            let _guard = pair3.0.lock().unwrap();
            panic!("poisoning the waited-on mutex on purpose");
        })
        .join();
        assert!(pair.0.is_poisoned());
        {
            let (m, cv) = &*pair;
            *lock_recover(m) = true;
            cv.notify_all();
        }
        waiter.join().expect("waiter must finish cleanly");
    }
}
