//! Chaos injection for the serving stack, modeled on
//! [`rn_netsim::fault::FaultPlan`]: the *simulated* network has had
//! first-class fault injection since the seed — this module gives the
//! *serving* system the same treatment, so the fault-tolerance claims in
//! `tests/serve_faults.rs` are proven against injected failures instead of
//! assumed.
//!
//! A [`ChaosPlan`] describes which faults to inject and how often; a
//! [`FaultInjector`] executes the plan with atomic tick counters, so the
//! injection points are **deterministic in the sequence of events** (every
//! Nth batch panics, every Nth connection drops) and the artificial-latency
//! jitter is a pure function of `seed` and the tick — two runs that process
//! the same event sequence inject the same faults.
//!
//! Injection points (all inert when the plan is [`ChaosPlan::none`] — the
//! service holds no injector at all, so the hot path pays a single `Option`
//! check):
//!
//! - **batch panic** (`panic_every`): the worker panics *inside* its
//!   supervised batch region, exactly like a real bug in kernel/model code
//!   would. Supervision must convert it into per-request error replies.
//! - **worker kill** (`kill_every`): the worker panics *between* batches,
//!   escaping the batch region — the supervisor must respawn the worker
//!   loop without losing a queued request.
//! - **batch delay** (`batch_delay`): artificial pre-forward latency with
//!   seeded ±50% jitter — backs up the admission queue so overload and
//!   deadline behavior can be exercised on a fast model.
//! - **connection drop** (`drop_conn_every`): the TCP frontend closes a
//!   client connection right before replying — the worst client-visible
//!   moment.
//!
//! The `RN_SERVE_CHAOS_*` environment knobs (see
//! [`crate::ServeConfig::ENV_DOCS`]) populate the plan for release-mode CI
//! runs; unset knobs leave it empty.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which serving faults to inject and how often. All-zero (the default) is
/// "no chaos"; [`FaultInjector::from_plan`] returns `None` for it so the
/// service carries no injector at all.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Panic inside every Nth dynamic-batch execution (0 disables). The
    /// panic is raised inside the worker's supervised batch region, like a
    /// real model/kernel bug.
    pub panic_every: u64,
    /// Kill the worker loop on every Nth iteration (0 disables). The panic
    /// escapes the batch region — recovery relies on worker respawn, not
    /// batch-level catching. Fired only between batches, so no in-flight
    /// request is held when it goes off.
    pub kill_every: u64,
    /// Artificial latency injected before every batch's forward pass
    /// (`Duration::ZERO` disables). Jittered ±50% deterministically from
    /// `seed` and the batch tick.
    pub batch_delay: Duration,
    /// Drop every Nth TCP connection right before a reply is written
    /// (0 disables).
    pub drop_conn_every: u64,
    /// Seed for the deterministic delay jitter.
    pub seed: u64,
}

impl ChaosPlan {
    /// A plan that injects nothing (the production default).
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan injects no faults at all (`seed` alone does not
    /// make a plan active).
    pub fn is_none(&self) -> bool {
        self.panic_every == 0
            && self.kill_every == 0
            && self.batch_delay == Duration::ZERO
            && self.drop_conn_every == 0
    }

    /// Panic inside every `n`th batch execution.
    pub fn with_panic_every(mut self, n: u64) -> Self {
        self.panic_every = n;
        self
    }

    /// Kill the worker loop on every `n`th iteration.
    pub fn with_kill_every(mut self, n: u64) -> Self {
        self.kill_every = n;
        self
    }

    /// Inject `delay` (±50% seeded jitter) before every batch forward.
    pub fn with_batch_delay(mut self, delay: Duration) -> Self {
        self.batch_delay = delay;
        self
    }

    /// Drop every `n`th TCP connection before a reply.
    pub fn with_drop_conn_every(mut self, n: u64) -> Self {
        self.drop_conn_every = n;
        self
    }

    /// Seed the delay jitter.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// SplitMix64 — the same small deterministic mixer the vendored rand crate
/// seeds with; used here so jitter is a pure function of (seed, tick) and
/// the loadgen's backoff jitter is a pure function of (seed, attempt).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Executes a [`ChaosPlan`] with atomic tick counters. One injector is
/// shared by every worker and connection thread of a service, so "every
/// Nth" is counted service-wide in arrival order.
pub struct FaultInjector {
    plan: ChaosPlan,
    batch_ticks: AtomicU64,
    loop_ticks: AtomicU64,
    conn_ticks: AtomicU64,
}

/// Panic payload used by injected batch panics, recognizable in test logs.
pub const CHAOS_BATCH_PANIC: &str = "chaos: injected batch panic";
/// Panic payload used by injected worker kills.
pub const CHAOS_WORKER_KILL: &str = "chaos: injected worker kill";

impl FaultInjector {
    /// An injector for `plan`, or `None` when the plan injects nothing —
    /// the no-chaos hot path carries no injector state at all.
    pub fn from_plan(plan: &ChaosPlan) -> Option<Arc<Self>> {
        if plan.is_none() {
            return None;
        }
        Some(Arc::new(Self {
            plan: plan.clone(),
            batch_ticks: AtomicU64::new(0),
            loop_ticks: AtomicU64::new(0),
            conn_ticks: AtomicU64::new(0),
        }))
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// Batch-execution injection point: sleep the configured (jittered)
    /// artificial latency, then panic if this is an every-Nth batch.
    /// Called *inside* the worker's supervised batch region.
    pub fn before_batch(&self) {
        let tick = self.batch_ticks.fetch_add(1, Ordering::Relaxed);
        if self.plan.batch_delay > Duration::ZERO {
            // Deterministic ±50% jitter: delay * (0.5 + u) with u in [0, 1).
            let u = splitmix64(self.plan.seed ^ tick) as f64 / (u64::MAX as f64 + 1.0);
            std::thread::sleep(self.plan.batch_delay.mul_f64(0.5 + u));
        }
        if self.plan.panic_every > 0 && (tick + 1).is_multiple_of(self.plan.panic_every) {
            panic!("{CHAOS_BATCH_PANIC}");
        }
    }

    /// Worker-loop injection point: true on every `kill_every`th call.
    /// The caller panics with [`CHAOS_WORKER_KILL`] while holding no batch
    /// and no lock, so recovery exercises worker respawn alone.
    pub fn should_kill_worker(&self) -> bool {
        if self.plan.kill_every == 0 {
            return false;
        }
        let tick = self.loop_ticks.fetch_add(1, Ordering::Relaxed);
        (tick + 1).is_multiple_of(self.plan.kill_every)
    }

    /// Connection injection point: true when the frontend should drop the
    /// current connection instead of writing its next reply.
    pub fn should_drop_connection(&self) -> bool {
        if self.plan.drop_conn_every == 0 {
            return false;
        }
        let tick = self.conn_ticks.fetch_add(1, Ordering::Relaxed);
        (tick + 1).is_multiple_of(self.plan.drop_conn_every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_builds_no_injector() {
        assert!(ChaosPlan::none().is_none());
        assert!(FaultInjector::from_plan(&ChaosPlan::none()).is_none());
        // Seed alone is not a fault.
        assert!(ChaosPlan::none().with_seed(7).is_none());
        assert!(FaultInjector::from_plan(&ChaosPlan::none().with_seed(7)).is_none());
    }

    #[test]
    fn panic_cadence_is_every_nth_batch() {
        let inj = FaultInjector::from_plan(&ChaosPlan::none().with_panic_every(3)).unwrap();
        let mut outcomes = Vec::new();
        for _ in 0..9 {
            outcomes.push(std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                || inj.before_batch(),
            )));
        }
        let pattern: Vec<bool> = outcomes.iter().map(|o| o.is_err()).collect();
        assert_eq!(
            pattern,
            [false, false, true, false, false, true, false, false, true]
        );
    }

    #[test]
    fn kill_and_drop_cadences_are_deterministic() {
        let inj =
            FaultInjector::from_plan(&ChaosPlan::none().with_kill_every(2).with_drop_conn_every(4))
                .unwrap();
        let kills: Vec<bool> = (0..6).map(|_| inj.should_kill_worker()).collect();
        assert_eq!(kills, [false, true, false, true, false, true]);
        let drops: Vec<bool> = (0..8).map(|_| inj.should_drop_connection()).collect();
        assert_eq!(
            drops,
            [false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    fn jitter_is_a_pure_function_of_seed_and_tick() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
    }
}
