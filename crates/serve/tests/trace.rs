//! Request-lifecycle tracing: the stage breakdown is present when tracing
//! is on, absent when off, decomposes the end-to-end latency exactly, and
//! never perturbs predictions.
//!
//! Tracing state is process-global (`rn_trace::set_enabled`), so the
//! off-phase and on-phase live in ONE test function, sequenced explicitly
//! rather than racing across the harness's test threads.

use rn_dataset::{generate, Dataset, GeneratorConfig};
use rn_netgraph::topologies;
use rn_netsim::SimConfig;
use rn_serve::loadgen::Client;
use rn_serve::metrics::stage;
use rn_serve::{Request, Response, ServeConfig, Service, TcpServer};
use routenet::model::PathPredictor;
use routenet::{ExtendedRouteNet, ModelConfig};

fn toy_dataset(n: usize, seed: u64) -> Dataset {
    let config = GeneratorConfig {
        sim: SimConfig {
            duration_s: 60.0,
            warmup_s: 10.0,
            ..SimConfig::default()
        },
        ..GeneratorConfig::default()
    };
    generate(&topologies::toy5(), &config, seed, n)
}

fn fitted_model(ds: &Dataset, weight_seed: u64) -> ExtendedRouteNet {
    let mut model = ExtendedRouteNet::new(ModelConfig {
        state_dim: 8,
        mp_iterations: 2,
        readout_hidden: 8,
        seed: weight_seed,
        ..ModelConfig::default()
    });
    model.fit_preprocessing(ds, 5);
    model
}

fn serve_all_bits(ds: &Dataset, config: ServeConfig) -> (Vec<Vec<u64>>, Service<ExtendedRouteNet>) {
    let service = Service::start(fitted_model(ds, 7), config);
    let handle = service.handle();
    let bits = ds
        .samples
        .iter()
        .map(|s| {
            let (delays, _) = handle.predict_sample(s).expect("predict");
            delays.iter().map(|d| d.to_bits()).collect()
        })
        .collect();
    (bits, service)
}

#[test]
fn stage_breakdown_decomposes_latency_and_never_perturbs_predictions() {
    let ds = toy_dataset(4, 23);
    let config = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };

    // Phase 1 — tracing OFF: no stage data, and the reference bits.
    rn_trace::set_enabled(false);
    let (bits_off, service) = serve_all_bits(&ds, config.clone());
    let snap_off = service.handle().metrics();
    assert!(
        snap_off.stage_latency.is_empty(),
        "stage breakdown must be absent with tracing off"
    );
    assert_eq!(snap_off.workers, 2);
    service.shutdown();

    // Phase 2 — tracing ON: identical bits, full stage breakdown.
    rn_trace::set_enabled(true);
    let (bits_on, service) = serve_all_bits(&ds, config);
    assert_eq!(
        bits_off, bits_on,
        "tracing must be bitwise invisible to predictions"
    );
    let handle = service.handle();
    let snap = handle.metrics();
    assert_eq!(snap.stage_latency.len(), stage::NAMES.len());
    for (s, &name) in snap.stage_latency.iter().zip(stage::NAMES) {
        assert_eq!(s.name, name, "snapshot preserves stage order");
        assert_eq!(
            s.count, snap.completed,
            "every completed request records every stage exactly once"
        );
        assert!(s.total_ms >= 0.0 && s.total_ms.is_finite());
        assert!(s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms);
        assert!(s.mean_ms <= s.max_ms + 1e-12);
    }

    // The five stages share boundary instants, so their per-request sum
    // telescopes to exactly the duration the end-to-end histogram records.
    // Totals are exact (nanosecond side-sums), leaving only f64 ms
    // conversion noise between the two aggregations.
    let stage_total_ms: f64 = snap.stage_latency.iter().map(|s| s.total_ms).sum();
    let e2e_total_ms = snap.latency_mean_ms * snap.completed as f64;
    let tol = 1e-6 * e2e_total_ms.max(1e-3);
    assert!(
        (stage_total_ms - e2e_total_ms).abs() <= tol,
        "stage sum {stage_total_ms} ms must reconcile with end-to-end {e2e_total_ms} ms"
    );

    // The JSONL Metrics reply carries the same breakdown over the wire.
    let server = TcpServer::bind(service.handle(), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(&server.local_addr().to_string()).expect("connect");
    match client.round_trip(&Request::Metrics).expect("metrics") {
        Response::Metrics { snapshot } => {
            assert_eq!(snapshot.stage_latency.len(), stage::NAMES.len());
            assert_eq!(snapshot.workers, 2);
            assert!(snapshot.uptime_s >= 0.0);
        }
        other => panic!("unexpected response {other:?}"),
    }
    server.stop();
    service.shutdown();
    rn_trace::set_enabled(false);
}
