//! Integration tests for the serving subsystem: bitwise equivalence under
//! concurrency, plan-cache behavior, hot-swap under load, and the TCP
//! protocol.

use rn_dataset::{generate, Dataset, GeneratorConfig};
use rn_netgraph::topologies;
use rn_netsim::SimConfig;
use rn_serve::loadgen::Client;
use rn_serve::{Request, Response, ServeConfig, ServeError, Service, TcpServer};
use routenet::model::PathPredictor;
use routenet::{ExtendedRouteNet, ModelConfig, SamplePlan};
use std::sync::Arc;
use std::time::Duration;

fn toy_dataset(n: usize, seed: u64) -> Dataset {
    let config = GeneratorConfig {
        sim: SimConfig {
            duration_s: 60.0,
            warmup_s: 10.0,
            ..SimConfig::default()
        },
        ..GeneratorConfig::default()
    };
    generate(&topologies::toy5(), &config, seed, n)
}

fn fitted_model(ds: &Dataset, weight_seed: u64) -> ExtendedRouteNet {
    let mut model = ExtendedRouteNet::new(ModelConfig {
        state_dim: 8,
        mp_iterations: 2,
        readout_hidden: 8,
        seed: weight_seed,
        ..ModelConfig::default()
    });
    model.fit_preprocessing(ds, 5);
    model
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn serving_is_bitwise_identical_to_predict_batch_under_concurrency() {
    let ds = toy_dataset(3, 11);
    let model = fitted_model(&ds, 1);
    let plans: Vec<Arc<SamplePlan>> = ds.samples.iter().map(|s| Arc::new(model.plan(s))).collect();
    // The reference: direct single-threaded predict_batch, one plan at a
    // time AND all plans together — both must agree with the served result.
    let singly: Vec<Vec<u64>> = plans
        .iter()
        .map(|p| bits(&model.predict_batch(std::slice::from_ref(p.as_ref()))[0]))
        .collect();
    let owned: Vec<SamplePlan> = plans.iter().map(|p| (**p).clone()).collect();
    let together = model.predict_batch(&owned);
    for (one, all) in singly.iter().zip(&together) {
        assert_eq!(one, &bits(all), "megabatch grouping must not perturb bits");
    }

    let service = Service::start(
        model,
        ServeConfig {
            workers: 2,
            max_batch: 4,
            // A generous deadline forces real multi-request batches to form
            // while clients hammer the queue.
            flush_deadline: Duration::from_millis(10),
            ..ServeConfig::default()
        },
    );
    let handle = service.handle();

    const CLIENTS: usize = 4;
    const REQUESTS: usize = 16;
    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let handle = handle.clone();
            let plans = &plans;
            let singly = &singly;
            s.spawn(move || {
                for i in 0..REQUESTS {
                    let pick = (c + i) % plans.len();
                    let got = handle
                        .predict_plan(Arc::clone(&plans[pick]))
                        .expect("serve predict");
                    assert_eq!(
                        bits(&got),
                        singly[pick],
                        "client {c} request {i}: served bits diverged"
                    );
                }
            });
        }
    });

    let m = handle.metrics();
    assert_eq!(m.completed, (CLIENTS * REQUESTS) as u64);
    assert_eq!(m.errors, 0);
    assert!(
        m.batches < m.completed,
        "dynamic batching must have grouped requests: {} batches for {} requests",
        m.batches,
        m.completed
    );
    assert!(m.mean_batch_occupancy > 1.0, "{}", m.mean_batch_occupancy);
    service.shutdown();
}

#[test]
fn deadline_batches_coincident_requests_together() {
    let ds = toy_dataset(1, 13);
    let model = fitted_model(&ds, 1);
    let plan = Arc::new(model.plan(&ds.samples[0]));
    let service = Service::start(
        model,
        ServeConfig {
            workers: 1,
            max_batch: 2,
            flush_deadline: Duration::from_millis(250),
            ..ServeConfig::default()
        },
    );
    let handle = service.handle();
    std::thread::scope(|s| {
        for _ in 0..2 {
            let handle = handle.clone();
            let plan = Arc::clone(&plan);
            s.spawn(move || handle.predict_plan(plan).expect("predict"));
        }
    });
    let m = handle.metrics();
    assert_eq!(m.completed, 2);
    assert_eq!(m.batches, 1, "both requests must ride one batch");
    assert_eq!(m.mean_batch_occupancy, 2.0);
    service.shutdown();
}

#[test]
fn plan_cache_serves_hits_and_evicts_lru() {
    let ds = toy_dataset(3, 17);
    let model = fitted_model(&ds, 1);
    let service = Service::start(
        model,
        ServeConfig {
            workers: 1,
            plan_cache_capacity: 2,
            ..ServeConfig::default()
        },
    );
    let handle = service.handle();

    let (first, fp0) = handle.predict_sample(&ds.samples[0]).expect("predict");
    assert!(!first.is_empty());
    let (_, fp0_again) = handle.predict_sample(&ds.samples[0]).expect("predict");
    assert_eq!(fp0, fp0_again);
    let m = handle.metrics();
    assert_eq!((m.cache_hits, m.cache_misses), (1, 1));

    // Fingerprint-only requests hit the cached plan.
    let by_ref = handle.predict_cached(fp0).expect("cached predict");
    assert_eq!(bits(&first), bits(&by_ref));

    // Unknown fingerprints are a clean error.
    match handle.predict_cached(0xdead_beef) {
        Err(ServeError::UnknownPlan(fp)) => assert_eq!(fp, 0xdead_beef),
        other => panic!("expected UnknownPlan, got {other:?}"),
    }

    // Capacity 2: planning scenarios 1 and 2 evicts scenario 0 (the LRU).
    handle.predict_sample(&ds.samples[1]).expect("predict");
    handle.predict_sample(&ds.samples[2]).expect("predict");
    match handle.predict_cached(fp0) {
        Err(ServeError::UnknownPlan(_)) => {}
        other => panic!("expected eviction of the LRU plan, got {other:?}"),
    }
    assert_eq!(handle.metrics().cache_len, 2);
    service.shutdown();
}

#[test]
fn hot_swap_under_load_never_tears_a_batch() {
    let ds = toy_dataset(2, 19);
    let model_a = fitted_model(&ds, 1);
    let model_b = fitted_model(&ds, 2);
    let plans: Vec<Arc<SamplePlan>> = ds
        .samples
        .iter()
        .map(|s| Arc::new(model_a.plan(s)))
        .collect();
    let expected_a: Vec<Vec<u64>> = plans.iter().map(|p| bits(&model_a.predict(p))).collect();
    let expected_b: Vec<Vec<u64>> = plans.iter().map(|p| bits(&model_b.predict(p))).collect();
    for (a, b) in expected_a.iter().zip(&expected_b) {
        assert_ne!(a, b, "differently seeded models must disagree");
    }

    let service = Service::start(
        model_a,
        ServeConfig {
            workers: 2,
            max_batch: 4,
            flush_deadline: Duration::from_millis(2),
            ..ServeConfig::default()
        },
    );
    let handle = service.handle();
    assert_eq!(handle.model_version(), 1);

    const REQUESTS: usize = 24;
    std::thread::scope(|s| {
        for c in 0..3usize {
            let handle = handle.clone();
            let plans = &plans;
            let (expected_a, expected_b) = (&expected_a, &expected_b);
            s.spawn(move || {
                for i in 0..REQUESTS {
                    let pick = (c + i) % plans.len();
                    let got = bits(
                        &handle
                            .predict_plan(Arc::clone(&plans[pick]))
                            .expect("predict during swap"),
                    );
                    assert!(
                        got == expected_a[pick] || got == expected_b[pick],
                        "response matched neither model version (client {c}, request {i})"
                    );
                }
            });
        }
        // Swap while the clients are mid-flight.
        std::thread::sleep(Duration::from_millis(5));
        let swapper = handle.clone();
        s.spawn(move || {
            assert_eq!(swapper.swap_model(model_b), 2);
        });
    });

    // After the swap settles, every response comes from model B.
    let settled = bits(&handle.predict_plan(Arc::clone(&plans[0])).expect("predict"));
    assert_eq!(settled, expected_b[0]);
    let m = handle.metrics();
    assert_eq!(m.model_version, 2);
    assert_eq!(m.model_swaps, 1);
    assert_eq!(m.errors, 0);
    service.shutdown();
}

#[test]
fn hot_swap_flushes_stale_plans_and_rejects_incompatible_ones() {
    let ds = toy_dataset(1, 37);
    let model_small = fitted_model(&ds, 1);
    let mut model_wide = ExtendedRouteNet::new(ModelConfig {
        state_dim: 16,
        mp_iterations: 2,
        readout_hidden: 16,
        seed: 2,
        ..ModelConfig::default()
    });
    model_wide.fit_preprocessing(&ds, 5);
    let stale_plan = Arc::new(model_small.plan(&ds.samples[0]));

    let service = Service::start(model_small, ServeConfig::default());
    let handle = service.handle();
    let (_, fp) = handle.predict_sample(&ds.samples[0]).expect("predict");

    // Swap to a model with a different state width. By-fingerprint lookups
    // must miss (the cache was flushed), not serve v1 features to v2.
    handle.swap_model(model_wide);
    match handle.predict_cached(fp) {
        Err(ServeError::UnknownPlan(_)) => {}
        other => panic!("expected flushed cache, got {other:?}"),
    }

    // A stale pre-swap plan handle gets a clean error, and the worker
    // survives to serve freshly planned requests.
    match handle.predict_plan(Arc::clone(&stale_plan)) {
        Err(ServeError::IncompatiblePlan {
            expected: 16,
            found: 8,
        }) => {}
        other => panic!("expected IncompatiblePlan, got {other:?}"),
    }
    let (delays, _) = handle
        .predict_sample(&ds.samples[0])
        .expect("service must survive incompatible plans");
    assert!(!delays.is_empty());
    let m = handle.metrics();
    assert!(m.errors >= 1, "incompatible plan must count as an error");
    service.shutdown();
}

#[test]
fn admission_control_rejects_when_queue_is_full() {
    let ds = toy_dataset(1, 23);
    let model = fitted_model(&ds, 1);
    let plan = Arc::new(model.plan(&ds.samples[0]));
    let service = Service::start(
        model,
        ServeConfig {
            workers: 1,
            queue_capacity: 0,
            ..ServeConfig::default()
        },
    );
    let handle = service.handle();
    match handle.predict_plan(Arc::clone(&plan)) {
        Err(ServeError::Overloaded { retry_after_ms }) => {
            assert!(retry_after_ms >= 1, "hint must be a usable backoff")
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert_eq!(handle.metrics().rejected, 1);
    service.shutdown();
}

#[test]
fn shutdown_fails_pending_and_future_requests_cleanly() {
    let ds = toy_dataset(1, 29);
    let model = fitted_model(&ds, 1);
    let plan = Arc::new(model.plan(&ds.samples[0]));
    let service = Service::start(model, ServeConfig::default());
    let handle = service.handle();
    handle.predict_plan(Arc::clone(&plan)).expect("predict");
    service.shutdown();
    match handle.predict_plan(plan) {
        Err(ServeError::Shutdown) => {}
        other => panic!("expected Shutdown, got {other:?}"),
    }
}

#[test]
fn tcp_protocol_round_trips_and_matches_direct_predictions() {
    let ds = toy_dataset(2, 31);
    let model = fitted_model(&ds, 1);
    let expected: Vec<Vec<u64>> = ds
        .samples
        .iter()
        .map(|s| bits(&model.predict(&model.plan(s))))
        .collect();

    let service = Service::start(model, ServeConfig::default());
    let server = TcpServer::bind(service.handle(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();

    let mut client = Client::connect(&addr).expect("connect");
    match client.round_trip(&Request::Ping).expect("ping") {
        Response::Pong => {}
        other => panic!("expected Pong, got {other:?}"),
    }

    // Register, then predict by fingerprint.
    let fp = client.register(&ds.samples[0]).expect("register");
    match client
        .round_trip(&Request::Cached {
            plan: fp.clone(),
            deadline_ms: None,
        })
        .expect("cached")
    {
        Response::Delays { delays_s, plan } => {
            assert_eq!(plan, fp);
            assert_eq!(bits(&delays_s), expected[0]);
        }
        other => panic!("expected Delays, got {other:?}"),
    }

    // Full-sample predict matches too.
    match client
        .round_trip(&Request::Predict {
            sample: ds.samples[1].clone(),
            deadline_ms: None,
        })
        .expect("predict")
    {
        Response::Delays { delays_s, .. } => assert_eq!(bits(&delays_s), expected[1]),
        other => panic!("expected Delays, got {other:?}"),
    }

    // Unknown fingerprints and garbage lines keep the connection usable.
    match client
        .round_trip(&Request::Cached {
            plan: "00000000000000ff".into(),
            deadline_ms: None,
        })
        .expect("unknown plan")
    {
        Response::Error { message } => assert!(message.contains("Register"), "{message}"),
        other => panic!("expected Error, got {other:?}"),
    }
    match client.round_trip_line("this is not json").expect("garbage") {
        Response::Error { message } => assert!(message.contains("bad request"), "{message}"),
        other => panic!("expected Error, got {other:?}"),
    }

    // Metrics reflect the traffic this test generated.
    match client.round_trip(&Request::Metrics).expect("metrics") {
        Response::Metrics { snapshot } => {
            assert!(snapshot.completed >= 2, "{}", snapshot.completed);
            assert!(snapshot.cache_hits >= 1);
            assert_eq!(snapshot.model_version, 1);
        }
        other => panic!("expected Metrics, got {other:?}"),
    }

    drop(client);
    server.stop();
    service.shutdown();
}

#[test]
fn composition_cache_hits_recurring_batch_shapes_bitwise() {
    // Same four scenarios submitted round after round: after the first
    // rounds, recurring multi-request batch shapes must be answered from
    // cached compositions (structure reused, features refilled) — with bits
    // identical to a direct predict_batch, and the metrics must show
    // composition hits plus a populated batch-shape histogram.
    let ds = toy_dataset(4, 41);
    let model = fitted_model(&ds, 5);
    let plans: Vec<Arc<SamplePlan>> = ds.samples.iter().map(|s| Arc::new(model.plan(s))).collect();
    let owned: Vec<SamplePlan> = plans.iter().map(|p| (**p).clone()).collect();
    let reference: Vec<Vec<u64>> = model
        .predict_batch(&owned)
        .iter()
        .map(|v| bits(v))
        .collect();

    let service = Service::start(
        model,
        ServeConfig {
            workers: 1,
            max_batch: 4,
            // A generous deadline so each round's four requests ride one
            // (or few) multi-request batches whose shapes recur.
            flush_deadline: Duration::from_millis(25),
            compose_cache_capacity: 8,
            ..ServeConfig::default()
        },
    );
    let handle = service.handle();
    for _round in 0..12 {
        std::thread::scope(|s| {
            let joins: Vec<_> = plans
                .iter()
                .map(|plan| {
                    let handle = handle.clone();
                    let plan = Arc::clone(plan);
                    s.spawn(move || handle.predict_plan(plan).expect("predict"))
                })
                .collect();
            for (b, join) in joins.into_iter().enumerate() {
                let served = join.join().expect("client thread");
                assert_eq!(
                    bits(&served),
                    reference[b],
                    "cached-composition serving changed bits for sample {b}"
                );
            }
        });
    }

    let m = handle.metrics();
    assert_eq!(m.completed, 48);
    assert_eq!(m.errors, 0);
    assert!(
        m.compose_hits >= 1,
        "recurring batch shapes must hit the composition cache \
         (hits {}, misses {})",
        m.compose_hits,
        m.compose_misses
    );
    assert!(m.compose_len >= 1, "compositions must stay resident");
    assert!(
        (m.compose_hit_rate - m.compose_hits as f64 / (m.compose_hits + m.compose_misses) as f64)
            .abs()
            < 1e-12
    );
    assert!(
        !m.batch_shapes.is_empty(),
        "the batch-shape histogram must be populated"
    );
    let requested: u64 = m.batch_shapes.iter().map(|s| s.batches).sum();
    assert_eq!(
        requested,
        m.compose_hits + m.compose_misses,
        "histogram rows must account for every multi-request batch"
    );
    service.shutdown();
}

#[test]
fn composition_cache_survives_hot_swap_with_refilled_features() {
    // A hot-swap to a same-width model keeps cached compositions useful:
    // the structure is model-independent, and feature refill happens per
    // batch anyway. Post-swap batches must produce model B's exact bits.
    let ds = toy_dataset(3, 43);
    let model_a = fitted_model(&ds, 1);
    let model_b = fitted_model(&ds, 2);
    let plans: Vec<Arc<SamplePlan>> = ds
        .samples
        .iter()
        .map(|s| Arc::new(model_a.plan(s)))
        .collect();
    let owned: Vec<SamplePlan> = plans.iter().map(|p| (**p).clone()).collect();
    let expected_b: Vec<Vec<u64>> = model_b
        .predict_batch(&owned)
        .iter()
        .map(|v| bits(v))
        .collect();

    let service = Service::start(
        model_a,
        ServeConfig {
            workers: 1,
            max_batch: 4,
            flush_deadline: Duration::from_millis(25),
            ..ServeConfig::default()
        },
    );
    let handle = service.handle();
    // Warm the composition cache under model A.
    for _ in 0..3 {
        std::thread::scope(|s| {
            for plan in &plans {
                let handle = handle.clone();
                let plan = Arc::clone(plan);
                s.spawn(move || handle.predict_plan(plan).expect("warm predict"));
            }
        });
    }
    handle.swap_model(model_b);
    // Post-swap, served bits must be model B's — even when the batch rides
    // a composition cached under model A.
    std::thread::scope(|s| {
        let joins: Vec<_> = plans
            .iter()
            .map(|plan| {
                let handle = handle.clone();
                let plan = Arc::clone(plan);
                s.spawn(move || handle.predict_plan(plan).expect("post-swap predict"))
            })
            .collect();
        for (b, join) in joins.into_iter().enumerate() {
            assert_eq!(
                bits(&join.join().expect("client thread")),
                expected_b[b],
                "post-swap sample {b} must carry model B bits"
            );
        }
    });
    let m = handle.metrics();
    assert_eq!(m.errors, 0);

    // A swap to a *resized* model purges the now-unkeyable old-width
    // compositions (same-width entries survived the A→B swap above).
    if m.compose_len > 0 {
        let mut wide = ExtendedRouteNet::new(ModelConfig {
            state_dim: 16,
            mp_iterations: 2,
            readout_hidden: 16,
            seed: 9,
            ..ModelConfig::default()
        });
        wide.fit_preprocessing(&ds, 5);
        handle.swap_model(wide);
        assert_eq!(
            handle.metrics().compose_len,
            0,
            "resized hot-swap must purge stale-width compositions"
        );
    }
    service.shutdown();
}

#[test]
fn intra_batch_sharding_keeps_served_bits_identical() {
    // With a shard gang enabled, a worker that flushes a multi-request
    // batch against an empty queue fans the fused forward out across
    // threads — and must still produce exactly the bits of a direct
    // predict_batch.
    let ds = toy_dataset(4, 21);
    let model = fitted_model(&ds, 3);
    let plans: Vec<Arc<SamplePlan>> = ds.samples.iter().map(|s| Arc::new(model.plan(s))).collect();
    let owned: Vec<SamplePlan> = plans.iter().map(|p| (**p).clone()).collect();
    let reference: Vec<Vec<u64>> = model
        .predict_batch(&owned)
        .iter()
        .map(|v| bits(v))
        .collect();

    let service = Service::start(
        model,
        ServeConfig {
            workers: 1,
            max_batch: 4,
            // Give the lone worker time to see all four requests at once, so
            // shallow-queue batches actually form and the gang engages.
            flush_deadline: Duration::from_millis(25),
            intra_batch_shards: 3,
            ..ServeConfig::default()
        },
    );
    let handle = service.handle();
    for _round in 0..8 {
        std::thread::scope(|s| {
            let results: Vec<_> = plans
                .iter()
                .map(|plan| {
                    let handle = handle.clone();
                    let plan = Arc::clone(plan);
                    s.spawn(move || handle.predict_plan(plan).expect("prediction"))
                })
                .collect();
            for (b, join) in results.into_iter().enumerate() {
                let served = join.join().expect("client thread");
                assert_eq!(
                    bits(&served),
                    reference[b],
                    "sharded serving changed bits for sample {b}"
                );
            }
        });
    }
    let snapshot = handle.metrics();
    assert_eq!(snapshot.completed, 8 * plans.len() as u64);
    service.shutdown();
}
