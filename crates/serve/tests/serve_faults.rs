//! Fault-tolerance suite: the service must keep answering — with
//! bitwise-identical predictions for surviving requests — through injected
//! worker panics, worker kills, queue overload, expired deadlines, dropped
//! connections and malformed frames.
//!
//! The invariant every test enforces: **zero lost replies**. Every
//! submitted request is answered, either with its exact prediction or with
//! a structured error — never silence, never a process abort. CI runs this
//! suite in release mode with the `RN_SERVE_CHAOS_*` knobs set (see
//! `.github/workflows/ci.yml`); the injections here are configured
//! programmatically so the suite is equally meaningful without them.

use rn_dataset::{generate, Dataset, GeneratorConfig};
use rn_netgraph::topologies;
use rn_netsim::SimConfig;
use rn_serve::loadgen::{run_loadgen, Client, LoadMode, LoadgenConfig};
use rn_serve::{ChaosPlan, Request, Response, ServeConfig, ServeError, Service, TcpServer};
use routenet::model::PathPredictor;
use routenet::{ExtendedRouteNet, ModelConfig, SamplePlan};
use std::sync::Arc;
use std::time::Duration;

fn toy_dataset(n: usize, seed: u64) -> Dataset {
    let config = GeneratorConfig {
        sim: SimConfig {
            duration_s: 60.0,
            warmup_s: 10.0,
            ..SimConfig::default()
        },
        ..GeneratorConfig::default()
    };
    generate(&topologies::toy5(), &config, seed, n)
}

fn fitted_model(ds: &Dataset, weight_seed: u64) -> ExtendedRouteNet {
    let mut model = ExtendedRouteNet::new(ModelConfig {
        state_dim: 8,
        mp_iterations: 2,
        readout_hidden: 8,
        seed: weight_seed,
        ..ModelConfig::default()
    });
    model.fit_preprocessing(ds, 5);
    model
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Every request is answered (zero lost replies), the answered predictions
/// are bitwise identical to the direct references, and panicking batches
/// surface as `WorkerPanic` errors — through injected every-3rd-batch
/// panics.
#[test]
fn injected_batch_panics_become_error_replies_not_aborts() {
    let ds = toy_dataset(2, 51);
    let model = fitted_model(&ds, 1);
    let plans: Vec<Arc<SamplePlan>> = ds.samples.iter().map(|s| Arc::new(model.plan(s))).collect();
    let reference: Vec<Vec<u64>> = plans.iter().map(|p| bits(&model.predict(p))).collect();

    let service = Service::start(
        model,
        ServeConfig {
            workers: 2,
            max_batch: 2,
            chaos: ChaosPlan::none().with_panic_every(3),
            ..ServeConfig::default()
        },
    );
    let handle = service.handle();

    const CLIENTS: usize = 3;
    const REQUESTS: usize = 20;
    let (oks, panics) = std::thread::scope(|s| {
        let joins: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let handle = handle.clone();
                let plans = &plans;
                let reference = &reference;
                s.spawn(move || {
                    let (mut oks, mut panics) = (0u64, 0u64);
                    for i in 0..REQUESTS {
                        let pick = (c + i) % plans.len();
                        // Every submission must get SOME reply; recv inside
                        // predict_plan would hang forever on a lost one.
                        match handle.predict_plan(Arc::clone(&plans[pick])) {
                            Ok(got) => {
                                assert_eq!(
                                    bits(&got),
                                    reference[pick],
                                    "surviving request {i} of client {c} changed bits"
                                );
                                oks += 1;
                            }
                            Err(ServeError::WorkerPanic) => panics += 1,
                            Err(other) => panic!("unexpected error: {other:?}"),
                        }
                    }
                    (oks, panics)
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("client"))
            .fold((0u64, 0u64), |(a, b), (c, d)| (a + c, b + d))
    });

    assert_eq!(oks + panics, (CLIENTS * REQUESTS) as u64, "lost replies");
    assert!(panics > 0, "every-3rd-batch chaos must have fired");
    assert!(oks > 0, "some requests must survive between injections");
    let m = handle.metrics();
    assert!(m.worker_panics > 0, "panics must be counted");
    assert_eq!(m.errors, panics, "each panicked request counts one error");
    assert_eq!(m.completed, oks);
    // The service is still fully operational after all that.
    let after = handle
        .predict_plan(Arc::clone(&plans[0]))
        .or_else(|_| handle.predict_plan(Arc::clone(&plans[0])))
        .or_else(|_| handle.predict_plan(Arc::clone(&plans[0])))
        .expect("service must keep serving after injected panics");
    assert_eq!(bits(&after), reference[0]);
    service.shutdown();
}

/// Worker kills fire between batches (no request held), so every request
/// succeeds with exact bits while the supervisor respawns the loop — zero
/// lost replies AND zero errors.
#[test]
fn injected_worker_kills_respawn_without_losing_requests() {
    let ds = toy_dataset(2, 53);
    let model = fitted_model(&ds, 1);
    let plans: Vec<Arc<SamplePlan>> = ds.samples.iter().map(|s| Arc::new(model.plan(s))).collect();
    let reference: Vec<Vec<u64>> = plans.iter().map(|p| bits(&model.predict(p))).collect();

    let service = Service::start(
        model,
        ServeConfig {
            workers: 2,
            max_batch: 2,
            chaos: ChaosPlan::none().with_kill_every(4),
            ..ServeConfig::default()
        },
    );
    let handle = service.handle();

    const REQUESTS: usize = 60;
    for i in 0..REQUESTS {
        let pick = i % plans.len();
        let got = handle
            .predict_plan(Arc::clone(&plans[pick]))
            .expect("kills must never fail a request");
        assert_eq!(bits(&got), reference[pick], "request {i} changed bits");
    }
    let m = handle.metrics();
    assert_eq!(m.completed, REQUESTS as u64);
    assert_eq!(m.errors, 0, "between-batch kills must not error requests");
    assert!(
        m.worker_restarts > 0,
        "every-4th-iteration kills must have respawned workers"
    );
    service.shutdown();
}

/// Satellite: fill the admission queue past capacity → `Overloaded` replies
/// with a usable hint and a nonzero `rejected` counter; once the queue
/// drains, acceptance recovers to 100%.
#[test]
fn load_shedding_rejects_past_capacity_and_recovers_fully() {
    let ds = toy_dataset(1, 57);
    let model = fitted_model(&ds, 1);
    let plan = Arc::new(model.plan(&ds.samples[0]));
    let reference = bits(&model.predict(&plan));

    // One worker slowed hard by chaos delay + a tiny queue: hammering it
    // concurrently guarantees the queue fills past capacity.
    let service = Service::start(
        model,
        ServeConfig {
            workers: 1,
            max_batch: 1,
            queue_capacity: 2,
            chaos: ChaosPlan::none().with_batch_delay(Duration::from_millis(5)),
            ..ServeConfig::default()
        },
    );
    let handle = service.handle();

    const CLIENTS: usize = 8;
    const REQUESTS: usize = 6;
    let (oks, sheds) = std::thread::scope(|s| {
        let joins: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let handle = handle.clone();
                let plan = Arc::clone(&plan);
                let reference = &reference;
                s.spawn(move || {
                    let (mut oks, mut sheds) = (0u64, 0u64);
                    for _ in 0..REQUESTS {
                        match handle.predict_plan(Arc::clone(&plan)) {
                            Ok(got) => {
                                assert_eq!(&bits(&got), reference);
                                oks += 1;
                            }
                            Err(ServeError::Overloaded { retry_after_ms }) => {
                                assert!(
                                    (1..=1000).contains(&retry_after_ms),
                                    "hint must be usable: {retry_after_ms}"
                                );
                                sheds += 1;
                            }
                            Err(other) => panic!("unexpected error: {other:?}"),
                        }
                    }
                    (oks, sheds)
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("client"))
            .fold((0u64, 0u64), |(a, b), (c, d)| (a + c, b + d))
    });
    assert_eq!(oks + sheds, (CLIENTS * REQUESTS) as u64, "lost replies");
    assert!(sheds > 0, "8 clients against capacity 2 must shed load");
    let m = handle.metrics();
    assert_eq!(m.rejected, sheds, "rejected counter must match the replies");
    assert_eq!(m.completed, oks);

    // Recovery: with the stampede over and the queue drained, sequential
    // submissions are accepted 100% again.
    for _ in 0..10 {
        let got = handle
            .predict_plan(Arc::clone(&plan))
            .expect("acceptance must fully recover after the queue drains");
        assert_eq!(bits(&got), reference);
    }
    assert_eq!(
        handle.metrics().rejected,
        sheds,
        "no rejects after recovery"
    );
    service.shutdown();
}

/// An already-expired deadline is answered `DeadlineExceeded` before any
/// forward work; requests without deadlines are untouched.
#[test]
fn expired_deadlines_are_shed_before_forward_work() {
    let ds = toy_dataset(1, 59);
    let model = fitted_model(&ds, 1);
    let plan = Arc::new(model.plan(&ds.samples[0]));
    let reference = bits(&model.predict(&plan));
    let service = Service::start(
        model,
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let handle = service.handle();

    // A zero budget expires by the time the batcher looks at it.
    match handle.predict_plan_with_deadline(Arc::clone(&plan), Some(Duration::ZERO)) {
        Err(ServeError::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    // A generous budget and no budget both succeed with exact bits.
    let got = handle
        .predict_plan_with_deadline(Arc::clone(&plan), Some(Duration::from_secs(30)))
        .expect("generous deadline");
    assert_eq!(bits(&got), reference);
    let got = handle.predict_plan(Arc::clone(&plan)).expect("no deadline");
    assert_eq!(bits(&got), reference);
    let m = handle.metrics();
    assert_eq!(m.deadline_expired, 1);
    assert_eq!(m.completed, 2);
    service.shutdown();
}

/// A client disconnecting mid-flight neither aborts the service nor
/// perturbs other clients' bits.
#[test]
fn client_disconnect_mid_flight_leaves_other_clients_exact() {
    let ds = toy_dataset(2, 61);
    let model = fitted_model(&ds, 1);
    let reference: Vec<Vec<u64>> = ds
        .samples
        .iter()
        .map(|s| bits(&model.predict(&model.plan(s))))
        .collect();
    let service = Service::start(
        model,
        ServeConfig {
            workers: 2,
            flush_deadline: Duration::from_millis(2),
            ..ServeConfig::default()
        },
    );
    let server = TcpServer::bind(service.handle(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();

    // Rude clients: send a request, slam the connection without reading.
    for _ in 0..5 {
        let mut rude = Client::connect(&addr).expect("connect");
        let line = serde_json::to_string(&Request::Predict {
            sample: ds.samples[0].clone(),
            deadline_ms: None,
        })
        .unwrap();
        // Fire-and-forget; drop closes the socket mid-flight.
        let _ = rude.round_trip_line_fire_and_forget(&line);
        drop(rude);
    }
    // A polite client gets exact answers throughout.
    let mut polite = Client::connect(&addr).expect("connect");
    for (i, sample) in ds.samples.iter().enumerate() {
        match polite
            .round_trip(&Request::Predict {
                sample: sample.clone(),
                deadline_ms: None,
            })
            .expect("polite client")
        {
            Response::Delays { delays_s, .. } => assert_eq!(bits(&delays_s), reference[i]),
            other => panic!("expected Delays, got {other:?}"),
        }
    }
    server.stop();
    service.shutdown();
}

/// Chaos connection drops are counted and survivable: the loadgen's
/// reconnect-and-retry layer rides through every-2nd-connection drops and
/// still lands exact predictions.
#[test]
fn injected_connection_drops_are_counted_and_retried_through() {
    let ds = toy_dataset(1, 63);
    let model = fitted_model(&ds, 1);
    let service = Service::start(
        model,
        ServeConfig {
            workers: 1,
            chaos: ChaosPlan::none().with_drop_conn_every(5),
            ..ServeConfig::default()
        },
    );
    let server = TcpServer::bind(service.handle(), "127.0.0.1:0").expect("bind");
    let handle = service.handle();
    let report = run_loadgen(
        &LoadgenConfig {
            clients: 2,
            requests_per_client: 12,
            mode: LoadMode::Naive,
            max_retries: 6,
            ..LoadgenConfig::new(server.local_addr().to_string())
        },
        &ds.samples,
    )
    .expect("loadgen through connection drops");
    assert!(
        report.requests > 0,
        "requests must succeed between injected drops"
    );
    assert!(report.retries > 0, "drops must have forced retries");
    assert!(
        handle.metrics().conn_drops > 0,
        "injected drops must be counted"
    );
    server.stop();
    service.shutdown();
}

/// Hot-swap during chaos: every successful reply is bitwise one of the two
/// model versions, never a blend, even while batches panic around it.
#[test]
fn hot_swap_under_chaos_keeps_replies_bitwise_one_version() {
    let ds = toy_dataset(2, 67);
    let model_a = fitted_model(&ds, 1);
    let model_b = fitted_model(&ds, 2);
    let plans: Vec<Arc<SamplePlan>> = ds
        .samples
        .iter()
        .map(|s| Arc::new(model_a.plan(s)))
        .collect();
    let expected_a: Vec<Vec<u64>> = plans.iter().map(|p| bits(&model_a.predict(p))).collect();
    let expected_b: Vec<Vec<u64>> = plans.iter().map(|p| bits(&model_b.predict(p))).collect();

    let service = Service::start(
        model_a,
        ServeConfig {
            workers: 2,
            max_batch: 2,
            flush_deadline: Duration::from_millis(1),
            chaos: ChaosPlan::none().with_panic_every(5),
            ..ServeConfig::default()
        },
    );
    let handle = service.handle();
    std::thread::scope(|s| {
        for c in 0..3usize {
            let handle = handle.clone();
            let plans = &plans;
            let (expected_a, expected_b) = (&expected_a, &expected_b);
            s.spawn(move || {
                for i in 0..20 {
                    let pick = (c + i) % plans.len();
                    match handle.predict_plan(Arc::clone(&plans[pick])) {
                        Ok(got) => {
                            let got = bits(&got);
                            assert!(
                                got == expected_a[pick] || got == expected_b[pick],
                                "client {c} request {i}: bits match neither version"
                            );
                        }
                        Err(ServeError::WorkerPanic) => {}
                        Err(other) => panic!("unexpected error: {other:?}"),
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_millis(3));
        let swapper = handle.clone();
        s.spawn(move || swapper.swap_model(model_b));
    });
    assert_eq!(handle.model_version(), 2);
    service.shutdown();
}

/// Satellite: malformed JSON, binary garbage (invalid UTF-8) and unknown
/// request shapes each get a structured error line and the connection
/// keeps working.
#[test]
fn malformed_frames_get_structured_errors_and_the_connection_survives() {
    let ds = toy_dataset(1, 71);
    let model = fitted_model(&ds, 1);
    let reference = bits(&model.predict(&model.plan(&ds.samples[0])));
    let service = Service::start(model, ServeConfig::default());
    let server = TcpServer::bind(service.handle(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();

    let mut client = Client::connect(&addr).expect("connect");
    // Malformed JSON.
    match client.round_trip_line("{not json").expect("reply") {
        Response::Error { message } => assert!(message.contains("bad request"), "{message}"),
        other => panic!("expected Error, got {other:?}"),
    }
    // Unknown request shape.
    match client
        .round_trip_line("{\"Reboot\": {\"now\": true}}")
        .expect("reply")
    {
        Response::Error { .. } => {}
        other => panic!("expected Error, got {other:?}"),
    }
    // Binary garbage — invalid UTF-8 must be *answered*, not dropped.
    match client
        .round_trip_bytes(&[0xff, 0xfe, 0x80, b'\n'])
        .expect("reply to binary garbage")
    {
        Response::Error { message } => assert!(message.contains("UTF-8"), "{message}"),
        other => panic!("expected Error, got {other:?}"),
    }
    // The same connection still serves real requests, bit-exactly.
    match client
        .round_trip(&Request::Predict {
            sample: ds.samples[0].clone(),
            deadline_ms: None,
        })
        .expect("predict after garbage")
    {
        Response::Delays { delays_s, .. } => assert_eq!(bits(&delays_s), reference),
        other => panic!("expected Delays, got {other:?}"),
    }
    server.stop();
    service.shutdown();
}

/// Overload over TCP: the structured `Overloaded {retry_after_ms}` reply
/// reaches the wire, the loadgen's backoff retries through it, and the
/// report records reject/retry rates for `BENCH_serving.json`'s overload
/// row.
#[test]
fn tcp_overload_yields_structured_backpressure_and_retry_success() {
    let ds = toy_dataset(1, 73);
    let model = fitted_model(&ds, 1);
    let service = Service::start(
        model,
        ServeConfig {
            workers: 1,
            max_batch: 1,
            queue_capacity: 2,
            chaos: ChaosPlan::none().with_batch_delay(Duration::from_millis(2)),
            ..ServeConfig::default()
        },
    );
    let server = TcpServer::bind(service.handle(), "127.0.0.1:0").expect("bind");
    let handle = service.handle();
    let report = run_loadgen(
        &LoadgenConfig {
            clients: 8,
            requests_per_client: 8,
            mode: LoadMode::Cached,
            max_retries: 8,
            backoff_base_ms: 1,
            ..LoadgenConfig::new(server.local_addr().to_string())
        },
        &ds.samples,
    )
    .expect("overload loadgen");
    assert!(report.rejected > 0, "8 clients vs capacity 2 must shed");
    assert!(report.retries > 0, "shed requests must retry");
    assert!(report.reject_rate > 0.0 && report.reject_rate < 1.0);
    assert!(report.requests > 0, "retries must eventually land requests");
    assert!(handle.metrics().rejected > 0, "server must count rejects");
    server.stop();
    service.shutdown();
}

/// The `RN_SERVE_CHAOS_*` env knobs flow into `ServeConfig` — in CI (where
/// the workflow exports them) this asserts the exact values; locally it
/// asserts the no-chaos default.
#[test]
fn chaos_env_knobs_flow_into_serve_config() {
    let cfg = ServeConfig::from_env();
    match std::env::var("RN_SERVE_CHAOS_PANIC_EVERY") {
        Ok(v) => {
            let expected: u64 = v.trim().parse().expect("CI sets a numeric value");
            assert_eq!(cfg.chaos.panic_every, expected);
            assert!(
                !cfg.chaos.is_none() || expected == 0,
                "chaos knobs set in the environment must activate the plan"
            );
        }
        Err(_) => assert!(
            cfg.chaos.is_none(),
            "without env knobs the plan must stay empty"
        ),
    }
}

/// Satellite: an unreachable server is a clean `Err` from `run_loadgen`
/// (the binary maps it to a nonzero exit), never a panic.
#[test]
fn loadgen_against_unreachable_server_errors_cleanly() {
    // Bind-then-drop: the port existed a moment ago and now refuses.
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
        l.local_addr().expect("addr").port()
    };
    let ds = toy_dataset(1, 79);
    let config = LoadgenConfig {
        clients: 2,
        requests_per_client: 1,
        ..LoadgenConfig::new(format!("127.0.0.1:{port}"))
    };
    let err = run_loadgen(&config, &ds.samples).expect_err("must fail cleanly");
    assert!(err.contains("connect"), "readable cause, got: {err}");
}

/// Full-stack chaos soak: panics + kills + delays + connection drops all at
/// once over TCP, loadgen riding through with retries — the service must
/// end the run alive, having answered every surviving request exactly.
#[test]
fn combined_chaos_soak_keeps_the_service_answering() {
    let ds = toy_dataset(2, 83);
    let model = fitted_model(&ds, 1);
    let service = Service::start(
        model,
        ServeConfig {
            workers: 2,
            max_batch: 2,
            flush_deadline: Duration::from_micros(500),
            chaos: ChaosPlan::none()
                .with_panic_every(7)
                .with_kill_every(11)
                .with_batch_delay(Duration::from_micros(200))
                .with_drop_conn_every(9)
                .with_seed(2019),
            ..ServeConfig::default()
        },
    );
    let server = TcpServer::bind(service.handle(), "127.0.0.1:0").expect("bind");
    let handle = service.handle();
    let report = run_loadgen(
        &LoadgenConfig {
            clients: 4,
            requests_per_client: 24,
            // Naive mode: no registration round-trips, so an injected
            // connection drop during setup can't fail a client before the
            // retry loop even starts.
            mode: LoadMode::Naive,
            max_retries: 10,
            backoff_base_ms: 1,
            ..LoadgenConfig::new(server.local_addr().to_string())
        },
        &ds.samples,
    )
    .expect("loadgen under combined chaos");
    assert!(
        report.requests > 0,
        "the service must keep answering under combined chaos"
    );
    // Liveness after the storm: a fresh client gets a clean prediction.
    let mut client = Client::connect(&server.local_addr().to_string()).expect("connect");
    let mut alive = false;
    for _ in 0..5 {
        match client.round_trip(&Request::Predict {
            sample: ds.samples[0].clone(),
            deadline_ms: None,
        }) {
            Ok(Response::Delays { .. }) => {
                alive = true;
                break;
            }
            // A chaos drop or injected panic on this very attempt: reconnect
            // and try again.
            _ => client = Client::connect(&server.local_addr().to_string()).expect("reconnect"),
        }
    }
    assert!(alive, "service must still answer after the chaos soak");
    let m = handle.metrics();
    assert!(
        m.worker_panics + m.worker_restarts > 0,
        "the soak must actually have injected failures"
    );
    server.stop();
    service.shutdown();
}
