//! Property-based precision pins for the fast activation path.
//!
//! The training hot loops evaluate sigmoid/tanh/SELU through [`fast_exp`]
//! (and its 8-lane AVX2 twin) instead of libm. These tests pin the contract
//! that makes that substitution safe everywhere it is used:
//!
//! - `fast_exp` tracks `libm::exp` to ~1e-7 **relative** error across the
//!   whole clamped domain `[-87, 87]`, not just near zero — the exponent is
//!   applied through exact bit construction, so the error does not grow
//!   with magnitude;
//! - the composed activations track their `*_precise` forms to a small
//!   **absolute** error (their outputs are bounded, so an absolute bound is
//!   the meaningful one in the saturated tails);
//! - the clamp boundaries (±87 for exp, ±9 for tanh's `2x` argument) hand
//!   over smoothly: outside them the fast forms are finite and saturate.
//!
//! The vectorized slice kernels are additionally required to be **bitwise**
//! identical to the scalar loops on arbitrary inputs — that is what lets
//! every forward/backward site route through them without perturbing golden
//! outputs.

use proptest::prelude::*;
use rn_tensor::activations::{
    fast_exp, selu, selu_precise, sigmoid, sigmoid_precise, tanh, tanh_precise,
};
use rn_tensor::simd::activations as vact;

proptest! {
    /// `fast_exp` holds ~1e-7 relative error over the full clamp range —
    /// the argument reduction is exact (Cody–Waite + bit-built exponent),
    /// so only the degree-6 polynomial contributes.
    #[test]
    fn fast_exp_relative_error_over_full_clamp_range(x in -87.0f32..87.0) {
        let exact = x.exp();
        let fast = fast_exp(x);
        prop_assert!(fast.is_finite());
        let rel = ((fast - exact) / exact).abs();
        prop_assert!(rel < 5e-7, "fast_exp({x}) rel err {rel}");
    }

    /// Sigmoid tracks the libm form absolutely; its output is in (0, 1) so
    /// an absolute bound also bounds the relative error away from 0.
    #[test]
    fn sigmoid_tracks_precise_form(x in -100.0f32..100.0) {
        let d = (sigmoid(x) - sigmoid_precise(x)).abs();
        prop_assert!(d < 1e-6, "sigmoid({x}) abs err {d}");
        prop_assert!((0.0..=1.0).contains(&sigmoid(x)));
    }

    /// Tanh tracks the libm form absolutely and never leaves [-1, 1] — the
    /// GRU state-boundedness invariant.
    #[test]
    fn tanh_tracks_precise_form(x in -100.0f32..100.0) {
        let d = (tanh(x) - tanh_precise(x)).abs();
        prop_assert!(d < 1e-6, "tanh({x}) abs err {d}");
        prop_assert!(tanh(x).abs() <= 1.0);
    }

    /// SELU: exponential branch below 0, linear above; the error is the
    /// scaled fast_exp error (λ·α ≈ 1.84 amplification).
    #[test]
    fn selu_tracks_precise_form(x in -60.0f32..60.0) {
        let d = (selu(x) - selu_precise(x)).abs();
        prop_assert!(d < 2e-6, "selu({x}) abs err {d}");
    }

    /// The dispatched slice kernels (AVX2 on this host, scalar elsewhere)
    /// are bitwise identical to the scalar reference loops on arbitrary
    /// finite inputs — including ragged lengths that exercise the 8-lane
    /// tail handling.
    #[test]
    fn map_kernels_match_scalar_bitwise(
        src in proptest::collection::vec(-90.0f32..90.0, 1..64),
    ) {
        for (kernel, reference) in [
            (
                vact::exp_map as fn(&[f32], &mut [f32]),
                vact::exp_map_scalar as fn(&[f32], &mut [f32]),
            ),
            (vact::sigmoid_map, vact::sigmoid_map_scalar),
            (vact::tanh_map, vact::tanh_map_scalar),
            (vact::selu_map, vact::selu_map_scalar),
        ] {
            let mut fast = vec![0.0f32; src.len()];
            let mut reference_out = vec![0.0f32; src.len()];
            kernel(&src, &mut fast);
            reference(&src, &mut reference_out);
            let fast_bits: Vec<u32> = fast.iter().map(|v| v.to_bits()).collect();
            let ref_bits: Vec<u32> = reference_out.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(fast_bits, ref_bits);
        }
    }

    /// Same bitwise contract for the fused backward kernels `g · f'(y)`.
    #[test]
    fn deriv_kernels_match_scalar_bitwise(
        g in proptest::collection::vec(-3.0f32..3.0, 1..64),
    ) {
        let y: Vec<f32> = g.iter().map(|v| sigmoid(*v)).collect();
        let mut fast = vec![0.0f32; g.len()];
        let mut reference = vec![0.0f32; g.len()];
        vact::sigmoid_deriv_mul(&g, &y, &mut fast);
        vact::sigmoid_deriv_mul_scalar(&g, &y, &mut reference);
        prop_assert_eq!(
            fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        let yt: Vec<f32> = g.iter().map(|v| tanh(*v)).collect();
        vact::tanh_deriv_mul(&g, &yt, &mut fast);
        vact::tanh_deriv_mul_scalar(&g, &yt, &mut reference);
        prop_assert_eq!(
            fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}

/// Deterministic boundary sweep: the clamps hand over smoothly and the
/// saturated tails stay finite and ordered.
#[test]
fn clamp_boundaries_saturate_cleanly() {
    // exp clamp at ±87: continuous into the clamp, finite beyond it.
    for &x in &[-87.0f32, -86.999, 86.999, 87.0, 88.0, 1e4] {
        assert!(fast_exp(x).is_finite(), "fast_exp({x}) must stay finite");
        assert!(fast_exp(x) >= 0.0);
    }
    assert_eq!(fast_exp(88.0), fast_exp(87.0), "clamp pins the tail");
    assert_eq!(fast_exp(-88.0), fast_exp(-87.0));
    // tanh clamp at ±9: fully saturated to f32 precision at the boundary.
    assert!((tanh(9.0) - 1.0).abs() < 1e-6);
    assert!((tanh(-9.0) + 1.0).abs() < 1e-6);
    assert_eq!(tanh(9.0), tanh(1e6), "beyond-clamp tail is exactly flat");
    assert_eq!(tanh(-9.0), tanh(-1e6));
    // sigmoid saturates monotonically through its (internal) clamp.
    assert!(sigmoid(100.0) <= 1.0 && sigmoid(100.0) > 0.9999);
    assert!(sigmoid(-100.0) >= 0.0 && sigmoid(-100.0) < 1e-4);
}
